// Micro-benchmarks (google-benchmark) for the substrates: hashing, signing,
// certificate verification, block construction, KV execution/undo, ledger
// speculation, the event queue, and workload generation.

#include <benchmark/benchmark.h>

#include "consensus/certificate.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "ledger/ledger.h"
#include "sim/simulator.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SignVerify(benchmark::State& state) {
  KeyRegistry registry(4, 1);
  Signer signer(&registry, 0);
  const Hash256 digest = Sha256::Digest("payload");
  for (auto _ : state) {
    const Signature sig = signer.Sign(SignDomain::kProposeVote, digest);
    benchmark::DoNotOptimize(registry.Verify(sig, SignDomain::kProposeVote, digest));
  }
}
BENCHMARK(BM_SignVerify);

void BM_CertificateVerify(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t quorum = n - (n - 1) / 3;
  KeyRegistry registry(n, 1);
  const Hash256 h = Sha256::Digest("block");
  VoteAccumulator acc(CertKind::kPrepare, 5, BlockId{5, 1}, h, quorum);
  for (uint32_t r = 0; r < quorum; ++r) {
    acc.Add(Signer(&registry, r)
                .Sign(SignDomain::kProposeVote,
                      VoteDigest(CertKind::kPrepare, 5, BlockId{5, 1}, h)));
  }
  const Certificate cert = acc.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.Verify(registry, quorum).ok());
  }
}
BENCHMARK(BM_CertificateVerify)->Arg(4)->Arg(32)->Arg(64);

void BM_BlockConstruction(benchmark::State& state) {
  YcsbWorkload workload;
  Rng rng(3);
  std::vector<Transaction> txns;
  for (int64_t i = 0; i < state.range(0); ++i) {
    Transaction t = workload.Generate(&rng);
    t.id = static_cast<uint64_t>(i);
    txns.push_back(std::move(t));
  }
  for (auto _ : state) {
    auto block = std::make_shared<Block>(BlockId{1, 1}, Block::Genesis()->hash(),
                                         1, 0, txns);
    benchmark::DoNotOptimize(block->hash());
  }
}
BENCHMARK(BM_BlockConstruction)->Arg(100)->Arg(1000);

void BM_KvApplyUndo(benchmark::State& state) {
  KvState kv;
  YcsbWorkload workload;
  Rng rng(4);
  Transaction txn = workload.Generate(&rng);
  for (auto _ : state) {
    KvState::UndoLog undo;
    benchmark::DoNotOptimize(kv.ApplyTxn(txn, &undo));
    kv.Undo(undo);
  }
}
BENCHMARK(BM_KvApplyUndo);

void BM_LedgerSpeculateCommit(benchmark::State& state) {
  YcsbWorkload workload;
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    BlockStore store;
    Ledger ledger(&store, KvState());
    std::vector<Transaction> txns;
    for (int i = 0; i < 100; ++i) {
      Transaction t = workload.Generate(&rng);
      t.id = static_cast<uint64_t>(i);
      txns.push_back(std::move(t));
    }
    auto block = std::make_shared<Block>(BlockId{1, 1}, store.genesis()->hash(),
                                         1, 0, std::move(txns));
    store.Put(block);
    state.ResumeTiming();
    ledger.Speculate(block);
    benchmark::DoNotOptimize(ledger.CommitChain(block));
  }
}
BENCHMARK(BM_LedgerSpeculateCommit);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    uint64_t count = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.At((i * 37) % 500, [&count]() { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EventQueue);

void BM_YcsbGenerate(benchmark::State& state) {
  YcsbWorkload workload;
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Generate(&rng));
  }
}
BENCHMARK(BM_YcsbGenerate);

void BM_TpccNewOrder(benchmark::State& state) {
  TpccConfig cfg;
  cfg.new_order_fraction = 1.0;
  TpccWorkload workload(cfg);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Generate(&rng));
  }
}
BENCHMARK(BM_TpccNewOrder);

}  // namespace
}  // namespace hotstuff1

BENCHMARK_MAIN();

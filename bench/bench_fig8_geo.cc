// Figure 8 (e-h): geo-scale deployment, n = 32 replicas uniformly spread
// over 2..5 regions (North Virginia, Hong Kong, London, Sao Paulo, Zurich),
// clients in North Virginia, YCSB and TPC-C.
//
// Expected shape (paper): inter-regional RTTs dominate; throughput drops by
// up to ~59% and latency grows by up to ~159% as regions increase; both
// workloads show the same trend; HotStuff-1 keeps the lowest latency at
// unchanged throughput.

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void RunWorkload(WorkloadKind workload, const char* tput_caption,
                 const char* lat_caption) {
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  ReportTable tput(tput_caption, {"regions", "HotStuff", "HotStuff-2", "HotStuff-1",
                                  "HS-1(slotting)"});
  ReportTable lat(lat_caption, {"regions", "HotStuff", "HotStuff-2", "HotStuff-1",
                                "HS-1(slotting)"});

  for (uint32_t regions = 2; regions <= 5; ++regions) {
    std::vector<std::string> trow{std::to_string(regions)};
    std::vector<std::string> lrow{std::to_string(regions)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 32;
      cfg.batch_size = 100;
      cfg.topology = sim::Topology::Geo(32, regions);
      cfg.client_region = sim::kNorthVirginia;
      cfg.workload = workload;
      cfg.duration = std::max<SimTime>(BenchDuration(1500) * 8, Seconds(10));
      cfg.warmup = Seconds(2);
      cfg.view_timer = Millis(1200);
      cfg.delta = Millis(160);
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::RunWorkload(hotstuff1::WorkloadKind::kYcsb,
                         "Figure 8(e): Geo-Scale + YCSB - Throughput (txn/s), n=32",
                         "Figure 8(f): Geo-Scale + YCSB - Client Latency");
  hotstuff1::RunWorkload(hotstuff1::WorkloadKind::kTpcc,
                         "Figure 8(g): Geo-Scale + TPC-C - Throughput (txn/s), n=32",
                         "Figure 8(h): Geo-Scale + TPC-C - Client Latency");
  return 0;
}

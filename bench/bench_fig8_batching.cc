// Figure 8 (c, d): throughput and client latency vs batch size
// (n = 32, LAN, YCSB, batch 100..10000).
//
// Expected shape (paper): throughput grows with batch size as per-view
// overheads amortize, then tapers as replicas become compute-bound around
// batch ~5000; latency grows with batch size throughout.

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void Run() {
  const uint32_t kBatches[] = {100, 1000, 2000, 5000, 10000};
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  ReportTable tput("Figure 8(c): Batching - Throughput (txn/s), n=32, YCSB",
                   {"batch", "HotStuff", "HotStuff-2", "HotStuff-1", "HS-1(slotting)"});
  ReportTable lat("Figure 8(d): Batching - Client Latency (ms)",
                  {"batch", "HotStuff", "HotStuff-2", "HotStuff-1", "HS-1(slotting)"});

  for (uint32_t batch : kBatches) {
    std::vector<std::string> trow{std::to_string(batch)};
    std::vector<std::string> lrow{std::to_string(batch)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 32;
      cfg.batch_size = batch;
      cfg.duration = BenchDuration(600);
      cfg.warmup = Millis(300);
      // Larger batches take longer per view: Δ must cover a proposal round
      // trip including transfer and execution (partial synchrony demands
      // Δ above the true delay bound), and the view timer sits above the
      // ShareTimer fallback.
      cfg.delta = Millis(2) + Millis(batch / 100);
      cfg.view_timer = Millis(10) + 4 * cfg.delta;
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::Run();
  return 0;
}

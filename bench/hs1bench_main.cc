// hs1bench: the registry-driven benchmark harness. Every paper figure and
// ablation is a registered scenario; this binary lists and runs them.
//
// Examples:
//   hs1bench --list
//   hs1bench --scenario=fig8_scalability
//   hs1bench --scenario=fig9_delay --jobs=8 --format=csv
//   hs1bench --scenario=fig8_scalability --smoke --jobs=2   (CI-sized)
//   hs1bench --all --smoke

#include <cstdio>
#include <string>

#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "tools/flags.h"
#include "tools/scenario_cli.h"

namespace hotstuff1 {
namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out, R"(hs1bench - registry-driven benchmark harness

  --list                     enumerate registered scenarios with their axes
  --scenario=<name>          run one scenario (repeatable via positional args)
  --all                      run every registered scenario
  --jobs=N                   worker threads across sweep points
                             (default: hardware concurrency)
  --sim-jobs=N               threads inside each experiment's event loop
                             (default: per-scenario config; output is
                             byte-identical at any value)
  --lookahead=auto|off|<us>  conservative lookahead window for the parallel
                             event loop (default: per-scenario config;
                             byte-identical at any value)
  --format=table|csv|json    output format (default table)
  --oracle                   arm the online safety + liveness oracles on every
                             point (pure observers; violations fail the run
                             with a config+seed diagnostic)
  --strategy=<schedule>      force a composable per-epoch adversary strategy
                             onto every point's faulty coalition (grammar in
                             runtime/adversary.h; respected only when the
                             scenario does not sweep the strategy itself)
  --reconfig=<schedule>      force an epoch-based committee reconfiguration
                             schedule onto every point (grammar in
                             consensus/committee.h; respected only when the
                             scenario does not sweep the schedule itself)
  --arrival=<kind>           force a traffic model onto every point
                             (closed|poisson|bursty|diurnal|flash; respected
                             only when the scenario does not sweep it)
  --offered-load=<txn/s>     force the open-loop aggregate arrival rate
  --client-groups=G          force the client-pool shard count (output is
                             byte-identical at any value)
  --cert-scheme=<scheme>     force the authenticator wire encoding onto every
                             point (vector|aggregate|threshold; respected
                             only when the scenario does not sweep it)
  --smoke                    CI-sized points (short windows, axis endpoints)
  --repeat=K                 rerun the scenario K times and report median
                             wall-clock metrics (deterministic output is
                             byte-identical across reruns by contract)
  --bench-json=PATH          write the machine-readable perf ledger to PATH
                             (throughput scenario; see tools/bench_compare.py)
  --help                     this text

Scenario durations honor the H1_DURATION_MS environment override.
)");
}

int RunMain(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.Has("help")) {
    PrintUsage(stdout);
    return 0;
  }
  if (flags.Has("list")) return tools::ListScenarios();

  ScenarioRunOptions options;
  if (!tools::ParseScenarioRunOptions(flags, &options)) return 2;

  std::vector<std::string> names = flags.positional();
  if (flags.Has("scenario")) names.push_back(flags.GetString("scenario", ""));
  if (flags.GetBool("all", false)) {
    for (const ScenarioSpec* spec : ScenarioRegistry::Instance().All()) {
      names.push_back(spec->name);
    }
  }
  if (names.empty()) {
    PrintUsage(stderr);
    return 2;
  }

  int exit_code = 0;
  for (const std::string& name : names) {
    const ScenarioSpec* spec = ScenarioRegistry::Instance().Find(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
      return 2;
    }
    const int code = RunScenario(*spec, options);
    if (code != 0) exit_code = code;
  }
  return exit_code;
}

}  // namespace
}  // namespace hotstuff1

int main(int argc, char** argv) { return hotstuff1::RunMain(argc, argv); }

// Figure 8 (a, b): throughput and client latency vs number of replicas
// (n = 4..64, LAN, YCSB, batch 100).
//
// Expected shape (paper): all streamlined protocols share throughput, which
// decays ~O(n); HotStuff-1 (with and without slotting) has the lowest
// latency - roughly 40% below HotStuff and 25% below HotStuff-2.

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void Run() {
  const uint32_t kSizes[] = {4, 16, 32, 64};
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  ReportTable tput("Figure 8(a): Scalability - Throughput (txn/s), YCSB, batch=100",
                   {"n", "HotStuff", "HotStuff-2", "HotStuff-1", "HS-1(slotting)"});
  ReportTable lat("Figure 8(b): Scalability - Client Latency (ms)",
                  {"n", "HotStuff", "HotStuff-2", "HotStuff-1", "HS-1(slotting)"});

  for (uint32_t n : kSizes) {
    std::vector<std::string> trow{std::to_string(n)};
    std::vector<std::string> lrow{std::to_string(n)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = n;
      cfg.batch_size = 100;
      cfg.duration = BenchDuration(800);
      cfg.warmup = Millis(200);
      cfg.view_timer = Millis(10);
      cfg.delta = Millis(1);
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
      if (!res.safety_ok) std::fprintf(stderr, "SAFETY VIOLATION n=%u\n", n);
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::Run();
  return 0;
}

// Figure 9 (a-d, f-i): impact of injected message delays. n = 31 (f = 10);
// delays delta in {1, 5, 50, 500} ms injected on traffic to/from k impacted
// replicas, k in {0, 10, 11, 20, 21, 31}.
//
// Expected shape (paper): the largest cliff appears between k = f (10) and
// k = f+1 (11), where every certificate needs an impacted signer; between
// k = n-f-1 (20) and k = n-f (21), HotStuff/HotStuff-2 client latency jumps
// again (clients can get at most f fast responses) while HotStuff-1's n-f
// quorum was already dominated by slow replicas - it only rises moderately.

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void RunDelay(double delay_ms) {
  const uint32_t kImpacted[] = {0, 10, 11, 20, 21, 31};
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  char cap_t[128], cap_l[128];
  std::snprintf(cap_t, sizeof(cap_t),
                "Figure 9: Inject %gms Delay - Throughput (txn/s), n=31", delay_ms);
  std::snprintf(cap_l, sizeof(cap_l),
                "Figure 9: Inject %gms Delay - Client Latency", delay_ms);
  ReportTable tput(cap_t, {"k", "HotStuff", "HotStuff-2", "HotStuff-1",
                           "HS-1(slotting)"});
  ReportTable lat(cap_l, {"k", "HotStuff", "HotStuff-2", "HotStuff-1",
                          "HS-1(slotting)"});

  for (uint32_t k : kImpacted) {
    std::vector<std::string> trow{std::to_string(k)};
    std::vector<std::string> lrow{std::to_string(k)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 31;
      cfg.batch_size = 100;
      cfg.inject_delay = Millis(delay_ms);
      cfg.num_impaired = k;
      // The view timer must cover a delayed proposal round trip once
      // impacted replicas sit inside every quorum.
      cfg.delta = Millis(1) + cfg.inject_delay;
      cfg.view_timer = Millis(10) + 4 * cfg.inject_delay;
      // With k <= f the quorum excludes impacted replicas and views run at
      // network speed, so a short window already covers thousands of
      // views; only the slow regime (k > f) needs a window scaled to the
      // delayed round trip.
      const bool slow_regime = k > 10;
      cfg.duration = slow_regime ? std::max<SimTime>(BenchDuration(1200),
                                                     14 * (2 * cfg.inject_delay +
                                                           Millis(20)))
                                 : BenchDuration(1200);
      cfg.warmup = slow_regime ? std::max<SimTime>(Millis(300),
                                                   3 * (2 * cfg.inject_delay +
                                                        Millis(20)))
                               : Millis(300);
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  for (double d : {1.0, 5.0, 50.0, 500.0}) hotstuff1::RunDelay(d);
  return 0;
}

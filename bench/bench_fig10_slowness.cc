// Figure 10 (a-d): leader-slowness phenomenon (D6). n = 32, batch 100; slow
// leaders (0..f = 10) delay proposing until late in their view; two timeout
// settings, 10ms and 100ms.
//
// Expected shape (paper): slow leaders degrade throughput and latency in all
// protocols except HotStuff-1 with slotting, where multiple slots per view
// realign incentives (slotted leaders propose promptly). The longer the
// timer, the worse the damage to the non-slotted protocols.

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void RunTimer(double timer_ms) {
  const uint32_t kSlow[] = {0, 1, 4, 7, 10};
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  char cap_t[128], cap_l[128];
  std::snprintf(cap_t, sizeof(cap_t),
                "Figure 10: Leader slowness (timer %gms) - Throughput (txn/s), n=32",
                timer_ms);
  std::snprintf(cap_l, sizeof(cap_l),
                "Figure 10: Leader slowness (timer %gms) - Client Latency", timer_ms);
  ReportTable tput(cap_t, {"slow leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                           "HS-1(slotting)"});
  ReportTable lat(cap_l, {"slow leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                          "HS-1(slotting)"});

  for (uint32_t slow : kSlow) {
    std::vector<std::string> trow{std::to_string(slow)};
    std::vector<std::string> lrow{std::to_string(slow)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 32;
      cfg.batch_size = 100;
      cfg.fault = Fault::kSlowLeader;
      cfg.num_faulty = slow;
      cfg.view_timer = Millis(timer_ms);
      cfg.delta = Millis(1);
      cfg.duration = std::max<SimTime>(BenchDuration(1500), 25 * cfg.view_timer);
      cfg.warmup = std::max<SimTime>(Millis(300), 4 * cfg.view_timer);
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::RunTimer(10);
  hotstuff1::RunTimer(100);
  return 0;
}

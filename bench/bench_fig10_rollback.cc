// Figure 10 (g, h): rollback attacks. n = 32, batch 100; each faulty leader
// (0..f = 10) conceals+equivocates so that up to f correct replicas
// speculatively execute a block the winning branch abandons, forcing
// local-ledger rollbacks (§7.3).
//
// Expected shape (paper): throughput and latency of HotStuff-1 (without
// slotting) degrade with the number of faulty leaders; HotStuff-1 with
// slotting is minimally affected (a faulty leader can only force rollbacks
// of the preceding view's final slot).

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void Run() {
  const uint32_t kFaulty[] = {0, 1, 4, 7, 10};
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  ReportTable tput("Figure 10(g): Rollback - Throughput (txn/s), n=32",
                   {"faulty leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                    "HS-1(slotting)"});
  ReportTable lat("Figure 10(h): Rollback - Client Latency",
                  {"faulty leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                   "HS-1(slotting)"});
  ReportTable rolls("Rollback diagnostics - rollback events at correct replicas",
                    {"faulty leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                     "HS-1(slotting)"});

  for (uint32_t faulty : kFaulty) {
    std::vector<std::string> trow{std::to_string(faulty)};
    std::vector<std::string> lrow{std::to_string(faulty)};
    std::vector<std::string> rrow{std::to_string(faulty)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 32;
      cfg.batch_size = 100;
      cfg.fault = Fault::kRollbackAttack;
      cfg.num_faulty = faulty;
      cfg.rollback_victims = 10;  // up to f correct replicas per attack
      cfg.view_timer = Millis(10);
      cfg.delta = Millis(1);
      cfg.duration = BenchDuration(1500);
      cfg.warmup = Millis(300);
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
      rrow.push_back(FormatCount(res.rollback_events));
      if (!res.safety_ok) std::fprintf(stderr, "SAFETY VIOLATION\n");
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
    rolls.AddRow(rrow);
  }
  tput.Print();
  lat.Print();
  rolls.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::Run();
  return 0;
}

// Ablations of the design choices DESIGN.md calls out:
//  1. Speculation on/off - quantifies the two-hop latency saving of early
//     finality confirmations (the paper's core claim).
//  2. Basic vs streamlined HotStuff-1 - the 2x throughput of streamlining.
//  3. Fixed vs adaptive slot counts under slow leaders - why "adaptive".
//  4. Trusted-previous-leader fast path on/off (§6.3).

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

ExperimentConfig Base() {
  ExperimentConfig cfg;
  cfg.n = 16;
  cfg.batch_size = 100;
  cfg.duration = BenchDuration(1200);
  cfg.warmup = Millis(300);
  cfg.view_timer = Millis(10);
  cfg.delta = Millis(1);
  cfg.seed = 99;
  return cfg;
}

void SpeculationAblation() {
  ReportTable t("Ablation 1: speculation on/off (HotStuff-1, n=16)",
                {"config", "throughput", "avg latency", "p99 latency"});
  for (bool spec : {true, false}) {
    ExperimentConfig cfg = Base();
    cfg.protocol = ProtocolKind::kHotStuff1;
    cfg.speculation_enabled = spec;
    const ExperimentResult res = RunPaperPoint(cfg);
    t.AddRow({spec ? "speculation ON" : "speculation OFF",
              FormatTps(res.throughput_tps), FormatMs(res.avg_latency_ms),
              FormatMs(res.p99_latency_ms)});
  }
  t.Print();
}

void StreamliningAblation() {
  ReportTable t("Ablation 2: basic vs streamlined HotStuff-1 (n=16)",
                {"variant", "throughput", "avg latency"});
  for (ProtocolKind kind :
       {ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1}) {
    ExperimentConfig cfg = Base();
    cfg.protocol = kind;
    const ExperimentResult res = RunPaperPoint(cfg);
    t.AddRow({ProtocolName(kind), FormatTps(res.throughput_tps),
              FormatMs(res.avg_latency_ms)});
  }
  t.Print();
}

void SlotCountAblation() {
  ReportTable t(
      "Ablation 3: slot budget under f slow leaders (slotted, n=16, timer 20ms)",
      {"slots/view", "throughput", "avg latency"});
  for (uint32_t max_slots : {1u, 2u, 4u, 0u}) {  // 0 = adaptive
    ExperimentConfig cfg = Base();
    cfg.protocol = ProtocolKind::kHotStuff1Slotted;
    cfg.max_slots = max_slots;
    cfg.view_timer = Millis(20);
    cfg.fault = Fault::kSlowLeader;
    cfg.num_faulty = 5;  // f = 5 at n = 16
    const ExperimentResult res = RunPaperPoint(cfg);
    t.AddRow({max_slots == 0 ? "adaptive" : std::to_string(max_slots),
              FormatTps(res.throughput_tps), FormatMs(res.avg_latency_ms)});
  }
  t.Print();
}

void TrustedLeaderAblation() {
  ReportTable t("Ablation 4: trusted-previous-leader fast path (slotted, n=16)",
                {"config", "throughput", "avg latency", "views"});
  for (bool trusted : {true, false}) {
    ExperimentConfig cfg = Base();
    cfg.protocol = ProtocolKind::kHotStuff1Slotted;
    cfg.trusted_leader_enabled = trusted;
    cfg.delta = Millis(2);  // make the 3-delta wait visible
    const ExperimentResult res = RunPaperPoint(cfg);
    t.AddRow({trusted ? "fast path ON" : "fast path OFF",
              FormatTps(res.throughput_tps), FormatMs(res.avg_latency_ms),
              FormatCount(res.views)});
  }
  t.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::SpeculationAblation();
  hotstuff1::StreamliningAblation();
  hotstuff1::SlotCountAblation();
  hotstuff1::TrustedLeaderAblation();
  return 0;
}

// Saturation study: throughput and tail latency vs offered load, under each
// open-loop arrival process (Poisson, bursty, diurnal, flash crowd), for
// HotStuff vs HotStuff-2 vs HotStuff-1.
//
// Unlike the paper figures (closed-loop, self-regulating load), these sweeps
// drive the committee with an open-loop generator over a 1.2M-strong lazy
// client population, so offered load is an independent axis: throughput
// tracks the load up to the service knee (~98k txn/s at n=16, batch=100 —
// the batch-per-view pipeline limit shared by all three protocols) and
// flattens past it while the backlog column grows. Below the knee the
// protocols separate on latency — HotStuff-1's single-phase speculative
// response shows up in p50/p99/p999.

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec FigSaturation() {
  ScenarioSpec spec;
  spec.name = "fig_saturation";
  spec.title = "Saturation: open-loop offered load to the knee (n=16, batch=100)";
  spec.description =
      "throughput + p50/p99/p999 vs offered load per arrival process";
  spec.table_name = "arrival";
  spec.row_name = "load_tps";

  spec.base.n = 16;
  spec.base.batch_size = 100;
  spec.base.duration = BenchDuration(800);
  spec.base.warmup = Millis(200);
  spec.base.view_timer = Millis(10);
  spec.base.delta = Millis(1);
  spec.base.seed = 2025;
  // Million-client open-loop population, sharded 8 ways. Client records are
  // lazy (see client/client_pool.h): the population is a label space, so
  // steady-state heap usage is identical to a 10k-client run —
  // tests/client_alloc_test.cc pins that.
  spec.base.num_clients = 1'200'000;
  spec.base.client_groups = 8;
  spec.base.arrival.kind = ArrivalKind::kPoisson;

  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                           ArrivalKind::kDiurnal, ArrivalKind::kFlashCrowd}) {
    spec.tables.push_back({ArrivalKindName(kind), [kind](ExperimentConfig& c) {
                             c.arrival.kind = kind;
                           }});
  }
  // Row loads straddle the measured n=16 knee (~98k txn/s): three points
  // below it where latency separates the protocols, one at it, one past it
  // where throughput flattens and backlog diverges.
  for (double load : {25'000.0, 50'000.0, 75'000.0, 100'000.0, 150'000.0}) {
    spec.rows.push_back({FormatCount(static_cast<uint64_t>(load)),
                         [load](ExperimentConfig& c) {
                           c.arrival.offered_load_tps = load;
                         }});
  }
  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
                            ProtocolKind::kHotStuff1}) {
    spec.cols.push_back({ProtocolName(kind), [kind](ExperimentConfig& c) {
                           c.protocol = kind;
                         }});
  }
  spec.metrics = {ThroughputMetric(), P50LatencyMetric(), P99LatencyMetric(),
                  P999LatencyMetric(),
                  CountMetric("backlog", [](const ExperimentResult& r) {
                    return static_cast<double>(r.backlog);
                  })};
  // Open loop measures one operating point per config; the paper-point
  // saturated/light split only makes sense for closed-loop figures.
  spec.mode = RunMode::kSingle;

  // CI smoke: shrink the window and compress every arrival process's time
  // structure into it, so even the 120ms run exercises the flash ramp and a
  // full diurnal period (the default smoke would leave flash_start at 400ms,
  // past the end of the run).
  spec.smoke = [](ExperimentConfig& cfg) {
    cfg.duration = std::min<SimTime>(cfg.duration, Millis(120));
    cfg.warmup = std::min<SimTime>(cfg.warmup, Millis(40));
    cfg.arrival.diurnal_period = Millis(60);
    cfg.arrival.flash_start = Millis(50);
    cfg.arrival.flash_rise = Millis(10);
    cfg.arrival.flash_decay = Millis(30);
  };
  return spec;
}

HS1_REGISTER_SCENARIO(FigSaturation);

}  // namespace
}  // namespace hotstuff1

// Committee reconfiguration scenario: churn profiles (shrink, grow, rotation,
// churn under a healing partition) across the paper's protocol column, all on
// a fixed 16-node allocation. Every row must keep committing through its
// membership changes with both oracles silent, and the whole grid is
// byte-identical across --jobs / --sim-jobs / --lookahead — CI diffs the CSV
// to pin that down.

#include "common/logging.h"
#include "consensus/committee.h"
#include "runtime/adversary.h"
#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

void SetReconfig(ExperimentConfig& c, const char* schedule) {
  std::string error;
  const bool ok = ParseCommitteeSchedule(schedule, &c.reconfig, &error);
  HS1_CHECK(ok) << "fig_reconfig schedule '" << schedule << "': " << error;
}

ScenarioSpec FigReconfig() {
  ScenarioSpec spec;
  spec.name = "fig_reconfig";
  spec.title = "Epoch-based committee reconfiguration (n=16 allocation)";
  spec.description =
      "churn profiles x protocol; every row must commit through its membership "
      "changes with both oracles silent";
  spec.row_name = "churn";

  spec.base.n = 16;  // f = 5 -> 6 views per epoch
  spec.base.batch_size = 10;
  spec.base.num_clients = 20;
  spec.base.view_timer = Millis(10);
  spec.base.duration = Millis(150);
  spec.base.warmup = Millis(40);
  spec.base.seed = 13;
  spec.base.oracle_enabled = true;

  spec.rows = {
      {"static", [](ExperimentConfig&) {}},
      // Churn epochs sit low (views 6 and 12 of the f+1=6-view epochs): the
      // slotted protocol advances views on the 10ms timer, so only the first
      // ~15 views of the 150ms window exist for every protocol column.
      {"shrink", [](ExperimentConfig& c) { SetReconfig(c, "0:0-15;2:0-11"); }},
      {"grow", [](ExperimentConfig& c) { SetReconfig(c, "0:0-11;2:0-15"); }},
      {"rotate",
       [](ExperimentConfig& c) { SetReconfig(c, "0:0-15;1:4-15;2:0-11"); }},
      {"partition-heal",
       [](ExperimentConfig& c) {
         // The committee shrinks while a 8|8 partition splits the allocation
         // for one strategy epoch (20ms..40ms), then heals. Bounded entry ->
         // finite derived GST, so the liveness monitor arms.
         SetReconfig(c, "0:0-15;2:0-11");
         std::string error;
         const bool ok = ParseStrategySchedule(
             "1:partition=0-7|8-15;epoch=20000", &c.strategy, &error);
         HS1_CHECK(ok) << error;
         c.liveness_grace = Millis(60);
       }},
  };
  spec.cols = PaperProtocolAxis();
  spec.mode = RunMode::kSingle;
  spec.metrics = {ThroughputMetric(),
                  CountMetric("commits",
                              [](const ExperimentResult& r) {
                                return static_cast<double>(r.committed_txns);
                              }),
                  CountMetric("committee_changes",
                              [](const ExperimentResult& r) {
                                return static_cast<double>(r.committee_changes);
                              }),
                  CountMetric("final_n",
                              [](const ExperimentResult& r) {
                                return static_cast<double>(r.final_committee_n);
                              })};
  // The windows are already CI-sized and the epoch arithmetic depends on
  // them; the default smoke shrink would land every run before epoch 1.
  spec.smoke = [](ExperimentConfig&) {};

  spec.point_judge = [](const SweepPoint& p, const ExperimentResult& r) {
    if (!r.safety_ok || r.oracle_violations != 0 || r.liveness_violations != 0) {
      return false;
    }
    if (r.committed_txns == 0) return false;
    // Rows with a multi-step schedule must actually reach their churn.
    if (p.config.reconfig.steps.size() > 1 && r.committee_changes == 0) {
      return false;
    }
    return true;
  };
  return spec;
}

HS1_REGISTER_SCENARIO(FigReconfig);

}  // namespace
}  // namespace hotstuff1

// Figure 8 (a, b): throughput and client latency vs number of replicas
// (n = 4..64, LAN, YCSB, batch 100).
//
// Expected shape (paper): all streamlined protocols share throughput, which
// decays ~O(n); HotStuff-1 (with and without slotting) has the lowest
// latency - roughly 40% below HotStuff and 25% below HotStuff-2.

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig8Scalability() {
  ScenarioSpec spec;
  spec.name = "fig8_scalability";
  spec.title = "Figure 8(a,b): Scalability (LAN, YCSB, batch=100)";
  spec.description = "throughput and client latency vs number of replicas";
  spec.row_name = "n";

  spec.base.batch_size = 100;
  spec.base.duration = BenchDuration(800);
  spec.base.warmup = Millis(200);
  spec.base.view_timer = Millis(10);
  spec.base.delta = Millis(1);
  spec.base.seed = 2024;

  for (uint32_t n : {4u, 16u, 32u, 64u}) {
    spec.rows.push_back(
        {std::to_string(n), [n](ExperimentConfig& c) { c.n = n; }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  return spec;
}

HS1_REGISTER_SCENARIO(Fig8Scalability);

}  // namespace
}  // namespace hotstuff1

// Figure 9 (e, j): two-region geographical deployment. n = 31 replicas split
// between North Virginia and London (k in London), clients in North
// Virginia.
//
// Expected shape (paper): with k <= f or k >= n-f, a leader can form
// certificates within its own region; in between, every certificate needs a
// trans-atlantic vote, so throughput drops and latency rises. k <= f
// outperforms k >= n-f because most leaders are co-located with the
// clients. HotStuff-1 with slotting wins at the extremes.

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig9GeoRegions() {
  ScenarioSpec spec;
  spec.name = "fig9_georegions";
  spec.title = "Figure 9(e,j): Geographical Deployment (n=31)";
  spec.description = "two regions, k replicas in London, clients in North Virginia";
  spec.row_name = "k(London)";

  spec.base.n = 31;
  spec.base.batch_size = 100;
  spec.base.client_region = 0;  // North Virginia
  spec.base.delta = Millis(50);
  spec.base.view_timer = Millis(400);
  spec.base.seed = 2024;

  for (uint32_t k : {0u, 10u, 11u, 20u, 21u, 31u}) {
    spec.rows.push_back({std::to_string(k), [k](ExperimentConfig& c) {
      c.topology = sim::Topology::TwoRegion(c.n, k);
      // k <= f and k >= n-f run at intra-region speed (short window is
      // plenty); the trans-atlantic regime needs enough ~76ms views.
      const bool slow_regime = k > 10 && k < 21;
      c.duration = slow_regime ? Seconds(6) : BenchDuration(1500);
      c.warmup = slow_regime ? Seconds(1.5) : Millis(400);
    }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  spec.smoke = [](ExperimentConfig& c) {
    c.duration = Millis(800);
    c.warmup = Millis(200);
  };
  return spec;
}

HS1_REGISTER_SCENARIO(Fig9GeoRegions);

}  // namespace
}  // namespace hotstuff1

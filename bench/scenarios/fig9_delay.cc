// Figure 9 (a-d, f-i): impact of injected message delays. n = 31 (f = 10);
// delays delta in {1, 5, 50, 500} ms injected on traffic to/from k impacted
// replicas, k in {0, 10, 11, 20, 21, 31}.
//
// Expected shape (paper): the largest cliff appears between k = f (10) and
// k = f+1 (11), where every certificate needs an impacted signer; between
// k = n-f-1 (20) and k = n-f (21), HotStuff/HotStuff-2 client latency jumps
// again (clients can get at most f fast responses) while HotStuff-1's n-f
// quorum was already dominated by slow replicas - it only rises moderately.

#include <algorithm>
#include <cstdio>

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig9Delay() {
  ScenarioSpec spec;
  spec.name = "fig9_delay";
  spec.title = "Figure 9(a-d,f-i): Injected Message Delays (n=31)";
  spec.description = "throughput and client latency vs impacted replica count";
  spec.table_name = "delay";
  spec.row_name = "k";

  spec.base.n = 31;
  spec.base.batch_size = 100;
  spec.base.seed = 2024;

  for (double delay_ms : {1.0, 5.0, 50.0, 500.0}) {
    char label[16];
    std::snprintf(label, sizeof(label), "%gms", delay_ms);
    spec.tables.push_back({label, [delay_ms](ExperimentConfig& c) {
                             c.inject_delay = Millis(delay_ms);
                           }});
  }
  for (uint32_t k : {0u, 10u, 11u, 20u, 21u, 31u}) {
    spec.rows.push_back({std::to_string(k), [k](ExperimentConfig& c) {
      c.num_impaired = k;
      // The view timer must cover a delayed proposal round trip once
      // impacted replicas sit inside every quorum.
      c.delta = Millis(1) + c.inject_delay;
      c.view_timer = Millis(10) + 4 * c.inject_delay;
      // With k <= f the quorum excludes impacted replicas and views run at
      // network speed, so a short window already covers thousands of views;
      // only the slow regime (k > f) needs a window scaled to the delayed
      // round trip.
      const bool slow_regime = k > 10;
      c.duration = slow_regime
                       ? std::max<SimTime>(BenchDuration(1200),
                                           14 * (2 * c.inject_delay + Millis(20)))
                       : BenchDuration(1200);
      c.warmup = slow_regime
                     ? std::max<SimTime>(Millis(300),
                                         3 * (2 * c.inject_delay + Millis(20)))
                     : Millis(300);
    }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  // Keep a couple of delayed round trips in the smoke window even at the
  // 500ms table point.
  spec.smoke = [](ExperimentConfig& c) {
    const SimTime round_trip = 2 * c.inject_delay + Millis(20);
    c.duration = std::min<SimTime>(c.duration, std::max(Millis(120), 4 * round_trip));
    c.warmup = std::min<SimTime>(c.warmup, round_trip);
  };
  return spec;
}

HS1_REGISTER_SCENARIO(Fig9Delay);

}  // namespace
}  // namespace hotstuff1

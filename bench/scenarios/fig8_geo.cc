// Figure 8 (e-h): geo-scale deployment, n = 32 replicas uniformly spread
// over 2..5 regions (North Virginia, Hong Kong, London, Sao Paulo, Zurich),
// clients in North Virginia, YCSB and TPC-C.
//
// Expected shape (paper): inter-regional RTTs dominate; throughput drops by
// up to ~59% and latency grows by up to ~159% as regions increase; both
// workloads show the same trend; HotStuff-1 keeps the lowest latency at
// unchanged throughput.

#include <algorithm>

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig8Geo() {
  ScenarioSpec spec;
  spec.name = "fig8_geo";
  spec.title = "Figure 8(e-h): Geo-Scale (n=32)";
  spec.description = "throughput and client latency vs region count, YCSB and TPC-C";
  spec.table_name = "workload";
  spec.row_name = "regions";

  spec.base.n = 32;
  spec.base.batch_size = 100;
  spec.base.client_region = sim::kNorthVirginia;
  spec.base.duration = std::max<SimTime>(BenchDuration(1500) * 8, Seconds(10));
  spec.base.warmup = Seconds(2);
  spec.base.view_timer = Millis(1200);
  spec.base.delta = Millis(160);
  spec.base.seed = 2024;

  spec.tables = {
      {"ycsb", [](ExperimentConfig& c) { c.workload = WorkloadKind::kYcsb; }},
      {"tpcc", [](ExperimentConfig& c) { c.workload = WorkloadKind::kTpcc; }}};
  for (uint32_t regions : {2u, 3u, 4u, 5u}) {
    spec.rows.push_back({std::to_string(regions), [regions](ExperimentConfig& c) {
                           c.topology = sim::Topology::Geo(c.n, regions);
                         }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  // Geo view timers are ~1.2s, so the smoke window still has to cover a few
  // complete views to exercise the pipeline at all.
  spec.smoke = [](ExperimentConfig& c) {
    c.duration = Seconds(5);
    c.warmup = Seconds(1.5);
  };
  return spec;
}

HS1_REGISTER_SCENARIO(Fig8Geo);

}  // namespace
}  // namespace hotstuff1

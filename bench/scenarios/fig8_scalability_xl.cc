// Figure 8 extension: scalability beyond the paper's n = 64 endpoint
// (n = 64..512; LAN, YCSB, batch 100), exercising the multi-word
// ReplicaSet quorum plumbing. n = 96 is the first committee whose n-f
// quorum (65) no longer fits a single 64-bit vote mask; n = 128 matches the
// committee sizes reported by the HotStuff and Narwhal/Tusk evaluations;
// n = 256/512 reach the blockchain-scale committees where the O(n)
// multisig-vector certificates dominate bandwidth (run with
// --cert-scheme=aggregate to see the O(1) alternative — fig_cert_size
// sweeps the comparison directly).
//
// Expected shape: throughput keeps decaying ~O(n) past the paper's range
// (steeper once vector certificates make proposals O(n)-sized, so the
// leader's egress is O(n^2) bytes per view); HotStuff-1 retains its latency
// lead because speculation still saves the same number of half-phases
// regardless of committee size.

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig8ScalabilityXl() {
  ScenarioSpec spec;
  spec.name = "fig8_scalability_xl";
  spec.title = "Figure 8 XL: Scalability past one vote word (LAN, YCSB, batch=100)";
  spec.description = "throughput and client latency at n = 64..512 (multi-word quorums)";
  spec.row_name = "n";

  spec.base.batch_size = 100;
  spec.base.duration = BenchDuration(600);
  spec.base.warmup = Millis(200);
  spec.base.view_timer = Millis(10);
  spec.base.delta = Millis(1);
  spec.base.seed = 2024;

  for (uint32_t n : {64u, 96u, 128u, 256u, 512u}) {
    spec.rows.push_back(
        {std::to_string(n), [n](ExperimentConfig& c) {
           c.n = n;
           // Past n=128 the leader's per-view work outgrows the paper's LAN
           // timers: it verifies ~n-f shares and serializes n proposals that
           // each carry an O(n) vector certificate. Scale the synchrony
           // bound with n so the measurement stays timeout-free and shows
           // bandwidth/CPU decay, not view-change churn.
           if (n > 128) {
             c.delta = Millis(1) + Micros(16 * n);
             c.view_timer = Millis(10) + 4 * c.delta;
           }
         }});
  }
  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
                            ProtocolKind::kHotStuff1}) {
    spec.cols.push_back(
        {ProtocolName(kind), [kind](ExperimentConfig& c) { c.protocol = kind; }});
  }
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  // CI pays for the endpoints only (n = 64 and the n = 512 headline point);
  // a short window is enough to prove >1-word quorums form and commit, but
  // the n = 512 epoch-0 sync plus first commits need more room than the
  // default 120 ms smoke window (its view timer alone is ~43 ms).
  spec.smoke = [](ExperimentConfig& c) {
    c.duration = Millis(160);
    c.warmup = Millis(60);
    c.num_clients = 2 * c.batch_size;
  };
  return spec;
}

HS1_REGISTER_SCENARIO(Fig8ScalabilityXl);

}  // namespace
}  // namespace hotstuff1

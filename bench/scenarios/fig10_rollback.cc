// Figure 10 (g, h): rollback attacks. n = 32, batch 100; each faulty leader
// (0..f = 10) conceals+equivocates so that up to f correct replicas
// speculatively execute a block the winning branch abandons, forcing
// local-ledger rollbacks (§7.3).
//
// Expected shape (paper): throughput and latency of HotStuff-1 (without
// slotting) degrade with the number of faulty leaders; HotStuff-1 with
// slotting is minimally affected (a faulty leader can only force rollbacks
// of the preceding view's final slot).

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig10Rollback() {
  ScenarioSpec spec;
  spec.name = "fig10_rollback";
  spec.title = "Figure 10(g,h): Rollback Attacks (n=32)";
  spec.description = "throughput, latency and rollback events vs faulty leaders";
  spec.row_name = "faulty leaders";

  spec.base.n = 32;
  spec.base.batch_size = 100;
  spec.base.fault = Fault::kRollbackAttack;
  spec.base.rollback_victims = 10;  // up to f correct replicas per attack
  spec.base.view_timer = Millis(10);
  spec.base.delta = Millis(1);
  spec.base.duration = BenchDuration(1500);
  spec.base.warmup = Millis(300);
  spec.base.seed = 2024;
  // Safety valve for the long-running fault sweeps: a full point processes
  // ~1M events, so 50M only trips on runaway storms (e.g. a timeout config
  // gone wrong). Truncation is reported via the event_cap_hit column and a
  // table warning, never silently.
  spec.base.event_cap = 50'000'000;

  for (uint32_t faulty : {0u, 1u, 4u, 7u, 10u}) {
    spec.rows.push_back({std::to_string(faulty),
                         [faulty](ExperimentConfig& c) { c.num_faulty = faulty; }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric(),
                  CountMetric("rollback_events", [](const ExperimentResult& r) {
                    return static_cast<double>(r.rollback_events);
                  })};
  return spec;
}

HS1_REGISTER_SCENARIO(Fig10Rollback);

}  // namespace
}  // namespace hotstuff1

// Micro-benchmarks for the substrates: hashing, signing, certificate
// verification, block construction, KV execution/undo, ledger speculation,
// the event queue, and workload generation. A custom (non-sweep) scenario:
// each op is timed wall-clock with a self-calibrating iteration loop, so the
// harness needs no external benchmark dependency.
//
// Results flow through the standard sweep emitters (one synthetic point per
// operation) so micro shares the flat CSV/JSON point schema with every other
// scenario. The measured time rides in the wall_ms field behind a
// deterministic=false metric — exactly the wall-clock contract par_speedup
// uses — so tables show ns/op while the machine-readable bytes stay
// identical across runs and the CI CSV-diff gates can cover the scenario.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "consensus/certificate.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "ledger/ledger.h"
#include "runtime/report.h"
#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "sim/simulator.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

// Times `op` (which runs `batch` inner iterations per call) until the time
// budget is spent; returns mean nanoseconds per inner iteration.
template <typename Op>
double TimeNsPerOp(double budget_ms, uint64_t batch, Op&& op) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::microseconds(
                                    static_cast<int64_t>(budget_ms * 1000));
  uint64_t iters = 0;
  do {
    op();
    iters += batch;
  } while (Clock::now() < deadline);
  const double ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count();
  return ns / static_cast<double>(iters);
}

// Like TimeNsPerOp, but `op` returns the nanoseconds of its own timed
// section, excluding per-iteration setup (the PauseTiming idiom).
template <typename Op>
double TimeNsTimedSection(double budget_ms, Op&& op) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(budget_ms * 1000));
  double total_ns = 0;
  uint64_t iters = 0;
  do {
    total_ns += op();
    ++iters;
  } while (Clock::now() < deadline);
  return total_ns / static_cast<double>(iters);
}

std::string FormatNs(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

// Keeps results observable so the compiler cannot elide the measured op.
volatile uint64_t g_sink;
template <typename T>
void Sink(const T& v) {
  g_sink += *reinterpret_cast<const unsigned char*>(&v);
}

// Spec used purely for emission: one synthetic sweep point per operation,
// with the measured ns/op carried in ExperimentResult::wall_ms under a
// nondeterministic metric (excluded from CSV/JSON by contract).
ScenarioSpec MicroEmitSpec() {
  ScenarioSpec spec;
  spec.name = "micro";
  spec.title = "Micro-benchmarks: substrate operation costs";
  spec.row_name = "operation";
  spec.metrics = {{"ns_per_op", [](const ExperimentResult& r) { return r.wall_ms; },
                   FormatNs, /*deterministic=*/false}};
  return spec;
}

int RunMicro(const ScenarioRunOptions& options) {
  const double budget_ms = options.smoke ? 5.0 : 100.0;
  SweepOutcome outcome;
  static const ScenarioSpec emit_spec = MicroEmitSpec();
  outcome.spec = &emit_spec;
  outcome.synthetic = true;  // no experiments ran: no fabricated diagnostics
  auto add = [&](const std::string& name, double ns) {
    SweepPoint p;
    p.index = outcome.points.size();
    p.row_label = name;
    outcome.points.push_back(std::move(p));
    ExperimentResult r;
    r.wall_ms = ns;
    outcome.results.push_back(std::move(r));
  };

  for (size_t size : {size_t{64}, size_t{1024}, size_t{65536}}) {
    const std::string data(size, 'x');
    add("sha256/" + std::to_string(size),
        TimeNsPerOp(budget_ms, 1, [&] { Sink(Sha256::Digest(data)); }));
  }

  {
    KeyRegistry registry(4, 1);
    Signer signer(&registry, 0);
    const Hash256 digest = Sha256::Digest("payload");
    add("sign+verify", TimeNsPerOp(budget_ms, 1, [&] {
          const Signature sig = signer.Sign(SignDomain::kProposeVote, digest);
          Sink(registry.Verify(sig, SignDomain::kProposeVote, digest));
        }));
  }

  for (uint32_t n : {4u, 32u, 64u}) {
    const uint32_t quorum = n - (n - 1) / 3;
    KeyRegistry registry(n, 1);
    const Hash256 h = Sha256::Digest("block");
    VoteAccumulator acc(CertKind::kPrepare, 5, BlockId{5, 1}, h, quorum);
    for (uint32_t r = 0; r < quorum; ++r) {
      acc.Add(Signer(&registry, r)
                  .Sign(SignDomain::kProposeVote,
                        VoteDigest(CertKind::kPrepare, 5, BlockId{5, 1}, h)));
    }
    const Certificate cert = acc.Build();
    add("certificate_verify/n=" + std::to_string(n),
        TimeNsPerOp(budget_ms, 1,
                    [&] { Sink(cert.Verify(registry, quorum).ok()); }));
  }

  for (int txn_count : {100, 1000}) {
    YcsbWorkload workload;
    Rng rng(3);
    std::vector<Transaction> txns;
    for (int i = 0; i < txn_count; ++i) {
      Transaction t = workload.Generate(&rng);
      t.id = static_cast<uint64_t>(i);
      txns.push_back(std::move(t));
    }
    add("block_construction/" + std::to_string(txn_count),
        TimeNsPerOp(budget_ms, 1, [&] {
          auto block = std::make_shared<Block>(BlockId{1, 1},
                                               Block::Genesis()->hash(), 1, 0, txns);
          Sink(block->hash());
        }));
  }

  {
    KvState kv;
    YcsbWorkload workload;
    Rng rng(4);
    const Transaction txn = workload.Generate(&rng);
    add("kv_apply_undo", TimeNsPerOp(budget_ms, 1, [&] {
          KvState::UndoLog undo;
          Sink(kv.ApplyTxn(txn, &undo));
          kv.Undo(undo);
        }));
  }

  {
    YcsbWorkload workload;
    Rng rng(5);
    std::vector<Transaction> txns;
    for (int i = 0; i < 100; ++i) {
      Transaction t = workload.Generate(&rng);
      t.id = static_cast<uint64_t>(i);
      txns.push_back(std::move(t));
    }
    // Store/ledger/block construction stays outside the timed section so the
    // row measures only Speculate + CommitChain.
    add("ledger_speculate_commit/100txn", TimeNsTimedSection(budget_ms, [&] {
          BlockStore store;
          Ledger ledger(&store, KvState());
          auto block = std::make_shared<Block>(BlockId{1, 1}, store.genesis()->hash(),
                                               1, 0, txns);
          store.Put(block);
          const auto start = std::chrono::steady_clock::now();
          ledger.Speculate(block);
          Sink(ledger.CommitChain(block));
          return static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }));
  }

  add("event_queue/1k_events", TimeNsPerOp(budget_ms, 1000, [] {
        sim::Simulator sim;
        uint64_t count = 0;
        for (int i = 0; i < 1000; ++i) {
          sim.At((i * 37) % 500, [&count]() { ++count; });
        }
        sim.Run();
        Sink(count);
      }));

  {
    YcsbWorkload workload;
    Rng rng(6);
    add("ycsb_generate",
        TimeNsPerOp(budget_ms, 1, [&] { Sink(workload.Generate(&rng)); }));
  }
  {
    TpccConfig cfg;
    cfg.new_order_fraction = 1.0;
    TpccWorkload workload(cfg);
    Rng rng(7);
    add("tpcc_new_order",
        TimeNsPerOp(budget_ms, 1, [&] { Sink(workload.Generate(&rng)); }));
  }

  std::ostream& os = options.out ? *options.out : std::cout;
  switch (options.format) {
    case ReportFormat::kTable: EmitTables(outcome, os); break;
    case ReportFormat::kCsv: EmitCsv(outcome, os); break;
    case ReportFormat::kJson: EmitJson(outcome, os); break;
  }
  return 0;
}

ScenarioSpec Micro() {
  ScenarioSpec spec;
  spec.name = "micro";
  spec.title = "Micro-benchmarks";
  spec.description =
      "wall-clock cost of the substrate operations (custom run, flat point schema)";
  spec.custom_run = RunMicro;
  return spec;
}

HS1_REGISTER_SCENARIO(Micro);

}  // namespace
}  // namespace hotstuff1

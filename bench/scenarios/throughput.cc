// Event-loop throughput scenario: the repo's perf baseline. Four rows stress
// the scheduling hot path from different angles:
//
//   timer_ring/64     64 self-rescheduling timers — pure event-loop cost
//                     (queue push/pop + callback storage), no protocol work.
//   timer_ring/4096   4096 timers — clustered timestamps, deep queue.
//   broadcast/n64     a 64-node network broadcast storm — delivery events
//                     plus per-message allocation churn.
//   consensus/hs1_n32 a fixed HotStuff-1 committee — the end-to-end mix
//                     (hashing/signing bound in part, so it moves less than
//                     the event-loop rows when the loop gets faster).
//
// Each row reports a *deterministic* event count (byte-identical across
// runs, machines, and --jobs/--sim-jobs/--lookahead — CI diffs it) and
// *nondeterministic* events/s + wall_ms (table-only, behind
// MetricSpec::deterministic=false). With --repeat=K every row runs K times:
// the event counts must agree exactly (checked), wall-clock metrics report
// the median, and the table gains a p50/p99/p999 quantile summary.
//
// --bench-json=PATH writes the machine-readable ledger (schema
// hs1-bench-v1) that tools/bench_compare.py diffs against the committed
// BENCH_<date>.json. Durations are fixed constants — NOT H1_DURATION_MS —
// so ledger event counts are comparable across machines and time.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/experiment.h"
#include "runtime/report.h"
#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "sim/message_pool.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hotstuff1 {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// A self-rescheduling timer. The capture (two pointers + period + shard) is
// deliberately larger than std::function's small-buffer optimization, like
// the network's delivery callbacks — so the row honestly charges whatever
// per-event storage cost the callback representation pays.
struct Timer {
  sim::Simulator* sim;
  uint64_t* fired;
  SimTime period;
  sim::ShardId shard;
  void operator()() {
    ++*fired;
    sim->AfterShard(period, shard, Timer{*this});
  }
};

struct RowResult {
  std::string name;
  uint64_t events = 0;
  std::vector<double> wall_ms;  // one sample per repeat
};

// One measured repeat of a timer ring: `n` timers with coprime-ish periods
// (clustered, colliding timestamps), run for `duration` of virtual time.
uint64_t RunTimerRing(uint32_t n, SimTime duration, uint64_t* fired_out) {
  sim::Simulator sim;
  uint64_t fired = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const SimTime period = 7 + static_cast<SimTime>(i % 13);
    sim.AfterShard(period, /*shard=*/i % 64, Timer{&sim, &fired, period, i % 64});
  }
  sim.RunUntil(duration);
  *fired_out = fired;
  return sim.EventsProcessed();
}

struct BenchMsg : sim::NetMessage {
  size_t WireSize() const override { return 256; }
};

// A broadcast storm: node 0 broadcasts every `period` for `duration`.
struct Broadcaster {
  sim::Simulator* sim;
  sim::Network* net;
  SimTime period;
  void operator()() {
    net->Broadcast(0, sim::MakeMessage<BenchMsg>(), /*include_self=*/false);
    sim->AfterShard(period, 0, Broadcaster{*this});
  }
};

uint64_t RunBroadcast(uint32_t n, SimTime period, SimTime duration,
                      uint64_t* delivered_out) {
  sim::Simulator sim;
  sim::NetworkConfig cfg;
  cfg.default_latency = Millis(0.4);
  sim::Network net(&sim, n, cfg);
  uint64_t delivered = 0;
  for (sim::NodeId i = 1; i < n; ++i) {
    net.SetHandler(i, [&delivered](sim::NodeId, const sim::NetMessagePtr&) {
      ++delivered;
    });
  }
  sim.AfterShard(period, 0, Broadcaster{&sim, &net, period});
  sim.RunUntil(duration);
  *delivered_out = delivered;
  return sim.EventsProcessed();
}

ExperimentConfig ConsensusConfig32() {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 32;
  cfg.batch_size = 100;
  cfg.duration = Millis(400);
  cfg.warmup = Millis(100);
  cfg.seed = 1;
  return cfg;
}

// Spec used purely for emission (micro's synthetic-point pattern): `events`
// is the one deterministic column; throughput and wall ride behind
// nondeterministic metrics so CSV/JSON bytes stay repeat-identical.
ScenarioSpec ThroughputEmitSpec() {
  ScenarioSpec spec;
  spec.name = "throughput";
  spec.title = "Event-loop throughput";
  spec.row_name = "workload";
  spec.metrics = {
      {"events",
       [](const ExperimentResult& r) {
         return static_cast<double>(r.events_processed);
       },
       [](double v) { return FormatCount(static_cast<uint64_t>(v)); },
       /*deterministic=*/true},
      {"events_per_sec",
       [](const ExperimentResult& r) { return r.throughput_tps; }, FormatTps,
       /*deterministic=*/false},
      {"wall_ms", [](const ExperimentResult& r) { return r.wall_ms; }, FormatMs,
       /*deterministic=*/false},
  };
  return spec;
}

int RunThroughput(const ScenarioRunOptions& options) {
  const int repeat = options.repeat < 1 ? 1 : options.repeat;
  // Smoke shrinks virtual durations ~20x: same rows, CI-sized wall time.
  const SimTime scale = options.smoke ? 1 : 20;
  std::vector<RowResult> rows;

  auto measure = [&](const std::string& name, auto&& run) -> bool {
    RowResult row;
    row.name = name;
    for (int rep = 0; rep < repeat; ++rep) {
      const auto start = Clock::now();
      const uint64_t events = run();
      const double ms = ElapsedMs(start);
      if (rep == 0) {
        row.events = events;
      } else if (events != row.events) {
        // The event count is the determinism self-check: a repeat that
        // disagrees means the simulator broke its own contract.
        std::fprintf(stderr,
                     "throughput: nondeterministic event count in %s "
                     "(%llu vs %llu)\n",
                     name.c_str(), static_cast<unsigned long long>(events),
                     static_cast<unsigned long long>(row.events));
        return false;
      }
      row.wall_ms.push_back(ms);
    }
    rows.push_back(std::move(row));
    return true;
  };

  uint64_t sink = 0;
  bool ok = true;
  ok = ok && measure("timer_ring/64", [&] {
         return RunTimerRing(64, Millis(20) * scale, &sink);
       });
  ok = ok && measure("timer_ring/4096", [&] {
         return RunTimerRing(4096, Millis(0.75) * scale, &sink);
       });
  ok = ok && measure("broadcast/n64", [&] {
         return RunBroadcast(64, /*period=*/50, Millis(25) * scale, &sink);
       });
  ok = ok && measure("consensus/hs1_n32", [&] {
         ExperimentConfig cfg = ConsensusConfig32();
         if (options.smoke) {
           cfg.duration = Millis(60);
           cfg.warmup = Millis(20);
         }
         const ExperimentResult res = RunExperiment(cfg);
         return res.events_processed;
       });
  if (!ok) return 1;

  // Synthesize the standard flat point schema: one point per row, median
  // wall-clock (stable under --repeat), events/s derived from the median.
  SweepOutcome outcome;
  static const ScenarioSpec emit_spec = ThroughputEmitSpec();
  outcome.spec = &emit_spec;
  outcome.synthetic = true;
  std::vector<SampleStats> stats;
  for (const RowResult& row : rows) {
    SweepPoint p;
    p.index = outcome.points.size();
    p.row_label = row.name;
    outcome.points.push_back(std::move(p));
    const SampleStats s = ComputeStats(row.wall_ms);
    stats.push_back(s);
    ExperimentResult r;
    r.events_processed = row.events;
    r.wall_ms = s.p50;
    r.throughput_tps =
        s.p50 > 0 ? static_cast<double>(row.events) / (s.p50 / 1000.0) : 0;
    outcome.results.push_back(std::move(r));
  }

  std::ostream& os = options.out ? *options.out : std::cout;
  switch (options.format) {
    case ReportFormat::kTable: {
      EmitTables(outcome, os);
      if (repeat > 1) {
        ReportTable quant("Wall-clock quantiles over " +
                              std::to_string(repeat) + " repeats",
                          {"workload", "p50", "p99", "p999"});
        for (size_t i = 0; i < rows.size(); ++i) {
          quant.AddRow({rows[i].name, FormatMs(stats[i].p50),
                        FormatMs(stats[i].p99), FormatMs(stats[i].p999)});
        }
        quant.Print(os);
      }
      break;
    }
    case ReportFormat::kCsv: EmitCsv(outcome, os); break;
    case ReportFormat::kJson: EmitJson(outcome, os); break;
  }

  if (!options.bench_json.empty()) {
    std::ofstream ledger(options.bench_json);
    if (!ledger) {
      std::fprintf(stderr, "throughput: cannot write --bench-json=%s\n",
                   options.bench_json.c_str());
      return 1;
    }
    ledger << "{\"schema\":\"hs1-bench-v1\",\"scenario\":\"throughput\","
           << "\"mode\":\"" << (options.smoke ? "smoke" : "full") << "\","
           << "\"repeat\":" << repeat << ",\"rows\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      const ExperimentResult& r = outcome.results[i];
      char buf[64];
      ledger << (i == 0 ? "" : ",") << "\n  {\"name\":\""
             << JsonEscape(rows[i].name) << "\",\"events\":" << r.events_processed;
      std::snprintf(buf, sizeof(buf), "%.3f", r.wall_ms);
      ledger << ",\"wall_ms\":" << buf;
      std::snprintf(buf, sizeof(buf), "%.1f", r.throughput_tps);
      ledger << ",\"events_per_sec\":" << buf << "}";
    }
    ledger << "\n]}\n";
  }
  return 0;
}

ScenarioSpec Throughput() {
  ScenarioSpec spec;
  spec.name = "throughput";
  spec.title = "Event-loop throughput";
  spec.description =
      "events/s of the scheduling hot path (perf ledger rows; custom run)";
  spec.custom_run = RunThroughput;
  return spec;
}

HS1_REGISTER_SCENARIO(Throughput);

}  // namespace
}  // namespace hotstuff1

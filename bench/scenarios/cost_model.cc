// Cost-model sensitivity: the virtual CPU axes of ConsensusConfig::costs
// that no other scenario sweeps. Rows vary the crypto costs (sign_us /
// verify_us together — fast hardware, the paper's calibration, and a 4x
// slower signer), tables vary per-transaction execution cost (the paper's
// 0.5us YCSB calibration vs a 10x heavier state machine).
//
// Expected shape: crypto cost hits the leader-bound protocols hardest (the
// leader verifies n-1 shares per certificate), so throughput at the slow
// crypto point decays with n-f; execution cost shifts every protocol down by
// about batch x per_txn_exec_us per block but preserves the latency ordering,
// since speculation saves half-phases, not execution time.

#include <cstdio>

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec CostModel() {
  ScenarioSpec spec;
  spec.name = "cost_model";
  spec.title = "Cost model sensitivity (n=32, LAN, YCSB, batch=100)";
  spec.description = "throughput and latency vs sign/verify and per-txn exec costs";
  spec.table_name = "exec_us";
  spec.row_name = "sign/verify_us";

  spec.base.n = 32;
  spec.base.batch_size = 100;
  spec.base.duration = BenchDuration(600);
  spec.base.warmup = Millis(200);
  spec.base.seed = 2024;

  for (double exec_us : {0.5, 5.0}) {
    char label[16];
    std::snprintf(label, sizeof(label), "%g", exec_us);
    spec.tables.push_back({label, [exec_us](ExperimentConfig& c) {
                             c.costs.per_txn_exec_us = exec_us;
                           }});
  }
  struct Crypto {
    SimTime sign_us;
    SimTime verify_us;
  };
  for (const Crypto crypto : {Crypto{3, 4}, Crypto{12, 15}, Crypto{48, 60}}) {
    char label[16];
    std::snprintf(label, sizeof(label), "%lld/%lld",
                  static_cast<long long>(crypto.sign_us),
                  static_cast<long long>(crypto.verify_us));
    spec.rows.push_back({label, [crypto](ExperimentConfig& c) {
      c.costs.sign_us = crypto.sign_us;
      c.costs.verify_us = crypto.verify_us;
      // Slow crypto stretches every protocol step (a leader verifies ~n-f
      // shares per certificate); keep Delta and the view timer above the
      // slowed round trip so measurements are not dominated by timeouts.
      c.delta = Millis(1) + Micros(40 * crypto.verify_us);
      c.view_timer = Millis(10) + 4 * c.delta;
    }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  return spec;
}

HS1_REGISTER_SCENARIO(CostModel);

}  // namespace
}  // namespace hotstuff1

// Cost-model sensitivity: the virtual CPU axes of ConsensusConfig::costs
// that no other scenario sweeps. The table axis is two-dimensional —
// per-transaction execution cost (the paper's 0.5us YCSB calibration vs a
// 10x heavier state machine) x crypto shape ("sym" sweeps sign and verify
// together, ECDSA-style; "bls" is the asymmetric regime of aggregate
// schemes: expensive signing, cheap verification). Each crypto shape also
// carries its matching authenticator *size* model (crypto/authenticator.h):
// "sym" ships the §7 multisig vector (O(n) certificate bytes), "bls" the
// aggregate encoding (O(1) + signer bitmap) — so the time and byte costs of
// a regime move together, as they do in real systems. Rows scale the crypto
// base costs by 1x/4x/16x, so each table shows how throughput decays as its
// crypto regime slows down.
//
// Expected shape: crypto cost hits the leader-bound protocols hardest (the
// leader verifies n-1 shares per certificate), so under "sym" throughput at
// the slow point decays with n-f; under "bls" the verify side stays cheap
// and the decay flattens — the certificate-verification bottleneck, not raw
// signing, is what separates the protocols. Execution cost shifts every
// protocol down by about batch x per_txn_exec_us per block but preserves
// the latency ordering, since speculation saves half-phases, not execution
// time.

#include <cstdio>

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec CostModel() {
  ScenarioSpec spec;
  spec.name = "cost_model";
  spec.title = "Cost model sensitivity (n=32, LAN, YCSB, batch=100)";
  spec.description =
      "throughput and latency vs exec cost x crypto shape (sym / BLS-asymmetric)";
  spec.table_name = "exec_us/crypto";
  spec.row_name = "crypto_scale";

  spec.base.n = 32;
  spec.base.batch_size = 100;
  spec.base.duration = BenchDuration(600);
  spec.base.warmup = Millis(200);
  spec.base.seed = 2024;

  struct Shape {
    const char* label;
    SimTime sign_us;
    SimTime verify_us;
    CertScheme scheme;
  };
  // Base (1x) costs per crypto regime; rows multiply both. The byte model
  // rides along: symmetric crypto means vector certificates, BLS-shaped
  // crypto means aggregate ones.
  constexpr Shape kShapes[] = {{"sym", 3, 4, CertScheme::kMultisigVector},
                               {"bls", 12, 1, CertScheme::kAggregate}};
  for (double exec_us : {0.5, 5.0}) {
    for (const Shape shape : kShapes) {
      char label[32];
      std::snprintf(label, sizeof(label), "%g/%s", exec_us, shape.label);
      spec.tables.push_back({label, [exec_us, shape](ExperimentConfig& c) {
                               c.costs.per_txn_exec_us = exec_us;
                               c.costs.sign_us = shape.sign_us;
                               c.costs.verify_us = shape.verify_us;
                               c.cert_scheme = shape.scheme;
                             }});
    }
  }
  for (const SimTime scale : {SimTime{1}, SimTime{4}, SimTime{16}}) {
    char label[16];
    std::snprintf(label, sizeof(label), "%lldx", static_cast<long long>(scale));
    spec.rows.push_back({label, [scale](ExperimentConfig& c) {
      c.costs.sign_us *= scale;
      c.costs.verify_us *= scale;
      // Slow crypto stretches every protocol step (a leader verifies ~n-f
      // shares per certificate and every replica signs once); keep Delta and
      // the view timer above the slowed round trip so measurements are not
      // dominated by timeouts.
      c.delta = Millis(1) +
                Micros(40 * c.costs.verify_us + 2 * c.costs.sign_us);
      c.view_timer = Millis(10) + 4 * c.delta;
    }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  return spec;
}

HS1_REGISTER_SCENARIO(CostModel);

}  // namespace
}  // namespace hotstuff1

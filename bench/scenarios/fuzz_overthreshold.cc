// Over-threshold adversary fuzz: the positive-control counterpart of the
// clean `fuzz` sweep. Every row derives a tuple from runtime/fuzz.h's
// OverThresholdCaseFromSeed where the fault bound is exceeded (coalition
// f+1..2f crashing or withholding under each of the five protocol cores) or
// a protocol bug is injected (the test_break_safety equivocation commit) —
// and the scenario's point_judge asserts that EXACTLY the expected oracle
// family fires on every row. A sweep where an over-threshold row comes back
// clean fails: it would mean the oracles are vacuous exactly where the
// paper's theorems stop holding.

#include "runtime/fuzz.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec FuzzOverThreshold() {
  ScenarioSpec spec;
  spec.name = "fuzz_overthreshold";
  spec.title = "Over-threshold adversary fuzz (oracles expected to fire)";
  spec.description =
      "coalitions past f per protocol core; every row must trip exactly one oracle family";
  spec.row_name = "case";

  spec.base.oracle_enabled = true;
  for (uint64_t seed = 0; seed < kOverThresholdCases; ++seed) {
    const OverThresholdCase c = OverThresholdCaseFromSeed(seed);
    spec.rows.push_back({c.label, [seed](ExperimentConfig& cfg) {
                           cfg = OverThresholdCaseFromSeed(seed).config;
                         }});
  }
  spec.mode = RunMode::kSingle;
  spec.metrics = {CountMetric("liveness_violations", [](const ExperimentResult& r) {
                    return static_cast<double>(r.liveness_violations);
                  }),
                  CountMetric("oracle_violations", [](const ExperimentResult& r) {
                    return static_cast<double>(r.oracle_violations);
                  })};
  // The tuples are already CI-sized, and shrinking their windows would break
  // the gst/grace arithmetic the liveness expectations rest on.
  spec.smoke = [](ExperimentConfig&) {};

  spec.point_judge = [](const SweepPoint& p, const ExperimentResult& r) {
    // Re-derive the expected family the same way the generator assigned it.
    if (p.config.test_break_safety) {
      return r.oracle_violations > 0 && r.liveness_violations == 0;
    }
    return r.liveness_violations > 0 && r.oracle_violations == 0 &&
           r.safety_ok;
  };
  return spec;
}

HS1_REGISTER_SCENARIO(FuzzOverThreshold);

}  // namespace
}  // namespace hotstuff1

// Intra-experiment parallelism: wall-clock speedup of the deterministic
// parallel event loop on the Figure 8 scalability workload at large n.
//
// The sweep fixes one heavy configuration (n = 64, batch = 1000, LAN, YCSB)
// and varies --sim-jobs (rows) under three regimes (tables):
//
//   2GBps/off   - the paper's default bandwidth, tick-parallel only (PR 2).
//                 Egress serialization staggers a proposal's n-1 copies
//                 across ticks, so same-timestamp batching finds little to
//                 run concurrently: the baseline the lookahead work targets.
//   2GBps/auto  - default bandwidth with the conservative lookahead window
//                 (auto = min cross-shard delivery latency, 400us on this
//                 LAN). Staggered deliveries fall inside one safe horizon
//                 and run concurrently: the regime the roadmap called out.
//   200GBps/off - modern-NIC bandwidth, where all n-1 copies depart within
//                 one virtual microsecond and tick-parallelism alone is
//                 enough (the PR 2 headline configuration, kept comparable).
//
// Every point produces byte-identical *virtual* results — that is the
// executor's contract — so the interesting column is wall_ms, the real time
// each point took. wall_ms is inherently nondeterministic and scales with
// the host's core count (single-core hosts show flat rows); it appears in
// the tables only, never in CSV/JSON, so the machine-readable output stays
// byte-identical across runs and across --sim-jobs / --lookahead.

#include <thread>

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec ParSpeedup() {
  ScenarioSpec spec;
  spec.name = "par_speedup";
  spec.title = "Parallel event loop: fig8 scalability workload (n=64, batch=1000)";
  spec.description =
      "wall-clock speedup vs sim_jobs x lookahead; virtual results identical";
  spec.table_name = "bw/lookahead";
  spec.row_name = "sim_jobs";

  spec.base.n = 64;
  spec.base.batch_size = 1000;
  spec.base.duration = BenchDuration(400);
  spec.base.warmup = Millis(100);
  // Larger batches take longer per view (same scaling as fig8_batching).
  spec.base.delta = Millis(2) + Millis(10);
  spec.base.view_timer = Millis(10) + 4 * spec.base.delta;
  spec.base.seed = 2024;
  spec.base.lookahead = {LookaheadMode::kOff, 0};
  spec.mode = RunMode::kSingle;

  // Table axis ordered so --smoke keeps the endpoints {2GBps/off,
  // 2GBps/auto}: the CI gate then covers the off-vs-auto contrast at the
  // default bandwidth.
  struct Regime {
    const char* label;
    double bandwidth;
    LookaheadMode lookahead;
  };
  for (const Regime regime : {Regime{"2GBps/off", 2000.0, LookaheadMode::kOff},
                              Regime{"200GBps/off", 200000.0, LookaheadMode::kOff},
                              Regime{"2GBps/auto", 2000.0, LookaheadMode::kAuto}}) {
    spec.tables.push_back({regime.label, [regime](ExperimentConfig& c) {
                             c.bandwidth_bytes_per_us = regime.bandwidth;
                             c.lookahead = {regime.lookahead, 0};
                           }});
  }
  for (uint32_t jobs : {1u, 2u, 4u, 8u}) {
    spec.rows.push_back({std::to_string(jobs), [jobs](ExperimentConfig& c) {
                           c.sim_jobs = jobs;
                         }});
  }
  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff1}) {
    spec.cols.push_back(
        {ProtocolName(kind), [kind](ExperimentConfig& c) { c.protocol = kind; }});
  }
  spec.metrics = {ThroughputMetric(), WallClockMetric()};

  // On a single-core host every sim_jobs row runs the same one worker, so
  // flat wall_ms rows are expected, not a regression. Say so under the
  // tables instead of letting the reader chase a phantom slowdown.
  if (std::thread::hardware_concurrency() <= 1) {
    spec.table_note =
        "note: single-core host (hardware_concurrency <= 1) - sim_jobs rows "
        "share one core, wall_ms speedup is not meaningful here";
  }

  // CI-sized: the structure (all sim_jobs x lookahead points agree on
  // virtual results) still holds at a fraction of the cost.
  spec.smoke = [](ExperimentConfig& c) {
    c.n = 16;
    c.batch_size = 200;
    c.delta = Millis(4);
    c.view_timer = Millis(26);
    c.duration = Millis(120);
    c.warmup = Millis(40);
  };
  return spec;
}

HS1_REGISTER_SCENARIO(ParSpeedup);

}  // namespace
}  // namespace hotstuff1

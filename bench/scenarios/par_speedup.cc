// Intra-experiment parallelism: wall-clock speedup of the deterministic
// parallel event loop on the Figure 8 scalability workload at large n.
//
// The sweep fixes one heavy configuration (n = 64, batch = 1000, LAN, YCSB)
// and varies only --sim-jobs. Every row produces byte-identical *virtual*
// results (throughput, latency, commit counts) — that is the executor's
// contract — so the interesting column is wall_ms, the real time each point
// took. wall_ms is inherently nondeterministic and scales with the host's
// core count; on a single-core machine all rows cost the same.
//
// Bandwidth is set to a modern-NIC 200 GB/s so that a proposal's n-1 copies
// leave the leader within one virtual microsecond: all replicas then receive
// — and speculatively execute — the same block at the same virtual tick,
// which is exactly the parallelism the executor harvests. At the default
// 2 GB/s, egress serialization staggers the copies across ticks and the
// parallel section shrinks accordingly (a real effect worth measuring, but
// not the headline).

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec ParSpeedup() {
  ScenarioSpec spec;
  spec.name = "par_speedup";
  spec.title = "Parallel event loop: fig8 scalability workload (n=64, batch=1000)";
  spec.description = "wall-clock speedup vs --sim-jobs; virtual results identical";
  spec.row_name = "sim_jobs";

  spec.base.n = 64;
  spec.base.batch_size = 1000;
  spec.base.duration = BenchDuration(400);
  spec.base.warmup = Millis(100);
  // Larger batches take longer per view (same scaling as fig8_batching).
  spec.base.delta = Millis(2) + Millis(10);
  spec.base.view_timer = Millis(10) + 4 * spec.base.delta;
  spec.base.bandwidth_bytes_per_us = 200000.0;  // 200 GB/s
  spec.base.seed = 2024;
  spec.mode = RunMode::kSingle;

  for (uint32_t jobs : {1u, 2u, 4u, 8u}) {
    spec.rows.push_back({std::to_string(jobs), [jobs](ExperimentConfig& c) {
                           c.sim_jobs = jobs;
                         }});
  }
  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff1}) {
    spec.cols.push_back(
        {ProtocolName(kind), [kind](ExperimentConfig& c) { c.protocol = kind; }});
  }
  spec.metrics = {ThroughputMetric(), WallClockMetric()};

  // CI-sized: the structure (all sim_jobs rows agree on virtual results)
  // still holds at a fraction of the cost.
  spec.smoke = [](ExperimentConfig& c) {
    c.n = 16;
    c.batch_size = 200;
    c.delta = Millis(4);
    c.view_timer = Millis(26);
    c.duration = Millis(120);
    c.warmup = Millis(40);
  };
  return spec;
}

HS1_REGISTER_SCENARIO(ParSpeedup);

}  // namespace
}  // namespace hotstuff1

// Liveness stall scenario: a coalition withholds every outbound message from
// epoch 1 onwards while declaring GST at 30ms. Within the fault bound
// (coalition <= f) the pacemaker's n-f Wish quorum survives and the run must
// stay clean under both oracles; one replica past the bound starves the
// quorum, views stop, and the liveness oracle's end-of-run silence check must
// flag the broken Thm B.8 promise — with the same reproducible
// (config, seed, event#, t) diagnostics as a safety violation.
//
// This scenario *expects* violations on its over-threshold rows, so it
// carries a point_judge: the exit code asserts that exactly the rows past
// the bound fire the liveness oracle (and nothing ever fires the safety
// oracle), instead of the default any-violation-fails rule.

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec FigLiveness() {
  ScenarioSpec spec;
  spec.name = "fig_liveness";
  spec.title = "Liveness under withholding coalitions (n=7, GST=30ms)";
  spec.description =
      "coalition sizes across the f bound; rows past f must trip the liveness oracle";
  spec.row_name = "coalition";

  spec.base.n = 7;  // f = 2
  spec.base.batch_size = 10;
  spec.base.num_clients = 20;
  spec.base.view_timer = Millis(10);
  spec.base.duration = Millis(150);
  spec.base.warmup = Millis(40);
  spec.base.seed = 11;
  spec.base.oracle_enabled = true;
  // Withhold from epoch 1 (= 30ms at the auto epoch length (f+1)*tau) and
  // never stop; the adversary *declares* stabilization at exactly that
  // point. Every row shares the schedule — only the coalition size decides
  // whether the n-f Wish quorum survives it.
  spec.base.strategy.entries.push_back(
      {/*from_epoch=*/1, kEpochForever, kActWithhold, /*delay=*/0});
  spec.base.strategy.declared_gst = Millis(30);
  // The auto silence grace (>= 500ms) is sized for long runs; this window
  // ends at 190ms, so bound it explicitly.
  spec.base.liveness_grace = Millis(60);

  for (uint32_t coalition : {1u, 2u, 3u, 4u}) {
    spec.rows.push_back({std::to_string(coalition), [coalition](ExperimentConfig& c) {
                           c.num_faulty = coalition;
                         }});
  }
  spec.cols = PaperProtocolAxis();
  spec.mode = RunMode::kSingle;
  spec.metrics = {ThroughputMetric(),
                  CountMetric("views", [](const ExperimentResult& r) {
                    return static_cast<double>(r.views);
                  }),
                  CountMetric("liveness_violations", [](const ExperimentResult& r) {
                    return static_cast<double>(r.liveness_violations);
                  })};
  // The windows are already CI-sized and the gst/grace arithmetic depends on
  // them; the default smoke shrink would silence the over-threshold rows.
  spec.smoke = [](ExperimentConfig&) {};

  spec.point_judge = [](const SweepPoint& p, const ExperimentResult& r) {
    const uint32_t f = (p.config.n - 1) / 3;
    if (!r.safety_ok || r.oracle_violations != 0) return false;
    return p.config.num_faulty > f ? r.liveness_violations > 0
                                   : r.liveness_violations == 0;
  };
  return spec;
}

HS1_REGISTER_SCENARIO(FigLiveness);

}  // namespace
}  // namespace hotstuff1

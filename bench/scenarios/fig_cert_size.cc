// Authenticator size crossover: certificate scheme x committee size. The
// paper's implementation note (§7) ships certificates as the literal vector
// of n-f signatures — O(n) bytes — where production systems aggregate into
// one BLS point (O(1) + a signer bitmap) or a threshold signature (O(1)).
// This sweep charges each scheme's real byte shapes through the bandwidth
// model (crypto/authenticator.h) and reports wire bytes per committed
// block, so the crossover is directly visible: the vector column grows
// linearly with n while aggregate/threshold stay flat, and past n≈128 the
// O(n^2) leader egress of vector certificates starts costing throughput.
//
// Columns are the scheme axis, so the --cert-scheme CLI override is
// ignored here (respect-the-axis rule); protocol is fixed to streamlined
// HotStuff-1 — the scheme story is protocol-independent and one core keeps
// the sweep cheap at n = 512. docs/cost-model.md derives the formulas.

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

MetricSpec WireBytesPerBlockMetric() {
  return CountMetric("wire_bytes_per_block", [](const ExperimentResult& r) {
    return r.committed_blocks == 0
               ? 0.0
               : static_cast<double>(r.bytes_sent) /
                     static_cast<double>(r.committed_blocks);
  });
}

ScenarioSpec FigCertSize() {
  ScenarioSpec spec;
  spec.name = "fig_cert_size";
  spec.title =
      "Certificate size: multisig vector vs aggregate vs threshold (HS-1, "
      "LAN, batch=100)";
  spec.description =
      "wire bytes/block and throughput vs cert scheme x n = 32..512";
  spec.row_name = "n";

  spec.base.protocol = ProtocolKind::kHotStuff1;
  spec.base.batch_size = 100;
  spec.base.duration = BenchDuration(400);
  spec.base.warmup = Millis(150);
  spec.base.seed = 2024;
  spec.mode = RunMode::kSingle;

  for (uint32_t n : {32u, 64u, 128u, 256u, 512u}) {
    spec.rows.push_back(
        {std::to_string(n), [n](ExperimentConfig& c) {
           c.n = n;
           // Same timer scaling as fig8_scalability_xl: keep big committees
           // timeout-free so the bytes/block column measures certificate
           // shapes, not view-change churn.
           if (n > 128) {
             c.delta = Millis(1) + Micros(16 * n);
             c.view_timer = Millis(10) + 4 * c.delta;
           }
         }});
  }
  for (CertScheme scheme : {CertScheme::kMultisigVector, CertScheme::kAggregate,
                            CertScheme::kThreshold}) {
    spec.cols.push_back({CertSchemeName(scheme), [scheme](ExperimentConfig& c) {
                           c.cert_scheme = scheme;
                         }});
  }
  spec.metrics = {WireBytesPerBlockMetric(), ThroughputMetric()};
  // Smoke keeps the endpoints (n = 32 and 512) for all three schemes; the
  // n = 512 epoch-0 sync needs more than the default 120 ms window (see
  // fig8_scalability_xl).
  spec.smoke = [](ExperimentConfig& c) {
    c.duration = Millis(160);
    c.warmup = Millis(60);
    c.num_clients = 2 * c.batch_size;
  };
  return spec;
}

HS1_REGISTER_SCENARIO(FigCertSize);

}  // namespace
}  // namespace hotstuff1

// Ablations of the design choices DESIGN.md calls out, flattened into one
// sweep (one row per configuration):
//  1. Speculation on/off - quantifies the two-hop latency saving of early
//     finality confirmations (the paper's core claim).
//  2. Basic vs streamlined HotStuff-1 - the 2x throughput of streamlining.
//  3. Fixed vs adaptive slot counts under slow leaders - why "adaptive".
//  4. Trusted-previous-leader fast path on/off (§6.3).

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Ablation() {
  ScenarioSpec spec;
  spec.name = "ablation";
  spec.title = "Ablations (n=16)";
  spec.description = "speculation, streamlining, slot budget, trusted-leader fast path";
  spec.row_name = "config";

  spec.base.n = 16;
  spec.base.batch_size = 100;
  spec.base.duration = BenchDuration(1200);
  spec.base.warmup = Millis(300);
  spec.base.view_timer = Millis(10);
  spec.base.delta = Millis(1);
  spec.base.seed = 99;

  // 1. Speculation on/off (streamlined HotStuff-1).
  for (bool on : {true, false}) {
    spec.rows.push_back({std::string("speculation ") + (on ? "ON" : "OFF"),
                         [on](ExperimentConfig& c) {
                           c.protocol = ProtocolKind::kHotStuff1;
                           c.speculation_enabled = on;
                         }});
  }
  // 2. Basic vs streamlined.
  for (ProtocolKind kind :
       {ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1}) {
    spec.rows.push_back(
        {ProtocolName(kind), [kind](ExperimentConfig& c) { c.protocol = kind; }});
  }
  // 3. Slot budget under f slow leaders (slotted, timer 20ms).
  for (uint32_t max_slots : {1u, 2u, 4u, 0u}) {  // 0 = adaptive
    const std::string label =
        "slots=" + (max_slots == 0 ? "adaptive" : std::to_string(max_slots)) +
        " (f slow leaders)";
    spec.rows.push_back({label, [max_slots](ExperimentConfig& c) {
                           c.protocol = ProtocolKind::kHotStuff1Slotted;
                           c.max_slots = max_slots;
                           c.view_timer = Millis(20);
                           c.fault = Fault::kSlowLeader;
                           c.num_faulty = 5;  // f = 5 at n = 16
                         }});
  }
  // 4. Trusted-previous-leader fast path on/off (slotted).
  for (bool on : {true, false}) {
    spec.rows.push_back({std::string("trusted-leader fast path ") + (on ? "ON" : "OFF"),
                         [on](ExperimentConfig& c) {
                           c.protocol = ProtocolKind::kHotStuff1Slotted;
                           c.trusted_leader_enabled = on;
                           c.delta = Millis(2);  // make the 3-delta wait visible
                         }});
  }

  spec.cols = {{"value", nullptr}};
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric(), P99LatencyMetric(),
                  CountMetric("views", [](const ExperimentResult& r) {
                    return static_cast<double>(r.views);
                  })};
  return spec;
}

HS1_REGISTER_SCENARIO(Ablation);

}  // namespace
}  // namespace hotstuff1

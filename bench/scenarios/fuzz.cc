// Randomized adversary fuzz: every row derives a whole experiment
// configuration from its seed (protocol x committee size x fault x coalition
// size x batch x bandwidth x lookahead x sim_jobs, see runtime/fuzz.h) and
// runs it with the invariant oracle armed. A clean sweep exits 0; any oracle
// violation fails the scenario with a (config, seed, event) diagnostic, so
// `hs1bench --scenario=fuzz` is a one-command randomized safety audit.
//
// Determinism: each point is a pure function of its seed, the oracle is a
// pure observer, and the scenario randomizes the executor axes itself — the
// CSV is byte-identical across runs and across --jobs / --sim-jobs /
// --lookahead overrides (the respect-the-axis rule ignores the latter two).

#include "runtime/fuzz.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fuzz() {
  ScenarioSpec spec;
  spec.name = "fuzz";
  spec.title = "Randomized adversary fuzz (invariant oracle armed)";
  spec.description =
      "seed-randomized protocol/n/fault/batch tuples checked by the online oracle";
  spec.row_name = "seed";

  spec.base.oracle_enabled = true;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    spec.rows.push_back({std::to_string(seed), [seed](ExperimentConfig& c) {
                           c = FuzzConfigFromSeed(seed);
                         }});
  }
  spec.mode = RunMode::kSingle;
  spec.metrics = {ThroughputMetric()};
  // Smoke keeps the row endpoints and shrinks windows (DefaultSmoke); the
  // full sweep already uses fuzz-sized durations.
  return spec;
}

HS1_REGISTER_SCENARIO(Fuzz);

}  // namespace
}  // namespace hotstuff1

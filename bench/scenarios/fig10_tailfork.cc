// Figure 10 (e, f): tail-forking attack (D7). n = 32, batch 100; faulty
// leaders (0..f = 10) ignore the previous view's certificate and extend the
// certificate of view v-2, orphaning the previous proposal.
//
// Expected shape (paper): throughput drops and latency rises for HotStuff /
// HotStuff-2 / HotStuff-1 (each faulty leader wastes one block and forces
// client retries), while HotStuff-1 with slotting is nearly unaffected: the
// carry-block mechanism means a faulty leader can suppress at most the
// final slot of the previous view (§6.2).

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig10TailFork() {
  ScenarioSpec spec;
  spec.name = "fig10_tailfork";
  spec.title = "Figure 10(e,f): Tail-Forking (n=32)";
  spec.description = "throughput, latency and client resubmissions vs faulty leaders";
  spec.row_name = "faulty leaders";

  spec.base.n = 32;
  spec.base.batch_size = 100;
  spec.base.fault = Fault::kTailFork;
  spec.base.view_timer = Millis(10);
  spec.base.delta = Millis(1);
  spec.base.duration = BenchDuration(1500);
  spec.base.warmup = Millis(300);
  spec.base.seed = 2024;
  // Safety valve for the long-running fault sweeps (see fig10_rollback).
  spec.base.event_cap = 50'000'000;

  for (uint32_t faulty : {0u, 1u, 4u, 7u, 10u}) {
    spec.rows.push_back({std::to_string(faulty),
                         [faulty](ExperimentConfig& c) { c.num_faulty = faulty; }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric(),
                  CountMetric("resubmissions", [](const ExperimentResult& r) {
                    return static_cast<double>(r.resubmissions);
                  })};
  return spec;
}

HS1_REGISTER_SCENARIO(Fig10TailFork);

}  // namespace
}  // namespace hotstuff1

// Figure 8 (c, d): throughput and client latency vs batch size
// (n = 32, LAN, YCSB, batch 100..10000).
//
// Expected shape (paper): throughput grows with batch size as per-view
// overheads amortize, then tapers as replicas become compute-bound around
// batch ~5000; latency grows with batch size throughout.

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig8Batching() {
  ScenarioSpec spec;
  spec.name = "fig8_batching";
  spec.title = "Figure 8(c,d): Batching (n=32, YCSB)";
  spec.description = "throughput and client latency vs batch size";
  spec.row_name = "batch";

  spec.base.n = 32;
  spec.base.duration = BenchDuration(600);
  spec.base.warmup = Millis(300);
  spec.base.seed = 2024;

  for (uint32_t batch : {100u, 1000u, 2000u, 5000u, 10000u}) {
    spec.rows.push_back({std::to_string(batch), [batch](ExperimentConfig& c) {
                           c.batch_size = batch;
                           // Larger batches take longer per view: Δ must cover
                           // a proposal round trip including transfer and
                           // execution (partial synchrony demands Δ above the
                           // true delay bound), and the view timer sits above
                           // the ShareTimer fallback.
                           c.delta = Millis(2) + Millis(batch / 100);
                           c.view_timer = Millis(10) + 4 * c.delta;
                         }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  return spec;
}

HS1_REGISTER_SCENARIO(Fig8Batching);

}  // namespace
}  // namespace hotstuff1

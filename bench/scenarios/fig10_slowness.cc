// Figure 10 (a-d): leader-slowness phenomenon (D6). n = 32, batch 100; slow
// leaders (0..f = 10) delay proposing until late in their view; two timeout
// settings, 10ms and 100ms.
//
// Expected shape (paper): slow leaders degrade throughput and latency in all
// protocols except HotStuff-1 with slotting, where multiple slots per view
// realign incentives (slotted leaders propose promptly). The longer the
// timer, the worse the damage to the non-slotted protocols.

#include <algorithm>

#include "runtime/report.h"
#include "runtime/scenario.h"

namespace hotstuff1 {
namespace {

ScenarioSpec Fig10Slowness() {
  ScenarioSpec spec;
  spec.name = "fig10_slowness";
  spec.title = "Figure 10(a-d): Leader Slowness (n=32)";
  spec.description = "throughput and client latency vs slow leader count, two timers";
  spec.table_name = "timer";
  spec.row_name = "slow leaders";

  spec.base.n = 32;
  spec.base.batch_size = 100;
  spec.base.fault = Fault::kSlowLeader;
  spec.base.delta = Millis(1);
  spec.base.seed = 2024;
  // Safety valve for the long-running fault sweeps (see fig10_rollback).
  spec.base.event_cap = 50'000'000;

  for (double timer_ms : {10.0, 100.0}) {
    spec.tables.push_back({timer_ms == 10.0 ? "10ms" : "100ms",
                           [timer_ms](ExperimentConfig& c) {
                             c.view_timer = Millis(timer_ms);
                             c.duration = std::max<SimTime>(BenchDuration(1500),
                                                            25 * c.view_timer);
                             c.warmup =
                                 std::max<SimTime>(Millis(300), 4 * c.view_timer);
                           }});
  }
  for (uint32_t slow : {0u, 1u, 4u, 7u, 10u}) {
    spec.rows.push_back(
        {std::to_string(slow), [slow](ExperimentConfig& c) { c.num_faulty = slow; }});
  }
  spec.cols = PaperProtocolAxis();
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  spec.smoke = [](ExperimentConfig& c) {
    c.duration = std::min<SimTime>(c.duration, 8 * c.view_timer);
    c.warmup = std::min<SimTime>(c.warmup, 2 * c.view_timer);
  };
  return spec;
}

HS1_REGISTER_SCENARIO(Fig10Slowness);

}  // namespace
}  // namespace hotstuff1

// Figure 10 (e, f): tail-forking attack (D7). n = 32, batch 100; faulty
// leaders (0..f = 10) ignore the previous view's certificate and extend the
// certificate of view v-2, orphaning the previous proposal.
//
// Expected shape (paper): throughput drops and latency rises for HotStuff /
// HotStuff-2 / HotStuff-1 (each faulty leader wastes one block and forces
// client retries), while HotStuff-1 with slotting is nearly unaffected: the
// carry-block mechanism means a faulty leader can suppress at most the
// final slot of the previous view (§6.2).

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void Run() {
  const uint32_t kFaulty[] = {0, 1, 4, 7, 10};
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  ReportTable tput("Figure 10(e): Tail-forking - Throughput (txn/s), n=32",
                   {"faulty leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                    "HS-1(slotting)"});
  ReportTable lat("Figure 10(f): Tail-forking - Client Latency",
                  {"faulty leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                   "HS-1(slotting)"});
  ReportTable orphan("Tail-forking diagnostics - client resubmissions",
                     {"faulty leaders", "HotStuff", "HotStuff-2", "HotStuff-1",
                      "HS-1(slotting)"});

  for (uint32_t faulty : kFaulty) {
    std::vector<std::string> trow{std::to_string(faulty)};
    std::vector<std::string> lrow{std::to_string(faulty)};
    std::vector<std::string> orow{std::to_string(faulty)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 32;
      cfg.batch_size = 100;
      cfg.fault = Fault::kTailFork;
      cfg.num_faulty = faulty;
      cfg.view_timer = Millis(10);
      cfg.delta = Millis(1);
      cfg.duration = BenchDuration(1500);
      cfg.warmup = Millis(300);
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
      orow.push_back(FormatCount(res.resubmissions));
      if (!res.safety_ok) std::fprintf(stderr, "SAFETY VIOLATION\n");
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
    orphan.AddRow(orow);
  }
  tput.Print();
  lat.Print();
  orphan.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::Run();
  return 0;
}

// Figure 9 (e, j): two-region geographical deployment. n = 31 replicas split
// between North Virginia and London (k in London), clients in North
// Virginia.
//
// Expected shape (paper): with k <= f or k >= n-f, a leader can form
// certificates within its own region; in between, every certificate needs a
// trans-atlantic vote, so throughput drops and latency rises. k <= f
// outperforms k >= n-f because most leaders are co-located with the
// clients. HotStuff-1 with slotting wins at the extremes.

#include <cstdio>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

void Run() {
  const uint32_t kLondon[] = {0, 10, 11, 20, 21, 31};
  const ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  ReportTable tput(
      "Figure 9(e): Geographical Deployment - Throughput (txn/s), n=31",
      {"k(London)", "HotStuff", "HotStuff-2", "HotStuff-1", "HS-1(slotting)"});
  ReportTable lat("Figure 9(j): Geographical Deployment - Client Latency",
                  {"k(London)", "HotStuff", "HotStuff-2", "HotStuff-1",
                   "HS-1(slotting)"});

  for (uint32_t k : kLondon) {
    std::vector<std::string> trow{std::to_string(k)};
    std::vector<std::string> lrow{std::to_string(k)};
    for (ProtocolKind kind : kProtocols) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 31;
      cfg.batch_size = 100;
      cfg.topology = sim::Topology::TwoRegion(31, k);
      cfg.client_region = 0;  // North Virginia
      cfg.delta = Millis(50);
      cfg.view_timer = Millis(400);
      // k <= f and k >= n-f run at intra-region speed (short window is
      // plenty); the trans-atlantic regime needs enough ~76ms views.
      const bool slow_regime = k > 10 && k < 21;
      cfg.duration = slow_regime ? Seconds(6) : BenchDuration(1500);
      cfg.warmup = slow_regime ? Seconds(1.5) : Millis(400);
      cfg.seed = 2024;
      const ExperimentResult res = RunPaperPoint(cfg);
      trow.push_back(FormatTps(res.throughput_tps));
      lrow.push_back(FormatMs(res.avg_latency_ms));
    }
    tput.AddRow(trow);
    lat.AddRow(lrow);
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace hotstuff1

int main() {
  hotstuff1::Run();
  return 0;
}

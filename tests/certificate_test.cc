// Certificates: vote digests, accumulation, verification, ranking, and the
// dual NewSlot/NewView kinds the slotting design depends on (§6.1).

#include <gtest/gtest.h>

#include "consensus/certificate.h"

namespace hotstuff1 {
namespace {

class CertificateTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 7, kF = 2, kQuorum = kN - kF;
  CertificateTest() : registry_(kN, 42) {}

  Signature Share(ReplicaId r, CertKind kind, uint64_t ctx, BlockId id,
                  const Hash256& hash) {
    SignDomain domain = SignDomain::kProposeVote;
    if (kind == CertKind::kCommit) domain = SignDomain::kCommitVote;
    if (kind == CertKind::kNewSlot) domain = SignDomain::kNewSlot;
    if (kind == CertKind::kNewView) domain = SignDomain::kNewView;
    return Signer(&registry_, r).Sign(domain, VoteDigest(kind, ctx, id, hash));
  }

  Certificate MakeCert(CertKind kind, uint64_t ctx, BlockId id, const Hash256& hash,
                       uint64_t formed_view) {
    VoteAccumulator acc(kind, ctx, id, hash, kQuorum);
    for (ReplicaId r = 0; r < kQuorum; ++r) acc.Add(Share(r, kind, ctx, id, hash));
    return acc.Build(formed_view);
  }

  KeyRegistry registry_;
};

TEST_F(CertificateTest, VoteDigestSeparatesEverything) {
  const Hash256 h = Sha256::Digest("block");
  const Hash256 base = VoteDigest(CertKind::kPrepare, 5, {5, 1}, h);
  EXPECT_NE(base, VoteDigest(CertKind::kCommit, 5, {5, 1}, h));   // kind
  EXPECT_NE(base, VoteDigest(CertKind::kPrepare, 6, {5, 1}, h));  // context
  EXPECT_NE(base, VoteDigest(CertKind::kPrepare, 5, {6, 1}, h));  // view
  EXPECT_NE(base, VoteDigest(CertKind::kPrepare, 5, {5, 2}, h));  // slot
  EXPECT_NE(base, VoteDigest(CertKind::kPrepare, 5, {5, 1}, Sha256::Digest("x")));
}

TEST_F(CertificateTest, GenesisVerifiesTrivially) {
  const Certificate g = Certificate::Genesis();
  EXPECT_TRUE(g.IsGenesis());
  EXPECT_TRUE(g.Verify(registry_, kQuorum).ok());
  EXPECT_EQ(g.block_hash(), Block::Genesis()->hash());
}

TEST_F(CertificateTest, AccumulatorFiresExactlyAtQuorum) {
  const Hash256 h = Sha256::Digest("b1");
  VoteAccumulator acc(CertKind::kPrepare, 1, {1, 1}, h, kQuorum);
  for (ReplicaId r = 0; r + 1 < kQuorum; ++r) {
    EXPECT_FALSE(acc.Add(Share(r, CertKind::kPrepare, 1, {1, 1}, h)));
  }
  EXPECT_FALSE(acc.complete());
  EXPECT_TRUE(acc.Add(Share(kQuorum - 1, CertKind::kPrepare, 1, {1, 1}, h)));
  EXPECT_TRUE(acc.complete());
  // Extra shares do not re-fire.
  EXPECT_FALSE(acc.Add(Share(kQuorum, CertKind::kPrepare, 1, {1, 1}, h)));
}

TEST_F(CertificateTest, AccumulatorRejectsDuplicateSigner) {
  const Hash256 h = Sha256::Digest("b1");
  VoteAccumulator acc(CertKind::kPrepare, 1, {1, 1}, h, kQuorum);
  const Signature s = Share(0, CertKind::kPrepare, 1, {1, 1}, h);
  acc.Add(s);
  acc.Add(s);
  EXPECT_EQ(acc.count(), 1u);
}

TEST_F(CertificateTest, BuiltCertificateVerifies) {
  const Hash256 h = Sha256::Digest("b5");
  const Certificate c = MakeCert(CertKind::kPrepare, 5, {5, 1}, h, 5);
  EXPECT_TRUE(c.Verify(registry_, kQuorum).ok());
  EXPECT_EQ(c.view(), 5u);
  EXPECT_EQ(c.slot(), 1u);
  EXPECT_EQ(c.block_hash(), h);
}

TEST_F(CertificateTest, NewViewCertificateBindsFormedView) {
  // A NewView certificate over block (3, 2) formed in view 4: shares sign
  // context 4, so the certificate only verifies with formed_view = 4.
  const Hash256 h = Sha256::Digest("b(3,2)");
  const Certificate good = MakeCert(CertKind::kNewView, 4, {2, 3}, h, 4);
  EXPECT_TRUE(good.Verify(registry_, kQuorum).ok());
  EXPECT_EQ(good.formed_view(), 4u);

  // Re-labelling the formed view breaks verification (prevents replaying a
  // NewView certificate into another view).
  const Certificate forged(CertKind::kNewView, {2, 3}, h, 5, good.sigs());
  EXPECT_FALSE(forged.Verify(registry_, kQuorum).ok());
}

TEST_F(CertificateTest, KindsDoNotCrossVerify) {
  const Hash256 h = Sha256::Digest("b");
  const Certificate slot_cert = MakeCert(CertKind::kNewSlot, 2, {2, 2}, h, 2);
  EXPECT_TRUE(slot_cert.Verify(registry_, kQuorum).ok());
  // The same signatures repackaged as a Prepare certificate must fail: the
  // domain separation of SignDomain::kNewSlot protects against this.
  const Certificate cross(CertKind::kPrepare, {2, 2}, h, 2, slot_cert.sigs());
  EXPECT_FALSE(cross.Verify(registry_, kQuorum).ok());
}

TEST_F(CertificateTest, UndersizedCertificateFails) {
  const Hash256 h = Sha256::Digest("b");
  VoteAccumulator acc(CertKind::kPrepare, 1, {1, 1}, h, kQuorum - 1);
  for (ReplicaId r = 0; r < kQuorum - 1; ++r) {
    acc.Add(Share(r, CertKind::kPrepare, 1, {1, 1}, h));
  }
  const Certificate small = acc.Build();
  EXPECT_FALSE(small.Verify(registry_, kQuorum).ok());
}

TEST_F(CertificateTest, RankingIsLexicographic) {
  const Hash256 h = Sha256::Digest("b");
  const Certificate low = MakeCert(CertKind::kNewSlot, 2, {2, 4}, h, 2);
  const Certificate high = MakeCert(CertKind::kNewSlot, 3, {3, 1}, h, 3);
  EXPECT_TRUE(low.RanksLowerThan(high));   // view dominates slot
  EXPECT_FALSE(high.RanksLowerThan(low));
  EXPECT_TRUE(low.RanksAtMost(low));
  const Certificate same_view = MakeCert(CertKind::kNewSlot, 3, {3, 2}, h, 3);
  EXPECT_TRUE(high.RanksLowerThan(same_view));  // slot breaks ties
}

TEST_F(CertificateTest, ToStringIsInformative) {
  const Hash256 h = Sha256::Digest("b");
  const Certificate c = MakeCert(CertKind::kNewView, 4, {2, 3}, h, 4);
  const std::string s = c.ToString();
  EXPECT_NE(s.find("NewView"), std::string::npos);
  EXPECT_NE(s.find("fv=4"), std::string::npos);
}

}  // namespace
}  // namespace hotstuff1

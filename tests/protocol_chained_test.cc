// Chained-skeleton protocols (HotStuff, HotStuff-2, streamlined HotStuff-1):
// commit depths, speculation behaviour, crash-fault liveness, equal
// throughput across streamlined protocols, and recovery paths.

#include <gtest/gtest.h>

#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

ExperimentConfig BaseConfig(ProtocolKind kind, uint32_t n = 4) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = n;
  cfg.batch_size = 10;
  cfg.duration = Millis(300);
  cfg.warmup = Millis(100);
  cfg.num_clients = 100;
  cfg.seed = 7;
  return cfg;
}

TEST(ChainedTest, HotStuffCommitLagsThreeViews) {
  Experiment exp(BaseConfig(ProtocolKind::kHotStuff));
  exp.Run();
  const auto& r0 = *exp.replicas()[0];
  // Committed height trails the view number by the 3-chain depth (plus the
  // in-flight proposal), never by much more in a fault-free run.
  const uint64_t views = r0.view();
  const uint64_t committed = r0.ledger().committed_height();
  EXPECT_GE(committed + 6, views);
  EXPECT_LE(committed + 3, views);
}

TEST(ChainedTest, HotStuff2CommitLagsTwoViews) {
  Experiment exp(BaseConfig(ProtocolKind::kHotStuff2));
  exp.Run();
  const auto& r0 = *exp.replicas()[0];
  const uint64_t views = r0.view();
  const uint64_t committed = r0.ledger().committed_height();
  EXPECT_GE(committed + 5, views);
  EXPECT_LE(committed + 2, views);
}

TEST(ChainedTest, StreamlinedProtocolsMatchThroughput) {
  // §7.1: all streamlined protocols have the same message complexity and
  // hence the same throughput.
  const auto hs = RunExperiment(BaseConfig(ProtocolKind::kHotStuff));
  const auto hs2 = RunExperiment(BaseConfig(ProtocolKind::kHotStuff2));
  const auto hs1 = RunExperiment(BaseConfig(ProtocolKind::kHotStuff1));
  EXPECT_NEAR(hs2.throughput_tps / hs.throughput_tps, 1.0, 0.05);
  EXPECT_NEAR(hs1.throughput_tps / hs.throughput_tps, 1.0, 0.05);
}

TEST(ChainedTest, NoSpeculationInBaselines) {
  for (auto kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2}) {
    Experiment exp(BaseConfig(kind));
    const auto res = exp.Run();
    EXPECT_EQ(res.accepted_speculative, 0u);
    for (const auto& r : exp.replicas()) {
      EXPECT_EQ(r->metrics().blocks_speculated, 0u);
    }
  }
}

TEST(ChainedTest, HotStuff1SpeculatesEveryBlock) {
  Experiment exp(BaseConfig(ProtocolKind::kHotStuff1));
  const auto res = exp.Run();
  const auto& m = exp.replicas()[0]->metrics();
  EXPECT_GT(m.blocks_speculated, 0u);
  // In the fault-free case, essentially all commits were pre-speculated and
  // all acceptances were speculative (early finality confirmations).
  EXPECT_GE(m.blocks_speculated + 2, m.blocks_committed);
  EXPECT_EQ(res.accepted_speculative, res.accepted);
}

TEST(ChainedTest, SpeculationDisabledFallsBackToCommitResponses) {
  ExperimentConfig cfg = BaseConfig(ProtocolKind::kHotStuff1);
  cfg.speculation_enabled = false;
  Experiment exp(cfg);
  const auto res = exp.Run();
  EXPECT_GT(res.accepted, 0u);
  EXPECT_EQ(res.accepted_speculative, 0u);
  EXPECT_EQ(exp.replicas()[0]->metrics().blocks_speculated, 0u);
}

class CrashFaultTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(CrashFaultTest, LivenessWithFCrashes) {
  ExperimentConfig cfg = BaseConfig(GetParam(), 7);  // f = 2
  cfg.fault = Fault::kCrash;
  cfg.num_faulty = 2;
  cfg.duration = Millis(600);
  // The view timer must exceed ShareTimer = 3Δ plus a proposal round trip,
  // or leaders following a timed-out view can never propose (§4.2.1).
  cfg.view_timer = Millis(5);
  cfg.delta = Millis(1);
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 50u) << res.protocol;
  EXPECT_GT(res.timeouts, 0u);  // crashed leaders force view timeouts
}

TEST_P(CrashFaultTest, NoProgressBeyondFCrashes) {
  // With f+1 crashes no quorum can form: liveness is lost (but nothing
  // crashes or misbehaves).
  ExperimentConfig cfg = BaseConfig(GetParam(), 4);  // f = 1
  cfg.fault = Fault::kCrash;
  cfg.num_faulty = 2;  // > f
  cfg.duration = Millis(300);
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_EQ(res.accepted, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllChained, CrashFaultTest,
                         ::testing::Values(ProtocolKind::kHotStuff,
                                           ProtocolKind::kHotStuff2,
                                           ProtocolKind::kHotStuff1));

TEST(ChainedTest, CommittedChainsAreConsistentPrefixes) {
  Experiment exp(BaseConfig(ProtocolKind::kHotStuff1, 7));
  exp.Run();
  const auto& chain0 = exp.replicas()[0]->ledger().committed_chain();
  for (uint32_t r = 1; r < 7; ++r) {
    const auto& chain = exp.replicas()[r]->ledger().committed_chain();
    const size_t common = std::min(chain0.size(), chain.size());
    ASSERT_GT(common, 2u);
    for (size_t h = 0; h < common; ++h) {
      EXPECT_EQ(chain0[h]->hash(), chain[h]->hash());
    }
  }
}

TEST(ChainedTest, StateMachinesConverge) {
  // All correct replicas execute identical prefixes: their KV states over
  // the shared committed height must agree. Compare fingerprints after
  // rolling back speculative state to committed-only by re-executing the
  // committed chain into fresh states.
  Experiment exp(BaseConfig(ProtocolKind::kHotStuff1, 4));
  exp.Run();
  std::vector<uint64_t> fingerprints;
  const auto& chain0 = exp.replicas()[0]->ledger().committed_chain();
  size_t min_height = SIZE_MAX;
  for (const auto& r : exp.replicas()) {
    min_height = std::min(min_height, r->ledger().committed_chain().size());
  }
  ASSERT_GT(min_height, 2u);
  for (const auto& r : exp.replicas()) {
    KvState kv;
    const auto& chain = r->ledger().committed_chain();
    for (size_t h = 1; h < min_height; ++h) {
      for (const Transaction& t : chain[h]->txns()) kv.ApplyTxn(t, nullptr);
    }
    fingerprints.push_back(kv.Fingerprint());
  }
  for (uint64_t fp : fingerprints) EXPECT_EQ(fp, fingerprints[0]);
  (void)chain0;
}

TEST(ChainedTest, ViewsAdvanceAtNetworkSpeedNotTimerSpeed) {
  // Fault-free streamlined views complete in ~2 network hops, far faster
  // than the 10ms view timer.
  ExperimentConfig cfg = BaseConfig(ProtocolKind::kHotStuff2);
  cfg.view_timer = Millis(50);
  Experiment exp(cfg);
  const auto res = exp.Run();
  // 400ms total at 50ms/view would give ~8 views; network speed gives
  // hundreds.
  EXPECT_GT(res.views, 50u);
}

TEST(ChainedTest, LargerClusterStillCommits) {
  ExperimentConfig cfg = BaseConfig(ProtocolKind::kHotStuff1, 16);
  cfg.duration = Millis(400);
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 100u);
}

}  // namespace
}  // namespace hotstuff1

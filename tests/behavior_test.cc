// Behavioural regression tests for the quantitative properties the paper's
// evaluation rests on: half-phase latency ratios, the quorum-edge
// asymmetry of §7.2, geo latency scaling, and cross-run determinism.

#include <gtest/gtest.h>

#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

// --- half-phase ratios -----------------------------------------------------------

TEST(HalfPhaseTest, LatencyRatiosFollowPhaseCounts) {
  // Fig. 1: speculative response after 3 half-phases (HotStuff-1), commit
  // response after 5 (HotStuff-2) and 7 (HotStuff). With the two client
  // hops: 5 : 7 : 9. At light load on a uniform LAN the measured ratios
  // must sit near these.
  auto lat = [](ProtocolKind k) {
    ExperimentConfig cfg;
    cfg.protocol = k;
    cfg.n = 7;
    cfg.batch_size = 20;
    cfg.duration = Millis(400);
    cfg.warmup = Millis(100);
    cfg.num_clients = 20;  // light load
    cfg.seed = 12;
    return RunExperiment(cfg).avg_latency_ms;
  };
  const double hs1 = lat(ProtocolKind::kHotStuff1);
  const double hs2 = lat(ProtocolKind::kHotStuff2);
  const double hs = lat(ProtocolKind::kHotStuff);
  EXPECT_NEAR(hs2 / hs1, 7.0 / 5.0, 0.25);
  EXPECT_NEAR(hs / hs1, 9.0 / 5.0, 0.35);
}

// --- §7.2 quorum-edge asymmetry ---------------------------------------------------

TEST(QuorumEdgeTest, ExtraResponsesDoNotHurtHotStuff1) {
  // With k = n-f impacted replicas, f+1-quorum clients must wait ~delta
  // longer than with k = n-f-1; HotStuff-1's n-f quorum was already
  // dominated by the slow responders, so its latency barely moves.
  auto lat = [](ProtocolKind kind, uint32_t k) {
    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.n = 7;  // f = 2: edges at k=4 (n-f-1) and k=5 (n-f)
    cfg.batch_size = 20;
    cfg.inject_delay = Millis(20);
    cfg.num_impaired = k;
    cfg.delta = Millis(21);
    cfg.view_timer = Millis(100);
    cfg.duration = Millis(1500);
    cfg.warmup = Millis(300);
    cfg.num_clients = 20;
    cfg.seed = 12;
    return RunExperiment(cfg).avg_latency_ms;
  };
  const double hs2_jump = lat(ProtocolKind::kHotStuff2, 5) -
                          lat(ProtocolKind::kHotStuff2, 4);
  const double hs1_jump = lat(ProtocolKind::kHotStuff1, 5) -
                          lat(ProtocolKind::kHotStuff1, 4);
  EXPECT_GT(hs2_jump, 10.0);       // ~ +delta for the f+1-quorum client
  EXPECT_LT(hs1_jump, hs2_jump / 2);  // HotStuff-1 rises at most mildly
}

// --- geo latency scaling -----------------------------------------------------------

TEST(GeoBehaviorTest, LatencyScalesWithHopsTimesRtt) {
  // Two regions 100ms apart: HotStuff-1's light-load latency is ~2 one-way
  // hops (~200ms), HotStuff-2 ~3, HotStuff ~4 (consensus hops dominate;
  // client hops are intra-region).
  auto lat = [](ProtocolKind k) {
    ExperimentConfig cfg;
    cfg.protocol = k;
    cfg.n = 4;
    cfg.batch_size = 20;
    cfg.topology = sim::Topology::Geo(4, 2);  // NV/HK alternating
    cfg.client_region = sim::kNorthVirginia;
    cfg.view_timer = Millis(1200);
    cfg.delta = Millis(150);
    cfg.duration = Seconds(6);
    cfg.warmup = Seconds(1.5);
    cfg.num_clients = 20;
    cfg.seed = 12;
    return RunExperiment(cfg).avg_latency_ms;
  };
  const double hs1 = lat(ProtocolKind::kHotStuff1);
  const double hs2 = lat(ProtocolKind::kHotStuff2);
  const double hs = lat(ProtocolKind::kHotStuff);
  EXPECT_GT(hs1, 120);
  EXPECT_LT(hs1, 320);
  EXPECT_GT(hs2, hs1 + 50);  // one more one-way hop (~100ms, averaged)
  EXPECT_GT(hs, hs2 + 50);
}

TEST(GeoBehaviorTest, ClientPlacementMatters) {
  // The same cluster serves North-Virginia clients faster than Hong-Kong
  // clients when most consensus hops finish NV-side first.
  auto lat = [](uint32_t client_region) {
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::kHotStuff1;
    cfg.n = 4;
    cfg.batch_size = 20;
    cfg.topology = sim::Topology::TwoRegion(4, 1);  // 3 in NV, 1 in London
    cfg.client_region = client_region;
    cfg.view_timer = Millis(600);
    cfg.delta = Millis(60);
    cfg.duration = Seconds(4);
    cfg.warmup = Seconds(1);
    cfg.num_clients = 20;
    cfg.seed = 12;
    return RunExperiment(cfg).avg_latency_ms;
  };
  EXPECT_LT(lat(/*NV=*/0), lat(/*London=*/1));
}

// --- determinism -------------------------------------------------------------------

TEST(DeterminismTest, SeedChangesRunButConfigRepeats) {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1Slotted;
  cfg.n = 7;
  cfg.batch_size = 10;
  cfg.duration = Millis(300);
  cfg.warmup = Millis(100);
  cfg.num_clients = 60;
  cfg.seed = 5;
  const auto a = RunExperiment(cfg);
  const auto b = RunExperiment(cfg);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.views, b.views);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_DOUBLE_EQ(a.avg_latency_ms, b.avg_latency_ms);

  cfg.seed = 6;
  const auto c = RunExperiment(cfg);
  // A different seed produces different transactions (results will differ
  // in detail even if aggregates can coincide); verify the chain differs.
  EXPECT_TRUE(c.safety_ok);
}

TEST(DeterminismTest, CommittedChainsIdenticalAcrossRuns) {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 4;
  cfg.batch_size = 10;
  cfg.duration = Millis(300);
  cfg.warmup = Millis(100);
  cfg.num_clients = 60;
  cfg.seed = 9;
  Experiment a(cfg), b(cfg);
  a.Run();
  b.Run();
  const auto& ca = a.replicas()[0]->ledger().committed_chain();
  const auto& cb = b.replicas()[0]->ledger().committed_chain();
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t h = 0; h < ca.size(); ++h) {
    EXPECT_EQ(ca[h]->hash(), cb[h]->hash());
  }
}

// --- speculation accounting ---------------------------------------------------------

TEST(SpeculationAccountingTest, EverythingCommittedWasSpeculatedFirst) {
  // Fault-free HotStuff-1: speculation precedes every commit; commit-time
  // execution (the non-speculated path) should be the rare exception
  // (pipeline tail only).
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 4;
  cfg.batch_size = 10;
  cfg.duration = Millis(400);
  cfg.warmup = Millis(100);
  cfg.num_clients = 60;
  cfg.seed = 14;
  Experiment exp(cfg);
  exp.Run();
  const auto& ledger = exp.replicas()[0]->ledger();
  EXPECT_GE(ledger.txns_speculated() + cfg.batch_size * 3, ledger.txns_committed());
  EXPECT_EQ(ledger.rollback_events(), 0u);
}

}  // namespace
}  // namespace hotstuff1

// MakeAdversaryPlan edge cases: empty plans, full-f coalitions at the
// smallest and the widest supported committees, rollback-victim clamping,
// and the shape of the shared faulty mask the oracle and the attack code
// both consume.

#include <gtest/gtest.h>

#include "runtime/adversary.h"

namespace hotstuff1 {
namespace {

TEST(AdversaryPlanTest, CountZeroIsAnEmptyPlan) {
  const AdversaryPlan plan = MakeAdversaryPlan(4, Fault::kCrash, 0);
  EXPECT_TRUE(plan.members.empty());
  ASSERT_NE(plan.faulty_mask, nullptr);
  ASSERT_EQ(plan.faulty_mask->size(), 4u);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_FALSE((*plan.faulty_mask)[r]) << "replica " << r;
    EXPECT_EQ(plan.SpecFor(r).fault, Fault::kNone) << "replica " << r;
  }
}

TEST(AdversaryPlanTest, FullCoalitionAtSmallestCommittee) {
  // n = 4, f = 1: the lone faulty replica sits at id 1 so round-robin
  // leadership reaches it every rotation; id 0 stays the honest observer.
  const AdversaryPlan plan = MakeAdversaryPlan(4, Fault::kTailFork, 1);
  EXPECT_EQ(plan.members, (std::vector<ReplicaId>{1}));
  EXPECT_FALSE((*plan.faulty_mask)[0]);
  EXPECT_TRUE((*plan.faulty_mask)[1]);
  const AdversarySpec spec = plan.SpecFor(1);
  EXPECT_EQ(spec.fault, Fault::kTailFork);
  EXPECT_TRUE(spec.collude);
  EXPECT_EQ(spec.faulty, plan.faulty_mask);  // shared, not copied
}

TEST(AdversaryPlanTest, FullCoalitionAtN128) {
  // n = 128, f = 42: contiguous ids 1..42, everything above honest.
  const uint32_t f = (128 - 1) / 3;
  const AdversaryPlan plan = MakeAdversaryPlan(128, Fault::kCrash, f);
  ASSERT_EQ(plan.members.size(), f);
  EXPECT_EQ(plan.members.front(), 1u);
  EXPECT_EQ(plan.members.back(), f);
  ASSERT_EQ(plan.faulty_mask->size(), 128u);
  EXPECT_FALSE((*plan.faulty_mask)[0]);
  EXPECT_TRUE((*plan.faulty_mask)[f]);
  EXPECT_FALSE((*plan.faulty_mask)[f + 1]);
  EXPECT_FALSE((*plan.faulty_mask)[127]);
  // Crash faults never collude (there is nobody left to collude with).
  EXPECT_FALSE(plan.SpecFor(1).collude);
}

TEST(AdversaryPlanTest, RollbackVictimsClampToF) {
  // Asking for more victims than f would model a client-safety-breaking
  // adversary (an n-f speculative quorum on the doomed branch), not §7.3.
  const AdversaryPlan plan =
      MakeAdversaryPlan(7, Fault::kRollbackAttack, 2, /*rollback_victims=*/6);
  EXPECT_EQ(plan.rollback_victims, 2u);  // f = 2 at n = 7
  EXPECT_EQ(plan.SpecFor(1).rollback_victims, 2u);  // spec carries the clamp
  // In-range requests pass through untouched.
  EXPECT_EQ(MakeAdversaryPlan(7, Fault::kRollbackAttack, 2, 1).rollback_victims,
            1u);
  EXPECT_EQ(MakeAdversaryPlan(32, Fault::kRollbackAttack, 10, 10).rollback_victims,
            10u);
}

TEST(AdversaryPlanTest, SpecForHonestReplicaIsInert) {
  const AdversaryPlan plan = MakeAdversaryPlan(7, Fault::kRollbackAttack, 2, 2);
  const AdversarySpec honest = plan.SpecFor(0);
  EXPECT_EQ(honest.fault, Fault::kNone);
  EXPECT_FALSE(honest.collude);
  EXPECT_EQ(honest.faulty, nullptr);
  EXPECT_EQ(honest.rollback_victims, 0u);
}

// --- strategy-schedule text form ---------------------------------------------

TEST(StrategyScheduleTest, ParsesEntriesSegmentsAndRanges) {
  StrategySchedule s;
  std::string error;
  ASSERT_TRUE(ParseStrategySchedule(
      "0:withhold;1-3:delay=5000,target-leader;4-:equivocate;epoch=20000;"
      "gst=90000",
      &s, &error))
      << error;
  ASSERT_EQ(s.entries.size(), 3u);
  EXPECT_EQ(s.entries[0].from_epoch, 0u);
  EXPECT_EQ(s.entries[0].to_epoch, 1u);  // bare "<from>" covers one epoch
  EXPECT_EQ(s.entries[0].actions, kActWithhold);
  EXPECT_EQ(s.entries[1].from_epoch, 1u);
  EXPECT_EQ(s.entries[1].to_epoch, 3u);  // exclusive
  EXPECT_EQ(s.entries[1].actions, kActDelay | kActTargetLeader);
  EXPECT_EQ(s.entries[1].delay, 5000);
  EXPECT_EQ(s.entries[2].to_epoch, kEpochForever);
  EXPECT_EQ(s.entries[2].actions, kActEquivocate);
  EXPECT_EQ(s.epoch_length, 20000);
  EXPECT_EQ(s.declared_gst, 90000);
}

TEST(StrategyScheduleTest, FormatParseRoundTrips) {
  for (const char* text :
       {"", "0-:withhold", "1-3:delay=5000;gst=90000",
        "0:equivocate;2-4:withhold,target-leader;epoch=30000",
        "0-:delay=250;gst=0"}) {
    StrategySchedule s;
    std::string error;
    ASSERT_TRUE(ParseStrategySchedule(text, &s, &error)) << text << ": " << error;
    StrategySchedule reparsed;
    ASSERT_TRUE(ParseStrategySchedule(FormatStrategySchedule(s), &reparsed,
                                      &error))
        << FormatStrategySchedule(s) << ": " << error;
    EXPECT_EQ(s, reparsed) << text;
  }
}

TEST(StrategyScheduleTest, RejectsMalformedInput) {
  StrategySchedule s;
  for (const char* bad :
       {":withhold",      // missing range
        "0-",             // missing actions
        "0:jam",          // unknown action
        "3-1:withhold",   // inverted range
        "0:delay",        // delay without duration
        "0:delay=x",      // non-numeric duration
        "epoch=",         // missing value
        "gst=-5",         // negative
        "epoch=1000"}) {  // segments only, no entries
    std::string error;
    EXPECT_FALSE(ParseStrategySchedule(bad, &s, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(StrategyScheduleTest, RejectsNonCanonicalNumbers) {
  // Regression: numbers used to go through strtoll, which accepts sign
  // prefixes and leading whitespace — so "0:delay=+5" parsed but its
  // round-trip "0:delay=5" compared unequal, breaking schedule dedup keys.
  StrategySchedule s;
  for (const char* bad :
       {"0:delay=+5",     // sign prefix
        "0:delay= 5",     // leading space
        "gst= 5",         // leading space after segment '='
        "+0:withhold",    // signed epoch
        "0- 3:withhold",  // space inside range
        "0:delay=99999999999999999999"}) {  // overflows int64
    std::string error;
    EXPECT_FALSE(ParseStrategySchedule(bad, &s, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(StrategyScheduleTest, ParsesInterferenceActions) {
  StrategySchedule s;
  std::string error;
  ASSERT_TRUE(ParseStrategySchedule(
      "0-3:partition=0-7|8-15;4:outage=0+2;5-:jitter=50;epoch=20000", &s,
      &error))
      << error;
  ASSERT_EQ(s.entries.size(), 3u);
  EXPECT_EQ(s.entries[0].actions, kActPartition);
  ASSERT_EQ(s.entries[0].partition.size(), 2u);
  EXPECT_EQ(s.entries[0].partition[0],
            (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(s.entries[0].partition[1],
            (std::vector<uint32_t>{8, 9, 10, 11, 12, 13, 14, 15}));
  EXPECT_EQ(s.entries[1].actions, kActOutage);
  EXPECT_EQ(s.entries[1].outage_regions, (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(s.entries[2].actions, kActJitter);
  EXPECT_EQ(s.entries[2].jitter_pct, 50u);
  // All three are message interference, so they push the derived GST.
  EXPECT_EQ(s.ResolvedGst(), StrategySchedule::kGstNever);  // open-ended
}

TEST(StrategyScheduleTest, InterferenceFormatParseRoundTrips) {
  for (const char* text :
       {"0-3:partition=0-7|8-15", "0:partition=0+2+4|1+3|5-9;epoch=5000",
        "2:outage=0+2,jitter=50", "0-:jitter=1000;gst=0",
        "1-2:delay=100,partition=0-3|4-7"}) {
    StrategySchedule s;
    std::string error;
    ASSERT_TRUE(ParseStrategySchedule(text, &s, &error)) << text << ": " << error;
    StrategySchedule reparsed;
    ASSERT_TRUE(
        ParseStrategySchedule(FormatStrategySchedule(s), &reparsed, &error))
        << FormatStrategySchedule(s) << ": " << error;
    EXPECT_EQ(s, reparsed) << text;
  }
}

TEST(StrategyScheduleTest, RejectsMalformedInterference) {
  StrategySchedule s;
  for (const char* bad :
       {"0:partition=0-7",        // single group partitions nothing
        "0:partition=0-3|3-7",    // id 3 in two groups
        "0:partition=0-3|",       // empty group
        "0:partition=3-1|4-7",    // inverted range
        "0:outage=",              // missing regions
        "0:jitter=0",             // below 1%
        "0:jitter=1001",          // above 1000%
        "0:jitter=+5"}) {         // non-canonical number
    std::string error;
    EXPECT_FALSE(ParseStrategySchedule(bad, &s, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(StrategyScheduleTest, ActionsAtFollowsEpochBoundaries) {
  StrategySchedule s;
  ASSERT_TRUE(ParseStrategySchedule("1-3:withhold;2:delay=100;epoch=1000", &s));
  EXPECT_EQ(s.ActionsAt(0), kActNone);          // epoch 0
  EXPECT_EQ(s.ActionsAt(999), kActNone);
  EXPECT_EQ(s.ActionsAt(1000), kActWithhold);   // epoch 1
  EXPECT_EQ(s.ActionsAt(2500), kActWithhold | kActDelay);  // overlap in 2
  EXPECT_EQ(s.ActionsAt(3000), kActNone);       // to_epoch is exclusive
}

TEST(StrategyScheduleTest, ResolvedGstPrefersDeclaredThenLastInterference) {
  StrategySchedule s;
  ASSERT_TRUE(ParseStrategySchedule("1-3:withhold;epoch=1000", &s));
  EXPECT_EQ(s.ResolvedGst(), 3000);  // end of the last interfering entry
  ASSERT_TRUE(ParseStrategySchedule("1-3:withhold;epoch=1000;gst=500", &s));
  EXPECT_EQ(s.ResolvedGst(), 500);   // explicit declaration wins
  // Open-ended interference with no declaration promises nothing.
  ASSERT_TRUE(ParseStrategySchedule("0-:withhold;epoch=1000", &s));
  EXPECT_EQ(s.ResolvedGst(), StrategySchedule::kGstNever);
  // Equivocation is not message interference: the §7.3 campaign does not
  // delay stabilization by itself.
  ASSERT_TRUE(ParseStrategySchedule("0-:equivocate;epoch=1000", &s));
  EXPECT_EQ(s.ResolvedGst(), 0);
}

TEST(StrategyScheduleTest, PlanThreadsScheduleAndEquivocateTurnsCollusionOn) {
  StrategySchedule s;
  ASSERT_TRUE(ParseStrategySchedule("0-:equivocate;epoch=1000", &s));
  const AdversaryPlan plan =
      MakeAdversaryPlan(7, Fault::kNone, 2, /*rollback_victims=*/2, s);
  ASSERT_NE(plan.schedule, nullptr);
  const AdversarySpec spec = plan.SpecFor(1);
  EXPECT_EQ(spec.schedule, plan.schedule);  // shared, not copied
  EXPECT_TRUE(spec.collude);                // the campaign needs the coalition
  EXPECT_TRUE(spec.Equivocates(/*now=*/0));
  // A pure-withhold schedule does not collude and never equivocates.
  ASSERT_TRUE(ParseStrategySchedule("0-:withhold;epoch=1000", &s));
  const AdversaryPlan w = MakeAdversaryPlan(7, Fault::kNone, 2, 0, s);
  EXPECT_FALSE(w.SpecFor(1).collude);
  EXPECT_FALSE(w.SpecFor(1).Equivocates(0));
  EXPECT_TRUE(w.SpecFor(1).Withholds(0));
  EXPECT_FALSE(w.SpecFor(0).Withholds(0));  // honest replicas are inert
}

}  // namespace
}  // namespace hotstuff1

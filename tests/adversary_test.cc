// MakeAdversaryPlan edge cases: empty plans, full-f coalitions at the
// smallest and the widest supported committees, rollback-victim clamping,
// and the shape of the shared faulty mask the oracle and the attack code
// both consume.

#include <gtest/gtest.h>

#include "runtime/adversary.h"

namespace hotstuff1 {
namespace {

TEST(AdversaryPlanTest, CountZeroIsAnEmptyPlan) {
  const AdversaryPlan plan = MakeAdversaryPlan(4, Fault::kCrash, 0);
  EXPECT_TRUE(plan.members.empty());
  ASSERT_NE(plan.faulty_mask, nullptr);
  ASSERT_EQ(plan.faulty_mask->size(), 4u);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_FALSE((*plan.faulty_mask)[r]) << "replica " << r;
    EXPECT_EQ(plan.SpecFor(r).fault, Fault::kNone) << "replica " << r;
  }
}

TEST(AdversaryPlanTest, FullCoalitionAtSmallestCommittee) {
  // n = 4, f = 1: the lone faulty replica sits at id 1 so round-robin
  // leadership reaches it every rotation; id 0 stays the honest observer.
  const AdversaryPlan plan = MakeAdversaryPlan(4, Fault::kTailFork, 1);
  EXPECT_EQ(plan.members, (std::vector<ReplicaId>{1}));
  EXPECT_FALSE((*plan.faulty_mask)[0]);
  EXPECT_TRUE((*plan.faulty_mask)[1]);
  const AdversarySpec spec = plan.SpecFor(1);
  EXPECT_EQ(spec.fault, Fault::kTailFork);
  EXPECT_TRUE(spec.collude);
  EXPECT_EQ(spec.faulty, plan.faulty_mask);  // shared, not copied
}

TEST(AdversaryPlanTest, FullCoalitionAtN128) {
  // n = 128, f = 42: contiguous ids 1..42, everything above honest.
  const uint32_t f = (128 - 1) / 3;
  const AdversaryPlan plan = MakeAdversaryPlan(128, Fault::kCrash, f);
  ASSERT_EQ(plan.members.size(), f);
  EXPECT_EQ(plan.members.front(), 1u);
  EXPECT_EQ(plan.members.back(), f);
  ASSERT_EQ(plan.faulty_mask->size(), 128u);
  EXPECT_FALSE((*plan.faulty_mask)[0]);
  EXPECT_TRUE((*plan.faulty_mask)[f]);
  EXPECT_FALSE((*plan.faulty_mask)[f + 1]);
  EXPECT_FALSE((*plan.faulty_mask)[127]);
  // Crash faults never collude (there is nobody left to collude with).
  EXPECT_FALSE(plan.SpecFor(1).collude);
}

TEST(AdversaryPlanTest, RollbackVictimsClampToF) {
  // Asking for more victims than f would model a client-safety-breaking
  // adversary (an n-f speculative quorum on the doomed branch), not §7.3.
  const AdversaryPlan plan =
      MakeAdversaryPlan(7, Fault::kRollbackAttack, 2, /*rollback_victims=*/6);
  EXPECT_EQ(plan.rollback_victims, 2u);  // f = 2 at n = 7
  EXPECT_EQ(plan.SpecFor(1).rollback_victims, 2u);  // spec carries the clamp
  // In-range requests pass through untouched.
  EXPECT_EQ(MakeAdversaryPlan(7, Fault::kRollbackAttack, 2, 1).rollback_victims,
            1u);
  EXPECT_EQ(MakeAdversaryPlan(32, Fault::kRollbackAttack, 10, 10).rollback_victims,
            10u);
}

TEST(AdversaryPlanTest, SpecForHonestReplicaIsInert) {
  const AdversaryPlan plan = MakeAdversaryPlan(7, Fault::kRollbackAttack, 2, 2);
  const AdversarySpec honest = plan.SpecFor(0);
  EXPECT_EQ(honest.fault, Fault::kNone);
  EXPECT_FALSE(honest.collude);
  EXPECT_EQ(honest.faulty, nullptr);
  EXPECT_EQ(honest.rollback_victims, 0u);
}

}  // namespace
}  // namespace hotstuff1

// Unit tests for the common substrate: Status/Result, RNG, zipfian, bytes.

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"

namespace hotstuff1 {
namespace {

// --- Status -------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unauthenticated("x").IsUnauthenticated());
  EXPECT_TRUE(Status::ProtocolViolation("x").IsProtocolViolation());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  const Status st = Status::NotFound("missing block");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "missing block");
  EXPECT_EQ(st.ToString(), "NotFound: missing block");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status a = Status::Internal("boom");
  Status b = a;  // copy
  EXPECT_EQ(b.ToString(), a.ToString());
  Status c = std::move(a);
  EXPECT_TRUE(c.IsInternal());
  b = c;
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::OutOfRange("too big");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    HS1_RETURN_NOT_OK(inner(fail));
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(outer(true).IsOutOfRange());
  EXPECT_TRUE(outer(false).IsAlreadyExists());
}

// --- Result -------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> r(std::string("payload"));
  std::string s = r.MoveValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto source = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("broken");
    return 7;
  };
  auto consumer = [&](bool fail) -> Status {
    HS1_ASSIGN_OR_RETURN(int v, source(fail));
    return v == 7 ? Status::OK() : Status::Internal("wrong value");
  };
  EXPECT_TRUE(consumer(false).ok());
  EXPECT_TRUE(consumer(true).IsInternal());
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleIsUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U[0,1)
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(5);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) ++buckets[rng.NextBounded(10)];
  for (int b : buckets) EXPECT_NEAR(b, 10000, 500);
}

// --- Zipfian ------------------------------------------------------------------

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator zipf(1000, 0.99);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 1000u);
}

TEST(ZipfianTest, SkewsTowardLowKeys) {
  ZipfianGenerator zipf(10000, 0.99);
  Rng rng(13);
  uint64_t low = 0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(&rng) < 100) ++low;  // top 1% of keys
  }
  // Under zipf(0.99), the hottest 1% of keys draw far more than 1% of
  // accesses (typically > 30%).
  EXPECT_GT(low, static_cast<uint64_t>(kSamples) * 25 / 100);
}

// --- bytes / hex / units --------------------------------------------------------

TEST(BytesTest, HexEncode) {
  Bytes b = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(HexEncode(b), "000fa5ff");
  EXPECT_EQ(HexEncode(Bytes{}), "");
}

TEST(BytesTest, AppendHelpers) {
  Bytes b;
  AppendU32(&b, 0x01020304);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);  // little-endian
  AppendU64(&b, 1);
  EXPECT_EQ(b.size(), 12u);
  EXPECT_EQ(b[4], 1);
  Bytes from_str = ToBytes("ab");
  EXPECT_EQ(BytesToString(from_str), "ab");
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(Millis(1.5), 1500);
  EXPECT_EQ(Seconds(2), 2'000'000);
  EXPECT_DOUBLE_EQ(ToMillis(2500), 2.5);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3.5)), 3.5);
}

}  // namespace
}  // namespace hotstuff1

// Discrete-event simulator and network model tests: event ordering, timers,
// latency/bandwidth/CPU accounting, fault filters, topologies.

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace hotstuff1::sim {
namespace {

// --- Simulator ------------------------------------------------------------------

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.After(30, [&] { order.push_back(3); });
  sim.After(10, [&] { order.push_back(1); });
  sim.After(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.EventsProcessed(), 3u);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.After(5, [&] { order.push_back(1); });
  sim.After(5, [&] { order.push_back(2); });
  sim.After(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.After(10, [&] {
    fired.push_back(sim.Now());
    sim.After(5, [&] { fired.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.After(10, [] {});
  sim.Run();
  SimTime fired_at = -1;
  sim.At(3, [&] { fired_at = sim.Now(); });  // 3 < now=10
  sim.Run();
  EXPECT_EQ(fired_at, 10);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  int count = 0;
  sim.At(100, [&] { ++count; });
  sim.At(300, [&] { ++count; });
  sim.RunUntil(200);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), 200);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(400);
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, EventCapStopsRunaway) {
  Simulator sim;
  sim.SetEventCap(100);
  std::function<void()> loop = [&] { sim.After(1, loop); };
  sim.After(1, loop);
  sim.Run();
  EXPECT_EQ(sim.EventsProcessed(), 100u);
}

// --- Network --------------------------------------------------------------------

struct TestMsg : NetMessage {
  explicit TestMsg(int v, size_t size = 64) : value(v), size_(size) {}
  int value;
  size_t size_;
  size_t WireSize() const override { return size_; }
};

struct Recorder {
  std::vector<std::pair<SimTime, int>> events;
};

NetworkConfig FastConfig() {
  NetworkConfig cfg;
  cfg.default_latency = 100;  // 100 us
  cfg.bandwidth_bytes_per_us = 1000;
  return cfg;
}

TEST(NetworkTest, PointToPointLatency) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  Recorder rec;
  net.SetHandler(1, [&](NodeId, const NetMessagePtr& m) {
    rec.events.emplace_back(sim.Now(), static_cast<const TestMsg*>(m.get())->value);
  });
  net.Send(0, 1, std::make_shared<TestMsg>(7, 1000));
  sim.Run();
  ASSERT_EQ(rec.events.size(), 1u);
  // 1000 bytes / 1000 B/us = 1us serialization + 100us latency.
  EXPECT_EQ(rec.events[0].first, 101);
  EXPECT_EQ(rec.events[0].second, 7);
}

TEST(NetworkTest, EgressBandwidthSerializesBroadcast) {
  Simulator sim;
  NetworkConfig cfg = FastConfig();
  cfg.bandwidth_bytes_per_us = 100;  // 10us per 1000-byte message
  Network net(&sim, 4, cfg);
  std::vector<SimTime> arrivals;
  for (NodeId i = 1; i < 4; ++i) {
    net.SetHandler(i, [&](NodeId, const NetMessagePtr&) {
      arrivals.push_back(sim.Now());
    });
  }
  net.Broadcast(0, std::make_shared<TestMsg>(1, 1000), /*include_self=*/false);
  sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Copies leave the egress back to back: arrivals at 110, 120, 130.
  EXPECT_EQ(arrivals[0], 110);
  EXPECT_EQ(arrivals[1], 120);
  EXPECT_EQ(arrivals[2], 130);
}

TEST(NetworkTest, SelfDeliveryUsesLoopback) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  SimTime arrival = -1;
  net.SetHandler(0, [&](NodeId, const NetMessagePtr&) { arrival = sim.Now(); });
  net.Send(0, 0, std::make_shared<TestMsg>(1, 1'000'000));
  sim.Run();
  EXPECT_EQ(arrival, 1);  // loopback skips egress serialization
}

TEST(NetworkTest, CpuBusyDefersDelivery) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  std::vector<SimTime> handled;
  net.SetHandler(1, [&](NodeId, const NetMessagePtr&) {
    handled.push_back(sim.Now());
    net.ConsumeCpu(1, 500);  // handler takes 500us of CPU
  });
  net.Send(0, 1, std::make_shared<TestMsg>(1, 100));
  net.Send(0, 1, std::make_shared<TestMsg>(2, 100));
  sim.Run();
  ASSERT_EQ(handled.size(), 2u);
  // Second message arrives ~100.2us but waits for the CPU to free at ~600.
  EXPECT_GT(handled[1], handled[0] + 490);
}

TEST(NetworkTest, CrashDropsTraffic) {
  Simulator sim;
  Network net(&sim, 3, FastConfig());
  int received = 0;
  net.SetHandler(2, [&](NodeId, const NetMessagePtr&) { ++received; });
  net.Crash(2);
  net.Send(0, 2, std::make_shared<TestMsg>(1));
  sim.Run();
  EXPECT_EQ(received, 0);
  net.Crash(0);
  net.Recover(2);
  net.Send(0, 2, std::make_shared<TestMsg>(2));  // crashed sender
  sim.Run();
  EXPECT_EQ(received, 0);
}

TEST(NetworkTest, ImpairNodeAddsDelayBothDirections) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  std::vector<SimTime> arrivals;
  net.SetHandler(0, [&](NodeId, const NetMessagePtr&) { arrivals.push_back(sim.Now()); });
  net.SetHandler(1, [&](NodeId, const NetMessagePtr&) { arrivals.push_back(sim.Now()); });
  net.ImpairNode(1, Millis(5));
  net.Send(0, 1, std::make_shared<TestMsg>(1, 100));  // to impaired
  sim.Run();
  net.Send(1, 0, std::make_shared<TestMsg>(2, 100));  // from impaired
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[0], Millis(5));
  EXPECT_GT(arrivals[1] - arrivals[0], Millis(5));
  net.ClearImpairments();
  arrivals.clear();
  const SimTime sent_at = sim.Now();
  net.Send(0, 1, std::make_shared<TestMsg>(3, 100));
  sim.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_LT(arrivals[0] - sent_at, Millis(1));
}

TEST(NetworkTest, DropRuleDiscardsDeterministically) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  int received = 0;
  net.SetHandler(1, [&](NodeId, const NetMessagePtr&) { ++received; });
  FaultRule rule;
  rule.from_match.assign(2, true);
  rule.to_match.assign(2, true);
  rule.drop_prob = 1.0;
  const int id = net.AddRule(rule);
  for (int i = 0; i < 10; ++i) net.Send(0, 1, std::make_shared<TestMsg>(i));
  sim.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_dropped(), 10u);
  net.RemoveRule(id);
  net.Send(0, 1, std::make_shared<TestMsg>(11));
  sim.Run();
  EXPECT_EQ(received, 1);
}

TEST(NetworkTest, LoopbackIgnoresFaultRulesAndImpairments) {
  // Self-delivery models a replica handing a message to itself in memory; it
  // must not be droppable, delayable, or jitterable by wire-level faults.
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  std::vector<SimTime> arrivals;
  net.SetHandler(0, [&](NodeId, const NetMessagePtr&) {
    arrivals.push_back(sim.Now());
  });
  FaultRule rule;
  rule.from_match.assign(2, true);
  rule.to_match.assign(2, true);
  rule.drop_prob = 1.0;
  rule.extra_delay = Millis(50);
  net.AddRule(rule);
  net.ImpairNode(0, Millis(5));
  net.Send(0, 0, std::make_shared<TestMsg>(1, 100));
  sim.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 1);  // loopback latency only
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(NetworkTest, SelfTrafficDoesNotPerturbFaultRngStreams) {
  // Regression: self-delivery used to run the fault-rule loop, consuming
  // sender-RNG draws and thereby shifting the drop/jitter pattern of
  // unrelated cross-node traffic. Loopback is now exempt from rules and
  // jitter, so the cross-node schedule is byte-identical whether or not
  // self-sends are interleaved.
  auto run = [](bool with_self_sends) {
    Simulator sim;
    NetworkConfig cfg;
    cfg.default_latency = 100;
    cfg.bandwidth_bytes_per_us = 1000;
    cfg.jitter_frac = 0.3;
    Network net(&sim, 2, cfg);
    std::vector<SimTime> arrivals;
    net.SetHandler(0, [](NodeId, const NetMessagePtr&) {});
    net.SetHandler(1, [&](NodeId, const NetMessagePtr&) {
      arrivals.push_back(sim.Now());
    });
    FaultRule rule;
    rule.from_match.assign(2, true);
    rule.to_match.assign(2, true);
    rule.drop_prob = 0.5;
    net.AddRule(rule);
    // Sends fire at fixed absolute times so the two runs' send schedules are
    // identical by construction; only RNG consumption could differ.
    for (int i = 0; i < 32; ++i) {
      sim.At(i * 1000, [&net, i, with_self_sends] {
        if (with_self_sends) net.Send(0, 0, std::make_shared<TestMsg>(i, 100));
        net.Send(0, 1, std::make_shared<TestMsg>(i, 100));
      });
    }
    sim.Run();
    return arrivals;
  };
  const std::vector<SimTime> without = run(false);
  EXPECT_FALSE(without.empty());               // drop_prob=0.5 passes some
  EXPECT_LT(without.size(), 32u);              // ... and drops some
  EXPECT_EQ(without, run(true));
}

#if GTEST_HAS_DEATH_TEST
TEST(NetworkDeathTest, SetLatencyRejectsOutOfRangeNode) {
  // Regression: out-of-range ids used to write past the latency matrix.
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  EXPECT_DEATH(net.SetLatency(2, 0, Millis(1)), "vs");
  EXPECT_DEATH(net.SetLatency(0, 2, Millis(1)), "vs");
}

TEST(NetworkDeathTest, SetSymmetricLatencyRejectsOutOfRangeNode) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  EXPECT_DEATH(net.SetSymmetricLatency(5, 0, Millis(1)), "vs");
  EXPECT_DEATH(net.SetSymmetricLatency(0, 5, Millis(1)), "vs");
}

TEST(NetworkDeathTest, ImpairNodeRejectsOutOfRangeNode) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  EXPECT_DEATH(net.ImpairNode(2, Millis(1)), "vs");
}
#endif  // GTEST_HAS_DEATH_TEST

TEST(NetworkTest, StatsCountMessagesAndBytes) {
  Simulator sim;
  Network net(&sim, 3, FastConfig());
  net.SetHandler(1, [](NodeId, const NetMessagePtr&) {});
  net.SetHandler(2, [](NodeId, const NetMessagePtr&) {});
  net.Send(0, 1, std::make_shared<TestMsg>(1, 100));
  net.Send(0, 2, std::make_shared<TestMsg>(2, 200));
  sim.Run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

// --- Topology -------------------------------------------------------------------

TEST(TopologyTest, LanIsUniform) {
  Topology t = Topology::Lan(8, Millis(0.5));
  EXPECT_EQ(t.n, 8u);
  EXPECT_EQ(t.OneWay(0, 7), Millis(0.5));
  EXPECT_EQ(t.OneWay(3, 4), Millis(0.5));
}

TEST(TopologyTest, GeoRoundRobinAssignment) {
  Topology t = Topology::Geo(10, 5);
  EXPECT_EQ(t.region_of[0], 0u);
  EXPECT_EQ(t.region_of[4], 4u);
  EXPECT_EQ(t.region_of[5], 0u);
  // NV <-> Hong Kong is the documented 100ms one-way.
  EXPECT_EQ(t.OneWay(0, 1), Millis(100));
  // Symmetric.
  EXPECT_EQ(t.OneWay(1, 0), t.OneWay(0, 1));
  // Intra-region is LAN-like.
  EXPECT_EQ(t.OneWay(0, 5), Millis(0.4));
}

TEST(TopologyTest, TwoRegionSplit) {
  Topology t = Topology::TwoRegion(31, 10);
  int london = 0;
  for (uint32_t r = 0; r < t.n; ++r) {
    if (t.region_of[r] == 1) ++london;
  }
  EXPECT_EQ(london, 10);
  // First nodes are NV.
  EXPECT_EQ(t.region_of[0], 0u);
  EXPECT_EQ(t.region_of[30], 1u);
  EXPECT_EQ(t.OneWay(0, 30), Topology::RegionOneWay(kNorthVirginia, kLondon));
}

TEST(TopologyTest, ApplyInstallsLatencies) {
  Simulator sim;
  Network net(&sim, 4, FastConfig());
  Topology t = Topology::Geo(4, 2);  // NV, HK alternating
  t.Apply(&net);
  EXPECT_EQ(net.latency(0, 1), Millis(100));
  EXPECT_EQ(net.latency(0, 2), Millis(0.4));
}

TEST(TopologyTest, RegionNames) {
  EXPECT_EQ(Topology::RegionName(kNorthVirginia), "North Virginia");
  EXPECT_EQ(Topology::RegionName(kZurich), "Zurich");
}

}  // namespace
}  // namespace hotstuff1::sim

// The experiment runner itself: configuration plumbing, warmup windowing,
// RunPaperPoint semantics, topologies, safety checking, and the report
// formatting helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/experiment.h"
#include "runtime/report.h"

namespace hotstuff1 {
namespace {

TEST(ExperimentTest, ProtocolNamesAndSpeculativeness) {
  EXPECT_STREQ(ProtocolName(ProtocolKind::kHotStuff), "HotStuff");
  EXPECT_STREQ(ProtocolName(ProtocolKind::kHotStuff2), "HotStuff-2");
  EXPECT_STREQ(ProtocolName(ProtocolKind::kHotStuff1), "HotStuff-1");
  EXPECT_STREQ(ProtocolName(ProtocolKind::kHotStuff1Basic), "HotStuff-1 (basic)");
  EXPECT_STREQ(ProtocolName(ProtocolKind::kHotStuff1Slotted),
               "HotStuff-1 (slotting)");
  EXPECT_FALSE(IsSpeculative(ProtocolKind::kHotStuff));
  EXPECT_FALSE(IsSpeculative(ProtocolKind::kHotStuff2));
  EXPECT_TRUE(IsSpeculative(ProtocolKind::kHotStuff1Basic));
  EXPECT_TRUE(IsSpeculative(ProtocolKind::kHotStuff1));
  EXPECT_TRUE(IsSpeculative(ProtocolKind::kHotStuff1Slotted));
}

ExperimentConfig Tiny() {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 4;
  cfg.batch_size = 10;
  cfg.duration = Millis(200);
  cfg.warmup = Millis(100);
  cfg.num_clients = 60;
  cfg.seed = 3;
  return cfg;
}

TEST(ExperimentTest, WarmupExcludedFromWindow) {
  // Doubling the warmup must not change throughput materially (steady
  // state), while total accepted counts only the measurement window.
  ExperimentConfig a = Tiny();
  ExperimentConfig b = Tiny();
  b.warmup = Millis(200);
  const auto ra = RunExperiment(a);
  const auto rb = RunExperiment(b);
  EXPECT_NEAR(ra.throughput_tps, rb.throughput_tps, ra.throughput_tps * 0.15);
}

TEST(ExperimentTest, ThroughputMatchesAcceptedOverDuration) {
  const auto res = RunExperiment(Tiny());
  EXPECT_DOUBLE_EQ(res.throughput_tps,
                   static_cast<double>(res.accepted) / 0.2);
}

TEST(ExperimentTest, ReplicaCommitsTrackClientAccepts) {
  Experiment exp(Tiny());
  const auto res = exp.Run();
  // Replica-side committed txns (window) and client accepts agree within
  // the pipeline tail.
  EXPECT_NEAR(static_cast<double>(res.committed_txns),
              static_cast<double>(res.accepted), 60.0);
}

TEST(ExperimentTest, PaperPointUsesLightLoadLatency) {
  const ExperimentConfig cfg = Tiny();
  const auto sat = RunExperiment(cfg);
  const auto pp = RunPaperPoint(cfg);
  // Same saturated throughput...
  EXPECT_NEAR(pp.throughput_tps, sat.throughput_tps, sat.throughput_tps * 0.25);
  // ...but latency measured without queueing, hence lower.
  EXPECT_LT(pp.avg_latency_ms, sat.avg_latency_ms);
}

TEST(ExperimentTest, DefaultTopologyIsLan) {
  Experiment exp(Tiny());
  exp.Setup();
  EXPECT_EQ(exp.network().latency(0, 1), Millis(0.4));
}

TEST(ExperimentTest, GeoTopologyAppliedToNetwork) {
  ExperimentConfig cfg = Tiny();
  cfg.topology = sim::Topology::Geo(4, 2);
  Experiment exp(cfg);
  exp.Setup();
  EXPECT_EQ(exp.network().latency(0, 1), Millis(100));  // NV <-> HK
  EXPECT_EQ(exp.network().latency(0, 2), Millis(0.4));  // both NV
}

TEST(ExperimentTest, ImpairmentAppliedToLastReplicas) {
  ExperimentConfig cfg = Tiny();
  cfg.inject_delay = Millis(5);
  cfg.num_impaired = 2;
  cfg.view_timer = Millis(40);
  cfg.delta = Millis(6);
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 10u);
}

TEST(ExperimentTest, CrashFaultMarksReplicas) {
  ExperimentConfig cfg = Tiny();
  cfg.fault = Fault::kCrash;
  cfg.num_faulty = 1;
  cfg.view_timer = Millis(6);
  cfg.delta = Millis(1);
  Experiment exp(cfg);
  exp.Setup();
  EXPECT_TRUE(exp.replicas()[1]->crashed());
  EXPECT_FALSE(exp.replicas()[0]->crashed());
  EXPECT_TRUE(exp.network().IsCrashed(1));
}

TEST(ExperimentTest, AdversaryPlanPlacement) {
  AdversaryPlan plan = MakeAdversaryPlan(7, Fault::kTailFork, 2, 3);
  EXPECT_EQ(plan.members, (std::vector<ReplicaId>{1, 2}));
  EXPECT_FALSE((*plan.faulty_mask)[0]);  // observer stays honest
  EXPECT_TRUE((*plan.faulty_mask)[1]);
  const AdversarySpec honest = plan.SpecFor(0);
  EXPECT_EQ(honest.fault, Fault::kNone);
  const AdversarySpec bad = plan.SpecFor(2);
  EXPECT_EQ(bad.fault, Fault::kTailFork);
  EXPECT_TRUE(bad.collude);
  // Requested 3 victims, but |S| <= f = 2 (see MakeAdversaryPlan): clamped.
  EXPECT_EQ(bad.rollback_victims, 2u);
}

TEST(ExperimentTest, SafetyCheckerDetectsForgedDivergence) {
  // CheckSafety compares committed chains; sanity check that it passes on
  // a healthy run (divergence construction is covered by the EXPECT_DEATH
  // ledger tests, since a correct replica refuses conflicting commits).
  Experiment exp(Tiny());
  exp.Run();
  EXPECT_TRUE(exp.CheckSafety());
}

// --- report helpers --------------------------------------------------------------

TEST(ReportTest, TableFormatsAligned) {
  ReportTable t("Caption", {"col1", "column2"});
  t.AddRow({"a", "bbbb"});
  t.AddRow({"cccccc", "d"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Caption =="), std::string::npos);
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("cccccc"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(FormatTps(123), "123");
  EXPECT_EQ(FormatTps(4500), "4.5k");
  EXPECT_EQ(FormatTps(1'230'000), "1.23M");
  EXPECT_EQ(FormatMs(3.5), "3.50ms");
  EXPECT_EQ(FormatMs(1500), "1.50s");
  EXPECT_EQ(FormatCount(42), "42");
}

TEST(ReportTest, BenchDurationEnvOverride) {
  unsetenv("H1_DURATION_MS");
  EXPECT_EQ(BenchDuration(1000), Millis(1000));
  setenv("H1_DURATION_MS", "250", 1);
  EXPECT_EQ(BenchDuration(1000), Millis(250));
  unsetenv("H1_DURATION_MS");
}

}  // namespace
}  // namespace hotstuff1

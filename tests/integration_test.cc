// End-to-end smoke and cross-protocol integration tests: every protocol
// commits transactions on a fault-free LAN, preserves safety, and yields
// consistent committed prefixes across replicas.

#include <gtest/gtest.h>

#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

ExperimentConfig SmallConfig(ProtocolKind kind) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = 4;
  cfg.batch_size = 20;
  cfg.duration = Millis(300);
  cfg.warmup = Millis(100);
  cfg.num_clients = 200;
  cfg.seed = 42;
  return cfg;
}

class AllProtocolsTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocolsTest, CommitsTransactionsFaultFree) {
  ExperimentResult res = RunExperiment(SmallConfig(GetParam()));
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 100u) << res.protocol;
  EXPECT_GT(res.committed_txns, 100u) << res.protocol;
  EXPECT_GT(res.avg_latency_ms, 0.0);
}

TEST_P(AllProtocolsTest, DeterministicAcrossRuns) {
  ExperimentResult a = RunExperiment(SmallConfig(GetParam()));
  ExperimentResult b = RunExperiment(SmallConfig(GetParam()));
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.committed_txns, b.committed_txns);
  EXPECT_DOUBLE_EQ(a.avg_latency_ms, b.avg_latency_ms);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocolsTest,
    ::testing::Values(ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
                      ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
                      ProtocolKind::kHotStuff1Slotted),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      switch (info.param) {
        case ProtocolKind::kHotStuff: return "HotStuff";
        case ProtocolKind::kHotStuff2: return "HotStuff2";
        case ProtocolKind::kHotStuff1Basic: return "HotStuff1Basic";
        case ProtocolKind::kHotStuff1: return "HotStuff1";
        case ProtocolKind::kHotStuff1Slotted: return "HotStuff1Slotted";
      }
      return "Unknown";
    });

TEST(IntegrationTest, SpeculativeLatencyOrdering) {
  // The paper's headline (Fig. 1): HotStuff-1 < HotStuff-2 < HotStuff.
  auto run = [](ProtocolKind k) {
    ExperimentConfig cfg = SmallConfig(k);
    cfg.n = 7;
    cfg.duration = Millis(500);
    return RunPaperPoint(cfg);
  };
  const double hs = run(ProtocolKind::kHotStuff).avg_latency_ms;
  const double hs2 = run(ProtocolKind::kHotStuff2).avg_latency_ms;
  const double hs1 = run(ProtocolKind::kHotStuff1).avg_latency_ms;
  EXPECT_LT(hs1, hs2);
  EXPECT_LT(hs2, hs);
}

}  // namespace
}  // namespace hotstuff1

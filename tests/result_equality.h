// Shared determinism assertion: every deterministic ExperimentResult field
// must agree between two runs of the same configuration. Lives in one place
// so that a field added to ExperimentResult is covered by every determinism
// test (parallel_sim_test, determinism_stress_test) at once. wall_ms is the
// one sanctioned nondeterministic field and is deliberately not compared.

#ifndef HOTSTUFF1_TESTS_RESULT_EQUALITY_H_
#define HOTSTUFF1_TESTS_RESULT_EQUALITY_H_

#include <gtest/gtest.h>

#include "runtime/experiment.h"

namespace hotstuff1 {

inline void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.accepted_speculative, b.accepted_speculative);
  EXPECT_EQ(a.resubmissions, b.resubmissions);
  EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
  EXPECT_DOUBLE_EQ(a.avg_latency_ms, b.avg_latency_ms);
  EXPECT_DOUBLE_EQ(a.p50_latency_ms, b.p50_latency_ms);
  EXPECT_DOUBLE_EQ(a.p99_latency_ms, b.p99_latency_ms);
  EXPECT_DOUBLE_EQ(a.p999_latency_ms, b.p999_latency_ms);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.committed_blocks, b.committed_blocks);
  EXPECT_EQ(a.committed_txns, b.committed_txns);
  EXPECT_EQ(a.views, b.views);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.rollback_events, b.rollback_events);
  EXPECT_EQ(a.blocks_rolled_back, b.blocks_rolled_back);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.committee_changes, b.committee_changes);
  EXPECT_EQ(a.final_committee_n, b.final_committee_n);
  EXPECT_EQ(a.safety_ok, b.safety_ok);
  EXPECT_EQ(a.event_cap_hit, b.event_cap_hit);
  EXPECT_EQ(a.oracle_violations, b.oracle_violations);
  EXPECT_EQ(a.liveness_violations, b.liveness_violations);
  // Diagnostics embed event counters and virtual timestamps, so equality
  // here proves the oracles observed the *same* serial event order under
  // every executor configuration, not just the same verdict.
  EXPECT_EQ(a.oracle_first_violation, b.oracle_first_violation);
  EXPECT_EQ(a.liveness_first_violation, b.liveness_first_violation);
  // cap_parallelism_degraded is deliberately NOT compared: it reports a
  // property of the executor shape (event cap + sim_jobs > 1), not of the
  // simulated run.
}

}  // namespace hotstuff1

#endif  // HOTSTUFF1_TESTS_RESULT_EQUALITY_H_

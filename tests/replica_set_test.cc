// ReplicaSet: multi-word bit ops, popcount/quorum thresholds at every word
// boundary the n=128 extension crosses, the hard out-of-range check, and the
// client-pool regression proving the old `1ULL << (from % 64)` aliasing bug
// (two replicas 64 apart sharing one vote bit) is gone.

#include <gtest/gtest.h>

#include "client/client_pool.h"
#include "common/replica_set.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

TEST(ReplicaSetTest, StartsEmpty) {
  ReplicaSet s;
  EXPECT_TRUE(s.None());
  EXPECT_EQ(s.Count(), 0u);
  for (uint32_t r : {0u, 63u, 64u, 255u}) EXPECT_FALSE(s.Test(r));
}

TEST(ReplicaSetTest, SetTestAcrossWordBoundaries) {
  ReplicaSet s;
  const uint32_t ids[] = {0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 255};
  for (uint32_t r : ids) s.Set(r);
  EXPECT_EQ(s.Count(), 11u);
  for (uint32_t r : ids) EXPECT_TRUE(s.Test(r));
  // Neighbours of every boundary id stay clear: no bleed between words.
  for (uint32_t r : {2u, 62u, 66u, 126u, 130u, 190u, 193u, 254u}) {
    EXPECT_FALSE(s.Test(r)) << r;
  }
  // Setting twice is idempotent.
  s.Set(64);
  EXPECT_EQ(s.Count(), 11u);
}

TEST(ReplicaSetTest, NoAliasingAcrossWords) {
  // The old single-word mask folded id 64+k onto id k. Every id must own
  // its own bit now.
  for (uint32_t k : {0u, 1u, 63u}) {
    ReplicaSet s;
    s.Set(k);
    EXPECT_FALSE(s.Test(k + 64));
    EXPECT_FALSE(s.Test(k + 128));
    s.Set(k + 64);
    EXPECT_EQ(s.Count(), 2u) << "ids " << k << " and " << k + 64
                             << " must occupy distinct bits";
  }
}

TEST(ReplicaSetTest, CountReachesQuorumAtWordBoundaryCommittees) {
  // For each committee size the n=128 extension crosses, filling the first
  // `quorum` ids must reach the n-f threshold exactly once.
  for (uint32_t n : {63u, 64u, 65u, 96u, 127u, 128u}) {
    const uint32_t f = (n - 1) / 3;
    const uint32_t quorum = n - f;
    ReplicaSet s;
    for (uint32_t r = 0; r < quorum - 1; ++r) s.Set(r);
    EXPECT_LT(s.Count(), quorum) << "n=" << n;
    s.Set(quorum - 1);
    EXPECT_EQ(s.Count(), quorum) << "n=" << n;
    for (uint32_t r = quorum; r < n; ++r) s.Set(r);
    EXPECT_EQ(s.Count(), n) << "n=" << n;
  }
}

TEST(ReplicaSetTest, UnionIntersectionEquality) {
  ReplicaSet a = ReplicaSet::Single(3);
  a.Set(70);
  ReplicaSet b = ReplicaSet::Single(70);
  b.Set(200);

  const ReplicaSet u = a | b;
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_TRUE(u.Test(3));
  EXPECT_TRUE(u.Test(70));
  EXPECT_TRUE(u.Test(200));

  const ReplicaSet i = a & b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(70));

  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a | b, b | a);
}

TEST(ReplicaSetDeathTest, OutOfRangeIdIsFatal) {
  // An id beyond the capacity is a protocol bug, not a modular wrap.
  ReplicaSet s;
  EXPECT_DEATH(s.Set(ReplicaSet::kCapacity), "ReplicaSet capacity");
  EXPECT_DEATH((void)s.Test(ReplicaSet::kCapacity), "ReplicaSet capacity");
}

// --- client-pool regression ---------------------------------------------------

class WidePoolTest : public ::testing::Test {
 protected:
  // 68 replicas: ids 1 and 65 collide modulo 64, the old aliasing pair.
  static constexpr uint32_t kN = 68;

  WidePoolTest() {
    ClientPoolConfig cfg;
    cfg.num_clients = 10;
    cfg.quorum_commit = 2;                  // f+1 for a small f
    cfg.quorum_speculative = 0;
    cfg.track_accepted = true;
    pool_ = std::make_unique<ClientPool>(&sim_, &workload_, cfg,
                                         std::vector<SimTime>(kN, Millis(1)));
    pool_->Start();
    sim_.RunUntil(Millis(2));
  }

  BlockPtr MakeBlock(std::vector<Transaction> txns) {
    return std::make_shared<Block>(BlockId{1, 1}, Block::Genesis()->hash(), 1, 0,
                                   std::move(txns));
  }

  void Respond(const BlockPtr& block, std::initializer_list<ReplicaId> replicas) {
    const std::vector<uint64_t> results(block->txns().size(), 99);
    for (ReplicaId r : replicas) {
      pool_->OnBlockResponse(r, block, results, /*speculative=*/false, sim_.Now());
    }
    sim_.RunUntil(sim_.Now() + Millis(2));
  }

  sim::Simulator sim_;
  YcsbWorkload workload_;
  std::unique_ptr<ClientPool> pool_;
};

TEST_F(WidePoolTest, RepliesSixtyFourApartFormAQuorum) {
  // Regression: replicas 1 and 65 used to share vote bit 1, so their two
  // committed responses counted as one and the quorum never formed.
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {1});
  EXPECT_EQ(pool_->accepted(), 0u);
  Respond(block, {65});
  EXPECT_EQ(pool_->accepted(), 10u);
}

TEST_F(WidePoolTest, DuplicateHighIdRepliesDoNotInflateQuorum) {
  // The dual of the aliasing bug: a double reply from a >64 id must still
  // count once.
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {65, 65, 65});
  EXPECT_EQ(pool_->accepted(), 0u);
  Respond(block, {66});
  EXPECT_EQ(pool_->accepted(), 10u);
}

TEST_F(WidePoolTest, ResponseFromUnknownReplicaIsFatal) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  EXPECT_DEATH(Respond(block, {kN}), "unknown replica");
}

}  // namespace
}  // namespace hotstuff1

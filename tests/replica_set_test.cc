// ReplicaSet: multi-word bit ops, popcount/quorum thresholds at every word
// boundary up to the kCapacity=512 default (the n=512 extension crosses
// eight words), the hard out-of-range check, the BasicReplicaSet capacity
// parameter, and the client-pool regression proving the old
// `1ULL << (from % 64)` aliasing bug (two replicas 64 apart sharing one vote
// bit) is gone.

#include <gtest/gtest.h>

#include "client/client_pool.h"
#include "common/replica_set.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

TEST(ReplicaSetTest, StartsEmpty) {
  ReplicaSet s;
  EXPECT_TRUE(s.None());
  EXPECT_EQ(s.Count(), 0u);
  for (uint32_t r : {0u, 63u, 64u, 255u}) EXPECT_FALSE(s.Test(r));
}

TEST(ReplicaSetTest, SetTestAcrossWordBoundaries) {
  ReplicaSet s;
  const uint32_t ids[] = {0,   1,   63,  64,  65,  127, 128, 129, 191,
                          192, 255, 256, 257, 319, 320, 383, 384, 447,
                          448, 510, 511};
  for (uint32_t r : ids) s.Set(r);
  EXPECT_EQ(s.Count(), 21u);
  for (uint32_t r : ids) EXPECT_TRUE(s.Test(r));
  // Neighbours of every boundary id stay clear: no bleed between words.
  for (uint32_t r : {2u, 62u, 66u, 126u, 130u, 190u, 193u, 254u, 258u, 318u,
                     321u, 382u, 385u, 446u, 449u, 509u}) {
    EXPECT_FALSE(s.Test(r)) << r;
  }
  // Setting twice is idempotent.
  s.Set(64);
  s.Set(511);
  EXPECT_EQ(s.Count(), 21u);
}

TEST(ReplicaSetTest, NoAliasingAcrossWords) {
  // The old single-word mask folded id 64+k onto id k. Every id must own
  // its own bit now.
  for (uint32_t k : {0u, 1u, 63u}) {
    ReplicaSet s;
    s.Set(k);
    EXPECT_FALSE(s.Test(k + 64));
    EXPECT_FALSE(s.Test(k + 128));
    s.Set(k + 64);
    EXPECT_EQ(s.Count(), 2u) << "ids " << k << " and " << k + 64
                             << " must occupy distinct bits";
  }
}

TEST(ReplicaSetTest, CountReachesQuorumAtWordBoundaryCommittees) {
  // For each committee size the n=512 extension crosses, filling the first
  // `quorum` ids must reach the n-f threshold exactly once. 257 and 511 sit
  // just past / just under a word boundary; 512 fills the whole set.
  for (uint32_t n : {63u, 64u, 65u, 96u, 127u, 128u, 256u, 257u, 511u, 512u}) {
    const uint32_t f = (n - 1) / 3;
    const uint32_t quorum = n - f;
    ReplicaSet s;
    for (uint32_t r = 0; r < quorum - 1; ++r) s.Set(r);
    EXPECT_LT(s.Count(), quorum) << "n=" << n;
    s.Set(quorum - 1);
    EXPECT_EQ(s.Count(), quorum) << "n=" << n;
    for (uint32_t r = quorum; r < n; ++r) s.Set(r);
    EXPECT_EQ(s.Count(), n) << "n=" << n;
  }
}

TEST(ReplicaSetTest, UnionIntersectionEquality) {
  ReplicaSet a = ReplicaSet::Single(3);
  a.Set(70);
  ReplicaSet b = ReplicaSet::Single(70);
  b.Set(200);

  const ReplicaSet u = a | b;
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_TRUE(u.Test(3));
  EXPECT_TRUE(u.Test(70));
  EXPECT_TRUE(u.Test(200));

  const ReplicaSet i = a & b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(70));

  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a | b, b | a);
}

TEST(ReplicaSetTest, CapacityIsCompileTimeParameter) {
  // The default alias must track HS1_REPLICA_SET_CAPACITY (512 unless the
  // build overrides it), and other instantiations size independently.
  static_assert(ReplicaSet::kCapacity == HS1_REPLICA_SET_CAPACITY);
  static_assert(BasicReplicaSet<64>::kCapacity == 64);
  static_assert(BasicReplicaSet<1024>::kCapacity == 1024);
  BasicReplicaSet<64> narrow;
  narrow.Set(63);
  EXPECT_TRUE(narrow.Test(63));
  EXPECT_EQ(narrow.Count(), 1u);
  BasicReplicaSet<1024> wide;
  wide.Set(1023);
  EXPECT_TRUE(wide.Test(1023));
  EXPECT_EQ(wide.Count(), 1u);
}

TEST(ReplicaSetDeathTest, OutOfRangeIdIsFatal) {
  // An id beyond the capacity is a protocol bug, not a modular wrap. With the
  // 512 default this covers the old hard-fail point (id 256) as a plain
  // in-range Set and fails only at the new boundary.
  ReplicaSet s;
  s.Set(256);  // legal now; used to be the capacity wall
  EXPECT_DEATH(s.Set(ReplicaSet::kCapacity), "ReplicaSet capacity");
  EXPECT_DEATH((void)s.Test(ReplicaSet::kCapacity), "ReplicaSet capacity");
  BasicReplicaSet<64> narrow;
  EXPECT_DEATH(narrow.Set(64), "ReplicaSet capacity");
}

// --- client-pool regression ---------------------------------------------------

class WidePoolTest : public ::testing::Test {
 protected:
  // 68 replicas: ids 1 and 65 collide modulo 64, the old aliasing pair.
  static constexpr uint32_t kN = 68;

  WidePoolTest() {
    ClientPoolConfig cfg;
    cfg.num_clients = 10;
    cfg.quorum_commit = 2;                  // f+1 for a small f
    cfg.quorum_speculative = 0;
    cfg.track_accepted = true;
    pool_ = std::make_unique<ClientPool>(&sim_, &workload_, cfg,
                                         std::vector<SimTime>(kN, Millis(1)));
    pool_->Start();
    sim_.RunUntil(Millis(2));
  }

  BlockPtr MakeBlock(std::vector<Transaction> txns) {
    return std::make_shared<Block>(BlockId{1, 1}, Block::Genesis()->hash(), 1, 0,
                                   std::move(txns));
  }

  void Respond(const BlockPtr& block, std::initializer_list<ReplicaId> replicas) {
    const std::vector<uint64_t> results(block->txns().size(), 99);
    for (ReplicaId r : replicas) {
      pool_->OnBlockResponse(r, block, results, /*speculative=*/false, sim_.Now());
    }
    sim_.RunUntil(sim_.Now() + Millis(2));
  }

  sim::Simulator sim_;
  YcsbWorkload workload_;
  std::unique_ptr<ClientPool> pool_;
};

TEST_F(WidePoolTest, RepliesSixtyFourApartFormAQuorum) {
  // Regression: replicas 1 and 65 used to share vote bit 1, so their two
  // committed responses counted as one and the quorum never formed.
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {1});
  EXPECT_EQ(pool_->accepted(), 0u);
  Respond(block, {65});
  EXPECT_EQ(pool_->accepted(), 10u);
}

TEST_F(WidePoolTest, DuplicateHighIdRepliesDoNotInflateQuorum) {
  // The dual of the aliasing bug: a double reply from a >64 id must still
  // count once.
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {65, 65, 65});
  EXPECT_EQ(pool_->accepted(), 0u);
  Respond(block, {66});
  EXPECT_EQ(pool_->accepted(), 10u);
}

TEST_F(WidePoolTest, ResponseFromUnknownReplicaIsFatal) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  EXPECT_DEATH(Respond(block, {kN}), "unknown replica");
}

}  // namespace
}  // namespace hotstuff1

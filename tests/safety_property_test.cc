// Property sweeps: safety (Thm. B.5), client safety (Cor. B.10), liveness
// (Thm. B.8) and state-machine agreement across protocols x faults x seeds.
// Determinism of the simulator makes every failure reproducible from its
// parameter tuple.

#include <gtest/gtest.h>

#include <tuple>

#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

using SweepParam = std::tuple<ProtocolKind, Fault, uint64_t /*seed*/>;

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [kind, fault, seed] = info.param;
  std::string name;
  switch (kind) {
    case ProtocolKind::kHotStuff: name = "HotStuff"; break;
    case ProtocolKind::kHotStuff2: name = "HotStuff2"; break;
    case ProtocolKind::kHotStuff1Basic: name = "Basic"; break;
    case ProtocolKind::kHotStuff1: name = "HS1"; break;
    case ProtocolKind::kHotStuff1Slotted: name = "Slotted"; break;
  }
  switch (fault) {
    case Fault::kNone: name += "_NoFault"; break;
    case Fault::kCrash: name += "_Crash"; break;
    case Fault::kSlowLeader: name += "_Slow"; break;
    case Fault::kTailFork: name += "_TailFork"; break;
    case Fault::kRollbackAttack: name += "_Rollback"; break;
  }
  return name + "_s" + std::to_string(seed);
}

class SafetySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SafetySweep, SafetyAndClientSafetyHold) {
  const auto [kind, fault, seed] = GetParam();
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = 7;  // f = 2
  cfg.batch_size = 10;
  cfg.duration = Millis(500);
  cfg.warmup = Millis(100);
  cfg.num_clients = 120;
  cfg.view_timer = Millis(8);
  cfg.fault = fault;
  cfg.num_faulty = fault == Fault::kNone ? 0 : 2;
  cfg.rollback_victims = 2;
  cfg.seed = seed;
  cfg.track_accepted = true;

  Experiment exp(cfg);
  const ExperimentResult res = exp.Run();

  // Theorem B.5 (safety): equal-position committed blocks agree.
  EXPECT_TRUE(res.safety_ok);

  // Theorem B.8 (liveness): with at most f faulty replicas, correct
  // replicas keep committing.
  EXPECT_GT(res.accepted, 20u);

  // Corollary B.10 (client safety): every block accepted by a client
  // (speculatively or not) is committed by some correct replica, modulo the
  // in-flight tail at the end of the run.
  const SimTime cutoff = cfg.warmup + cfg.duration - Millis(150);
  for (const auto& rec : exp.clients().accepted_records()) {
    if (rec.time > cutoff) continue;
    bool committed = false;
    for (const auto& r : exp.replicas()) {
      if (r->ledger().IsCommitted(rec.block_hash)) {
        committed = true;
        break;
      }
    }
    EXPECT_TRUE(committed) << "block " << rec.block_hash.Short()
                           << " accepted but never committed";
    if (!committed) break;
  }

  // State-machine agreement: identical committed prefixes imply identical
  // re-executed states.
  size_t min_len = SIZE_MAX;
  for (uint32_t id = 0; id < cfg.n; ++id) {
    if (id >= 1 && id <= cfg.num_faulty && fault != Fault::kNone) continue;
    min_len = std::min(min_len,
                       exp.replicas()[id]->ledger().committed_chain().size());
  }
  ASSERT_GT(min_len, 1u);
  uint64_t reference_fp = 0;
  bool first = true;
  for (uint32_t id = 0; id < cfg.n; ++id) {
    if (id >= 1 && id <= cfg.num_faulty && fault != Fault::kNone) continue;
    KvState kv;
    const auto& chain = exp.replicas()[id]->ledger().committed_chain();
    for (size_t h = 1; h < min_len; ++h) {
      for (const Transaction& t : chain[h]->txns()) kv.ApplyTxn(t, nullptr);
    }
    if (first) {
      reference_fp = kv.Fingerprint();
      first = false;
    } else {
      EXPECT_EQ(kv.Fingerprint(), reference_fp) << "replica " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SafetySweep,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
                          ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
                          ProtocolKind::kHotStuff1Slotted),
        ::testing::Values(Fault::kNone, Fault::kCrash, Fault::kSlowLeader,
                          Fault::kTailFork, Fault::kRollbackAttack),
        ::testing::Values(1u, 2u, 3u)),
    ParamName);

// Large committees: the same invariants with quorum math above one 64-bit
// word (n = 96: quorum 65 is the first threshold past a word; n = 128
// matches the committee sizes of the HotStuff / Narwhal evaluations).
using LargeParam = std::tuple<uint32_t /*n*/, ProtocolKind, Fault>;

std::string LargeParamName(const ::testing::TestParamInfo<LargeParam>& info) {
  const auto [n, kind, fault] = info.param;
  std::string name = "n" + std::to_string(n);
  name += kind == ProtocolKind::kHotStuff ? "_HotStuff" : "_HS1";
  name += fault == Fault::kNone ? "_NoFault" : "_Crash";
  return name;
}

class LargeCommitteeSweep : public ::testing::TestWithParam<LargeParam> {};

TEST_P(LargeCommitteeSweep, SafetyAndClientSafetyAboveOneWord) {
  const auto [n, kind, fault] = GetParam();
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = n;
  cfg.batch_size = 20;
  // With the full f crashed, a third of all views burn their 10ms timer
  // before an honest leader commits; the window must cover enough honest
  // stretches to show liveness.
  cfg.duration = fault == Fault::kNone ? Millis(300) : Millis(600);
  cfg.warmup = fault == Fault::kNone ? Millis(100) : Millis(200);
  cfg.num_clients = 200;
  cfg.view_timer = Millis(10);
  cfg.fault = fault;
  cfg.num_faulty = fault == Fault::kNone ? 0 : (n - 1) / 3;  // full f crashes
  cfg.seed = 5;
  cfg.track_accepted = true;

  Experiment exp(cfg);
  const ExperimentResult res = exp.Run();

  // Theorem B.5 (safety) and Theorem B.8 (liveness) at >1-word quorums.
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 20u);
  // The speculative path really exercises the n-f client quorum (> 64
  // matching responses per acceptance for these committees).
  if (IsSpeculative(kind) && fault == Fault::kNone) {
    EXPECT_GT(res.accepted_speculative, 0u);
  }

  // Corollary B.10 (client safety): accepted blocks are committed somewhere.
  // The in-flight tail must cover the worst honest-leader drought: up to f
  // consecutive crashed leaders burn ~f view timers before the commit that
  // confirms a late speculative acceptance.
  const SimTime tail =
      fault == Fault::kNone ? Millis(150)
                            : Millis(100) + cfg.num_faulty * cfg.view_timer;
  const SimTime cutoff = cfg.warmup + cfg.duration - tail;
  for (const auto& rec : exp.clients().accepted_records()) {
    if (rec.time > cutoff) continue;
    bool committed = false;
    for (const auto& r : exp.replicas()) {
      if (r->ledger().IsCommitted(rec.block_hash)) {
        committed = true;
        break;
      }
    }
    EXPECT_TRUE(committed) << "block " << rec.block_hash.Short()
                           << " accepted but never committed";
    if (!committed) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Wide, LargeCommitteeSweep,
    ::testing::Combine(::testing::Values(96u, 128u),
                       ::testing::Values(ProtocolKind::kHotStuff,
                                         ProtocolKind::kHotStuff1),
                       ::testing::Values(Fault::kNone, Fault::kCrash)),
    LargeParamName);

// Randomized delay jitter: message timing noise must never affect safety.
class JitterSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitterSweep, SafetyUnderNetworkJitter) {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 4;
  cfg.batch_size = 10;
  cfg.duration = Millis(400);
  cfg.warmup = Millis(100);
  cfg.num_clients = 80;
  cfg.seed = GetParam();
  cfg.inject_delay = Millis(GetParam() % 7);  // varying impairment
  cfg.num_impaired = GetParam() % 3;
  // Liveness needs the view timer above ShareTimer (3Δ) plus a delayed
  // proposal round trip; scale it with the injected delay.
  cfg.delta = Millis(1);
  cfg.view_timer = Millis(10) + 3 * cfg.inject_delay;
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterSweep,
                         ::testing::Range<uint64_t>(10, 20));

}  // namespace
}  // namespace hotstuff1

// Liveness oracle + adversary-library tests.
//
//   * LivenessOracle unit semantics: the online k-view stall detector, the
//     end-of-run silence check, GST gating (pre-GST churn is free), and the
//     skip conditions (cap-truncated runs, never-reached GST).
//   * Rollback legality (Def. 4.7): a victim rollback must be justified by an
//     outstanding misleading campaign no more than two epochs older than the
//     conflicting view. The stale-epoch case is a regression test — before
//     the campaign records existed, ANY victim rollback under kRollbackAttack
//     passed, including ones no live campaign could explain.
//   * Mutation self-test: the test_break_liveness hook breaks pacemaker epoch
//     synchronization; only the progress monitor can see the resulting stall
//     (the safety oracle stays silent — nothing unsafe ever happens).
//   * Over-threshold tier: every OverThresholdCaseFromSeed tuple must trip
//     exactly the oracle family it advertises.
//   * Executor invariance: a liveness-violating strategy run produces
//     byte-identical verdicts and diagnostics at any sim_jobs x lookahead.

#include <gtest/gtest.h>

#include "runtime/adversary.h"
#include "runtime/experiment.h"
#include "runtime/fuzz.h"
#include "runtime/liveness.h"
#include "runtime/oracle.h"
#include "sim/simulator.h"
#include "tests/result_equality.h"

namespace hotstuff1 {
namespace {

using sim::Simulator;

std::shared_ptr<const std::vector<bool>> Mask(uint32_t n,
                                              std::vector<uint32_t> faulty) {
  auto mask = std::make_shared<std::vector<bool>>(n, false);
  for (uint32_t r : faulty) (*mask)[r] = true;
  return mask;
}

// --- LivenessOracle unit semantics -------------------------------------------

TEST(LivenessOracleTest, OnlineStallFiresAfterKViewsWithoutCommit) {
  Simulator sim;
  LivenessOracle::Setup setup;
  setup.n = 4;
  setup.gst = 0;  // synchronous: armed from the start
  setup.k = 5;
  setup.grace = Millis(500);
  LivenessOracle oracle(&sim, setup);

  for (uint64_t v = 1; v <= 5; ++v) oracle.OnViewEntered(0, v);
  EXPECT_EQ(oracle.violations(), 0u);  // exactly k views: still within budget
  oracle.OnViewEntered(0, 6);
  EXPECT_EQ(oracle.violations(), 1u);
  EXPECT_NE(oracle.FirstDiagnostic().find("liveness-stall"), std::string::npos)
      << oracle.FirstDiagnostic();

  // Re-armed: the next report needs k further views, not one.
  oracle.OnViewEntered(0, 7);
  EXPECT_EQ(oracle.violations(), 1u);
  oracle.OnViewEntered(0, 12);
  EXPECT_EQ(oracle.violations(), 2u);
}

TEST(LivenessOracleTest, CommitsAdvanceTheProgressBaseline) {
  Simulator sim;
  LivenessOracle::Setup setup;
  setup.n = 4;
  setup.k = 5;
  LivenessOracle oracle(&sim, setup);

  for (uint64_t v = 1; v <= 5; ++v) oracle.OnViewEntered(0, v);
  oracle.OnBlockCommitted(0, nullptr);  // progress: baseline moves to view 5
  for (uint64_t v = 6; v <= 10; ++v) oracle.OnViewEntered(0, v);
  EXPECT_EQ(oracle.violations(), 0u);
  oracle.OnViewEntered(0, 11);  // 11 > 5 + 5
  EXPECT_EQ(oracle.violations(), 1u);
}

TEST(LivenessOracleTest, FaultyReplicasDoNotCount) {
  Simulator sim;
  LivenessOracle::Setup setup;
  setup.n = 4;
  setup.k = 5;
  setup.faulty_mask = Mask(4, {3});
  LivenessOracle oracle(&sim, setup);
  // A Byzantine replica racing ahead in views proves nothing about correct
  // progress; its commits must not reset the baseline either.
  oracle.OnViewEntered(3, 100);
  EXPECT_EQ(oracle.violations(), 0u);
  for (uint64_t v = 1; v <= 5; ++v) oracle.OnViewEntered(0, v);
  oracle.OnBlockCommitted(3, nullptr);  // faulty commit: not progress
  oracle.OnViewEntered(0, 6);
  EXPECT_EQ(oracle.violations(), 1u);
}

TEST(LivenessOracleTest, PreGstChurnIsFree) {
  Simulator sim;
  LivenessOracle::Setup setup;
  setup.n = 4;
  setup.gst = Millis(10);  // barrier pending: monitor disarmed until notified
  setup.k = 5;
  LivenessOracle oracle(&sim, setup);

  // The adversary may burn arbitrarily many pre-GST views.
  for (uint64_t v = 1; v <= 50; ++v) oracle.OnViewEntered(0, v);
  EXPECT_EQ(oracle.violations(), 0u);

  oracle.OnGstReached();  // Thm B.8's clock starts here, at view 50
  for (uint64_t v = 51; v <= 55; ++v) oracle.OnViewEntered(0, v);
  EXPECT_EQ(oracle.violations(), 0u);
  oracle.OnViewEntered(0, 56);
  EXPECT_EQ(oracle.violations(), 1u);
}

TEST(LivenessOracleTest, SilenceFiresOnceAfterGrace) {
  Simulator sim;
  LivenessOracle::Setup setup;
  setup.n = 4;
  setup.grace = Millis(100);
  LivenessOracle oracle(&sim, setup);
  oracle.Finalize(Millis(100), /*event_cap_hit=*/false);
  EXPECT_EQ(oracle.violations(), 1u);
  EXPECT_NE(oracle.FirstDiagnostic().find("liveness-silence"), std::string::npos)
      << oracle.FirstDiagnostic();
  oracle.Finalize(Millis(100), false);  // idempotent
  EXPECT_EQ(oracle.violations(), 1u);
}

TEST(LivenessOracleTest, SilenceSkipsShortCappedAndPreGstRuns) {
  {
    // Run shorter than the grace: silence proves nothing.
    Simulator sim;
    LivenessOracle::Setup setup;
    setup.n = 4;
    setup.grace = Millis(100);
    LivenessOracle oracle(&sim, setup);
    oracle.Finalize(Millis(99), false);
    EXPECT_EQ(oracle.violations(), 0u);
  }
  {
    // Cap-truncated run: the simulator stopped, not the protocol.
    Simulator sim;
    LivenessOracle::Setup setup;
    setup.n = 4;
    setup.grace = Millis(100);
    LivenessOracle oracle(&sim, setup);
    oracle.Finalize(Millis(500), /*event_cap_hit=*/true);
    EXPECT_EQ(oracle.violations(), 0u);
  }
  {
    // GST never arrived (open-ended interference): nothing was promised.
    Simulator sim;
    LivenessOracle::Setup setup;
    setup.n = 4;
    setup.gst = StrategySchedule::kGstNever;
    setup.grace = Millis(100);
    LivenessOracle oracle(&sim, setup);
    oracle.Finalize(Millis(500), false);
    EXPECT_EQ(oracle.violations(), 0u);
  }
}

TEST(LivenessOracleTest, DiagnosticsCarryConfigAndSeed) {
  Simulator sim;
  LivenessOracle::Setup setup;
  setup.n = 4;
  setup.grace = Millis(100);
  setup.seed = 77;
  setup.config_summary = "protocol=HotStuff-1 n=4";
  LivenessOracle oracle(&sim, setup);
  oracle.Finalize(Millis(200), false);
  ASSERT_EQ(oracle.violations(), 1u);
  const std::string diag = oracle.FirstDiagnostic();
  EXPECT_NE(diag.find("protocol=HotStuff-1 n=4"), std::string::npos) << diag;
  EXPECT_NE(diag.find("seed=77"), std::string::npos) << diag;
  EXPECT_NE(diag.find("event#"), std::string::npos) << diag;
}

// --- rollback legality (Def. 4.7) --------------------------------------------

InvariantOracle::Setup RollbackSetup() {
  InvariantOracle::Setup setup;
  setup.n = 7;  // f = 2: epochs are 3 views wide
  setup.fault = Fault::kRollbackAttack;
  setup.rollback_victims = 1;  // victim = replica 0 (first correct id)
  setup.seed = 5;
  setup.config_summary = "protocol=test n=7";
  return setup;
}

TEST(RollbackLegalityTest, CampaignJustifiesAVictimRollback) {
  Simulator sim;
  InvariantOracle oracle(&sim, RollbackSetup());
  oracle.OnEquivocationSent(/*leader=*/1, /*view=*/1);
  oracle.OnRollback(/*replica=*/0, 1, /*conflict_view=*/2);
  EXPECT_EQ(oracle.violations(), 0u) << oracle.FirstDiagnostic();
}

TEST(RollbackLegalityTest, StaleEpochCampaignNoLongerJustifies) {
  // Regression: before the per-victim campaign records, ANY rollback at a
  // designated victim passed under kRollbackAttack — including one whose
  // only outstanding campaign was planted many epochs earlier and could not
  // explain the conflict (Def. 4.7 bounds the misleading window).
  Simulator sim;
  InvariantOracle oracle(&sim, RollbackSetup());
  oracle.OnEquivocationSent(1, /*view=*/1);  // epoch 0
  oracle.OnRollback(0, 1, /*conflict_view=*/12);  // epoch 4: > 2 epochs later
  ASSERT_EQ(oracle.violations(), 1u);
  EXPECT_NE(oracle.FirstDiagnostic().find("stale"), std::string::npos)
      << oracle.FirstDiagnostic();
}

TEST(RollbackLegalityTest, NoCampaignMeansNoLegalRollback) {
  Simulator sim;
  InvariantOracle oracle(&sim, RollbackSetup());
  oracle.OnRollback(0, 1, /*conflict_view=*/2);
  ASSERT_EQ(oracle.violations(), 1u);
  EXPECT_NE(oracle.FirstDiagnostic().find("no outstanding misleading campaign"),
            std::string::npos)
      << oracle.FirstDiagnostic();
}

TEST(RollbackLegalityTest, OneCampaignCannotLaunderTwoRollbacks) {
  Simulator sim;
  InvariantOracle oracle(&sim, RollbackSetup());
  oracle.OnEquivocationSent(1, /*view=*/4);
  oracle.OnRollback(0, 1, /*conflict_view=*/5);  // consumes the record
  EXPECT_EQ(oracle.violations(), 0u);
  oracle.OnRollback(0, 1, /*conflict_view=*/5);  // nothing left to justify it
  EXPECT_EQ(oracle.violations(), 1u);
}

TEST(RollbackLegalityTest, NonVictimRollbackStillFires) {
  Simulator sim;
  InvariantOracle oracle(&sim, RollbackSetup());
  oracle.OnEquivocationSent(1, /*view=*/1);
  oracle.OnRollback(/*replica=*/3, 1, /*conflict_view=*/2);
  ASSERT_EQ(oracle.violations(), 1u);
  EXPECT_NE(oracle.FirstDiagnostic().find("not a designated victim"),
            std::string::npos)
      << oracle.FirstDiagnostic();
}

// --- mutation self-test --------------------------------------------------------

ExperimentConfig StallMutationConfig() {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 7;
  cfg.batch_size = 10;
  cfg.num_clients = 20;
  cfg.duration = Millis(150);
  cfg.warmup = Millis(40);
  cfg.seed = 9;
  cfg.oracle_enabled = true;
  // The auto grace (>= 500ms) is sized for long runs; this window ends at
  // 190ms, so bound the silence threshold explicitly.
  cfg.liveness_grace = Millis(60);
  return cfg;
}

TEST(LivenessMutation, ControlRunIsClean) {
  const ExperimentResult res = RunExperiment(StallMutationConfig());
  EXPECT_TRUE(res.safety_ok);
  EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
  EXPECT_EQ(res.liveness_violations, 0u) << res.liveness_first_violation;
  EXPECT_GT(res.committed_blocks, 0u);
}

TEST(LivenessMutation, BrokenEpochSyncIsCaughtOnlyByTheProgressMonitor) {
  // The injected pacemaker bug: replicas stop broadcasting epoch Wishes past
  // the genesis epoch, so no timeout certificate ever forms and views stop.
  // Nothing unsafe happens — no equivocation, no illegal rollback — so the
  // safety oracle must stay silent while the liveness oracle reports the
  // broken Thm B.8 promise with a reproducible diagnostic.
  ExperimentConfig cfg = StallMutationConfig();
  cfg.test_break_liveness = true;
  Experiment exp(cfg);
  const ExperimentResult res = exp.Run();

  EXPECT_TRUE(res.safety_ok);
  EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
  EXPECT_GT(res.liveness_violations, 0u);

  const std::string& diag = res.liveness_first_violation;
  EXPECT_NE(diag.find("liveness"), std::string::npos) << diag;
  EXPECT_NE(diag.find("n=7"), std::string::npos) << diag;
  EXPECT_NE(diag.find("seed=9"), std::string::npos) << diag;
  ASSERT_NE(exp.liveness_oracle(), nullptr);
  EXPECT_GT(exp.liveness_oracle()->events_observed(), 0u);
}

// --- over-threshold tier -------------------------------------------------------

class OverThreshold : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverThreshold, ExactlyTheExpectedOracleFamilyFires) {
  const OverThresholdCase c = OverThresholdCaseFromSeed(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "case " << GetParam() << " (" << c.label
               << "): " << DescribeConfig(c.config));
  ASSERT_NE(c.expect_safety, c.expect_liveness);  // generator names one family
  const ExperimentResult res = RunExperiment(c.config);
  if (c.expect_liveness) {
    EXPECT_GT(res.liveness_violations, 0u);
    EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
    EXPECT_TRUE(res.safety_ok);
  } else {
    EXPECT_GT(res.oracle_violations, 0u);
    EXPECT_EQ(res.liveness_violations, 0u) << res.liveness_first_violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, OverThreshold,
                         ::testing::Range<uint64_t>(0, kOverThresholdCases));

// --- executor invariance -------------------------------------------------------

ExperimentConfig StallStrategyConfig() {
  // fig_liveness's over-threshold point: a 3-of-7 coalition withholds from
  // epoch 1 onwards while declaring GST at 30ms.
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 7;
  cfg.batch_size = 10;
  cfg.num_clients = 20;
  cfg.view_timer = Millis(10);
  cfg.duration = Millis(150);
  cfg.warmup = Millis(40);
  cfg.seed = 11;
  cfg.num_faulty = 3;
  cfg.strategy.entries.push_back({1, kEpochForever, kActWithhold, 0});
  cfg.strategy.declared_gst = Millis(30);
  cfg.liveness_grace = Millis(60);
  cfg.oracle_enabled = true;
  return cfg;
}

TEST(LivenessDeterminism, ViolatingStrategyRunIsExecutorInvariant) {
  ExperimentConfig cfg = StallStrategyConfig();
  cfg.sim_jobs = 1;
  cfg.lookahead = {LookaheadMode::kOff, 0};
  const ExperimentResult serial = RunExperiment(cfg);
  ASSERT_GT(serial.liveness_violations, 0u);
  ASSERT_EQ(serial.oracle_violations, 0u);

  for (uint32_t sim_jobs : {1u, 4u}) {
    for (LookaheadMode mode : {LookaheadMode::kOff, LookaheadMode::kAuto}) {
      if (sim_jobs == 1 && mode == LookaheadMode::kOff) continue;  // baseline
      cfg.sim_jobs = sim_jobs;
      cfg.lookahead = {mode, 0};
      SCOPED_TRACE(::testing::Message() << "sim_jobs=" << sim_jobs
                                        << " lookahead="
                                        << FormatLookahead(cfg.lookahead));
      ExpectSameResult(RunExperiment(cfg), serial);
    }
  }
}

// Arming the oracles must not change the run: the GST barrier event is
// scheduled whether or not anyone listens, so enabling the monitor only adds
// observation, never behaviour.
TEST(LivenessDeterminism, EnablingOraclesDoesNotPerturbAStrategyRun) {
  ExperimentConfig cfg = StallStrategyConfig();
  const ExperimentResult with_oracle = RunExperiment(cfg);
  cfg.oracle_enabled = false;
  const ExperimentResult without = RunExperiment(cfg);
  EXPECT_EQ(with_oracle.accepted, without.accepted);
  EXPECT_EQ(with_oracle.committed_blocks, without.committed_blocks);
  EXPECT_EQ(with_oracle.views, without.views);
  EXPECT_EQ(with_oracle.messages_sent, without.messages_sent);
  EXPECT_EQ(with_oracle.bytes_sent, without.bytes_sent);
  EXPECT_EQ(without.liveness_violations, 0u);  // nobody watching
}

}  // namespace
}  // namespace hotstuff1

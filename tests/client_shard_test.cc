// Sharded client pool: cross-group quorum tallies inside one block,
// per-group retry-sweeper independence, duplicate-acceptance protection via
// id generations, and open-loop queue/backlog semantics under overload.

#include <gtest/gtest.h>

#include <algorithm>

#include "client/client_pool.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

constexpr uint32_t kN = 4, kF = 1;

class ClientShardTest : public ::testing::Test {
 protected:
  void MakePool(ClientPoolConfig cfg) {
    cfg.quorum_commit = kF + 1;        // 2
    cfg.quorum_speculative = kN - kF;  // 3
    cfg.track_accepted = true;
    pool_ = std::make_unique<ClientPool>(&sim_, &workload_, cfg,
                                         std::vector<SimTime>(kN, Millis(1)));
    pool_->Start();
  }

  BlockPtr MakeBlock(std::vector<Transaction> txns, uint64_t view = 1) {
    return std::make_shared<Block>(BlockId{view, 1}, Block::Genesis()->hash(), 1,
                                   0, std::move(txns));
  }

  void Respond(const BlockPtr& block, std::initializer_list<ReplicaId> replicas,
               bool speculative, uint64_t result = 99) {
    const std::vector<uint64_t> results(block->txns().size(), result);
    for (ReplicaId r : replicas) {
      pool_->OnBlockResponse(r, block, results, speculative, sim_.Now());
    }
    sim_.RunUntil(sim_.Now() + Millis(2));
  }

  sim::Simulator sim_;
  YcsbWorkload workload_;
  std::unique_ptr<ClientPool> pool_;
};

TEST_F(ClientShardTest, TxnIdsEncodeGroupSlotGeneration) {
  const uint64_t id = MakeClientTxnId(9, 123'456, 77);
  EXPECT_EQ(ClientTxnGroup(id), 9u);
  EXPECT_EQ(ClientTxnSlot(id), 123'456u);
  EXPECT_EQ(ClientTxnGeneration(id), 77u);
  // The layout fills the id space without overlap at the extremes.
  const uint64_t top = MakeClientTxnId(kMaxClientGroups - 1,
                                       kMaxSlotsPerGroup - 1, UINT32_MAX);
  EXPECT_EQ(ClientTxnGroup(top), kMaxClientGroups - 1);
  EXPECT_EQ(ClientTxnSlot(top), kMaxSlotsPerGroup - 1);
  EXPECT_EQ(ClientTxnGeneration(top), UINT32_MAX);
}

TEST_F(ClientShardTest, CrossShardQuorumInsideOneBlock) {
  // 8 clients striped over 4 groups (client c lives in group c % 4): one
  // leader draws all 8 into a single block, and the committed quorum must
  // tally correctly in every owning group.
  ClientPoolConfig cfg;
  cfg.num_clients = 8;
  cfg.groups = 4;
  cfg.resubmit_timeout = Millis(50);
  MakePool(cfg);
  sim_.RunUntil(Millis(2));

  auto txns = pool_->DrawBatch(0, 100, sim_.Now());
  ASSERT_EQ(txns.size(), 8u);
  uint32_t groups_seen[4] = {0, 0, 0, 0};
  for (const auto& t : txns) {
    ASSERT_LT(ClientTxnGroup(t.id), 4u);
    ++groups_seen[ClientTxnGroup(t.id)];
  }
  for (uint32_t g = 0; g < 4; ++g) EXPECT_EQ(groups_seen[g], 2u) << "group " << g;

  const BlockPtr block = MakeBlock(std::move(txns));
  Respond(block, {0}, /*speculative=*/false);
  EXPECT_EQ(pool_->accepted(), 0u);  // one committed response is below f+1
  Respond(block, {1}, /*speculative=*/false);
  EXPECT_EQ(pool_->accepted(), 8u);
  EXPECT_EQ(pool_->accepted_speculative(), 0u);
  EXPECT_EQ(pool_->latencies().count(), 8u);
  // Every acceptance names the block that formed the quorum (Cor. B.10 data).
  ASSERT_EQ(pool_->accepted_records().size(), 8u);
  for (const auto& rec : pool_->accepted_records()) {
    EXPECT_EQ(rec.block_hash, block->hash());
  }
}

TEST_F(ClientShardTest, SpeculativeQuorumCrossesGroups) {
  ClientPoolConfig cfg;
  cfg.num_clients = 8;
  cfg.groups = 4;
  cfg.resubmit_timeout = Millis(50);
  MakePool(cfg);
  sim_.RunUntil(Millis(2));

  const BlockPtr block = MakeBlock(pool_->DrawBatch(0, 100, sim_.Now()));
  Respond(block, {0, 1}, /*speculative=*/true);
  EXPECT_EQ(pool_->accepted(), 0u);  // 2 speculative responses < n-f = 3
  Respond(block, {2}, /*speculative=*/true);
  EXPECT_EQ(pool_->accepted(), 8u);
  EXPECT_EQ(pool_->accepted_speculative(), 8u);
}

TEST_F(ClientShardTest, MismatchedResultsDoNotCombineAcrossGroups) {
  ClientPoolConfig cfg;
  cfg.num_clients = 8;
  cfg.groups = 4;
  cfg.resubmit_timeout = Millis(250);
  MakePool(cfg);
  sim_.RunUntil(Millis(2));

  const BlockPtr block = MakeBlock(pool_->DrawBatch(0, 100, sim_.Now()));
  Respond(block, {0}, /*speculative=*/false, /*result=*/1);
  Respond(block, {1}, /*speculative=*/false, /*result=*/2);
  EXPECT_EQ(pool_->accepted(), 0u);
  Respond(block, {2}, /*speculative=*/false, /*result=*/1);
  EXPECT_EQ(pool_->accepted(), 8u);  // 0 and 2 agree: that's f+1
}

TEST_F(ClientShardTest, RetrySweepersActPerGroup) {
  // Two clients, one per group. Both transactions are drawn, but only group
  // 0's is ever answered: group 1's sweeper must retry its transaction while
  // group 0's sweeper leaves the accepted slot alone.
  ClientPoolConfig cfg;
  cfg.num_clients = 2;
  cfg.groups = 2;
  cfg.resubmit_timeout = Millis(50);
  MakePool(cfg);
  sim_.RunUntil(Millis(2));

  auto txns = pool_->DrawBatch(0, 100, sim_.Now());
  ASSERT_EQ(txns.size(), 2u);
  std::stable_sort(txns.begin(), txns.end(),
                   [](const Transaction& a, const Transaction& b) {
                     return ClientTxnGroup(a.id) < ClientTxnGroup(b.id);
                   });
  ASSERT_EQ(ClientTxnGroup(txns[0].id), 0u);
  ASSERT_EQ(ClientTxnGroup(txns[1].id), 1u);
  const uint64_t orphaned_id = txns[1].id;

  const BlockPtr block = MakeBlock({txns[0]});
  Respond(block, {0, 1}, /*speculative=*/false);
  EXPECT_EQ(pool_->accepted(), 1u);

  // Past the timeout the group-1 sweeper re-enqueues its orphaned txn (with
  // its original id); group 0 has nothing in flight to retry. The accepted
  // client's fresh closed-loop submission is also pending — distinguish by id.
  sim_.RunUntil(Millis(140));
  EXPECT_GE(pool_->resubmissions(), 1u);
  auto redraw = pool_->DrawBatch(0, 100, sim_.Now());
  bool saw_orphan = false;
  for (const auto& t : redraw) {
    if (t.id == orphaned_id) saw_orphan = true;
    // The accepted transaction must never reappear: its slot was freed with
    // a generation bump, so even the reused slot mints a different id.
    EXPECT_NE(t.id, block->txns()[0].id);
  }
  EXPECT_TRUE(saw_orphan);
}

TEST_F(ClientShardTest, StaleGenerationCannotDoubleAccept) {
  ClientPoolConfig cfg;
  cfg.num_clients = 4;
  cfg.groups = 2;
  cfg.resubmit_timeout = Millis(250);
  MakePool(cfg);
  sim_.RunUntil(Millis(2));

  const BlockPtr block = MakeBlock(pool_->DrawBatch(0, 100, sim_.Now()));
  Respond(block, {0, 1}, /*speculative=*/false);
  EXPECT_EQ(pool_->accepted(), 4u);
  // Late responses for the same block hit freed slots (bumped generations)
  // and are dropped — acceptance is recorded exactly once per transaction.
  Respond(block, {2, 3}, /*speculative=*/false);
  EXPECT_EQ(pool_->accepted(), 4u);
  EXPECT_EQ(pool_->latencies().count(), 4u);
}

TEST_F(ClientShardTest, OpenLoopBacklogGrowsUnderOverload) {
  // Open loop, nobody draws: the backlog is exactly the arrival count — the
  // pool applies no admission control (that is the point of the model).
  ClientPoolConfig cfg;
  cfg.num_clients = 1'000'000;
  cfg.groups = 4;
  cfg.arrival.kind = ArrivalKind::kPoisson;
  cfg.arrival.offered_load_tps = 100'000;
  cfg.resubmit_timeout = Millis(250);
  cfg.seed = 5;
  MakePool(cfg);

  sim_.RunUntil(Millis(50));
  const uint64_t backlog_50ms = pool_->backlog();
  // ~5000 expected arrivals; 4 sigma is ~285.
  EXPECT_NEAR(static_cast<double>(backlog_50ms), 5'000.0, 400.0);
  EXPECT_EQ(pool_->accepted(), 0u);
  EXPECT_EQ(pool_->PendingCount(), backlog_50ms);

  // Draining a batch shrinks the backlog by exactly the drawn count.
  const auto batch = pool_->DrawBatch(0, 1'000, sim_.Now());
  ASSERT_EQ(batch.size(), 1'000u);
  EXPECT_EQ(pool_->backlog(), backlog_50ms - 1'000);

  // Unanswered drawn transactions re-enter the queue after the timeout, on
  // top of the arrivals that kept coming.
  sim_.RunUntil(Millis(400));
  EXPECT_GE(pool_->resubmissions(), 900u);
}

TEST_F(ClientShardTest, OpenLoopAcceptanceDoesNotResubmit) {
  // Closed-loop clients submit their next transaction on acceptance; open
  // loop must not (the arrival process is the only source of fresh load).
  ClientPoolConfig cfg;
  cfg.num_clients = 1'000'000;
  cfg.groups = 2;
  cfg.arrival.kind = ArrivalKind::kPoisson;
  cfg.arrival.offered_load_tps = 50'000;
  cfg.resubmit_timeout = Millis(250);
  cfg.seed = 5;
  MakePool(cfg);

  sim_.RunUntil(Millis(20));
  auto txns = pool_->DrawBatch(0, 100, sim_.Now());
  ASSERT_FALSE(txns.empty());
  const size_t drawn = txns.size();
  const uint64_t backlog_before = pool_->backlog();

  const BlockPtr block = MakeBlock(std::move(txns));
  const SimTime respond_at = sim_.Now();
  Respond(block, {0, 1}, /*speculative=*/false);
  EXPECT_EQ(pool_->accepted(), drawn);
  EXPECT_EQ(pool_->latencies().count(), drawn);

  // The backlog only grew by the new arrivals in the response window — no
  // closed-loop echo of the accepted transactions. 2ms at 50k tps is ~100
  // expected arrivals; 300 is > 4 sigma above, far below `drawn` echoes.
  const SimTime elapsed = sim_.Now() - respond_at;
  const double expected_arrivals =
      cfg.arrival.offered_load_tps * ToSeconds(elapsed);
  EXPECT_NEAR(static_cast<double>(pool_->backlog() - backlog_before),
              expected_arrivals, 60.0);
}

}  // namespace
}  // namespace hotstuff1

// Scenario engine and sweep runner: registry round-trips, deterministic
// expansion, worker-count-independent merged output, and the event-cap
// diagnostic plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <tuple>

#include "runtime/report.h"
#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "sim/simulator.h"

namespace hotstuff1 {
namespace {

// A fast sweep: 2x2x2 points of a tiny cluster, milliseconds of virtual time.
ScenarioSpec TinySpec() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.title = "Tiny";
  spec.row_name = "n";
  spec.base.batch_size = 10;
  spec.base.num_clients = 20;
  spec.base.duration = Millis(80);
  spec.base.warmup = Millis(20);
  spec.base.view_timer = Millis(10);
  spec.base.delta = Millis(1);
  spec.mode = RunMode::kSingle;
  for (uint32_t n : {4u, 7u}) {
    spec.rows.push_back({std::to_string(n), [n](ExperimentConfig& c) { c.n = n; }});
  }
  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff1}) {
    spec.cols.push_back(
        {ProtocolName(kind), [kind](ExperimentConfig& c) { c.protocol = kind; }});
  }
  spec.seeds = {1, 2};
  spec.metrics = {ThroughputMetric(), AvgLatencyMetric()};
  return spec;
}

TEST(ScenarioExpansionTest, CrossProductInDeterministicOrder) {
  const ScenarioSpec spec = TinySpec();
  const std::vector<SweepPoint> points = ExpandScenario(spec);
  ASSERT_EQ(points.size(), 2u * 2u * 2u);
  // Order: rows x cols x seeds, indices consecutive.
  EXPECT_EQ(points[0].row_label, "4");
  EXPECT_EQ(points[0].col_label, "HotStuff");
  EXPECT_EQ(points[0].seed, 1u);
  EXPECT_EQ(points[1].seed, 2u);
  EXPECT_EQ(points[2].col_label, "HotStuff-1");
  EXPECT_EQ(points[4].row_label, "7");
  for (size_t i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].index, i);
  // Mutators applied: n and protocol took effect.
  EXPECT_EQ(points[0].config.n, 4u);
  EXPECT_EQ(points[4].config.n, 7u);
  EXPECT_EQ(points[2].config.protocol, ProtocolKind::kHotStuff1);
}

TEST(ScenarioExpansionTest, SmokeSubsamplesAxesAndShrinksWindows) {
  ScenarioSpec spec = TinySpec();
  spec.base.duration = Seconds(30);
  spec.rows.push_back({"10", [](ExperimentConfig& c) { c.n = 10; }});
  const std::vector<SweepPoint> points = ExpandScenario(spec, /*smoke=*/true);
  // Rows subsampled to endpoints {4, 10}, seeds to 1.
  ASSERT_EQ(points.size(), 2u * 2u);
  EXPECT_EQ(points.front().row_label, "4");
  EXPECT_EQ(points.back().row_label, "10");
  for (const SweepPoint& p : points) {
    EXPECT_LE(p.config.duration, Millis(120));
    EXPECT_EQ(p.mode, RunMode::kSingle);
  }
}

TEST(ScenarioRegistryTest, AllScenariosExpandNonzeroDuplicateFree) {
  const auto all = ScenarioRegistry::Instance().All();
  ASSERT_GE(all.size(), 10u);  // the ten former bench binaries
  for (const ScenarioSpec* spec : all) {
    SCOPED_TRACE(spec->name);
    EXPECT_NE(ScenarioRegistry::Instance().Find(spec->name), nullptr);
    if (spec->custom_run) continue;  // micro: not a sweep
    for (bool smoke : {false, true}) {
      const std::vector<SweepPoint> points = ExpandScenario(*spec, smoke);
      EXPECT_FALSE(points.empty());
      std::set<std::tuple<std::string, std::string, std::string, uint64_t>> seen;
      for (const SweepPoint& p : points) {
        EXPECT_TRUE(
            seen.insert({p.table_label, p.row_label, p.col_label, p.seed}).second)
            << "duplicate point " << p.table_label << "/" << p.row_label << "/"
            << p.col_label << "/" << p.seed;
      }
    }
  }
}

TEST(ScenarioRegistryTest, FormerBenchBinariesAreRegistered) {
  for (const char* name :
       {"fig8_scalability", "fig8_batching", "fig8_geo", "fig9_delay",
        "fig9_georegions", "fig10_slowness", "fig10_tailfork", "fig10_rollback",
        "ablation", "micro"}) {
    EXPECT_NE(ScenarioRegistry::Instance().Find(name), nullptr) << name;
  }
}

std::string RunCsv(const ScenarioSpec& spec, int jobs, bool smoke) {
  SweepRunner runner(jobs);
  const SweepOutcome outcome = runner.Run(spec, smoke);
  std::ostringstream os;
  EmitCsv(outcome, os);
  return os.str();
}

TEST(SweepRunnerTest, MergedCsvIsIdenticalAtAnyWorkerCount) {
  const ScenarioSpec spec = TinySpec();
  const std::string serial = RunCsv(spec, /*jobs=*/1, /*smoke=*/false);
  const std::string parallel = RunCsv(spec, /*jobs=*/8, /*smoke=*/false);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);  // byte-identical merged output
}

TEST(SweepRunnerTest, RegisteredScenarioSmokeIsWorkerCountIndependent) {
  const ScenarioSpec* spec = ScenarioRegistry::Instance().Find("fig8_scalability");
  ASSERT_NE(spec, nullptr);
  const std::string serial = RunCsv(*spec, /*jobs=*/1, /*smoke=*/true);
  const std::string parallel = RunCsv(*spec, /*jobs=*/8, /*smoke=*/true);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(SweepRunnerTest, TableAndJsonEmittersAreOrderStable) {
  const ScenarioSpec spec = TinySpec();
  SweepRunner one(1), eight(8);
  const SweepOutcome a = one.Run(spec);
  const SweepOutcome b = eight.Run(spec);
  std::ostringstream ta, tb, ja, jb;
  EmitTables(a, ta);
  EmitTables(b, tb);
  EmitJson(a, ja);
  EmitJson(b, jb);
  EXPECT_EQ(ta.str(), tb.str());
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(SweepRunnerTest, MultiSeedTablesCarryVarianceColumns) {
  const ScenarioSpec spec = TinySpec();  // seeds = {1, 2}
  SweepRunner runner(1);
  const SweepOutcome outcome = runner.Run(spec);
  std::ostringstream os;
  EmitTables(outcome, os);
  const std::string text = os.str();
  // Every cell aggregates 2 seeds, so the spread marker and its legend must
  // be present; with a single seed neither appears.
  EXPECT_NE(text.find("±"), std::string::npos) << text;
  EXPECT_NE(text.find("sample stddev"), std::string::npos);

  ScenarioSpec single = TinySpec();
  single.seeds = {1};
  std::ostringstream os1;
  EmitTables(SweepRunner(1).Run(single), os1);
  EXPECT_EQ(os1.str().find("±"), std::string::npos);
}

TEST(SweepRunnerTest, SimJobsOverrideRespectsSimJobsAxis) {
  // A scenario that sweeps sim_jobs itself keeps its axis values even when
  // the runner carries a global override; a scenario that does not gets the
  // override applied to every point.
  ScenarioSpec sweeping = TinySpec();
  sweeping.rows.clear();
  for (uint32_t jobs : {1u, 2u}) {
    sweeping.rows.push_back({std::to_string(jobs), [jobs](ExperimentConfig& c) {
                               c.sim_jobs = jobs;
                             }});
  }
  const SweepOutcome swept = SweepRunner(1, /*sim_jobs=*/8).Run(sweeping);
  for (const SweepPoint& p : swept.points) {
    EXPECT_EQ(p.config.sim_jobs, static_cast<uint32_t>(std::stoi(p.row_label)));
  }

  const SweepOutcome plain = SweepRunner(1, /*sim_jobs=*/2).Run(TinySpec());
  for (const SweepPoint& p : plain.points) {
    EXPECT_EQ(p.config.sim_jobs, 2u);
  }
}

TEST(SweepRunnerTest, ComputeStatsMatchesHandValues) {
  const SampleStats empty = ComputeStats({});
  EXPECT_EQ(empty.count, 0u);
  const SampleStats one = ComputeStats({5.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  const SampleStats s = ComputeStats({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // sqrt(((2-4)^2+(0)^2+(2)^2)/2)
  EXPECT_NEAR(s.ci95, 1.96 * 2.0 / std::sqrt(3.0), 1e-12);
}

TEST(EventCapTest, SimulatorReportsTruncation) {
  sim::Simulator sim;
  sim.SetEventCap(10);
  std::function<void()> loop = [&] { sim.After(1, loop); };
  sim.After(1, loop);
  sim.Run();
  EXPECT_TRUE(sim.cap_hit());

  sim::Simulator clean;
  clean.After(1, [] {});
  clean.Run();
  EXPECT_FALSE(clean.cap_hit());
}

TEST(EventCapTest, ExperimentPropagatesCapHitAsDiagnostic) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 10;
  cfg.num_clients = 20;
  cfg.duration = Millis(50);
  cfg.warmup = Millis(10);
  cfg.event_cap = 500;  // far below what the run needs
  const ExperimentResult truncated = RunExperiment(cfg);
  EXPECT_TRUE(truncated.event_cap_hit);

  cfg.event_cap = 0;  // unlimited
  const ExperimentResult clean = RunExperiment(cfg);
  EXPECT_FALSE(clean.event_cap_hit);
}

}  // namespace
}  // namespace hotstuff1

// Pins the event loop's zero-allocation steady state: once the arena, the
// calendar queue's bucket ring, and the message pool have warmed up,
// scheduling and executing events — including full network broadcast
// fan-out — must not touch the global allocator at all. This is enforced by
// replacing operator new/delete for this binary with counting versions and
// asserting the count does not move across a measured window.
//
// If this test starts failing, some hot-path capture outgrew InlineFn's
// 48-byte buffer, a message type outgrew the pool's size classes, or a
// container on the schedule/execute path lost its capacity-reuse property.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/message_pool.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

std::atomic<uint64_t> g_allocs{0};

uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace

// Counting overrides for the whole test binary. Every standard flavor is
// covered so no allocation can slip past the counter.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hotstuff1::sim {
namespace {

// Self-rescheduling timer; the capture (16 bytes, trivially copyable) stays
// in InlineFn's inline buffer with memcpy relocation and no destructor.
struct Tick {
  Simulator* sim;
  uint64_t* budget;
  void operator()() const {
    if (*budget == 0) return;
    --*budget;
    sim->After(16, Tick{sim, budget});
  }
};

TEST(EventAllocTest, TimerRingSteadyStateAllocatesNothing) {
  Simulator sim;
  uint64_t budget = 400'000;
  for (int i = 0; i < 64; ++i) sim.At(0, Tick{&sim, &budget});
  // Warm up: grow the arena, lap the bucket ring (period 16 visits 1024
  // distinct buckets), size every bucket's slot vector.
  while (budget > 100'000 && sim.Step()) {
  }
  ASSERT_GT(budget, 0u) << "warmup consumed the whole budget";
  const uint64_t before = AllocCount();
  while (budget > 0 && sim.Step()) {
  }
  EXPECT_EQ(AllocCount(), before)
      << "schedule/execute steady state hit the heap";
  sim.Run();
}

struct PingMsg : NetMessage {};

// Broadcast relay with constant in-flight population: each generation, the
// sender's successor (alone) re-broadcasts a fresh pooled message, so every
// generation is one MakeMessage + n-1 deliveries. Exercises MakeMessage,
// shared_ptr fan-out, egress accounting, and the delivery callback path.
struct RelayNet {
  Network* net;
  uint64_t* hops;

  void Install() {
    const NodeId n = net->num_nodes();
    for (NodeId id = 0; id < n; ++id) {
      net->SetHandler(id, [this, id, n](NodeId from, const NetMessagePtr&) {
        if (id != (from + 1) % n || *hops == 0) return;
        --*hops;
        net->Broadcast(id, MakeMessage<PingMsg>(), /*include_self=*/false);
      });
    }
  }
};

TEST(EventAllocTest, BroadcastSteadyStateAllocatesNothing) {
  Simulator sim;
  Network net(&sim, 8);
  uint64_t hops = 30'000;
  RelayNet relay{&net, &hops};
  relay.Install();
  net.Broadcast(0, MakeMessage<PingMsg>(), /*include_self=*/false);
  while (hops > 10'000 && sim.Step()) {
  }
  ASSERT_GT(hops, 0u) << "warmup consumed the whole hop budget";
  const uint64_t before = AllocCount();
  while (hops > 0 && sim.Step()) {
  }
  EXPECT_EQ(AllocCount(), before)
      << "broadcast steady state hit the heap";
  sim.Run();
}

TEST(EventAllocTest, MessagePoolRecyclesBlocks) {
  // Warm one slot, then churn: every make/drop pair must be served from the
  // thread-local cache.
  MakeMessage<PingMsg>().reset();
  ASSERT_GT(MessagePool::TlsCachedBlocks(), 0u);
  const uint64_t before = AllocCount();
  for (int i = 0; i < 10'000; ++i) {
    auto m = MakeMessage<PingMsg>();
    m.reset();
  }
  EXPECT_EQ(AllocCount(), before);
}

}  // namespace
}  // namespace hotstuff1::sim

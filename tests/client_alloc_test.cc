// Pins the open-loop client pool's "lazy client records" property: the heap
// footprint is a function of *traffic*, never of *population*. A pool serving
// a million logical clients must allocate exactly as much as a pool serving
// ten thousand under the same seed, offered load, and measurement window —
// client identity is a drawn label, not a stored record. Enforced the same
// way event_alloc_test pins the event loop: counting operator new/delete for
// the whole binary, asserting exact equality of the allocation deltas.
//
// If this test starts failing, something began materializing per-client
// state (a map keyed by client id, a per-client vector sized by population,
// ...) — the million-client scenarios in fig_saturation depend on this.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "client/client_pool.h"
#include "workload/ycsb.h"

namespace {

std::atomic<uint64_t> g_allocs{0};

uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace

// Counting overrides for the whole test binary. Every standard flavor is
// covered so no allocation can slip past the counter.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hotstuff1 {
namespace {

// Minimal leader: every millisecond, draw a batch, wrap it in a block, and
// answer with a committed quorum. Trivially-copyable 24-byte capture stays
// in InlineFn's inline buffer.
struct Pump {
  sim::Simulator* sim;
  ClientPool* pool;
  uint64_t* view;

  void operator()() const {
    auto txns = pool->DrawBatch(0, 200, sim->Now());
    if (!txns.empty()) {
      auto block = std::make_shared<Block>(BlockId{(*view)++, 1},
                                           Block::Genesis()->hash(), 1, 0,
                                           std::move(txns));
      const std::vector<uint64_t> results(block->txns().size(), 7);
      pool->OnBlockResponse(0, block, results, /*speculative=*/false, sim->Now());
      pool->OnBlockResponse(1, block, results, /*speculative=*/false, sim->Now());
    }
    sim->After(Millis(1), Pump{sim, pool, view});
  }
};

struct RunStats {
  uint64_t construction_allocs = 0;
  uint64_t steady_state_allocs = 0;
  uint64_t accepted = 0;
};

// Runs an open-loop pool at 100k tps for a fixed window and reports the
// allocation deltas. Everything except `population` is pinned, and the
// client-label draw consumes one RNG step regardless of the bound, so two
// runs differing only in population execute identical event streams.
RunStats RunOpenLoopWindow(uint32_t population) {
  RunStats stats;
  sim::Simulator sim;
  YcsbWorkload workload;
  ClientPoolConfig cfg;
  cfg.num_clients = population;
  cfg.groups = 4;
  cfg.quorum_commit = 2;
  cfg.quorum_speculative = 0;
  cfg.arrival.kind = ArrivalKind::kPoisson;
  cfg.arrival.offered_load_tps = 100'000;
  cfg.resubmit_timeout = Millis(250);
  cfg.seed = 1234;

  const uint64_t before_ctor = AllocCount();
  ClientPool pool(&sim, &workload, cfg, std::vector<SimTime>(4, Millis(1)));
  stats.construction_allocs = AllocCount() - before_ctor;

  pool.Start();
  uint64_t view = 1;
  sim.At(Millis(2), Pump{&sim, &pool, &view});
  // Warmup: grow the event arena, the submission queue's chunk ring, each
  // group's slot storage and tally capacities, the latency sample vectors.
  sim.RunUntil(Millis(60));
  const uint64_t before = AllocCount();
  sim.RunUntil(Millis(260));
  stats.steady_state_allocs = AllocCount() - before;
  stats.accepted = pool.accepted();
  return stats;
}

TEST(ClientAllocTest, MillionClientPoolAllocatesExactlyLikeTenThousand) {
  const RunStats small = RunOpenLoopWindow(10'000);
  const RunStats million = RunOpenLoopWindow(1'000'000);

  // Both runs processed identical traffic (same seed, same arrival stream,
  // same transaction content — only the client labels differ)...
  EXPECT_EQ(small.accepted, million.accepted);
  EXPECT_GT(small.accepted, 15'000u) << "window too small to mean anything";
  // ...and the 100x population paid for it with *exactly* the same heap
  // traffic, at construction and in steady state.
  EXPECT_EQ(small.construction_allocs, million.construction_allocs);
  EXPECT_EQ(small.steady_state_allocs, million.steady_state_allocs);
}

}  // namespace
}  // namespace hotstuff1

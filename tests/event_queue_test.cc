// Calendar-queue equivalence tests: EventQueue must pop live keys in exactly
// the (time, seq) order std::priority_queue with the old EventLater
// comparator produced — the determinism gates (byte-identical CSVs at any
// --jobs/--lookahead) all stand on this. The randomized driver interleaves
// >1e6 operations against a reference heap under the simulator's real usage
// contract (no-past-push, globally ascending seqs); targeted tests pin the
// far/near window edges and the cap-fallback repush path.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <queue>
#include <random>
#include <tuple>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace hotstuff1::sim {
namespace {

// (time, seq, idx); seqs are globally unique so idx never breaks a tie.
using Key = std::tuple<SimTime, uint64_t, uint32_t>;
using RefQueue = std::priority_queue<Key, std::vector<Key>, std::greater<Key>>;

void ExpectSameFront(EventQueue& q, const RefQueue& ref) {
  EventHandle h;
  ASSERT_TRUE(q.Peek(&h));
  EXPECT_EQ(h.time, std::get<0>(ref.top()));
  EXPECT_EQ(h.seq, std::get<1>(ref.top()));
  EXPECT_EQ(h.idx, std::get<2>(ref.top()));
}

// Drives `ops` random operations honoring the simulator's contract: every
// push lands at or after the last popped time, seqs increase globally.
// The delta distribution mixes heavy timestamp ties (same-tick broadcast
// arrivals), short timers, in-window spreads, and far-horizon pushes that
// overflow the 16384-slot ring.
void RunRandomizedEquivalence(uint64_t seed, size_t ops) {
  std::mt19937_64 rng(seed);
  EventQueue q;
  RefQueue ref;
  SimTime last_pop = 0;
  uint64_t next_seq = 0;

  for (size_t op = 0; op < ops; ++op) {
    const bool push = ref.empty() || (rng() % 100) < 55;
    if (push) {
      const uint64_t shape = rng() % 100;
      SimTime delta;
      if (shape < 30) {
        delta = 0;  // duplicate timestamp
      } else if (shape < 85) {
        delta = static_cast<SimTime>(rng() % 128);
      } else if (shape < 97) {
        delta = static_cast<SimTime>(rng() % EventQueue::kSpan);
      } else {
        delta = EventQueue::kSpan + static_cast<SimTime>(rng() % 100000);
      }
      const SimTime t = last_pop + delta;
      const uint64_t seq = next_seq++;
      const uint32_t idx = static_cast<uint32_t>(rng());
      q.Push(t, seq, idx);
      ref.emplace(t, seq, idx);
    } else {
      if (rng() % 4 == 0) ExpectSameFront(q, ref);
      const EventHandle h = q.Pop();
      ASSERT_EQ(h.time, std::get<0>(ref.top()));
      ASSERT_EQ(h.seq, std::get<1>(ref.top()));
      ASSERT_EQ(h.idx, std::get<2>(ref.top()));
      ref.pop();
      last_pop = h.time;
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  while (!ref.empty()) {
    const EventHandle h = q.Pop();
    ASSERT_EQ(h.time, std::get<0>(ref.top()));
    ASSERT_EQ(h.seq, std::get<1>(ref.top()));
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RandomizedEquivalenceMillionOps) {
  RunRandomizedEquivalence(/*seed=*/0x5eed1, /*ops=*/1'200'000);
}

TEST(EventQueueTest, RandomizedEquivalenceSecondSeed) {
  RunRandomizedEquivalence(/*seed=*/0xfeedbeef, /*ops=*/300'000);
}

TEST(EventQueueTest, DuplicateTimestampsPopInSeqOrder) {
  EventQueue q;
  for (uint64_t seq = 0; seq < 1000; ++seq) q.Push(42, seq, 1000 - seq);
  for (uint64_t seq = 0; seq < 1000; ++seq) {
    const EventHandle h = q.Pop();
    EXPECT_EQ(h.time, 42);
    EXPECT_EQ(h.seq, seq);
    EXPECT_EQ(h.idx, 1000 - seq);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PeekNeverAdvancesTheWindow) {
  EventQueue q;
  q.Push(500, 0, 0);
  EventHandle h;
  ASSERT_TRUE(q.Peek(&h));
  EXPECT_EQ(h.time, 500);
  // RunUntil peeks a future event, then the caller may schedule earlier work
  // (still >= the last *popped* time). The peeked key must not have raised
  // the floor.
  q.Push(100, 1, 1);
  EXPECT_EQ(q.Pop().time, 100);
  EXPECT_EQ(q.Pop().time, 500);
}

TEST(EventQueueTest, FarEntriesMigrateAndUndercut) {
  EventQueue q;
  uint64_t seq = 0;
  // 20000 overflows the ring (span 16384) and sits in the far heap.
  q.Push(0, seq++, 0);
  q.Push(20000, seq++, 1);      // far
  EXPECT_EQ(q.Pop().idx, 0u);   // ring empties; 20000 still out of window
  q.Push(10000, seq++, 2);      // near
  q.Push(10001, seq++, 3);      // near — keeps the ring non-empty below
  EXPECT_EQ(q.Pop().idx, 2u);   // window floor -> 10000; 20000 now *inside*
                                // the window but still in the far heap
  q.Push(21000, seq++, 4);      // near (21000 - 10000 < 16384)
  EXPECT_EQ(q.Pop().idx, 3u);
  // Ring holds 21000, far holds 20000: the far entry undercuts the ring.
  EXPECT_EQ(q.Pop().idx, 1u);
  EXPECT_EQ(q.Pop().idx, 4u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FarEntryTiesWithNearAtSameTime) {
  EventQueue q;
  q.Push(0, 0, 0);
  q.Push(20000, 1, 1);         // far, seq 1
  q.Push(1, 2, 2);
  q.Push(2, 3, 3);
  EXPECT_EQ(q.Pop().idx, 0u);
  EXPECT_EQ(q.Pop().idx, 2u);  // floor is now 1; 20000 is in-window, far
  q.Push(20000, 4, 4);         // same time lands in the *ring*, seq 4
  EXPECT_EQ(q.Pop().idx, 3u);
  // Both live at t=20000; the far entry carries the smaller seq.
  EXPECT_EQ(q.Pop().seq, 1u);
  EXPECT_EQ(q.Pop().seq, 4u);
}

TEST(EventQueueTest, TailBucketWrappingIntoStartWordIsFound) {
  EventQueue q;
  // Advance the window floor to 100 (start bucket 100 = bitmap word 1,
  // bit 36), then park the only live event at the *tail* of the window:
  // t = 16474 is in-window (16474 - 100 < 16384) but its ring bucket
  // (16474 mod 16384 = 90) wraps into word 1 at bit 26 — *below* the start
  // bit. A bitmap scan that masks the starting word and never revisits it
  // cannot see this bucket and dies with "live bitmap empty".
  q.Push(100, 0, 0);
  EXPECT_EQ(q.Pop().idx, 0u);
  q.Push(16474, 1, 7);
  EventHandle h;
  ASSERT_TRUE(q.Peek(&h));
  EXPECT_EQ(h.time, 16474);
  EXPECT_EQ(q.Pop().idx, 7u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RepushRefillsDrainedTickInPopOrder) {
  EventQueue q;
  for (uint64_t seq = 0; seq < 6; ++seq) q.Push(100, seq, 10 + seq);
  q.Push(105, 6, 16);
  // The executor pops a whole tick, hits the event cap after 2, and repushes
  // the tail with its *original* seqs in pop order.
  std::vector<EventHandle> tick;
  for (int i = 0; i < 6; ++i) tick.push_back(q.Pop());
  for (size_t i = 2; i < tick.size(); ++i) {
    q.Push(tick[i].time, tick[i].seq, tick[i].idx);
  }
  for (uint64_t seq = 2; seq < 6; ++seq) {
    const EventHandle h = q.Pop();
    EXPECT_EQ(h.time, 100);
    EXPECT_EQ(h.seq, seq);
  }
  EXPECT_EQ(q.Pop().time, 105);
  EXPECT_TRUE(q.empty());
}

// --- Simulator-level order pinning -----------------------------------------

TEST(EventQueueSimTest, SerialOrderPinsTimeThenInsertion) {
  Simulator sim;
  std::vector<int> order;
  auto mark = [&](int id) { return [&order, id] { order.push_back(id); }; };
  sim.At(50, mark(0));
  sim.At(10, mark(1));
  sim.At(50, mark(2));           // ties with 0: insertion order
  sim.At(100000, mark(3));       // far horizon
  sim.At(10, mark(4));
  sim.After(0, mark(5));         // now
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{5, 1, 4, 0, 2, 3}));
}

TEST(EventQueueSimTest, NestedSchedulingKeepsAscendingOrder) {
  Simulator sim;
  std::vector<SimTime> fired;
  // Each event schedules two follow-ons; times must come out non-decreasing
  // and the total must be exact.
  struct Spawner {
    Simulator* sim;
    std::vector<SimTime>* fired;
    int depth;
    void operator()() const {
      fired->push_back(sim->Now());
      if (depth == 0) return;
      sim->After(3, Spawner{sim, fired, depth - 1});
      sim->After(17000, Spawner{sim, fired, depth - 1});  // crosses the ring
    }
  };
  sim.At(0, Spawner{&sim, &fired, 10});
  sim.Run();
  EXPECT_EQ(fired.size(), (1u << 11) - 1);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

TEST(EventQueueSimTest, CapFallbackRepushKeepsOrderUnderExecutor) {
  // The parallel executor pops whole rounds; a mid-round cap repushes the
  // unexecuted tail. The resumed run must produce exactly the serial result.
  // Recording is per shard: same-tick events on distinct shards legitimately
  // run concurrently, but each shard's own sequence is fully ordered.
  using PerShard = std::array<std::vector<int>, 4>;
  PerShard serial;
  {
    Simulator sim;
    for (int i = 0; i < 40; ++i) {
      sim.AtShard(7, i % 4, [&serial, i] { serial[i % 4].push_back(i); });
    }
    sim.Run();
  }
  PerShard capped;
  Simulator sim;
  for (int i = 0; i < 40; ++i) {
    sim.AtShard(7, i % 4, [&capped, i] { capped[i % 4].push_back(i); });
  }
  sim.SetJobs(3);
  sim.SetEventCap(13);
  sim.Run();
  EXPECT_TRUE(sim.cap_hit());
  EXPECT_EQ(sim.EventsProcessed(), 13u);
  // The executed set is exactly the 13-event serial prefix.
  size_t executed = 0;
  for (const auto& v : capped) executed += v.size();
  EXPECT_EQ(executed, 13u);
  for (int s = 0; s < 4; ++s) {
    for (size_t k = 0; k < capped[s].size(); ++k) {
      EXPECT_EQ(capped[s][k], serial[s][k]);
      EXPECT_LT(capped[s][k], 13);
    }
  }
  sim.SetEventCap(UINT64_MAX);
  sim.Run();
  EXPECT_EQ(capped, serial);
}

}  // namespace
}  // namespace hotstuff1::sim

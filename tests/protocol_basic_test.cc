// Basic (non-streamlined) HotStuff-1 (§4, Fig. 2): two-phase views, dual
// commit rules, speculative responses at the Prepare step.

#include <gtest/gtest.h>

#include "core/hotstuff1_basic.h"
#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

ExperimentConfig BasicConfig(uint32_t n = 4) {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1Basic;
  cfg.n = n;
  cfg.batch_size = 10;
  cfg.duration = Millis(300);
  cfg.warmup = Millis(100);
  cfg.num_clients = 100;
  cfg.seed = 11;
  return cfg;
}

TEST(BasicHotStuff1Test, CommitsAndSpeculates) {
  Experiment exp(BasicConfig());
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 50u);
  EXPECT_EQ(res.accepted_speculative, res.accepted);
  const auto& m = exp.replicas()[0]->metrics();
  EXPECT_GT(m.blocks_speculated, 0u);
}

TEST(BasicHotStuff1Test, HalfTheThroughputOfStreamlined) {
  // §5: streamlining doubles throughput (one proposal per phase instead of
  // one per two phases).
  ExperimentConfig basic = BasicConfig();
  ExperimentConfig streamlined = BasicConfig();
  streamlined.protocol = ProtocolKind::kHotStuff1;
  const auto rb = RunExperiment(basic);
  const auto rs = RunExperiment(streamlined);
  EXPECT_NEAR(rb.throughput_tps / rs.throughput_tps, 0.5, 0.12);
}

TEST(BasicHotStuff1Test, SameSpeculativeLatencyAsStreamlined) {
  // Both reach the client after 3 half-phases (Fig. 1 ii vs iii); basic
  // only loses throughput, not latency.
  ExperimentConfig basic = BasicConfig(7);
  ExperimentConfig streamlined = BasicConfig(7);
  streamlined.protocol = ProtocolKind::kHotStuff1;
  const auto rb = RunPaperPoint(basic);
  const auto rs = RunPaperPoint(streamlined);
  EXPECT_NEAR(rb.avg_latency_ms, rs.avg_latency_ms, rs.avg_latency_ms * 0.6);
}

TEST(BasicHotStuff1Test, OneBlockPerView) {
  Experiment exp(BasicConfig());
  exp.Run();
  const auto& r0 = *exp.replicas()[0];
  // Views and committed blocks track ~1:1 (minus pipeline tail).
  EXPECT_NEAR(static_cast<double>(r0.ledger().committed_height()),
              static_cast<double>(r0.view()), 6.0);
}

TEST(BasicHotStuff1Test, HighPrepareAdvances) {
  Experiment exp(BasicConfig());
  exp.Run();
  const auto* r0 =
      static_cast<const HotStuff1BasicReplica*>(exp.replicas()[0].get());
  EXPECT_GT(r0->high_prepare().view(), 10u);
  ASSERT_TRUE(r0->high_commit().has_value());
  EXPECT_GT(r0->high_commit()->view(), 10u);
  // The commit certificate trails the prepare certificate.
  EXPECT_LE(r0->high_commit()->view(), r0->high_prepare().view());
}

TEST(BasicHotStuff1Test, SurvivesCrashedLeader) {
  ExperimentConfig cfg = BasicConfig(4);
  cfg.fault = Fault::kCrash;
  cfg.num_faulty = 1;
  cfg.view_timer = Millis(5);
  cfg.delta = Millis(1);
  cfg.duration = Millis(500);
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 20u);
  EXPECT_GT(res.timeouts, 0u);
}

TEST(BasicHotStuff1Test, SlowLeaderHurtsLatency) {
  ExperimentConfig cfg = BasicConfig(4);
  cfg.num_clients = 16;
  ExperimentConfig slow = cfg;
  slow.fault = Fault::kSlowLeader;
  slow.num_faulty = 1;
  slow.view_timer = Millis(20);
  const auto fast_res = RunExperiment(cfg);
  const auto slow_res = RunExperiment(slow);
  EXPECT_GT(slow_res.avg_latency_ms, fast_res.avg_latency_ms * 1.5);
  EXPECT_TRUE(slow_res.safety_ok);
}

}  // namespace
}  // namespace hotstuff1

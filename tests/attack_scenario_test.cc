// Byzantine-attack reproductions:
//  * Appendix A.3: the prefix-speculation dilemma, shown as an actual
//    client-safety violation when the rules are disabled, and its absence
//    when they are enforced.
//  * Leader slowness (D6), tail-forking (D7), and the rollback attack of
//    §7.3, end-to-end, including the slotted protocol's resistance.

#include <gtest/gtest.h>

#include "client/client_pool.h"
#include "core/speculation.h"
#include "runtime/experiment.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

// ---------------------------------------------------------------------------
// Appendix A.3 (streamlined variant of A.1), reconstructed at the level of
// ledgers + client quorum. n = 4, f = 1. Correct replicas: A = {0},
// A' = {1}, A* = {2}; replica 3 is faulty. The Byzantine leaders of views
// 1..8 drive the following certificate schedule:
//   P(1) certifies B1 (extends genesis)      -> shown only to A
//   P(3) certifies B3 (extends genesis)      -> shown only to A'
//   P(5) certifies B5 (extends B1!)          -> shown only to A*
//   the winning chain later extends B3 and commits, orphaning B1 and B5.
// If A* speculates B5 *and its uncommitted prefix B1* (violating the Prefix
// Speculation rule), the client collects B1 responses from {A, A*, faulty}
// = n-f and wrongly finalizes B1.
// ---------------------------------------------------------------------------
class PrefixDilemmaTest : public ::testing::Test {
 protected:
  PrefixDilemmaTest()
      : ledger_a_(&store_, KvState()),
        ledger_a2_(&store_, KvState()),
        ledger_star_(&store_, KvState()),
        scratch_(&store_, KvState()) {
    ClientPoolConfig cp;
    cp.num_clients = 1;
    cp.quorum_commit = 2;       // f+1
    cp.quorum_speculative = 3;  // n-f
    cp.track_accepted = true;
    pool_ = std::make_unique<ClientPool>(&sim_, &workload_, cp,
                                         std::vector<SimTime>(4, 0));
    pool_->Start();
    sim_.RunUntil(Millis(1));

    auto batch = pool_->DrawBatch(0, 1, sim_.Now());
    txn_ = batch[0];

    b1_ = Put(1, store_.genesis(), {txn_});
    b3_ = Put(3, store_.genesis(), {});
    b5_ = Put(5, b1_, {});
    b7_ = Put(7, b3_, {});
  }

  BlockPtr Put(uint64_t view, const BlockPtr& parent, std::vector<Transaction> txns) {
    auto b = std::make_shared<Block>(BlockId{view, 1}, parent->hash(),
                                     parent->height() + 1, 0, std::move(txns));
    store_.Put(b);
    return b;
  }

  void RespondFor(ReplicaId replica, const BlockPtr& block,
                  const std::vector<uint64_t>& results) {
    pool_->OnBlockResponse(replica, block, results, /*speculative=*/true,
                           sim_.Now());
    sim_.RunUntil(sim_.Now() + 10);
  }

  sim::Simulator sim_;
  YcsbWorkload workload_;
  BlockStore store_;
  Ledger ledger_a_, ledger_a2_, ledger_star_, scratch_;
  std::unique_ptr<ClientPool> pool_;
  Transaction txn_;
  BlockPtr b1_, b3_, b5_, b7_;
};

TEST_F(PrefixDilemmaTest, ViolatingPrefixRuleBreaksClientSafety) {
  SpeculationPolicy unsafe;
  unsafe.prefix_rule = false;  // the disabled rule

  // A sees P(1): speculates B1 (legal: extends committed genesis).
  auto out_a = TrySpeculate(&ledger_a_, store_, b1_, true, unsafe);
  ASSERT_TRUE(out_a.speculated);
  RespondFor(0, b1_, out_a.executed[0].results);

  // A' sees P(3): speculates B3 on its local ledger.
  ASSERT_TRUE(TrySpeculate(&ledger_a2_, store_, b3_, true, unsafe).speculated);

  // A* sees P(5): with the prefix rule disabled it executes the uncommitted
  // prefix B1 as well -- the dilemma.
  auto out_star = TrySpeculate(&ledger_star_, store_, b5_, true, unsafe);
  ASSERT_TRUE(out_star.speculated);
  ASSERT_EQ(out_star.executed.size(), 2u);
  ASSERT_EQ(out_star.executed[0].block->hash(), b1_->hash());
  RespondFor(2, b1_, out_star.executed[0].results);

  // The faulty replica echoes a matching B1 response.
  RespondFor(3, b1_, out_a.executed[0].results);

  // The client now holds n-f matching commit-votes for B1 and finalizes it.
  ASSERT_EQ(pool_->accepted(), 1u);
  ASSERT_EQ(pool_->accepted_records()[0].block_hash, b1_->hash());

  // ... but the winning chain commits B3/B7, orphaning B1: client safety is
  // broken (Appendix A.3's "unsafe scenario for clients").
  scratch_.CommitChain(b7_);
  EXPECT_FALSE(scratch_.IsCommitted(b1_->hash()));
}

TEST_F(PrefixDilemmaTest, PrefixRulePreventsTheViolation) {
  SpeculationPolicy safe;  // all rules on

  auto out_a = TrySpeculate(&ledger_a_, store_, b1_, true, safe);
  ASSERT_TRUE(out_a.speculated);
  RespondFor(0, b1_, out_a.executed[0].results);

  // A* refuses: B5's predecessor B1 is not committed (Def. 3.1).
  auto out_star = TrySpeculate(&ledger_star_, store_, b5_, true, safe);
  EXPECT_FALSE(out_star.speculated);

  // Even with the faulty replica's response, only 2 < n-f commit-votes for
  // B1 exist: the client never finalizes it.
  RespondFor(3, b1_, out_a.executed[0].results);
  EXPECT_EQ(pool_->accepted(), 0u);
}

TEST_F(PrefixDilemmaTest, NoGapRuleBlocksStaleCertificateSpeculation) {
  SpeculationPolicy safe;
  // A.3's second scenario: A* receives P(1) late, in view 5 (a view gap in
  // which the conflicting P(3) formed). The protocol layer encodes this as
  // no_gap = false; speculation must not happen.
  EXPECT_FALSE(TrySpeculate(&ledger_star_, store_, b1_, /*no_gap=*/false, safe)
                   .speculated);
  // Disabling the rule reproduces the unsafe execution.
  SpeculationPolicy unsafe;
  unsafe.no_gap_rule = false;
  EXPECT_TRUE(TrySpeculate(&ledger_star_, store_, b1_, /*no_gap=*/false, unsafe)
                  .speculated);
}

// ---------------------------------------------------------------------------
// End-to-end fault experiments.
// ---------------------------------------------------------------------------

ExperimentConfig FaultConfig(ProtocolKind kind, Fault fault, uint32_t count) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = 7;  // f = 2
  cfg.batch_size = 10;
  cfg.duration = Millis(600);
  cfg.warmup = Millis(150);
  cfg.num_clients = 150;
  cfg.view_timer = Millis(10);
  cfg.fault = fault;
  cfg.num_faulty = count;
  cfg.seed = 5;
  cfg.track_accepted = true;
  return cfg;
}

// Cor. B.10: every client-accepted block is committed by correct replicas.
void ExpectClientSafety(Experiment& exp, SimTime grace) {
  const SimTime cutoff =
      exp.config().warmup + exp.config().duration - grace;
  for (const auto& rec : exp.clients().accepted_records()) {
    if (rec.time > cutoff) continue;  // still in flight at the end
    bool committed = false;
    for (const auto& r : exp.replicas()) {
      if (r->ledger().IsCommitted(rec.block_hash)) {
        committed = true;
        break;
      }
    }
    EXPECT_TRUE(committed) << "accepted block " << rec.block_hash.Short()
                           << " never committed";
  }
}

TEST(LeaderSlownessTest, DegradesStreamlinedProtocols) {
  const auto honest =
      RunExperiment(FaultConfig(ProtocolKind::kHotStuff1, Fault::kNone, 0));
  const auto slow =
      RunExperiment(FaultConfig(ProtocolKind::kHotStuff1, Fault::kSlowLeader, 2));
  EXPECT_TRUE(slow.safety_ok);
  EXPECT_LT(slow.throughput_tps, honest.throughput_tps * 0.8);
}

TEST(LeaderSlownessTest, SlottingResists) {
  const auto honest = RunExperiment(
      FaultConfig(ProtocolKind::kHotStuff1Slotted, Fault::kNone, 0));
  const auto slow = RunExperiment(
      FaultConfig(ProtocolKind::kHotStuff1Slotted, Fault::kSlowLeader, 2));
  EXPECT_TRUE(slow.safety_ok);
  // §7.3: slotting bounds the damage to a few percent.
  EXPECT_GT(slow.throughput_tps, honest.throughput_tps * 0.85);
}

TEST(TailForkTest, OrphansPreviousProposalInStreamlined) {
  Experiment exp(FaultConfig(ProtocolKind::kHotStuff1, Fault::kTailFork, 2));
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  // Tail-forked blocks never commit; their transactions get resubmitted.
  EXPECT_GT(res.resubmissions, 0u);
  ExpectClientSafety(exp, Millis(150));
}

TEST(TailForkTest, ThroughputDropExceedsSlotted) {
  const auto honest =
      RunExperiment(FaultConfig(ProtocolKind::kHotStuff1, Fault::kNone, 0));
  const auto forked =
      RunExperiment(FaultConfig(ProtocolKind::kHotStuff1, Fault::kTailFork, 2));
  const auto honest_slot = RunExperiment(
      FaultConfig(ProtocolKind::kHotStuff1Slotted, Fault::kNone, 0));
  const auto forked_slot = RunExperiment(
      FaultConfig(ProtocolKind::kHotStuff1Slotted, Fault::kTailFork, 2));
  const double drop_plain = forked.throughput_tps / honest.throughput_tps;
  const double drop_slot = forked_slot.throughput_tps / honest_slot.throughput_tps;
  EXPECT_LT(drop_plain, 0.95);       // visible damage
  EXPECT_GT(drop_slot, drop_plain);  // slotting absorbs the attack (§6.2)
}

TEST(TailForkTest, BaselinesAlsoSuffer) {
  for (auto kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2}) {
    const auto honest = RunExperiment(FaultConfig(kind, Fault::kNone, 0));
    const auto forked = RunExperiment(FaultConfig(kind, Fault::kTailFork, 2));
    EXPECT_TRUE(forked.safety_ok);
    EXPECT_LT(forked.throughput_tps, honest.throughput_tps);
  }
}

TEST(RollbackAttackTest, ForcesRollbacksOnVictims) {
  ExperimentConfig cfg =
      FaultConfig(ProtocolKind::kHotStuff1, Fault::kRollbackAttack, 2);
  cfg.rollback_victims = 2;  // up to f correct replicas misled per attack
  Experiment exp(cfg);
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.rollback_events, 0u);  // victims rolled back speculation
  EXPECT_GT(res.accepted, 50u);        // system keeps making progress
  ExpectClientSafety(exp, Millis(150));
}

TEST(RollbackAttackTest, GlobalLedgerNeverRollsBack) {
  ExperimentConfig cfg =
      FaultConfig(ProtocolKind::kHotStuff1, Fault::kRollbackAttack, 2);
  cfg.rollback_victims = 2;
  Experiment exp(cfg);
  exp.Run();
  // Committed prefixes agree everywhere despite local-ledger rollbacks.
  EXPECT_TRUE(exp.CheckSafety());
}

TEST(RollbackAttackTest, SlottingConfinesTheAttack) {
  ExperimentConfig plain =
      FaultConfig(ProtocolKind::kHotStuff1, Fault::kRollbackAttack, 2);
  plain.rollback_victims = 2;
  ExperimentConfig slotted = plain;
  slotted.protocol = ProtocolKind::kHotStuff1Slotted;
  const auto rp = RunExperiment(plain);
  const auto rs = RunExperiment(slotted);
  EXPECT_TRUE(rs.safety_ok);
  // §7.3: "rollback attacks have minimal impact on HotStuff-1 with
  // slotting" - far fewer rollback events than the plain variant.
  EXPECT_LE(rs.rollback_events, rp.rollback_events);
}

TEST(ImpersonationTest, ForgedSenderIsIgnored) {
  // Channel authentication: a message whose claimed sender differs from its
  // wire origin is dropped, so a faulty replica cannot impersonate the
  // leader. We inject a forged proposal and check the system's chain is
  // unaffected (still only honest-leader blocks).
  ExperimentConfig cfg = FaultConfig(ProtocolKind::kHotStuff1, Fault::kNone, 0);
  cfg.duration = Millis(300);
  Experiment exp(cfg);
  exp.Setup();
  auto& net = exp.network();
  auto forged = std::make_shared<ProposeMsg>(/*claimed sender=*/0);
  forged->block = std::make_shared<Block>(
      BlockId{2, 1}, Block::Genesis()->hash(), 1, 0,
      std::vector<Transaction>{});
  forged->justify = Certificate::Genesis();
  exp.simulator().After(Millis(160), [&net, forged]() {
    net.Send(/*actual origin=*/3, 1, forged);  // 3 pretends to be 0
  });
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  for (const auto& b : exp.replicas()[1]->ledger().committed_chain()) {
    if (b->IsGenesis()) continue;
    EXPECT_NE(b->hash(), forged->block->hash());
  }
}

}  // namespace
}  // namespace hotstuff1

// Slotted HotStuff-1 (§6): adaptive multi-slot views, carry blocks, slot
// caps, view-timer pacing, and the trusted-previous-leader fast path.

#include <gtest/gtest.h>

#include "core/hotstuff1_slotted.h"
#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

ExperimentConfig SlottedConfig(uint32_t n = 4) {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1Slotted;
  cfg.n = n;
  cfg.batch_size = 10;
  cfg.duration = Millis(400);
  cfg.warmup = Millis(100);
  cfg.num_clients = 200;
  cfg.view_timer = Millis(10);
  cfg.seed = 13;
  return cfg;
}

TEST(SlottedTest, ProposesMultipleSlotsPerView) {
  Experiment exp(SlottedConfig());
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 100u);
  // Views last the full 10ms timer; slots complete in ~2 network hops, so
  // each view fits several slots.
  ASSERT_GT(res.views, 0u);
  const double slots_per_view =
      static_cast<double>(res.slots) / static_cast<double>(res.views * 4);
  EXPECT_GT(slots_per_view, 2.0);
}

TEST(SlottedTest, AdaptiveSlotsScaleWithTimer) {
  // §6.1: adaptive slotting proposes as many slots as the view allows; a
  // longer timer yields more slots per view.
  ExperimentConfig short_timer = SlottedConfig();
  short_timer.view_timer = Millis(5);
  ExperimentConfig long_timer = SlottedConfig();
  long_timer.view_timer = Millis(20);
  const auto rs = RunExperiment(short_timer);
  const auto rl = RunExperiment(long_timer);
  const double sps = static_cast<double>(rs.slots) / std::max<uint64_t>(rs.views, 1);
  const double spl = static_cast<double>(rl.slots) / std::max<uint64_t>(rl.views, 1);
  EXPECT_GT(spl, sps * 1.8);
}

TEST(SlottedTest, MaxSlotsCapIsHonored) {
  ExperimentConfig cfg = SlottedConfig();
  cfg.max_slots = 2;
  cfg.view_timer = Millis(20);  // plenty of time for more than 2 slots
  Experiment exp(cfg);
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  ASSERT_GT(res.views, 0u);
  for (const auto& r : exp.replicas()) {
    // slots_proposed counts per-replica totals; with the cap, a leader can
    // propose at most 2 per view it led.
    const auto& m = r->metrics();
    if (m.blocks_proposed > 0) {
      EXPECT_LE(m.slots_proposed, 2 * m.blocks_proposed + 2);
    }
  }
}

TEST(SlottedTest, ViewsArePacedByTimer) {
  Experiment exp(SlottedConfig());
  const auto res = exp.Run();
  // Slotted views end only on the timer (§6.1 View-change): ~500ms total /
  // 10ms timer = ~50 views at the observer.
  EXPECT_LE(res.views, 70u);
  EXPECT_GE(res.views, 25u);
}

TEST(SlottedTest, CarryBlocksAppearInFirstSlots) {
  Experiment exp(SlottedConfig());
  exp.Run();
  // Between two correct leaders, the last slot of a view is uncertified at
  // the boundary; the next first-slot proposal carries it (way ii), or
  // extends a New-View certificate over it (way i). With the trusted-leader
  // fast path on, way (ii) dominates, so carries must appear.
  uint64_t carries = 0;
  const auto& chain = exp.replicas()[0]->ledger().committed_chain();
  for (const auto& b : chain) {
    if (b->has_carry()) ++carries;
  }
  EXPECT_GT(carries, 0u);
  // Carried blocks commit with (before) their carrier: chain heights are
  // contiguous by construction, so nothing to check beyond presence.
}

TEST(SlottedTest, HigherThroughputThanPlainStreamlinedAtLongTimers) {
  // With a long view timer, plain streamlined HotStuff-1 still advances at
  // network speed (views complete on proposals), but slotting keeps the
  // same pace while amortizing view-boundary costs; at minimum it must not
  // fall behind by the boundary overhead.
  ExperimentConfig slotted = SlottedConfig();
  ExperimentConfig plain = SlottedConfig();
  plain.protocol = ProtocolKind::kHotStuff1;
  const auto rs = RunExperiment(slotted);
  const auto rp = RunExperiment(plain);
  EXPECT_GT(rs.throughput_tps, rp.throughput_tps * 0.7);
}

TEST(SlottedTest, SpeculativeResponsesWithinView) {
  Experiment exp(SlottedConfig());
  const auto res = exp.Run();
  EXPECT_EQ(res.accepted_speculative, res.accepted);
  EXPECT_GT(exp.replicas()[0]->metrics().blocks_speculated, 0u);
}

TEST(SlottedTest, TrustedLeaderFastPathReducesFirstSlotDelay) {
  // Ablation 3 (DESIGN.md): disabling §6.3 forces every first slot to wait
  // for the Fig. 6 conditions; with it on, first slots follow the previous
  // leader's NewView at network speed. Throughput must not improve when the
  // fast path is disabled.
  ExperimentConfig on = SlottedConfig();
  ExperimentConfig off = SlottedConfig();
  off.trusted_leader_enabled = false;
  const auto r_on = RunExperiment(on);
  const auto r_off = RunExperiment(off);
  EXPECT_GE(r_on.throughput_tps, r_off.throughput_tps * 0.98);
  EXPECT_TRUE(r_off.safety_ok);
}

TEST(SlottedTest, SurvivesCrashedLeaders) {
  ExperimentConfig cfg = SlottedConfig(7);
  cfg.fault = Fault::kCrash;
  cfg.num_faulty = 2;
  cfg.duration = Millis(800);
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 50u);
}

TEST(SlottedTest, NoDistrustAmongCorrectLeaders) {
  Experiment exp(SlottedConfig());
  exp.Run();
  for (const auto& r : exp.replicas()) {
    const auto* sr = static_cast<const HotStuff1SlottedReplica*>(r.get());
    for (ReplicaId peer = 0; peer < 4; ++peer) {
      EXPECT_FALSE(sr->Distrusts(peer)) << r->id() << " distrusts " << peer;
    }
  }
}

TEST(SlottedTest, GeoDeploymentCommits) {
  ExperimentConfig cfg = SlottedConfig(10);
  cfg.topology = sim::Topology::Geo(10, 5);
  cfg.view_timer = Millis(500);
  cfg.delta = Millis(160);
  cfg.duration = Seconds(4);
  cfg.warmup = Seconds(1);
  const auto res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 20u);
}

}  // namespace
}  // namespace hotstuff1

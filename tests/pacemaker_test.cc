// Pacemaker (Fig. 3): epoch synchronization via Wish/TC, wall-clock view
// schedule, laggard catch-up, and fast-path progress.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "consensus/pacemaker.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hotstuff1 {
namespace {

// Harness: n pacemakers over a simulated network. Each fake replica either
// makes instant progress (calls CompletedView as soon as it enters a view)
// or only advances via timeouts.
class PacemakerHarness {
 public:
  PacemakerHarness(uint32_t n, uint32_t f, SimTime tau, SimTime delta,
                   bool instant_progress)
      : n_(n), registry_(n, 9), net_(&sim_, n) {
    net_.SetAllLatencies(Millis(0.1));
    for (uint32_t i = 0; i < n; ++i) {
      entered_.emplace_back();
      timeouts_.emplace_back();
    }
    for (uint32_t i = 0; i < n; ++i) {
      Pacemaker::Callbacks cb;
      cb.enter_view = [this, i, instant_progress](uint64_t v) {
        entered_[i].push_back(v);
        if (instant_progress) {
          // Simulate an instantly-successful view: complete it right away.
          sim_.After(10, [this, i, v]() {
            if (pacemakers_[i]->current_view() == v) {
              pacemakers_[i]->CompletedView(v + 1);
            }
          });
        }
      };
      cb.view_timeout = [this, i](uint64_t v) {
        timeouts_[i].push_back(v);
        pacemakers_[i]->CompletedView(v + 1);
      };
      cb.send_wish = [this, i](ReplicaId to, std::shared_ptr<WishMsg> m) {
        net_.Send(i, to, std::move(m));
      };
      cb.broadcast_tc = [this, i](std::shared_ptr<TimeoutCertMsg> m) {
        net_.Broadcast(i, m);
      };
      cb.send_tc = [this, i](ReplicaId to, std::shared_ptr<TimeoutCertMsg> m) {
        net_.Send(i, to, std::move(m));
      };
      pacemakers_.push_back(std::make_unique<Pacemaker>(
          &sim_, &registry_, Signer(&registry_, i), n, f, tau, delta, cb));
    }
    for (uint32_t i = 0; i < n; ++i) {
      net_.SetHandler(i, [this, i](sim::NodeId, const sim::NetMessagePtr& raw) {
        const auto* msg = static_cast<const ConsensusMessage*>(raw.get());
        if (msg->type == ConsensusMessage::Type::kWish) {
          pacemakers_[i]->OnWish(static_cast<const WishMsg&>(*msg));
        } else if (msg->type == ConsensusMessage::Type::kTimeoutCert) {
          pacemakers_[i]->OnTimeoutCert(static_cast<const TimeoutCertMsg&>(*msg));
        }
      });
    }
  }

  void StartAll() {
    for (auto& p : pacemakers_) p->Start();
  }

  uint32_t n_;
  KeyRegistry registry_;
  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<Pacemaker>> pacemakers_;
  std::vector<std::vector<uint64_t>> entered_;
  std::vector<std::vector<uint64_t>> timeouts_;
};

TEST(PacemakerTest, InitialEpochSynchronizesEveryone) {
  PacemakerHarness h(4, 1, Millis(10), Millis(1), /*instant_progress=*/false);
  h.StartAll();
  h.sim_.RunUntil(Millis(5));
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_FALSE(h.entered_[i].empty());
    EXPECT_EQ(h.entered_[i].front(), 1u);  // first real view
    EXPECT_EQ(h.pacemakers_[i]->current_view(), 1u);
  }
}

TEST(PacemakerTest, TimeoutsDriveViewsOnSchedule) {
  // Without progress, views advance at tau intervals per the StartTime
  // schedule: view v+k starts at tc_time + k*tau.
  PacemakerHarness h(4, 1, Millis(10), Millis(1), false);
  h.StartAll();
  h.sim_.RunUntil(Millis(45));
  for (uint32_t i = 0; i < 4; ++i) {
    // Within 45ms: enter view 1 (~0), timeout drives views ~ every 10ms,
    // plus an epoch sync every f+1 = 2 views.
    EXPECT_GE(h.pacemakers_[i]->current_view(), 3u);
    EXPECT_FALSE(h.timeouts_[i].empty());
  }
  // All replicas agree on the view (same schedule).
  for (uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(h.pacemakers_[i]->current_view(), h.pacemakers_[0]->current_view());
  }
}

TEST(PacemakerTest, FastPathOutrunsTimers) {
  // With instant progress, views advance far faster than tau.
  PacemakerHarness h(4, 1, Millis(100), Millis(1), /*instant_progress=*/true);
  h.StartAll();
  h.sim_.RunUntil(Millis(50));
  // In 50ms with ~10us views plus epoch syncs every 2 views, we should have
  // gone through many views although not a single tau elapsed.
  EXPECT_GT(h.pacemakers_[0]->current_view(), 20u);
  EXPECT_TRUE(h.timeouts_[0].empty());
}

TEST(PacemakerTest, EpochBoundaryRequiresSynchronization) {
  PacemakerHarness h(4, 1, Millis(10), Millis(1), true);
  h.StartAll();
  h.sim_.RunUntil(Millis(50));
  // f+1 = 2 views per epoch: epochs synchronized repeatedly.
  EXPECT_GT(h.pacemakers_[0]->epochs_synchronized(), 5u);
}

TEST(PacemakerTest, EnteredAtTracksEntryTime) {
  PacemakerHarness h(4, 1, Millis(10), Millis(2), false);
  h.StartAll();
  h.sim_.RunUntil(Millis(5));
  const Pacemaker& p = *h.pacemakers_[0];
  EXPECT_GE(p.entered_at(), 0);
  EXPECT_EQ(p.share_timer_deadline(), p.entered_at() + 3 * Millis(2));
}

TEST(PacemakerTest, EpochStartArithmetic) {
  PacemakerHarness h(7, 2, Millis(10), Millis(1), false);
  const Pacemaker& p = *h.pacemakers_[0];
  EXPECT_EQ(p.EpochStart(0), 0u);
  EXPECT_EQ(p.EpochStart(2), 0u);
  EXPECT_EQ(p.EpochStart(3), 3u);  // f+1 = 3
  EXPECT_EQ(p.EpochStart(5), 3u);
  EXPECT_EQ(p.EpochStart(6), 6u);
}

TEST(PacemakerTest, CrashedMinorityDoesNotBlockSync) {
  PacemakerHarness h(4, 1, Millis(10), Millis(1), false);
  h.net_.Crash(3);
  h.StartAll();
  h.sim_.RunUntil(Millis(60));
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_GE(h.pacemakers_[i]->current_view(), 3u) << i;
  }
}

TEST(PacemakerTest, WishStateStaysBoundedOver10kViews) {
  // Regression: wishes_ / tc_handled_ used to grow one entry per epoch for
  // the lifetime of the run (an unbounded-memory bug in long experiments).
  // EnterView now prunes every view below the current epoch start, so after
  // 10k views the resident state is the current boundary plus at most a
  // wish/TC that arrived early for the next one — a small constant, not ~5k.
  PacemakerHarness h(4, 1, Millis(100), Millis(1), /*instant_progress=*/true);
  h.StartAll();
  SimTime t = 0;
  while (h.pacemakers_[0]->current_view() < 10'000 && t < Millis(20'000)) {
    t += Millis(100);
    h.sim_.RunUntil(t);
  }
  ASSERT_GE(h.pacemakers_[0]->current_view(), 10'000u);
  for (uint32_t i = 0; i < h.n_; ++i) {
    EXPECT_LE(h.pacemakers_[i]->wish_state_size(), 4u) << "replica " << i;
    EXPECT_LE(h.pacemakers_[i]->tc_handled_size(), 4u) << "replica " << i;
  }
}

TEST(PacemakerTest, LaggardJumpsForwardOnTc) {
  // Replica 3 misses the first TC (crashed during sync, then recovers): a
  // later TC pulls it to the current epoch.
  PacemakerHarness h(4, 1, Millis(10), Millis(1), false);
  h.net_.Crash(3);
  h.StartAll();
  h.sim_.RunUntil(Millis(15));
  EXPECT_EQ(h.pacemakers_[3]->current_view(), 0u);
  h.net_.Recover(3);
  h.sim_.RunUntil(Millis(80));
  // Replica 3 re-joins via a subsequent epoch's TC broadcast.
  EXPECT_GE(h.pacemakers_[3]->current_view(),
            h.pacemakers_[0]->current_view() > 2
                ? h.pacemakers_[0]->current_view() - 2
                : 1);
}

}  // namespace
}  // namespace hotstuff1

// Robustness against malformed, replayed, and equivocating messages: a
// Byzantine node floods the cluster with junk while honest consensus keeps
// running. Safety must hold unconditionally; liveness must survive.

#include <gtest/gtest.h>

#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

class RobustnessTest : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ExperimentConfig Config() {
    ExperimentConfig cfg;
    cfg.protocol = GetParam();
    cfg.n = 4;
    cfg.batch_size = 10;
    cfg.duration = Millis(400);
    cfg.warmup = Millis(100);
    cfg.num_clients = 100;
    cfg.view_timer = Millis(8);
    cfg.delta = Millis(1);
    cfg.seed = 77;
    return cfg;
  }
};

TEST_P(RobustnessTest, GarbageProposalFlood) {
  Experiment exp(Config());
  exp.Setup();
  auto& net = exp.network();
  // Replica 3 (honest protocol instance, hijacked wire) floods forged
  // proposals: unknown parents, bogus certificates, wrong heights.
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    exp.simulator().At(Millis(120 + i * 5), [&net, &rng, i]() {
      auto msg = std::make_shared<ProposeMsg>(/*sender=*/3);
      const uint64_t view = 3 + 4 * (1 + rng.NextBounded(20));  // views led by 3
      auto block = std::make_shared<Block>(
          BlockId{view, 1}, Sha256::Digest("junk parent " + std::to_string(i)),
          1 + rng.NextBounded(50), 3, std::vector<Transaction>{});
      msg->block = std::move(block);
      msg->justify = Certificate(CertKind::kPrepare, BlockId{view - 1, 1},
                                 Sha256::Digest("junk cert"), view - 1, {});
      net.Broadcast(3, msg, /*include_self=*/false);
    });
  }
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 100u);
}

TEST_P(RobustnessTest, ForgedVoteSharesRejected) {
  Experiment exp(Config());
  exp.Setup();
  auto& net = exp.network();
  // Votes with invalid MACs must never aggregate into certificates.
  for (int i = 0; i < 100; ++i) {
    exp.simulator().At(Millis(110 + i * 3), [&net, i]() {
      auto vote = std::make_shared<NewViewMsg>(/*sender=*/3);
      vote->target_view = static_cast<uint64_t>(4 + i);
      vote->high_cert = Certificate::Genesis();
      vote->has_share = true;
      vote->share_kind = CertKind::kPrepare;
      vote->voted_id = BlockId{static_cast<uint64_t>(3 + i), 1};
      vote->voted_hash = Sha256::Digest("phantom block");
      vote->share = Signature{3, Sha256::Digest("not a real mac")};
      for (ReplicaId to = 0; to < 4; ++to) {
        if (to != 3) net.Send(3, to, vote);
      }
    });
  }
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 100u);
}

TEST_P(RobustnessTest, UndersizedCertificateRejected) {
  Experiment exp(Config());
  exp.Setup();
  auto& net = exp.network();
  const KeyRegistry& registry = exp.registry();
  // A certificate with only f+1 = 2 real signatures (below the n-f = 3
  // quorum) must not be accepted as a justify.
  exp.simulator().At(Millis(150), [&]() {
    const BlockId id{2, 1};
    const Hash256 fake_hash = Sha256::Digest("underquorum block");
    std::vector<Signature> sigs;
    for (ReplicaId r = 0; r < 2; ++r) {
      sigs.push_back(Signer(&registry, r)
                         .Sign(SignDomain::kProposeVote,
                               VoteDigest(CertKind::kPrepare, 2, id, fake_hash)));
    }
    auto msg = std::make_shared<ProposeMsg>(/*sender=*/3);
    msg->justify = Certificate(CertKind::kPrepare, id, fake_hash, 2, sigs);
    msg->block = std::make_shared<Block>(BlockId{3, 1}, fake_hash, 3, 3,
                                         std::vector<Transaction>{});
    net.Broadcast(3, msg, false);
  });
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 100u);
}

TEST_P(RobustnessTest, DuplicatedTrafficIsIdempotent) {
  // Duplicate every message by re-sending: a 2x replay storm must change
  // nothing about safety or the committed chain contents.
  ExperimentConfig cfg = Config();
  Experiment exp(cfg);
  const auto res = exp.Run();
  ASSERT_TRUE(res.safety_ok);

  // Replays are covered structurally: accumulators deduplicate by signer,
  // voted_view_/slot counters forbid double votes, and the block store is
  // idempotent. Exercise the paths through a lossy-duplicate rule is not
  // expressible in FaultRule, so we verify the dedup invariants directly.
  const auto& m = exp.replicas()[0]->metrics();
  EXPECT_LE(m.votes_sent, m.proposals_received);
}

INSTANTIATE_TEST_SUITE_P(Protocols, RobustnessTest,
                         ::testing::Values(ProtocolKind::kHotStuff2,
                                           ProtocolKind::kHotStuff1,
                                           ProtocolKind::kHotStuff1Slotted),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           switch (info.param) {
                             case ProtocolKind::kHotStuff2: return "HotStuff2";
                             case ProtocolKind::kHotStuff1: return "HS1";
                             case ProtocolKind::kHotStuff1Slotted: return "Slotted";
                             default: return "Other";
                           }
                         });

TEST(EquivocationTest, OnlyOneBranchCertifies) {
  // An equivocating leader (the rollback attacker's first phase) sends two
  // conflicting proposals in its view; at most one can gather a quorum, and
  // all correct replicas converge on a single chain.
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;
  cfg.n = 7;
  cfg.batch_size = 10;
  cfg.duration = Millis(500);
  cfg.warmup = Millis(100);
  cfg.num_clients = 100;
  cfg.view_timer = Millis(8);
  cfg.delta = Millis(1);
  cfg.fault = Fault::kRollbackAttack;  // conceal + equivocate
  cfg.num_faulty = 2;
  cfg.rollback_victims = 2;
  cfg.seed = 31;
  Experiment exp(cfg);
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  // Committed chains contain no duplicate heights and no conflicting ids.
  const auto& chain = exp.replicas()[0]->ledger().committed_chain();
  for (size_t h = 1; h < chain.size(); ++h) {
    EXPECT_EQ(chain[h]->height(), h);
    EXPECT_EQ(chain[h]->parent_hash(), chain[h - 1]->hash());
  }
}

}  // namespace
}  // namespace hotstuff1

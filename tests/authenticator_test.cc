// Authenticator byte model: per-scheme share/certificate sizes, the
// scheme-name round trip, legacy-equivalence of the default (unstamped)
// model, and the StampAuth wiring that lets one message object report
// different wire bytes per committee configuration. The consensus-visible
// Certificate contract is scheme-independent; only WireSize moves.

#include <gtest/gtest.h>

#include "consensus/certificate.h"
#include "consensus/config.h"
#include "consensus/messages.h"
#include "crypto/authenticator.h"

namespace hotstuff1 {
namespace {

constexpr AuthSizeModel kVector{CertScheme::kMultisigVector, 64};
constexpr AuthSizeModel kAggregate{CertScheme::kAggregate, 64};
constexpr AuthSizeModel kThreshold{CertScheme::kThreshold, 64};

TEST(AuthSizeModelTest, ShareBytesPerScheme) {
  EXPECT_EQ(kVector.ShareBytes(), 96u);     // 64B sig + 32B metadata (§7)
  EXPECT_EQ(kAggregate.ShareBytes(), 48u);  // BLS12-381 G1 point
  EXPECT_EQ(kThreshold.ShareBytes(), 48u);
}

TEST(AuthSizeModelTest, VectorCertGrowsLinearlyInShares) {
  EXPECT_EQ(kVector.CertBytes(1), 96u);
  EXPECT_EQ(kVector.CertBytes(43), 43u * 96u);   // n=64 quorum
  EXPECT_EQ(kVector.CertBytes(342), 342u * 96u); // n=512 quorum
}

TEST(AuthSizeModelTest, AggregateCertIsConstantInSharesPlusBitmap) {
  // One G1 point + a ceil(n/8)-byte signer bitmap: independent of how many
  // shares went in, linear only in the committee size.
  EXPECT_EQ(kAggregate.CertBytes(1), 48u + 8u);
  EXPECT_EQ(kAggregate.CertBytes(43), 48u + 8u);
  const AuthSizeModel odd{CertScheme::kAggregate, 65};
  EXPECT_EQ(odd.CertBytes(44), 48u + 9u);  // bitmap rounds up
  const AuthSizeModel big{CertScheme::kAggregate, 512};
  EXPECT_EQ(big.CertBytes(342), 48u + 64u);
}

TEST(AuthSizeModelTest, ThresholdCertIsFlat) {
  EXPECT_EQ(kThreshold.CertBytes(1), 48u);
  EXPECT_EQ(kThreshold.CertBytes(342), 48u);
  const AuthSizeModel big{CertScheme::kThreshold, 512};
  EXPECT_EQ(big.CertBytes(342), 48u);  // no bitmap either
}

TEST(AuthSizeModelTest, EmptyCertificateIsFreeUnderEveryScheme) {
  // Genesis certificates carry no authenticator at all.
  for (const AuthSizeModel& m : {kVector, kAggregate, kThreshold}) {
    EXPECT_EQ(m.CertBytes(0), 0u);
  }
}

TEST(AuthSizeModelTest, SchemeNamesRoundTripAndAliasesParse) {
  for (CertScheme s : {CertScheme::kMultisigVector, CertScheme::kAggregate,
                       CertScheme::kThreshold}) {
    CertScheme parsed;
    ASSERT_TRUE(ParseCertScheme(CertSchemeName(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  CertScheme parsed;
  EXPECT_TRUE(ParseCertScheme("multisig", &parsed));
  EXPECT_EQ(parsed, CertScheme::kMultisigVector);
  EXPECT_TRUE(ParseCertScheme("bls", &parsed));
  EXPECT_EQ(parsed, CertScheme::kAggregate);
  EXPECT_FALSE(ParseCertScheme("ecdsa", &parsed));
  EXPECT_FALSE(ParseCertScheme("", &parsed));
}

// --- wiring: certificates and messages --------------------------------------

class AuthWiringTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 7, kF = 2, kQuorum = kN - kF;
  AuthWiringTest() : registry_(kN, 42) {}

  Certificate MakeCert() {
    const Hash256 h = Sha256::Digest("block");
    VoteAccumulator acc(CertKind::kPrepare, 1, {1, 1}, h, kQuorum);
    for (ReplicaId r = 0; r < kQuorum; ++r) {
      acc.Add(Signer(&registry_, r)
                  .Sign(SignDomain::kProposeVote,
                        VoteDigest(CertKind::kPrepare, 1, {1, 1}, h)));
    }
    return acc.Build(1);
  }

  KeyRegistry registry_;
};

TEST_F(AuthWiringTest, CertificateWireSizeDefaultsToLegacyVector) {
  const Certificate c = MakeCert();
  // The default model is the multisig vector, so the pre-model accounting
  // (64B header + 96B per share) is unchanged for callers passing no model.
  EXPECT_EQ(c.WireSize(), 64u + kQuorum * 96u);
  EXPECT_EQ(c.WireSize(AuthSizeModel{CertScheme::kAggregate, kN}),
            64u + 48u + 1u);
  EXPECT_EQ(c.WireSize(AuthSizeModel{CertScheme::kThreshold, kN}), 64u + 48u);
  EXPECT_EQ(Certificate::Genesis().WireSize(), 64u);
}

TEST_F(AuthWiringTest, UnstampedMessagesKeepLegacyByteSizes) {
  // Historical constants: Vote 160 + cert, NewView 200 + cert, Wish 112,
  // TC 48 + 96/sig. Genesis certs contribute their bare 64B header.
  VoteMsg vote(0);
  EXPECT_EQ(vote.WireSize(), 160u + 64u);
  NewViewMsg nv(0);
  EXPECT_EQ(nv.WireSize(), 200u + 64u);
  WishMsg wish(0);
  EXPECT_EQ(wish.WireSize(), 112u);
  TimeoutCertMsg tc(0);
  tc.sigs.resize(kQuorum);
  EXPECT_EQ(tc.WireSize(), 48u + kQuorum * 96u);
}

TEST_F(AuthWiringTest, StampAuthSwitchesMessageBytesToTheStampedScheme) {
  VoteMsg vote(0);
  vote.high_cert = MakeCert();
  const size_t vector_bytes = vote.WireSize();
  EXPECT_EQ(vector_bytes, 64u + 96u + 64u + kQuorum * 96u);

  // Stamping is const (the transport stamps shared_ptr<const> messages).
  const ConsensusMessage& as_const = vote;
  as_const.StampAuth(AuthSizeModel{CertScheme::kAggregate, kN});
  EXPECT_EQ(vote.WireSize(), 64u + 48u + 64u + 48u + 1u);
  EXPECT_LT(vote.WireSize(), vector_bytes);

  as_const.StampAuth(AuthSizeModel{CertScheme::kThreshold, kN});
  EXPECT_EQ(vote.WireSize(), 64u + 48u + 64u + 48u);

  TimeoutCertMsg tc(0);
  tc.sigs.resize(kQuorum);
  tc.StampAuth(AuthSizeModel{CertScheme::kAggregate, kN});
  EXPECT_EQ(tc.WireSize(), 48u + 48u + 1u);
}

TEST(AuthConfigTest, ConsensusConfigBindsSchemeAndCommitteeSize) {
  ConsensusConfig c;
  c.n = 512;
  c.f = 170;
  c.cert_scheme = CertScheme::kAggregate;
  const AuthSizeModel m = c.auth_model();
  EXPECT_EQ(m.scheme, CertScheme::kAggregate);
  EXPECT_EQ(m.committee_n, 512u);
  EXPECT_EQ(m.CertBytes(c.quorum()), 48u + 64u);
}

}  // namespace
}  // namespace hotstuff1

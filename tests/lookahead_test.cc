// Lookahead-horizon tests: the safe window the experiment layer derives for
// the parallel executor (Network::MinDeliveryLatency + the client response
// hop), its degenerate cases, and the proof that a window actually lets
// events of different timestamps run concurrently.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>

#include "runtime/experiment.h"
#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace hotstuff1 {
namespace {

using sim::Network;
using sim::NetworkConfig;
using sim::Simulator;
using sim::Topology;

// --- horizon computation ----------------------------------------------------

TEST(HorizonTest, MinDeliveryLatencyPicksSmallestDirectedLink) {
  Simulator sim;
  Network net(&sim, 3);  // default bandwidth: serialization floor rounds to 0
  // Asymmetric geo-style latencies: the horizon must honor the cheapest
  // direction of the cheapest pair, not a symmetrized average.
  net.SetAllLatencies(Millis(40));
  net.SetLatency(0, 1, Millis(8));
  net.SetLatency(1, 0, Millis(95));
  EXPECT_EQ(net.MinDeliveryLatency(), Millis(8));
}

TEST(HorizonTest, MatchesMinCrossRegionLatencyOnPaperGeo) {
  Simulator sim;
  // One replica per region, five regions: no intra-region pair exists, so
  // the minimum is the cheapest inter-region one-way (London <-> Zurich).
  Topology topo = Topology::Geo(5, 5);
  Network net(&sim, 5);
  topo.Apply(&net);
  SimTime min_pair = INT64_MAX;
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = 0; b < 5; ++b) {
      if (a != b) min_pair = std::min(min_pair, Topology::RegionOneWay(a, b));
    }
  }
  EXPECT_EQ(net.MinDeliveryLatency(), min_pair);
  EXPECT_EQ(min_pair, Topology::RegionOneWay(sim::kLondon, sim::kZurich));
}

TEST(HorizonTest, SerializationFloorRespondsToBandwidth) {
  Simulator sim;
  NetworkConfig slow_cfg;
  slow_cfg.bandwidth_bytes_per_us = 1.0;  // 1 MB/s: floor = kMinWireBytes us
  Network slow(&sim, 2, slow_cfg);
  NetworkConfig fast_cfg;
  fast_cfg.bandwidth_bytes_per_us = 200000.0;  // 200 GB/s: floor rounds to 0
  Network fast(&sim, 2, fast_cfg);

  EXPECT_EQ(slow.SerializationFloor(), static_cast<SimTime>(sim::kMinWireBytes));
  EXPECT_EQ(fast.SerializationFloor(), 0);
  // The window shrinks toward the pure link delay as bandwidth grows: the
  // guaranteed egress-serialization slack disappears.
  EXPECT_LT(fast.MinDeliveryLatency(), slow.MinDeliveryLatency());
  EXPECT_EQ(slow.MinDeliveryLatency(),
            slow.latency(0, 1) + static_cast<SimTime>(sim::kMinWireBytes));
}

TEST(HorizonTest, SingleNodeHasNoCrossTraffic) {
  Simulator sim;
  Network net(&sim, 1);
  EXPECT_EQ(net.MinDeliveryLatency(), Network::kNoCrossTraffic);
}

// --- experiment-level auto window -------------------------------------------

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 20;
  cfg.duration = Millis(30);
  cfg.warmup = Millis(10);
  cfg.seed = 7;
  return cfg;
}

TEST(HorizonTest, AutoWindowOnLanIsTheLanLatency) {
  ExperimentConfig cfg = TinyConfig();
  cfg.sim_jobs = 4;
  Experiment exp(cfg);
  exp.Setup();
  // LAN one-way = 0.4 ms; the serialization floor rounds to 0 at 2 GB/s and
  // the client hop equals the same intra-region latency.
  EXPECT_EQ(exp.simulator().lookahead(), Millis(0.4));
}

TEST(HorizonTest, ClientResponseHopBoundsTheWindow) {
  ExperimentConfig cfg = TinyConfig();
  cfg.n = 2;
  cfg.sim_jobs = 2;
  // One replica per region: replica<->replica traffic needs >= 100 ms
  // (NV<->HK), but the NV clients reach replica 0 in 0.4 ms — the response
  // hop is the binding constraint.
  cfg.topology = Topology::Geo(2, 2);
  Experiment exp(cfg);
  exp.Setup();
  EXPECT_EQ(exp.simulator().lookahead(), Millis(0.4));
}

TEST(HorizonTest, ZeroDelayLinkDegeneratesToTickParallel) {
  ExperimentConfig cfg = TinyConfig();
  cfg.sim_jobs = 4;
  cfg.topology = Topology::Lan(cfg.n, /*one_way=*/0);
  Experiment exp(cfg);
  exp.Setup();
  EXPECT_EQ(exp.simulator().lookahead(), 0);
}

TEST(HorizonTest, ExplicitAndOffModes) {
  ExperimentConfig cfg = TinyConfig();
  cfg.sim_jobs = 4;
  cfg.lookahead = {LookaheadMode::kWindow, 1234};
  {
    Experiment exp(cfg);
    exp.Setup();
    EXPECT_EQ(exp.simulator().lookahead(), 1234);
  }
  cfg.lookahead = {LookaheadMode::kOff, 0};
  {
    Experiment exp(cfg);
    exp.Setup();
    EXPECT_EQ(exp.simulator().lookahead(), 0);
  }
}

TEST(HorizonTest, ParseLookaheadRoundTrips) {
  LookaheadSpec spec;
  EXPECT_TRUE(ParseLookahead("auto", &spec));
  EXPECT_EQ(spec.mode, LookaheadMode::kAuto);
  EXPECT_TRUE(ParseLookahead("off", &spec));
  EXPECT_EQ(spec.mode, LookaheadMode::kOff);
  EXPECT_TRUE(ParseLookahead("0", &spec));
  EXPECT_EQ(spec.mode, LookaheadMode::kOff);
  EXPECT_TRUE(ParseLookahead("250", &spec));
  EXPECT_EQ(spec.mode, LookaheadMode::kWindow);
  EXPECT_EQ(spec.window, 250);
  EXPECT_EQ(FormatLookahead(spec), "250");
  EXPECT_FALSE(ParseLookahead("", &spec));
  EXPECT_FALSE(ParseLookahead("fast", &spec));
  EXPECT_FALSE(ParseLookahead("-3", &spec));
  EXPECT_FALSE(ParseLookahead("12ms", &spec));
}

// --- window engagement ------------------------------------------------------

// Runs `kEvents` events at distinct consecutive timestamps (one per shard)
// and reports the peak number simultaneously in flight. Each event waits
// briefly for the others, so overlap is observed whenever the executor
// allows it: tick-parallel execution can never overlap distinct timestamps;
// a lookahead window covering all of them must.
int PeakCrossTimestampOverlap(Simulator& sim, int events, int wait_ms = 5000) {
  std::mutex mu;
  std::condition_variable cv;
  int in_flight = 0;
  int peak = 0;
  for (int i = 0; i < events; ++i) {
    sim.AtShard(10 + i, static_cast<sim::ShardId>(i), [&, events, wait_ms] {
      std::unique_lock<std::mutex> lk(mu);
      ++in_flight;
      peak = std::max(peak, in_flight);
      cv.notify_all();
      // Wait on the monotone peak, so the first full overlap releases
      // everyone and a non-overlapping executor only pays one timeout.
      cv.wait_for(lk, std::chrono::milliseconds(wait_ms),
                  [&] { return peak == events; });
      --in_flight;
    });
  }
  sim.Run();
  return peak;
}

// The contract makes lookahead invisible in the output, so prove it engages
// through timing structure instead.
TEST(LookaheadWindowTest, OverlapsEventsAcrossTimestamps) {
  constexpr int kEvents = 3;
  Simulator sim;
  sim.SetJobs(kEvents + 1);
  sim.SetLookahead(100);
  EXPECT_EQ(PeakCrossTimestampOverlap(sim, kEvents), kEvents)
      << "events at t=10,11,12 never ran concurrently: the lookahead window "
         "did not engage";
  EXPECT_EQ(sim.EventsProcessed(), static_cast<uint64_t>(kEvents));
  EXPECT_EQ(sim.Now(), 12);
}

// A finite event cap pins the executor to the tick path (exact serial
// truncation), so distinct timestamps never overlap. The first event's
// rendezvous times out — keep the count small so the test stays fast.
TEST(LookaheadWindowTest, EventCapDisablesWindows) {
  Simulator sim;
  sim.SetJobs(3);
  sim.SetLookahead(100);
  sim.SetEventCap(1000);
  EXPECT_EQ(PeakCrossTimestampOverlap(sim, 2, /*wait_ms=*/200), 1)
      << "capped runs must stay tick-parallel";
  EXPECT_EQ(sim.EventsProcessed(), 2u);
}

// --- cap-hit visibility -----------------------------------------------------

// Event-cap truncation must be visible in the human-readable tables, not
// just the event_cap_hit CSV column.
TEST(EventCapVisibilityTest, TablesWarnWhenAPointHitsTheCap) {
  ScenarioSpec spec;
  spec.name = "cap_probe";
  spec.title = "cap probe";
  spec.row_name = "x";
  spec.base = TinyConfig();
  spec.base.event_cap = 200;  // trips immediately
  spec.rows.push_back({"only", nullptr});
  spec.metrics = {ThroughputMetric()};
  spec.mode = RunMode::kSingle;

  SweepRunner runner(1);
  const SweepOutcome outcome = runner.Run(spec);
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_TRUE(outcome.results[0].event_cap_hit);
  std::ostringstream os;
  EmitTables(outcome, os);
  EXPECT_NE(os.str().find("hit the simulator event cap"), std::string::npos)
      << os.str();
}

// A cap under --sim-jobs > 1 silently pinned the executor to tick-parallel
// scheduling before the cap_parallelism_degraded diagnostic existed; now the
// fallback must be reported on the result and in the tables.
TEST(EventCapVisibilityTest, CappedParallelRunReportsDegradedParallelism) {
  ExperimentConfig cfg = TinyConfig();
  cfg.event_cap = 200;
  cfg.sim_jobs = 4;  // auto lookahead resolves to a real window on the LAN
  EXPECT_TRUE(RunExperiment(cfg).cap_parallelism_degraded);

  cfg.sim_jobs = 1;  // a serial run has no parallelism to lose
  EXPECT_FALSE(RunExperiment(cfg).cap_parallelism_degraded);

  cfg.sim_jobs = 4;
  cfg.event_cap = 0;  // no cap, no fallback
  EXPECT_FALSE(RunExperiment(cfg).cap_parallelism_degraded);

  cfg.event_cap = 200;
  cfg.lookahead = {LookaheadMode::kOff, 0};  // nothing to degrade
  EXPECT_FALSE(RunExperiment(cfg).cap_parallelism_degraded);
}

TEST(EventCapVisibilityTest, TablesNoteDegradedParallelism) {
  ScenarioSpec spec;
  spec.name = "cap_degrade_probe";
  spec.title = "cap degrade probe";
  spec.row_name = "x";
  spec.base = TinyConfig();
  spec.base.event_cap = 200;
  spec.base.sim_jobs = 4;
  spec.rows.push_back({"only", nullptr});
  spec.metrics = {ThroughputMetric()};
  spec.mode = RunMode::kSingle;

  SweepRunner runner(1);
  const SweepOutcome outcome = runner.Run(spec);
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_TRUE(outcome.results[0].cap_parallelism_degraded);
  EXPECT_TRUE(outcome.AnyCapDegraded());
  std::ostringstream os;
  EmitTables(outcome, os);
  EXPECT_NE(os.str().find("cap_parallelism_degraded"), std::string::npos)
      << os.str();
}

}  // namespace
}  // namespace hotstuff1

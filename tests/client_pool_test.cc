// Client pool: request visibility, matching-quorum acceptance (f+1 committed
// vs n-f speculative), the no-vote-mixing rule across blocks, latency
// accounting, and resubmission of orphaned transactions.

#include <gtest/gtest.h>

#include "client/client_pool.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

constexpr uint32_t kN = 4, kF = 1;

class ClientPoolTest : public ::testing::Test {
 protected:
  ClientPoolTest() {
    ClientPoolConfig cfg;
    cfg.num_clients = 10;
    cfg.quorum_commit = kF + 1;        // 2
    cfg.quorum_speculative = kN - kF;  // 3
    cfg.resubmit_timeout = Millis(50);
    cfg.track_accepted = true;
    pool_ = std::make_unique<ClientPool>(&sim_, &workload_, cfg,
                                         std::vector<SimTime>(kN, Millis(1)));
    pool_->Start();
    sim_.RunUntil(Millis(2));  // all submissions visible everywhere
  }

  BlockPtr MakeBlock(std::vector<Transaction> txns, uint64_t view = 1) {
    return std::make_shared<Block>(BlockId{view, 1}, Block::Genesis()->hash(), 1,
                                   0, std::move(txns));
  }

  /// Delivers matching responses from `replicas` and runs the simulator.
  void Respond(const BlockPtr& block, std::initializer_list<ReplicaId> replicas,
               bool speculative, uint64_t result = 99) {
    const std::vector<uint64_t> results(block->txns().size(), result);
    for (ReplicaId r : replicas) {
      pool_->OnBlockResponse(r, block, results, speculative, sim_.Now());
    }
    sim_.RunUntil(sim_.Now() + Millis(2));
  }

  sim::Simulator sim_;
  YcsbWorkload workload_;
  std::unique_ptr<ClientPool> pool_;
};

TEST_F(ClientPoolTest, DrawBatchRespectsVisibilityAndFifo) {
  // All 10 initial transactions are visible after 1ms.
  auto batch = pool_->DrawBatch(0, 4, sim_.Now());
  EXPECT_EQ(batch.size(), 4u);
  auto rest = pool_->DrawBatch(0, 100, sim_.Now());
  EXPECT_EQ(rest.size(), 6u);
  EXPECT_EQ(pool_->PendingCount(), 0u);
  // FIFO: ids don't repeat across draws.
  for (const auto& a : batch) {
    for (const auto& b : rest) EXPECT_NE(a.id, b.id);
  }
}

TEST_F(ClientPoolTest, FreshSubmissionsNotVisibleInstantly) {
  auto all = pool_->DrawBatch(0, 100, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(all));
  // Deliver f+1 committed responses; acceptance happens after the 1ms
  // response hop, at which point each client submits a fresh transaction.
  const std::vector<uint64_t> results(block->txns().size(), 99);
  pool_->OnBlockResponse(0, block, results, false, sim_.Now());
  pool_->OnBlockResponse(1, block, results, false, sim_.Now());
  sim_.RunUntil(sim_.Now() + Millis(1) + 10);
  ASSERT_EQ(pool_->accepted(), 10u);
  // Fresh submissions are only microseconds old: not yet visible (the 1ms
  // request hop has not elapsed).
  EXPECT_EQ(pool_->DrawBatch(0, 100, sim_.Now()).size(), 0u);
  sim_.RunUntil(sim_.Now() + Millis(2));
  EXPECT_EQ(pool_->DrawBatch(0, 100, sim_.Now()).size(), 10u);
}

TEST_F(ClientPoolTest, CommittedQuorumAccepts) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0}, false);
  EXPECT_EQ(pool_->accepted(), 0u);  // one commit is not enough
  Respond(block, {2}, false);
  EXPECT_EQ(pool_->accepted(), 10u);
  EXPECT_EQ(pool_->accepted_speculative(), 0u);
}

TEST_F(ClientPoolTest, SpeculativeNeedsFullQuorum) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0, 1}, true);  // f+1 speculative responses: NOT enough
  EXPECT_EQ(pool_->accepted(), 0u);
  Respond(block, {2}, true);  // n-f = 3 matching speculative responses
  EXPECT_EQ(pool_->accepted(), 10u);
  EXPECT_EQ(pool_->accepted_speculative(), 10u);
}

TEST_F(ClientPoolTest, CommittedCountsTowardSpeculativeQuorum) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0, 1}, true);
  Respond(block, {2}, false);  // commit response completes the n-f quorum
  EXPECT_EQ(pool_->accepted(), 10u);
}

TEST_F(ClientPoolTest, DuplicateRepliesDoNotInflateQuorum) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0, 0, 0}, true);
  Respond(block, {1, 1}, true);
  EXPECT_EQ(pool_->accepted(), 0u);  // only two distinct replicas
}

TEST_F(ClientPoolTest, MismatchedResultsDoNotCombine) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0, 1}, true, /*result=*/1);
  Respond(block, {2}, true, /*result=*/2);  // diverging execution result
  EXPECT_EQ(pool_->accepted(), 0u);
}

TEST_F(ClientPoolTest, ResponsesAcrossBlocksDoNotCombine) {
  // The prefix-speculation dilemma's client-side guard (§3): votes for the
  // same transaction in *different blocks* must not form one quorum.
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block_a = MakeBlock(batch, /*view=*/1);
  const BlockPtr block_b = MakeBlock(batch, /*view=*/2);
  Respond(block_a, {0, 1}, true);
  Respond(block_b, {2, 3}, true);
  EXPECT_EQ(pool_->accepted(), 0u);  // 2 + 2 but split across blocks
  Respond(block_a, {2}, true);
  EXPECT_EQ(pool_->accepted(), 10u);  // 3 matching on block_a
}

TEST_F(ClientPoolTest, LatencyIncludesRequestAndResponseHops) {
  auto batch = pool_->DrawBatch(0, 1, sim_.Now());
  const SimTime before = sim_.Now();
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0, 1}, false);
  ASSERT_EQ(pool_->latencies().count(), 1u);
  // Latency >= submit->now plus the 1ms response hop.
  EXPECT_GE(pool_->latencies().AvgMs(), ToMillis(sim_.Now() - before) * 0.5);
}

TEST_F(ClientPoolTest, ResubmitAfterTimeout) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  EXPECT_EQ(batch.size(), 10u);
  EXPECT_EQ(pool_->PendingCount(), 0u);
  // Never respond: the transactions were in an orphaned block.
  sim_.RunUntil(sim_.Now() + Millis(200));
  EXPECT_GE(pool_->resubmissions(), 10u);
  EXPECT_EQ(pool_->DrawBatch(0, 100, sim_.Now()).size(), 10u);
}

TEST_F(ClientPoolTest, ResubmittedTxnKeepsOriginalLatency) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const uint64_t orphaned_id = batch[0].id;
  sim_.RunUntil(sim_.Now() + Millis(120));  // timeout + resubmit
  auto retry = pool_->DrawBatch(0, 10, sim_.Now());
  ASSERT_EQ(retry.size(), 10u);
  bool found = false;
  for (const auto& t : retry) found = found || t.id == orphaned_id;
  EXPECT_TRUE(found);
  const BlockPtr block = MakeBlock(std::move(retry));
  Respond(block, {0, 1}, false);
  ASSERT_EQ(pool_->latencies().count(), 10u);
  EXPECT_GT(pool_->latencies().AvgMs(), 100.0);  // measured from first submit
}

TEST_F(ClientPoolTest, TrackAcceptedRecordsBlocks) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0, 1}, false);
  ASSERT_EQ(pool_->accepted_records().size(), 10u);
  for (const auto& rec : pool_->accepted_records()) {
    EXPECT_EQ(rec.block_hash, block->hash());
    EXPECT_FALSE(rec.speculative);
  }
}

TEST_F(ClientPoolTest, ResetStatsClearsWindow) {
  auto batch = pool_->DrawBatch(0, 10, sim_.Now());
  const BlockPtr block = MakeBlock(std::move(batch));
  Respond(block, {0, 1}, false);
  EXPECT_EQ(pool_->accepted(), 10u);
  pool_->ResetStats();
  EXPECT_EQ(pool_->accepted(), 0u);
  EXPECT_EQ(pool_->latencies().count(), 0u);
}

}  // namespace
}  // namespace hotstuff1

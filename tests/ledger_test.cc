// Blocks, block store ancestry, KV state undo, and the dual-ledger
// speculate/rollback/commit machinery (§3 Rollback, §4.2).

#include <gtest/gtest.h>

#include "ledger/block.h"
#include "ledger/block_store.h"
#include "ledger/kv_state.h"
#include "ledger/ledger.h"

namespace hotstuff1 {
namespace {

Transaction WriteTxn(uint64_t id, uint64_t key, uint64_t value) {
  Transaction t;
  t.id = id;
  t.ops.push_back({TxnOp::Kind::kWrite, key, value});
  return t;
}

Transaction RmwTxn(uint64_t id, uint64_t key, uint64_t delta) {
  Transaction t;
  t.id = id;
  t.ops.push_back({TxnOp::Kind::kReadModifyWrite, key, delta});
  return t;
}

BlockPtr MakeBlock(uint64_t view, const BlockPtr& parent,
                   std::vector<Transaction> txns, uint32_t slot = 1,
                   Hash256 carry = {}) {
  return std::make_shared<Block>(BlockId{view, slot}, parent->hash(),
                                 parent->height() + 1, /*proposer=*/0,
                                 std::move(txns), carry);
}

// --- Block ---------------------------------------------------------------------

TEST(BlockTest, GenesisIsStable) {
  EXPECT_TRUE(Block::Genesis()->IsGenesis());
  EXPECT_EQ(Block::Genesis()->height(), 0u);
  EXPECT_EQ(Block::Genesis()->hash(), Block::Genesis()->hash());
}

TEST(BlockTest, HashCoversContent) {
  const BlockPtr g = Block::Genesis();
  const BlockPtr a = MakeBlock(1, g, {WriteTxn(1, 5, 10)});
  const BlockPtr b = MakeBlock(1, g, {WriteTxn(1, 5, 11)});  // different value
  const BlockPtr c = MakeBlock(2, g, {WriteTxn(1, 5, 10)});  // different view
  const BlockPtr d = MakeBlock(1, g, {WriteTxn(1, 5, 10)}, /*slot=*/2);
  EXPECT_NE(a->hash(), b->hash());
  EXPECT_NE(a->hash(), c->hash());
  EXPECT_NE(a->hash(), d->hash());
  // Carry hash is part of identity.
  const BlockPtr e = MakeBlock(1, g, {WriteTxn(1, 5, 10)}, 1, a->hash());
  EXPECT_NE(a->hash(), e->hash());
  EXPECT_TRUE(e->has_carry());
  EXPECT_FALSE(a->has_carry());
}

TEST(BlockTest, IdOrderingIsLexicographic) {
  EXPECT_TRUE((BlockId{1, 4}) < (BlockId{2, 1}));  // view first
  EXPECT_TRUE((BlockId{2, 1}) < (BlockId{2, 2}));  // slot second
  EXPECT_TRUE((BlockId{2, 2}) <= (BlockId{2, 2}));
  EXPECT_FALSE((BlockId{2, 2}) < (BlockId{2, 2}));
}

TEST(BlockTest, WireSizeGrowsWithTxns) {
  const BlockPtr g = Block::Genesis();
  const BlockPtr small = MakeBlock(1, g, {WriteTxn(1, 1, 1)});
  std::vector<Transaction> many;
  for (uint64_t i = 0; i < 100; ++i) many.push_back(WriteTxn(i, i, i));
  const BlockPtr big = MakeBlock(1, g, std::move(many));
  EXPECT_GT(big->WireSize(), small->WireSize() + 90 * 40);
}

// --- BlockStore ------------------------------------------------------------------

TEST(BlockStoreTest, GetAndContains) {
  BlockStore store;
  EXPECT_TRUE(store.Contains(Block::Genesis()->hash()));
  const BlockPtr a = MakeBlock(1, store.genesis(), {});
  EXPECT_FALSE(store.Contains(a->hash()));
  EXPECT_TRUE(store.Get(a->hash()).status().IsNotFound());
  store.Put(a);
  EXPECT_TRUE(store.Contains(a->hash()));
  EXPECT_EQ(store.Get(a->hash()).ValueOrDie()->hash(), a->hash());
}

TEST(BlockStoreTest, AncestryQueries) {
  BlockStore store;
  const BlockPtr a = MakeBlock(1, store.genesis(), {});
  const BlockPtr b = MakeBlock(2, a, {});
  const BlockPtr c = MakeBlock(3, b, {});
  const BlockPtr x = MakeBlock(2, a, {WriteTxn(9, 9, 9)});  // fork off a
  for (const auto& blk : {a, b, c, x}) store.Put(blk);

  EXPECT_TRUE(store.IsAncestor(a->hash(), c));
  EXPECT_TRUE(store.IsAncestor(c->hash(), c));
  EXPECT_FALSE(store.IsAncestor(x->hash(), c));
  EXPECT_EQ(store.AncestorAt(c, 1)->hash(), a->hash());
  EXPECT_EQ(store.AncestorAt(c, 0)->hash(), store.genesis()->hash());
  EXPECT_EQ(store.AncestorAt(c, 9), nullptr);
  EXPECT_EQ(store.CommonAncestor(c, x)->hash(), a->hash());
  EXPECT_EQ(store.CommonAncestor(c, b)->hash(), b->hash());
  EXPECT_EQ(store.Parent(a)->hash(), store.genesis()->hash());
  EXPECT_EQ(store.Parent(store.genesis()), nullptr);
}

TEST(BlockStoreTest, GapReturnsNull) {
  BlockStore store;
  const BlockPtr a = MakeBlock(1, store.genesis(), {});
  const BlockPtr b = MakeBlock(2, a, {});
  store.Put(b);  // a intentionally missing
  EXPECT_EQ(store.AncestorAt(b, 1), nullptr);
  EXPECT_FALSE(store.IsAncestor(Block::Genesis()->hash(), b));
}

// --- KvState --------------------------------------------------------------------

TEST(KvStateTest, OpsAndResults) {
  KvState kv;
  EXPECT_EQ(kv.Get(5), 0u);  // absent reads as zero
  EXPECT_EQ(kv.ApplyOp({TxnOp::Kind::kWrite, 5, 42}, nullptr), 42u);
  EXPECT_EQ(kv.Get(5), 42u);
  EXPECT_EQ(kv.ApplyOp({TxnOp::Kind::kRead, 5, 0}, nullptr), 42u);
  EXPECT_EQ(kv.ApplyOp({TxnOp::Kind::kReadModifyWrite, 5, 8}, nullptr), 50u);
  EXPECT_EQ(kv.Get(5), 50u);
}

TEST(KvStateTest, UndoRestoresExactState) {
  KvState kv;
  kv.Put(1, 100);
  const uint64_t fp_before = kv.Fingerprint();
  KvState::UndoLog undo;
  kv.ApplyTxn(WriteTxn(1, 1, 200), &undo);   // overwrite existing
  kv.ApplyTxn(WriteTxn(2, 2, 300), &undo);   // create new
  kv.ApplyTxn(RmwTxn(3, 1, 7), &undo);       // rmw existing
  EXPECT_NE(kv.Fingerprint(), fp_before);
  kv.Undo(undo);
  EXPECT_EQ(kv.Fingerprint(), fp_before);
  EXPECT_EQ(kv.Get(1), 100u);
  EXPECT_FALSE(kv.Contains(2));
}

TEST(KvStateTest, TxnResultsAreDeterministicAndStateDependent) {
  KvState a, b;
  const Transaction t = RmwTxn(9, 4, 5);
  EXPECT_EQ(a.ApplyTxn(t, nullptr), b.ApplyTxn(t, nullptr));
  // Same txn on different state gives a different result (clients can tell
  // divergent executions apart).
  KvState c;
  c.Put(4, 1000);
  EXPECT_NE(a.ApplyTxn(t, nullptr), c.ApplyTxn(t, nullptr));
}

TEST(KvStateTest, FingerprintIsOrderInsensitive) {
  KvState a, b;
  a.Put(1, 10);
  a.Put(2, 20);
  b.Put(2, 20);
  b.Put(1, 10);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// --- Ledger ---------------------------------------------------------------------

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() : ledger_(&store_, KvState()) {}

  BlockPtr Chain(uint64_t view, const BlockPtr& parent, uint64_t key,
                 uint64_t value) {
    BlockPtr b = MakeBlock(view, parent, {WriteTxn(view, key, value)});
    store_.Put(b);
    return b;
  }

  BlockStore store_;
  Ledger ledger_;
};

TEST_F(LedgerTest, StartsAtGenesis) {
  EXPECT_EQ(ledger_.committed_height(), 0u);
  EXPECT_EQ(ledger_.spec_tip()->hash(), store_.genesis()->hash());
  EXPECT_EQ(ledger_.committed_chain().size(), 1u);
}

TEST_F(LedgerTest, SpeculateThenCommitPromotesWithoutReexecution) {
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  const auto results = ledger_.Speculate(a);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(ledger_.state().Get(1), 10u);
  EXPECT_TRUE(ledger_.IsSpeculated(a->hash()));
  EXPECT_EQ(ledger_.spec_depth(), 1u);

  const uint64_t result_spec = results[0];
  auto committed = ledger_.CommitChain(a);
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_TRUE(committed[0].was_speculated);
  EXPECT_EQ(committed[0].txn_results[0], result_spec);
  EXPECT_EQ(ledger_.committed_height(), 1u);
  EXPECT_EQ(ledger_.spec_depth(), 0u);
  EXPECT_TRUE(ledger_.IsCommitted(a->hash()));
  EXPECT_EQ(ledger_.txns_committed(), 1u);
}

TEST_F(LedgerTest, CommitWithoutSpeculationExecutes) {
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  const BlockPtr b = Chain(2, a, 2, 20);
  auto committed = ledger_.CommitChain(b);
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_FALSE(committed[0].was_speculated);
  EXPECT_EQ(ledger_.state().Get(1), 10u);
  EXPECT_EQ(ledger_.state().Get(2), 20u);
  EXPECT_EQ(ledger_.committed_height(), 2u);
}

TEST_F(LedgerTest, RollbackRestoresState) {
  KvState pristine;
  const uint64_t fp0 = ledger_.state().Fingerprint();
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  const BlockPtr b = Chain(2, a, 1, 99);
  ledger_.Speculate(a);
  ledger_.Speculate(b);
  EXPECT_EQ(ledger_.state().Get(1), 99u);

  // Roll back b only.
  EXPECT_EQ(ledger_.RollbackTo(a->hash()), 1u);
  EXPECT_EQ(ledger_.state().Get(1), 10u);
  EXPECT_EQ(ledger_.spec_tip()->hash(), a->hash());

  // Roll back everything.
  EXPECT_EQ(ledger_.RollbackTo(store_.genesis()->hash()), 1u);
  EXPECT_EQ(ledger_.state().Fingerprint(), fp0);
  EXPECT_EQ(ledger_.rollback_events(), 2u);
  EXPECT_EQ(ledger_.blocks_rolled_back(), 2u);
}

TEST_F(LedgerTest, CommitOfConflictingChainRollsBackSpeculation) {
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  const BlockPtr x = Chain(2, store_.genesis(), 1, 77);  // conflicts with a
  ledger_.Speculate(a);
  auto committed = ledger_.CommitChain(x);
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_FALSE(committed[0].was_speculated);
  EXPECT_EQ(ledger_.state().Get(1), 77u);
  EXPECT_EQ(ledger_.committed_tip()->hash(), x->hash());
  EXPECT_FALSE(ledger_.IsSpeculated(a->hash()));
  EXPECT_GE(ledger_.rollback_events(), 1u);
}

TEST_F(LedgerTest, CommitPrefixKeepsDeeperSpeculation) {
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  const BlockPtr b = Chain(2, a, 2, 20);
  ledger_.Speculate(a);
  ledger_.Speculate(b);
  ledger_.CommitChain(a);  // commit only the prefix
  EXPECT_EQ(ledger_.committed_tip()->hash(), a->hash());
  EXPECT_TRUE(ledger_.IsSpeculated(b->hash()));
  EXPECT_EQ(ledger_.spec_depth(), 1u);
  EXPECT_EQ(ledger_.state().Get(2), 20u);
  // Later commit of b promotes it.
  auto committed = ledger_.CommitChain(b);
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_TRUE(committed[0].was_speculated);
}

TEST_F(LedgerTest, CommitChainIsIdempotent) {
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  ledger_.CommitChain(a);
  EXPECT_TRUE(ledger_.CommitChain(a).empty());
  EXPECT_EQ(ledger_.committed_height(), 1u);
}

TEST_F(LedgerTest, SpeculationResultsMatchCommitResults) {
  // Two ledgers over the same chain: one speculates then commits, the other
  // commits directly; per-txn results must agree (clients match on them).
  const BlockPtr a = Chain(1, store_.genesis(), 1, 5);
  const BlockPtr b = Chain(2, a, 1, 6);
  Ledger direct(&store_, KvState());
  ledger_.Speculate(a);
  ledger_.Speculate(b);
  auto via_spec = ledger_.CommitChain(b);
  auto via_direct = direct.CommitChain(b);
  ASSERT_EQ(via_spec.size(), via_direct.size());
  for (size_t i = 0; i < via_spec.size(); ++i) {
    EXPECT_EQ(via_spec[i].txn_results, via_direct[i].txn_results);
  }
  EXPECT_EQ(ledger_.state().Fingerprint(), direct.state().Fingerprint());
}

TEST_F(LedgerTest, RollbackToUnknownAncestorDies) {
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  ledger_.Speculate(a);
  Hash256 bogus = Sha256::Digest("not a block");
  EXPECT_DEATH(ledger_.RollbackTo(bogus), "rollback target");
}

TEST_F(LedgerTest, ConflictingCommitDies) {
  const BlockPtr a = Chain(1, store_.genesis(), 1, 10);
  const BlockPtr x = Chain(1, store_.genesis(), 1, 20);  // same height fork
  ledger_.CommitChain(a);
  EXPECT_DEATH(ledger_.CommitChain(x), "conflicts with committed chain");
}

}  // namespace
}  // namespace hotstuff1

// The speculation decision engine: Prefix Speculation rule (Def. 3.1),
// No-Gap rule (Def. 3.2), conflict rollback (Def. 4.7), carry units (§6.1),
// and the behaviour with rules disabled (the unsafe mode Appendix A needs).

#include <gtest/gtest.h>

#include "core/speculation.h"

namespace hotstuff1 {
namespace {

Transaction WriteTxn(uint64_t id, uint64_t key, uint64_t value) {
  Transaction t;
  t.id = id;
  t.ops.push_back({TxnOp::Kind::kWrite, key, value});
  return t;
}

class SpeculationTest : public ::testing::Test {
 protected:
  SpeculationTest() : ledger_(&store_, KvState()) {}

  BlockPtr Make(uint64_t view, const BlockPtr& parent, uint64_t key,
                uint64_t value, uint32_t slot = 1, Hash256 carry = {}) {
    auto b = std::make_shared<Block>(BlockId{view, slot}, parent->hash(),
                                     parent->height() + 1, 0,
                                     std::vector<Transaction>{WriteTxn(view, key, value)},
                                     carry);
    store_.Put(b);
    return b;
  }

  BlockStore store_;
  Ledger ledger_;
  SpeculationPolicy policy_;  // all rules on by default
};

TEST_F(SpeculationTest, SpeculatesWhenRulesHold) {
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, a, true, policy_);
  EXPECT_TRUE(out.speculated);
  ASSERT_EQ(out.executed.size(), 1u);
  EXPECT_EQ(out.executed[0].block->hash(), a->hash());
  ASSERT_EQ(out.executed[0].results.size(), 1u);
  EXPECT_TRUE(ledger_.IsSpeculated(a->hash()));
}

TEST_F(SpeculationTest, NoGapRuleBlocksStaleCertificates) {
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, a, /*no_gap=*/false, policy_);
  EXPECT_FALSE(out.speculated);
  EXPECT_FALSE(ledger_.IsSpeculated(a->hash()));
}

TEST_F(SpeculationTest, NoGapHookDisablesTheRule) {
  policy_.no_gap_rule = false;
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, a, /*no_gap=*/false, policy_);
  EXPECT_TRUE(out.speculated);  // the unsafe behaviour of Appendix A.1
}

TEST_F(SpeculationTest, PrefixRuleBlocksUncommittedPredecessor) {
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  const BlockPtr b = Make(2, a, 2, 20);  // a not committed
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, b, true, policy_);
  EXPECT_FALSE(out.speculated);
}

TEST_F(SpeculationTest, PrefixHookSpeculatesWholeUncommittedChain) {
  policy_.prefix_rule = false;
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  const BlockPtr b = Make(2, a, 2, 20);
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, b, true, policy_);
  EXPECT_TRUE(out.speculated);
  ASSERT_EQ(out.executed.size(), 2u);  // ancestor a executed too (unsafe!)
  EXPECT_EQ(out.executed[0].block->hash(), a->hash());
  EXPECT_EQ(out.executed[1].block->hash(), b->hash());
}

TEST_F(SpeculationTest, DisabledPolicyNeverSpeculates) {
  policy_.enabled = false;
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  EXPECT_FALSE(TrySpeculate(&ledger_, store_, a, true, policy_).speculated);
}

TEST_F(SpeculationTest, AlreadySpeculatedIsNoOp) {
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  EXPECT_TRUE(TrySpeculate(&ledger_, store_, a, true, policy_).speculated);
  EXPECT_FALSE(TrySpeculate(&ledger_, store_, a, true, policy_).speculated);
  EXPECT_EQ(ledger_.spec_depth(), 1u);
}

TEST_F(SpeculationTest, CommittedBlockIsNoOp) {
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  ledger_.CommitChain(a);
  EXPECT_FALSE(TrySpeculate(&ledger_, store_, a, true, policy_).speculated);
}

TEST_F(SpeculationTest, ConflictTriggersRollback) {
  // Def. 4.7: speculated B_w conflicts with higher certified B_v.
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  const BlockPtr x = Make(2, store_.genesis(), 1, 77);
  EXPECT_TRUE(TrySpeculate(&ledger_, store_, a, true, policy_).speculated);
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, x, true, policy_);
  EXPECT_TRUE(out.speculated);
  EXPECT_EQ(out.blocks_rolled_back, 1u);
  EXPECT_FALSE(ledger_.IsSpeculated(a->hash()));
  EXPECT_TRUE(ledger_.IsSpeculated(x->hash()));
  EXPECT_EQ(ledger_.state().Get(1), 77u);
}

TEST_F(SpeculationTest, CarryUnitExecutesCarriedBlockFirst) {
  // Chain: genesis <- u (carried, uncertified) <- b (first slot, carries u).
  const BlockPtr u = Make(1, store_.genesis(), 1, 10, /*slot=*/4);
  const BlockPtr b = Make(2, u, 2, 20, /*slot=*/1, /*carry=*/u->hash());
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, b, true, policy_);
  EXPECT_TRUE(out.speculated);
  ASSERT_EQ(out.executed.size(), 2u);
  EXPECT_EQ(out.executed[0].block->hash(), u->hash());
  EXPECT_EQ(out.executed[1].block->hash(), b->hash());
  EXPECT_EQ(ledger_.state().Get(1), 10u);
  EXPECT_EQ(ledger_.state().Get(2), 20u);
}

TEST_F(SpeculationTest, NonCarryUncommittedParentStillBlocked) {
  // Same shape but without the carry marker: prefix rule must refuse.
  const BlockPtr u = Make(1, store_.genesis(), 1, 10, /*slot=*/4);
  const BlockPtr b = Make(2, u, 2, 20, /*slot=*/1);
  EXPECT_FALSE(TrySpeculate(&ledger_, store_, b, true, policy_).speculated);
}

TEST_F(SpeculationTest, MissingParentBlocksSpeculation) {
  // Block whose parent is unknown (gap): cannot execute.
  auto orphan = std::make_shared<Block>(
      BlockId{3, 1}, Sha256::Digest("unknown parent"), 3, 0,
      std::vector<Transaction>{WriteTxn(1, 1, 1)});
  store_.Put(orphan);
  EXPECT_FALSE(TrySpeculate(&ledger_, store_, orphan, true, policy_).speculated);
}

TEST_F(SpeculationTest, RefusesToForkCommittedPrefix) {
  // A block whose parent is committed but below the committed tip would
  // fork the global ledger; speculation must refuse even with no-gap ok.
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  const BlockPtr b = Make(2, a, 2, 20);
  ledger_.CommitChain(b);
  const BlockPtr evil = Make(3, a, 1, 99);  // extends a, conflicts with b
  EXPECT_FALSE(TrySpeculate(&ledger_, store_, evil, true, policy_).speculated);
}

TEST_F(SpeculationTest, ChainedSpeculationOnSpecTip) {
  // After committing a, speculate b then c in sequence (the streamlined
  // steady state).
  const BlockPtr a = Make(1, store_.genesis(), 1, 10);
  ledger_.CommitChain(a);
  const BlockPtr b = Make(2, a, 2, 20);
  EXPECT_TRUE(TrySpeculate(&ledger_, store_, b, true, policy_).speculated);
  ledger_.CommitChain(b);
  const BlockPtr c = Make(3, b, 3, 30);
  EXPECT_TRUE(TrySpeculate(&ledger_, store_, c, true, policy_).speculated);
  EXPECT_EQ(ledger_.spec_depth(), 1u);
}

}  // namespace
}  // namespace hotstuff1

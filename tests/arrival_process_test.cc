// Statistical property tests for the open-loop arrival processes
// (client/arrival.h). Every sequence is a pure function of (config, rate,
// seed), so these are *fixed* assertions on *fixed* streams — the tolerances
// are sized from confidence intervals (3-4 sigma for the chosen sample
// counts), but a failure is always a code change, never sampling noise.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "client/arrival.h"

namespace hotstuff1 {
namespace {

std::vector<SimTime> Draw(ArrivalSequence& seq, size_t count) {
  std::vector<SimTime> times;
  times.reserve(count);
  for (size_t i = 0; i < count; ++i) times.push_back(seq.Next());
  return times;
}

// Empirical rate (arrivals per second) over the stream's own span.
double EmpiricalTps(const std::vector<SimTime>& times) {
  return static_cast<double>(times.size()) / ToSeconds(times.back());
}

TEST(ArrivalProcessTest, SequencesAreSeedDeterministic) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                           ArrivalKind::kDiurnal, ArrivalKind::kFlashCrowd}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    ArrivalSequence a(cfg, 50'000, 7);
    ArrivalSequence b(cfg, 50'000, 7);
    ArrivalSequence c(cfg, 50'000, 8);
    const auto ta = Draw(a, 5'000);
    const auto tb = Draw(b, 5'000);
    const auto tc = Draw(c, 5'000);
    EXPECT_EQ(ta, tb) << ArrivalKindName(kind);
    EXPECT_NE(ta, tc) << ArrivalKindName(kind);
  }
}

TEST(ArrivalProcessTest, TimesAreNonDecreasing) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                           ArrivalKind::kDiurnal, ArrivalKind::kFlashCrowd}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    ArrivalSequence seq(cfg, 200'000, 11);
    SimTime prev = 0;
    for (int i = 0; i < 50'000; ++i) {
      const SimTime t = seq.Next();
      ASSERT_GE(t, prev) << ArrivalKindName(kind) << " at draw " << i;
      prev = t;
    }
  }
}

TEST(ArrivalProcessTest, PoissonRateMatchesConfigured) {
  // 100k arrivals: the empirical rate estimator has relative sigma
  // 1/sqrt(N) ~ 0.32%; 1% tolerance is > 3 sigma.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  ArrivalSequence seq(cfg, 50'000, 42);
  const auto times = Draw(seq, 100'000);
  EXPECT_NEAR(EmpiricalTps(times), 50'000, 500);
}

TEST(ArrivalProcessTest, PoissonInterArrivalCvIsOne) {
  // Exponential gaps have CV = 1 exactly. A low rate keeps the mean gap
  // (1000us) far above the 1us ceil granularity, so rounding cannot bias
  // the estimate; 100k samples put the CV estimator sigma near 0.3%.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  ArrivalSequence seq(cfg, 1'000, 42);
  const auto times = Draw(seq, 100'000);
  double sum = 0, sum2 = 0;
  SimTime prev = 0;
  for (SimTime t : times) {
    const double gap = static_cast<double>(t - prev);
    sum += gap;
    sum2 += gap * gap;
    prev = t;
  }
  const double n = static_cast<double>(times.size());
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double cv = std::sqrt(var) / mean;
  EXPECT_NEAR(cv, 1.0, 0.02);
}

// Index of dispersion of windowed counts: 1 for Poisson, substantially
// above 1 for a process with on/off structure at the window scale.
double DispersionIndex(const std::vector<SimTime>& times, SimTime window) {
  // Full windows only: the trailing partial window would read as a fake
  // near-empty count and inflate the index even for a perfect Poisson.
  const size_t full = static_cast<size_t>(times.back() / window);
  std::vector<uint64_t> counts(full, 0);
  for (SimTime t : times) {
    const size_t idx = static_cast<size_t>(t / window);
    if (idx < full) ++counts[idx];
  }
  double sum = 0, sum2 = 0;
  for (uint64_t c : counts) {
    sum += static_cast<double>(c);
    sum2 += static_cast<double>(c) * static_cast<double>(c);
  }
  const double n = static_cast<double>(counts.size());
  const double mean = sum / n;
  return (sum2 / n - mean * mean) / mean;
}

TEST(ArrivalProcessTest, BurstyPreservesLongRunRateAndIsOverdispersed) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.burst_duty = 0.3;
  cfg.burst_on_mean = Millis(20);
  ArrivalSequence seq(cfg, 50'000, 42);
  // The rate estimator's variance is dominated by the number of ON/OFF
  // cycles realized, not the arrival count: a 1M-arrival stream spans ~300
  // cycles of ~67ms, putting the estimator sigma near 6% — the 15% band is
  // > 2 sigma while still rejecting e.g. a stream running at the ON rate
  // (3.3x) or at duty*lambda (0.3x).
  const auto times = Draw(seq, 1'000'000);
  EXPECT_NEAR(EmpiricalTps(times), 50'000, 7'500);
  // At the sojourn scale (5ms windows vs 20ms ON / ~47ms OFF sojourns) the
  // counts are strongly overdispersed; a Poisson stream of the same rate
  // sits at 1.0 +- a few percent.
  EXPECT_GT(DispersionIndex(times, Millis(5)), 3.0);

  ArrivalConfig pcfg;
  pcfg.kind = ArrivalKind::kPoisson;
  ArrivalSequence poisson(pcfg, 50'000, 42);
  EXPECT_LT(DispersionIndex(Draw(poisson, 200'000), Millis(5)), 1.1);
}

TEST(ArrivalProcessTest, BurstyDutyCycleMatchesConfig) {
  // Reconstruct the ON fraction from the stream itself: with an ON rate of
  // lambda/duty = 167/ms, any 1ms window holding arrivals is almost surely
  // ON. The expected busy fraction is the duty cycle (0.3), up to boundary
  // effects at sojourn edges — a generous +-0.05 band is still far tighter
  // than the 0.3 vs 1.0 gap that distinguishes bursty from Poisson.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.burst_duty = 0.3;
  cfg.burst_on_mean = Millis(20);
  ArrivalSequence seq(cfg, 50'000, 42);
  const auto times = Draw(seq, 200'000);
  std::vector<bool> busy(static_cast<size_t>(times.back() / Millis(1)) + 1, false);
  for (SimTime t : times) busy[static_cast<size_t>(t / Millis(1))] = true;
  double on = 0;
  for (bool b : busy) on += b ? 1 : 0;
  EXPECT_NEAR(on / static_cast<double>(busy.size()), 0.3, 0.05);
}

TEST(ArrivalProcessTest, DiurnalPeakToTroughFollowsAmplitude) {
  // lambda(t) = base * (1 + 0.75 sin(2 pi t / period)): the first quarter of
  // each period is centered on the sine peak (rate up to 1.75x) and the
  // third quarter on the trough (down to 0.25x). Integrated over the
  // quarters the expected count ratio is
  // (1 + 1.5/pi) / (1 - 1.5/pi) ~ 2.8; requiring > 2 rejects any flat or
  // weakly-modulated stream while leaving > 4 sigma of margin.
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.diurnal_period = Millis(400);
  cfg.diurnal_amplitude = 0.75;
  ArrivalSequence seq(cfg, 50'000, 42);
  const auto times = Draw(seq, 200'000);
  EXPECT_NEAR(EmpiricalTps(times), 50'000, 1'500);
  uint64_t peak_quarter = 0, trough_quarter = 0;
  for (SimTime t : times) {
    const SimTime phase = t % cfg.diurnal_period;
    if (phase < cfg.diurnal_period / 4) ++peak_quarter;
    if (phase >= cfg.diurnal_period / 2 && phase < 3 * cfg.diurnal_period / 4) {
      ++trough_quarter;
    }
  }
  EXPECT_GT(static_cast<double>(peak_quarter),
            2.0 * static_cast<double>(trough_quarter));
}

TEST(ArrivalProcessTest, FlashCrowdRampAndDecay) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kFlashCrowd;
  cfg.flash_start = Millis(400);
  cfg.flash_rise = Millis(30);
  cfg.flash_decay = Millis(150);
  cfg.flash_peak = 6.0;
  ArrivalSequence seq(cfg, 50'000, 42);
  // ~20k baseline arrivals to flash_start, ~40k extra through the crowd,
  // then baseline again: 150k draws span well past the decay tail.
  const auto times = Draw(seq, 150'000);
  ASSERT_GT(times.back(), Millis(1'600));

  auto rate_in = [&](SimTime lo, SimTime hi) {
    uint64_t count = 0;
    for (SimTime t : times) count += (t >= lo && t < hi) ? 1 : 0;
    return static_cast<double>(count) / ToSeconds(hi - lo);
  };
  const double before = rate_in(Millis(100), Millis(400));
  const double at_peak = rate_in(Millis(430), Millis(460));
  const double recovered = rate_in(Millis(1'300), Millis(1'600));
  // Baseline before the flash; ~6x baseline right after the ramp tops out
  // (the first 30ms past the ramp sees the decay fall only to ~5x); decayed
  // back to within ~25% of baseline after 4+ time constants.
  EXPECT_NEAR(before, 50'000, 2'500);
  EXPECT_GT(at_peak, 4.0 * before);
  EXPECT_LT(at_peak, 7.0 * before);
  EXPECT_NEAR(recovered, 50'000, 12'500);
}

TEST(ArrivalProcessTest, ParseAndNameRoundTrip) {
  for (ArrivalKind kind : {ArrivalKind::kClosedLoop, ArrivalKind::kPoisson,
                           ArrivalKind::kBursty, ArrivalKind::kDiurnal,
                           ArrivalKind::kFlashCrowd}) {
    ArrivalKind parsed;
    ASSERT_TRUE(ParseArrivalKind(ArrivalKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ArrivalKind parsed;
  EXPECT_FALSE(ParseArrivalKind("junk", &parsed));
  EXPECT_FALSE(ParseArrivalKind("", &parsed));
}

}  // namespace
}  // namespace hotstuff1

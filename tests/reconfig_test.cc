// Epoch-based committee reconfiguration: schedule grammar, membership
// arithmetic, end-to-end churn runs under both oracles, determinism across
// executor shapes, and the oracle mutation self-test (a forged cross-
// membership commit that ONLY the invariant oracle's cross-epoch lattice
// can see — end-of-run CheckSafety skips the forger).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "consensus/committee.h"
#include "runtime/experiment.h"
#include "tests/result_equality.h"

namespace hotstuff1 {
namespace {

// --- grammar ------------------------------------------------------------------

TEST(CommitteeScheduleTest, ParsesStepsAndRanges) {
  CommitteeSchedule s;
  std::string error;
  ASSERT_TRUE(ParseCommitteeSchedule("0:0-15;4:0-11;8:0-3+8-19", &s, &error))
      << error;
  ASSERT_EQ(s.steps.size(), 3u);
  EXPECT_EQ(s.steps[0].from_epoch, 0u);
  EXPECT_EQ(s.steps[0].committee.n(), 16u);
  EXPECT_EQ(s.steps[1].from_epoch, 4u);
  EXPECT_EQ(s.steps[1].committee.n(), 12u);
  EXPECT_EQ(s.steps[2].from_epoch, 8u);
  EXPECT_EQ(s.steps[2].committee.n(), 16u);
  EXPECT_TRUE(s.steps[2].committee.Contains(3));
  EXPECT_FALSE(s.steps[2].committee.Contains(4));
  EXPECT_TRUE(s.steps[2].committee.Contains(8));
  EXPECT_EQ(s.MaxMember(), 19u);
  EXPECT_EQ(s.MinN(), 12u);
  EXPECT_EQ(s.MinF(), 3u);
  EXPECT_EQ(s.views_per_epoch, 0u);  // unresolved until Experiment::Setup
}

TEST(CommitteeScheduleTest, EmptyTextIsNullSchedule) {
  CommitteeSchedule s;
  ASSERT_TRUE(ParseCommitteeSchedule("", &s));
  EXPECT_TRUE(s.empty());
}

TEST(CommitteeScheduleTest, FormatParseRoundTrips) {
  for (const char* text :
       {"0:0-3", "0:0-15;4:0-11", "0:0-15;4:0-11;8:0-3+8-19",
        "0:0+1+2+3", "0:0-6;2:1-5+8;5:0-6"}) {
    CommitteeSchedule s;
    std::string error;
    ASSERT_TRUE(ParseCommitteeSchedule(text, &s, &error)) << text << ": " << error;
    CommitteeSchedule reparsed;
    ASSERT_TRUE(
        ParseCommitteeSchedule(FormatCommitteeSchedule(s), &reparsed, &error))
        << FormatCommitteeSchedule(s) << ": " << error;
    EXPECT_EQ(s, reparsed) << text;
  }
}

TEST(CommitteeScheduleTest, RejectsMalformedInput) {
  CommitteeSchedule s;
  for (const char* bad :
       {"0-3",            // missing epoch prefix
        "1:0-3",          // must start at epoch 0
        "0:0-3;0:0-3",    // epochs must strictly increase
        "0:0-3;2:0-3;1:0-3",
        "0:0-2",          // < 4 members
        "0:3-0",          // inverted range
        "0:0-3+2-5",      // duplicate ids across ranges
        "0:+0-3",         // sign prefix
        "0: 0-3",         // whitespace
        "x:0-3",          // non-numeric epoch
        "0:"}) {          // empty committee
    std::string error;
    EXPECT_FALSE(ParseCommitteeSchedule(bad, &s, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(CommitteeScheduleTest, MembershipArithmetic) {
  CommitteeSchedule s;
  ASSERT_TRUE(ParseCommitteeSchedule("0:0-6;2:0-3", &s));
  s.views_per_epoch = 3;  // n=7 -> f=2 -> f+1
  EXPECT_EQ(s.EpochOf(0), 0u);
  EXPECT_EQ(s.EpochOf(5), 1u);
  EXPECT_EQ(s.EpochOf(6), 2u);
  EXPECT_EQ(s.AtView(5).n(), 7u);
  EXPECT_EQ(s.AtView(6).n(), 4u);
  EXPECT_EQ(s.AtEpoch(99).n(), 4u);  // last step holds forever
  // Round-robin over the ACTIVE committee, not the allocation.
  EXPECT_EQ(s.LeaderOfView(5), 5u);       // 5 % 7
  EXPECT_EQ(s.LeaderOfView(6), 2u);       // 6 % 4
  EXPECT_EQ(s.LeaderOfView(9), 1u);       // 9 % 4
}

// --- end-to-end ---------------------------------------------------------------

ExperimentConfig BaseConfig(ProtocolKind protocol, uint32_t n) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.batch_size = 10;
  cfg.num_clients = 20;
  cfg.duration = Millis(150);
  cfg.warmup = Millis(40);
  cfg.seed = 7;
  cfg.oracle_enabled = true;
  return cfg;
}

TEST(ReconfigExperimentTest, TrivialScheduleIsByteIdenticalToStatic) {
  // A one-step schedule naming the full committee must reproduce the null-
  // schedule run exactly: the committee-aware code paths collapse to the
  // legacy arithmetic when every replica is a member.
  for (ProtocolKind protocol :
       {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
        ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
        ProtocolKind::kHotStuff1Slotted}) {
    ExperimentConfig cfg = BaseConfig(protocol, 7);
    const ExperimentResult static_run = RunExperiment(cfg);
    ASSERT_TRUE(ParseCommitteeSchedule("0:0-6", &cfg.reconfig));
    const ExperimentResult trivial = RunExperiment(cfg);
    SCOPED_TRACE(ProtocolName(protocol));
    ExpectSameResult(trivial, static_run);
    EXPECT_GT(trivial.committed_txns, 0u);
    EXPECT_EQ(trivial.committee_changes, 0u);
    EXPECT_EQ(trivial.final_committee_n, 7u);
  }
}

TEST(ReconfigExperimentTest, ShrinkGrowChurnStaysClean) {
  // Shrink 0-7 -> 0-4 at epoch 1, regrow at epoch 3: commits must keep
  // flowing through both boundaries and both oracles must stay silent.
  for (ProtocolKind protocol :
       {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
        ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
        ProtocolKind::kHotStuff1Slotted}) {
    ExperimentConfig cfg = BaseConfig(protocol, 8);
    ASSERT_TRUE(ParseCommitteeSchedule("0:0-7;1:0-4;3:0-7", &cfg.reconfig));
    const ExperimentResult res = RunExperiment(cfg);
    SCOPED_TRACE(ProtocolName(protocol));
    EXPECT_TRUE(res.safety_ok);
    EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
    EXPECT_EQ(res.liveness_violations, 0u) << res.liveness_first_violation;
    EXPECT_GT(res.committed_txns, 0u);
    EXPECT_EQ(res.committee_changes, 2u);
    EXPECT_EQ(res.final_committee_n, 8u);
  }
}

TEST(ReconfigExperimentTest, RotationMovesTheActiveSet) {
  // Rotate to a window that drops 0-1 and seats 8-9: voted-out replicas keep
  // executing as standbys (clients still get answers) while the new members
  // vote. Replica 0's observer view keeps advancing even when out.
  ExperimentConfig cfg = BaseConfig(ProtocolKind::kHotStuff1, 10);
  ASSERT_TRUE(ParseCommitteeSchedule("0:0-9;2:2-9;4:0-9", &cfg.reconfig));
  const ExperimentResult res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
  EXPECT_GT(res.committed_txns, 0u);
  EXPECT_EQ(res.committee_changes, 2u);
  EXPECT_EQ(res.final_committee_n, 10u);
}

TEST(ReconfigExperimentTest, ChurnIsByteIdenticalAcrossExecutors) {
  ExperimentConfig cfg = BaseConfig(ProtocolKind::kHotStuff1Slotted, 8);
  ASSERT_TRUE(ParseCommitteeSchedule("0:0-7;1:0-4;3:0-7", &cfg.reconfig));
  cfg.sim_jobs = 1;
  cfg.lookahead = {LookaheadMode::kOff, 0};
  const ExperimentResult serial = RunExperiment(cfg);
  EXPECT_GT(serial.committed_txns, 0u);
  for (uint32_t sim_jobs : {1u, 4u}) {
    for (LookaheadMode mode : {LookaheadMode::kOff, LookaheadMode::kAuto}) {
      if (sim_jobs == 1 && mode == LookaheadMode::kOff) continue;
      cfg.sim_jobs = sim_jobs;
      cfg.lookahead = {mode, 0};
      SCOPED_TRACE(::testing::Message() << "sim_jobs=" << sim_jobs
                                        << " lookahead="
                                        << FormatLookahead(cfg.lookahead));
      ExpectSameResult(RunExperiment(cfg), serial);
    }
  }
}

TEST(ReconfigExperimentTest, PartitionDuringChurnHealsAndStaysClean) {
  // A 4|4 split of the full committee stalls quorum for one strategy epoch,
  // then heals; the committee also shrinks mid-run. Progress must resume and
  // both oracles stay silent (the partition entry is bounded, so the derived
  // GST is finite and the liveness monitor arms).
  ExperimentConfig cfg = BaseConfig(ProtocolKind::kHotStuff1, 8);
  cfg.duration = Millis(200);
  ASSERT_TRUE(ParseCommitteeSchedule("0:0-7;4:0-4", &cfg.reconfig));
  std::string error;
  ASSERT_TRUE(ParseStrategySchedule("1-2:partition=0-3|4-7;epoch=20000", &cfg.strategy,
                                    &error))
      << error;
  const ExperimentResult res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
  EXPECT_EQ(res.liveness_violations, 0u) << res.liveness_first_violation;
  EXPECT_GT(res.committed_txns, 0u);
}

// --- the mutation self-test ---------------------------------------------------

TEST(ReconfigExperimentTest, OracleCatchesForgedCrossMembershipCommit) {
  // test_break_reconfig makes every voted-out replica forge a commit on top
  // of its committed tip at the boundary, then fall silent. End-of-run
  // CheckSafety skips crashed replicas, so ONLY the invariant oracle — whose
  // height-keyed commit lattice survives the membership change — can see the
  // fork between the forged block and the new committee's real chain.
  ExperimentConfig cfg = BaseConfig(ProtocolKind::kHotStuff1, 8);
  ASSERT_TRUE(ParseCommitteeSchedule("0:0-3;2:4-7", &cfg.reconfig));
  cfg.test_break_reconfig = true;
  const ExperimentResult res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok) << "CheckSafety must NOT see the forgery";
  EXPECT_GT(res.oracle_violations, 0u) << "the oracle lattice must";
  EXPECT_NE(res.oracle_first_violation.find("commit-conflict"),
            std::string::npos)
      << res.oracle_first_violation;
  // The diagnostic names the epochs on both sides of the fork.
  EXPECT_NE(res.oracle_first_violation.find("epoch"), std::string::npos)
      << res.oracle_first_violation;

  // Control: the identical schedule without the mutation is clean, so the
  // signal above is the forgery, not the reconfiguration.
  cfg.test_break_reconfig = false;
  const ExperimentResult clean = RunExperiment(cfg);
  EXPECT_TRUE(clean.safety_ok);
  EXPECT_EQ(clean.oracle_violations, 0u) << clean.oracle_first_violation;
  EXPECT_GT(clean.committed_txns, 0u);
}

}  // namespace
}  // namespace hotstuff1

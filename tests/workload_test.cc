// YCSB and TPC-C workload generators: shape, determinism, database sizing,
// and execution against the KV state machine.

#include <gtest/gtest.h>

#include <set>

#include "ledger/kv_state.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace hotstuff1 {
namespace {

// --- YCSB -----------------------------------------------------------------------

TEST(YcsbTest, DefaultsMatchPaper) {
  YcsbWorkload w;
  EXPECT_STREQ(w.Name(), "YCSB");
  EXPECT_EQ(w.RecordCount(), 600'000u);  // §7: 600k records
}

TEST(YcsbTest, GeneratesWritesInKeyRange) {
  YcsbWorkload w;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Transaction t = w.Generate(&rng);
    ASSERT_EQ(t.ops.size(), 1u);
    EXPECT_EQ(t.ops[0].kind, TxnOp::Kind::kWrite);
    EXPECT_LT(t.ops[0].key, 600'000u);
  }
}

TEST(YcsbTest, WireSizeIsSmallKvWrite) {
  YcsbWorkload w;
  Rng rng(2);
  const Transaction t = w.Generate(&rng);
  EXPECT_EQ(t.WireSize(), 64u);  // calibrated wire size (DESIGN.md)
}

TEST(YcsbTest, DeterministicGivenRngState) {
  YcsbWorkload w;
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    const Transaction ta = w.Generate(&a);
    const Transaction tb = w.Generate(&b);
    EXPECT_EQ(ta.ops[0].key, tb.ops[0].key);
    EXPECT_EQ(ta.ops[0].value, tb.ops[0].value);
  }
}

TEST(YcsbTest, MixedReadWriteFraction) {
  YcsbConfig cfg;
  cfg.write_fraction = 0.5;
  cfg.ops_per_txn = 4;
  YcsbWorkload w(cfg);
  Rng rng(3);
  int reads = 0, writes = 0;
  for (int i = 0; i < 1000; ++i) {
    for (const TxnOp& op : w.Generate(&rng).ops) {
      (op.kind == TxnOp::Kind::kRead ? reads : writes)++;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / (reads + writes), 0.5, 0.05);
}

TEST(YcsbTest, ZipfianSkewsAccess) {
  YcsbConfig cfg;
  cfg.zipf_theta = 0.99;
  YcsbWorkload w(cfg);
  Rng rng(4);
  uint64_t hot = 0;
  for (int i = 0; i < 20000; ++i) {
    if (w.Generate(&rng).ops[0].key < 6000) ++hot;  // hottest 1%
  }
  EXPECT_GT(hot, 20000u * 25 / 100);
}

TEST(YcsbTest, LoadMaterializesRecords) {
  YcsbConfig cfg;
  cfg.num_records = 1000;
  YcsbWorkload w(cfg);
  KvState kv;
  w.Load(&kv);
  EXPECT_EQ(kv.size(), 1000u);
  EXPECT_EQ(kv.Get(0), 1u);
  EXPECT_EQ(kv.Get(999), 1000u);
}

// --- TPC-C ----------------------------------------------------------------------

TEST(TpccTest, DatabaseSizeMatchesPaper) {
  TpccWorkload w;
  // §7: "database of 260k records".
  EXPECT_EQ(w.RecordCount(), 260'220u);
  EXPECT_STREQ(w.Name(), "TPC-C");
}

TEST(TpccTest, LoadMatchesRecordCount) {
  TpccConfig cfg;
  cfg.num_warehouses = 2;
  cfg.stock_per_warehouse = 100;
  cfg.customers_per_district = 10;
  TpccWorkload w(cfg);
  KvState kv;
  w.Load(&kv);
  EXPECT_EQ(kv.size(), w.RecordCount());
}

TEST(TpccTest, KeyEncodingIsInjectiveAcrossTables) {
  std::set<uint64_t> keys;
  for (auto table : {TpccTable::kWarehouse, TpccTable::kDistrict,
                     TpccTable::kCustomer, TpccTable::kStock}) {
    for (uint32_t w = 0; w < 3; ++w) {
      for (uint32_t d = 0; d < 3; ++d) {
        for (uint64_t i = 0; i < 3; ++i) {
          EXPECT_TRUE(keys.insert(TpccKey(table, w, d, i)).second);
        }
      }
    }
  }
}

TEST(TpccTest, NewOrderShape) {
  TpccConfig cfg;
  cfg.new_order_fraction = 1.0;
  TpccWorkload w(cfg);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Transaction t = w.Generate(&rng);
    // 3 header ops + 1 order row + 2 per line, 5..15 lines.
    EXPECT_GE(t.ops.size(), 4u + 2 * cfg.min_order_lines);
    EXPECT_LE(t.ops.size(), 4u + 2 * cfg.max_order_lines);
    EXPECT_EQ(t.ops[2].kind, TxnOp::Kind::kReadModifyWrite);  // d_next_o_id
  }
}

TEST(TpccTest, PaymentShape) {
  TpccConfig cfg;
  cfg.new_order_fraction = 0.0;
  TpccWorkload w(cfg);
  Rng rng(6);
  const Transaction t = w.Generate(&rng);
  ASSERT_EQ(t.ops.size(), 3u);
  for (const TxnOp& op : t.ops) {
    EXPECT_EQ(op.kind, TxnOp::Kind::kReadModifyWrite);
  }
}

TEST(TpccTest, PaymentMovesMoneyConsistently) {
  TpccConfig cfg;
  cfg.new_order_fraction = 0.0;
  cfg.num_warehouses = 1;
  TpccWorkload w(cfg);
  KvState kv;
  w.Load(&kv);
  Rng rng(7);
  uint64_t paid = 0;
  for (int i = 0; i < 100; ++i) {
    const Transaction t = w.Generate(&rng);
    paid += t.ops[0].value;  // warehouse ytd delta
    kv.ApplyTxn(t, nullptr);
  }
  EXPECT_EQ(kv.Get(TpccKey(TpccTable::kWarehouse, 0, 0, 0)), paid);
}

TEST(TpccTest, NewOrderAdvancesDistrictCounter) {
  TpccConfig cfg;
  cfg.new_order_fraction = 1.0;
  cfg.num_warehouses = 1;
  cfg.districts_per_warehouse = 1;
  TpccWorkload w(cfg);
  KvState kv;
  w.Load(&kv);
  Rng rng(8);
  const uint64_t key = TpccKey(TpccTable::kDistrict, 0, 0, 0);
  const uint64_t before = kv.Get(key);
  for (int i = 0; i < 10; ++i) kv.ApplyTxn(w.Generate(&rng), nullptr);
  EXPECT_EQ(kv.Get(key), before + 10);
}

TEST(TpccTest, MixFractionRespected) {
  TpccWorkload w;  // 50/50
  Rng rng(9);
  int new_orders = 0;
  for (int i = 0; i < 2000; ++i) {
    if (w.Generate(&rng).ops.size() > 3) ++new_orders;
  }
  EXPECT_NEAR(new_orders, 1000, 100);
}

}  // namespace
}  // namespace hotstuff1

// Recovery mechanisms (§4.2): block fetch, delayed certificates, the
// prefix-commit optimization, crash-and-catch-up, and partition healing.

#include <gtest/gtest.h>

#include "baselines/hotstuff2.h"
#include "core/hotstuff1_streamlined.h"
#include "runtime/experiment.h"

namespace hotstuff1 {
namespace {

ExperimentConfig Base(ProtocolKind kind, uint32_t n = 4) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = n;
  cfg.batch_size = 10;
  cfg.duration = Millis(400);
  cfg.warmup = Millis(100);
  cfg.num_clients = 100;
  cfg.view_timer = Millis(8);
  cfg.delta = Millis(1);
  cfg.seed = 21;
  return cfg;
}

TEST(RecoveryTest, FetchSuppliesConcealedBlocks) {
  // A network partition delays all traffic from one replica for a while;
  // when it heals, the replica catches up by fetching / committing the
  // chain it missed.
  ExperimentConfig cfg = Base(ProtocolKind::kHotStuff1, 4);
  cfg.duration = Millis(800);
  Experiment exp(cfg);
  exp.Setup();
  // Cut replica 3 off between 150ms and 400ms.
  sim::FaultRule cut;
  cut.from_match.assign(4, true);
  cut.to_match.assign(4, false);
  cut.to_match[3] = true;
  cut.drop_prob = 1.0;
  int rule = -1;
  exp.simulator().At(Millis(150), [&]() { rule = exp.network().AddRule(cut); });
  exp.simulator().At(Millis(400), [&]() { exp.network().RemoveRule(rule); });
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 100u);
  // The partitioned replica re-joined and committed the chain it missed.
  const auto& lagger = *exp.replicas()[3];
  const auto& leader0 = *exp.replicas()[0];
  EXPECT_GT(lagger.ledger().committed_height(), 0u);
  EXPECT_GT(lagger.ledger().committed_height() + 30,
            leader0.ledger().committed_height());
}

TEST(RecoveryTest, ProgressDespiteLossyNetwork) {
  // 2% uniform message loss: timeouts and fetches must keep both safety
  // and liveness.
  ExperimentConfig cfg = Base(ProtocolKind::kHotStuff1, 4);
  cfg.duration = Millis(800);
  Experiment exp(cfg);
  exp.Setup();
  sim::FaultRule lossy;
  lossy.from_match.assign(4, true);
  lossy.to_match.assign(4, true);
  lossy.drop_prob = 0.02;
  exp.network().AddRule(lossy);
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 50u);
}

TEST(RecoveryTest, CrashedLeaderViewsAreSkipped) {
  ExperimentConfig cfg = Base(ProtocolKind::kHotStuff2, 4);
  cfg.fault = Fault::kCrash;
  cfg.num_faulty = 1;  // replica 1 crashes; it leads every 4th view
  cfg.duration = Millis(600);
  Experiment exp(cfg);
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 50u);
  // The crashed replica proposed nothing; others did.
  EXPECT_EQ(exp.replicas()[1]->metrics().blocks_proposed, 0u);
  EXPECT_GT(exp.replicas()[2]->metrics().blocks_proposed, 0u);
  // Views led by the crashed replica show up as timeouts at correct ones.
  EXPECT_GT(exp.replicas()[0]->metrics().timeouts, 5u);
}

TEST(RecoveryTest, LateReplicaStartStillJoins) {
  // Replica 3 starts 200ms late (e.g. restarted process): the pacemaker's
  // TC broadcasts pull it into the current epoch.
  ExperimentConfig cfg = Base(ProtocolKind::kHotStuff1, 4);
  cfg.duration = Millis(800);
  Experiment exp(cfg);
  exp.Setup();
  exp.network().Crash(3);
  exp.simulator().At(Millis(200), [&]() { exp.network().Recover(3); });
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(res.accepted, 50u);
  EXPECT_GT(exp.replicas()[3]->view(), 10u);
}

TEST(RecoveryTest, DelayedCertificatesCommitViaPrefixRule) {
  // §4.2 "Prefix Commit: Processing Delayed Certificates": blocks whose
  // certificate a replica missed still commit once a descendant's
  // certificate chain arrives; no block is permanently stuck.
  ExperimentConfig cfg = Base(ProtocolKind::kHotStuff1, 7);
  cfg.fault = Fault::kTailFork;
  cfg.num_faulty = 2;
  cfg.duration = Millis(800);
  cfg.track_accepted = true;
  Experiment exp(cfg);
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  // All correct replicas converge to (nearly) the same committed height
  // even though tail-forked certificates were dropped along the way.
  uint64_t min_h = UINT64_MAX, max_h = 0;
  for (uint32_t id = 0; id < 7; ++id) {
    if (id >= 1 && id <= 2) continue;  // adversaries
    const uint64_t h = exp.replicas()[id]->ledger().committed_height();
    min_h = std::min(min_h, h);
    max_h = std::max(max_h, h);
  }
  EXPECT_GT(min_h, 0u);
  EXPECT_LE(max_h - min_h, 10u);
}

TEST(RecoveryTest, FetchCountersExposed) {
  // Direct check of the fetch plumbing: conceal a proposal from replica 0
  // by dropping leader traffic to it briefly, then verify it fetched.
  ExperimentConfig cfg = Base(ProtocolKind::kHotStuff2, 4);
  cfg.duration = Millis(600);
  Experiment exp(cfg);
  exp.Setup();
  sim::FaultRule drop_to_0;
  drop_to_0.from_match.assign(4, true);
  drop_to_0.to_match.assign(4, false);
  drop_to_0.to_match[0] = true;
  drop_to_0.drop_prob = 0.3;
  int rule = exp.network().AddRule(drop_to_0);
  exp.simulator().At(Millis(300), [&]() { exp.network().RemoveRule(rule); });
  const auto res = exp.Run();
  EXPECT_TRUE(res.safety_ok);
  EXPECT_GT(exp.replicas()[0]->metrics().fetches, 0u);
  // And the fetches actually healed the chain.
  EXPECT_GT(exp.replicas()[0]->ledger().committed_height() + 20,
            exp.replicas()[2]->ledger().committed_height());
}

}  // namespace
}  // namespace hotstuff1

// SHA-256 against FIPS 180-4 / NIST test vectors, plus the signature
// substrate's unforgeability-relevant behaviours.

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace hotstuff1 {
namespace {

// --- SHA-256 known-answer tests -------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Digest("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Digest("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(ctx.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte message exercises the padding-into-second-block path.
  const std::string m(64, 'x');
  EXPECT_EQ(Sha256::Digest(m).ToHex(), Sha256::Digest(m.data(), 64).ToHex());
  // 55/56/57 bytes straddle the length-field boundary.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string s(len, 'y');
    Sha256 one_shot;
    one_shot.Update(s);
    Sha256 split;
    split.Update(s.substr(0, len / 2));
    split.Update(s.substr(len / 2));
    EXPECT_EQ(one_shot.Finish().ToHex(), split.Finish().ToHex()) << len;
  }
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  for (char c : msg) ctx.Update(&c, 1);
  EXPECT_EQ(ctx.Finish(), Sha256::Digest(msg));
}

TEST(Sha256Test, ResetReusesContext) {
  Sha256 ctx;
  ctx.Update("garbage");
  (void)ctx.Finish();
  ctx.Reset();
  ctx.Update("abc");
  EXPECT_EQ(ctx.Finish(), Sha256::Digest("abc"));
}

TEST(Sha256Test, UpdateU64IsLittleEndian) {
  Sha256 a, b;
  a.UpdateU64(0x0102030405060708ULL);
  const uint8_t bytes[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  b.Update(bytes, 8);
  EXPECT_EQ(a.Finish(), b.Finish());
}

// --- Hash256 ---------------------------------------------------------------------

TEST(Hash256Test, ZeroDetection) {
  Hash256 z;
  EXPECT_TRUE(z.IsZero());
  z.bytes[31] = 1;
  EXPECT_FALSE(z.IsZero());
}

TEST(Hash256Test, OrderingAndPrefix) {
  const Hash256 a = Sha256::Digest("a");
  const Hash256 b = Sha256::Digest("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_NE(a.Prefix64(), b.Prefix64());
  EXPECT_EQ(a.Short().size(), 8u);
  EXPECT_EQ(a.ToHex().size(), 64u);
}

// --- Signer / KeyRegistry --------------------------------------------------------

TEST(SignerTest, SignVerifyRoundTrip) {
  KeyRegistry registry(4, 1);
  Signer signer(&registry, 2);
  const Hash256 digest = Sha256::Digest("vote payload");
  const Signature sig = signer.Sign(SignDomain::kProposeVote, digest);
  EXPECT_EQ(sig.signer, 2u);
  EXPECT_TRUE(registry.Verify(sig, SignDomain::kProposeVote, digest));
}

TEST(SignerTest, WrongDomainRejected) {
  KeyRegistry registry(4, 1);
  Signer signer(&registry, 0);
  const Hash256 digest = Sha256::Digest("payload");
  const Signature sig = signer.Sign(SignDomain::kProposeVote, digest);
  EXPECT_FALSE(registry.Verify(sig, SignDomain::kCommitVote, digest));
  EXPECT_FALSE(registry.Verify(sig, SignDomain::kNewView, digest));
}

TEST(SignerTest, WrongDigestRejected) {
  KeyRegistry registry(4, 1);
  Signer signer(&registry, 0);
  const Signature sig = signer.Sign(SignDomain::kWish, Sha256::Digest("a"));
  EXPECT_FALSE(registry.Verify(sig, SignDomain::kWish, Sha256::Digest("b")));
}

TEST(SignerTest, ForgedSignerIdRejected) {
  KeyRegistry registry(4, 1);
  Signer signer(&registry, 0);
  const Hash256 digest = Sha256::Digest("x");
  Signature sig = signer.Sign(SignDomain::kWish, digest);
  sig.signer = 1;  // claim another identity, keep the MAC
  EXPECT_FALSE(registry.Verify(sig, SignDomain::kWish, digest));
  sig.signer = 99;  // out of range
  EXPECT_FALSE(registry.Verify(sig, SignDomain::kWish, digest));
}

TEST(SignerTest, KeysDifferAcrossReplicasAndSeeds) {
  KeyRegistry r1(2, 1), r2(2, 2);
  const Hash256 digest = Sha256::Digest("m");
  const Signature s0 = Signer(&r1, 0).Sign(SignDomain::kWish, digest);
  const Signature s1 = Signer(&r1, 1).Sign(SignDomain::kWish, digest);
  EXPECT_NE(s0.mac, s1.mac);
  const Signature s0b = Signer(&r2, 0).Sign(SignDomain::kWish, digest);
  EXPECT_NE(s0.mac, s0b.mac);
}

TEST(SignerTest, QuorumVerification) {
  const uint32_t n = 7, f = 2, quorum = n - f;
  KeyRegistry registry(n, 3);
  const Hash256 digest = Sha256::Digest("block");
  std::vector<Signature> sigs;
  for (uint32_t i = 0; i < quorum; ++i) {
    sigs.push_back(Signer(&registry, i).Sign(SignDomain::kProposeVote, digest));
  }
  EXPECT_TRUE(registry.VerifyQuorum(sigs, SignDomain::kProposeVote, digest, quorum).ok());

  // Too few.
  std::vector<Signature> few(sigs.begin(), sigs.end() - 1);
  EXPECT_TRUE(registry.VerifyQuorum(few, SignDomain::kProposeVote, digest, quorum)
                  .IsUnauthenticated());

  // Duplicate signer cannot substitute for a distinct one.
  std::vector<Signature> dup = few;
  dup.push_back(few[0]);
  EXPECT_TRUE(registry.VerifyQuorum(dup, SignDomain::kProposeVote, digest, quorum)
                  .IsUnauthenticated());

  // One corrupted share poisons the quorum.
  std::vector<Signature> bad = sigs;
  bad[1].mac.bytes[0] ^= 0xff;
  EXPECT_TRUE(registry.VerifyQuorum(bad, SignDomain::kProposeVote, digest, quorum)
                  .IsUnauthenticated());
}

}  // namespace
}  // namespace hotstuff1

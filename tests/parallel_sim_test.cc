// Deterministic intra-experiment parallelism tests: the parallel executor
// must reproduce the single-threaded event loop byte for byte at any
// --sim-jobs count — shard chaining, barriers, the SyncShared gate, staged
// scheduling, cap truncation, and full experiments / scenario sweeps.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "runtime/experiment.h"
#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "sim/simulator.h"
#include "tests/result_equality.h"

namespace hotstuff1 {
namespace {

using sim::kShardSerial;
using sim::ShardId;
using sim::Simulator;

// A scripted workload over raw simulator events: every event appends to its
// shard's own log and re-schedules follow-ups (self-shard via inheritance,
// cross-shard explicitly). Returns the per-shard logs plus final clock.
struct ScriptOutcome {
  std::vector<std::vector<int>> logs;
  SimTime now = 0;
  uint64_t events = 0;

  bool operator==(const ScriptOutcome& o) const {
    return logs == o.logs && now == o.now && events == o.events;
  }
};

ScriptOutcome RunScript(int jobs) {
  constexpr int kShards = 4;
  Simulator sim;
  sim.SetJobs(jobs);
  ScriptOutcome out;
  out.logs.resize(kShards);

  for (ShardId s = 0; s < kShards; ++s) {
    // Three generations of same-timestamp events per shard; each generation
    // schedules the next via plain At (inheriting the shard) plus a
    // cross-shard message to the next shard.
    sim.AtShard(10, s, [&, s] {
      out.logs[s].push_back(1);
      sim.After(0, [&, s] { out.logs[s].push_back(2); });  // same tick, inherited
      sim.AtShard(20, (s + 1) % kShards, [&, s] {
        out.logs[(s + 1) % kShards].push_back(100 + static_cast<int>(s));
      });
    });
  }
  // An untagged event acts as a barrier and may read everything.
  sim.At(15, [&] {
    int total = 0;
    for (const auto& log : out.logs) total += static_cast<int>(log.size());
    EXPECT_EQ(total, 2 * kShards);  // all tick-10 work is complete
  });
  sim.Run();
  out.now = sim.Now();
  out.events = sim.EventsProcessed();
  return out;
}

TEST(ParallelExecutorTest, ScriptedShardsMatchSerial) {
  const ScriptOutcome serial = RunScript(1);
  EXPECT_EQ(serial.events, 4u + 4u + 1u + 4u);
  for (int jobs : {2, 4, 8}) {
    EXPECT_EQ(RunScript(jobs), serial) << "jobs=" << jobs;
  }
}

// SyncShared orders same-tick accesses to a shared domain in sequence
// order, so a shared log is deterministic even across shards.
TEST(ParallelExecutorTest, SyncSharedOrdersSharedDomain) {
  auto run = [](int jobs) {
    Simulator sim;
    sim.SetJobs(jobs);
    std::vector<int> shared;
    for (ShardId s = 0; s < 8; ++s) {
      sim.AtShard(5, s, [&, s] {
        sim.SyncShared();
        shared.push_back(static_cast<int>(s));
      });
    }
    sim.Run();
    return shared;
  };
  const std::vector<int> serial = run(1);
  ASSERT_EQ(serial.size(), 8u);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

// A lookahead-window workout over raw simulator events: shards start at
// staggered timestamps inside one safe horizon, re-schedule themselves at
// sub-window delays (inline events), talk to a SyncShared-gated shared log,
// cross shards only at >= the window, and run into a barrier that truncates
// the window mid-stream. Every observable must match the serial loop.
struct WindowScriptOutcome {
  std::vector<std::vector<int>> logs;
  std::vector<int> shared;
  SimTime now = 0;
  uint64_t events = 0;

  bool operator==(const WindowScriptOutcome& o) const {
    return logs == o.logs && shared == o.shared && now == o.now &&
           events == o.events;
  }
};

WindowScriptOutcome RunWindowScript(int jobs, SimTime window) {
  constexpr int kShards = 4;
  Simulator sim;
  sim.SetJobs(jobs);
  sim.SetLookahead(window);
  WindowScriptOutcome out;
  out.logs.resize(kShards);

  for (ShardId s = 0; s < kShards; ++s) {
    // Staggered starts: under a window of >= kShards the whole group is one
    // round; under a smaller window it splits. Either must match serial.
    sim.AtShard(10 + s, s, [&, s] {
      out.logs[s].push_back(1);
      // Same-tick follow-on (inline at the parent's own timestamp).
      sim.After(0, [&, s] { out.logs[s].push_back(2); });
      // Sub-window self-reschedule (inline at a later timestamp), which
      // itself crosses shards at a horizon-respecting distance.
      sim.After(1, [&, s] {
        out.logs[s].push_back(3);
        sim.AtShard(sim.Now() + window + 4, (s + 1) % kShards, [&, s] {
          out.logs[(s + 1) % kShards].push_back(100 + static_cast<int>(s));
        });
      });
      // Shared-domain access in exact serial order.
      sim.After(2, [&, s] {
        sim.SyncShared();
        out.shared.push_back(static_cast<int>(s));
      });
    });
  }
  // A barrier inside the first horizon: windows must stop in front of it,
  // and same-shard follow-ons past it must wait for it.
  sim.At(12, [&] { out.shared.push_back(-1); });
  sim.Run();
  out.now = sim.Now();
  out.events = sim.EventsProcessed();
  return out;
}

TEST(ParallelExecutorTest, WindowScriptMatchesSerialAtAnyWindow) {
  for (SimTime window : {SimTime{0}, SimTime{2}, SimTime{6}, SimTime{50}}) {
    const WindowScriptOutcome serial = RunWindowScript(1, window);
    ASSERT_EQ(serial.shared.size(), 5u);  // 4 shard entries + the barrier
    for (int jobs : {2, 4, 8}) {
      EXPECT_EQ(RunWindowScript(jobs, window), serial)
          << "jobs=" << jobs << " window=" << window;
    }
  }
}

TEST(ParallelExecutorTest, EventCapTruncatesIdentically) {
  auto run = [](int jobs) {
    Simulator sim;
    sim.SetJobs(jobs);
    sim.SetEventCap(10);
    uint64_t ran = 0;
    for (ShardId s = 0; s < 4; ++s) {
      for (int k = 0; k < 5; ++k) {
        sim.AtShard(7, s, [&] { ++ran; });
      }
    }
    sim.Run();
    return std::tuple<uint64_t, uint64_t, bool, size_t>{
        ran, sim.EventsProcessed(), sim.cap_hit(), sim.PendingEvents()};
  };
  const auto serial = run(1);
  EXPECT_EQ(std::get<0>(serial), 10u);
  EXPECT_TRUE(std::get<2>(serial));
  EXPECT_EQ(run(4), serial);
}

ExperimentConfig SmallConfig(ProtocolKind kind) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = 16;
  cfg.batch_size = 100;
  cfg.duration = Millis(150);
  cfg.warmup = Millis(50);
  cfg.seed = 42;
  return cfg;
}

TEST(ParallelExperimentTest, ByteIdenticalAcrossSimJobs) {
  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff1,
                            ProtocolKind::kHotStuff1Slotted}) {
    ExperimentConfig cfg = SmallConfig(kind);
    cfg.lookahead = {LookaheadMode::kOff, 0};
    const ExperimentResult serial = RunExperiment(cfg);
    EXPECT_TRUE(serial.safety_ok);
    for (uint32_t jobs : {4u, 8u}) {
      cfg.sim_jobs = jobs;
      ExpectSameResult(RunExperiment(cfg), serial);
    }
  }
}

// The lookahead acceptance gate at the experiment level: every deterministic
// field agrees between the serial loop, the tick-parallel executor, and the
// lookahead window (auto and explicit), at several worker counts.
TEST(ParallelExperimentTest, ByteIdenticalAcrossLookahead) {
  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff1}) {
    ExperimentConfig cfg = SmallConfig(kind);
    cfg.lookahead = {LookaheadMode::kOff, 0};
    const ExperimentResult serial = RunExperiment(cfg);
    EXPECT_TRUE(serial.safety_ok);
    struct Variant {
      uint32_t sim_jobs;
      LookaheadSpec lookahead;
    };
    for (const Variant v :
         {Variant{4, {LookaheadMode::kAuto, 0}},
          Variant{8, {LookaheadMode::kAuto, 0}},
          Variant{4, {LookaheadMode::kWindow, 100}},
          Variant{8, {LookaheadMode::kOff, 0}}}) {
      cfg.sim_jobs = v.sim_jobs;
      cfg.lookahead = v.lookahead;
      ExpectSameResult(RunExperiment(cfg), serial);
    }
  }
}

TEST(ParallelExperimentTest, ByteIdenticalUnderFaultsAndGeo) {
  ExperimentConfig cfg = SmallConfig(ProtocolKind::kHotStuff1);
  cfg.fault = Fault::kTailFork;
  cfg.num_faulty = 5;
  cfg.topology = sim::Topology::Geo(cfg.n, 3);
  cfg.view_timer = Millis(1200);
  cfg.delta = Millis(160);
  cfg.lookahead = {LookaheadMode::kOff, 0};
  const ExperimentResult serial = RunExperiment(cfg);
  cfg.sim_jobs = 8;
  ExpectSameResult(RunExperiment(cfg), serial);
  // Geo windows are wide (min cross-region hop); the adversary must still
  // be invisible in them.
  cfg.lookahead = {LookaheadMode::kAuto, 0};
  ExpectSameResult(RunExperiment(cfg), serial);
}

// Capped runs stay deterministic too: lookahead degrades to tick-parallel
// so truncation lands on exactly the serial event.
TEST(ParallelExperimentTest, ByteIdenticalUnderEventCapWithLookahead) {
  ExperimentConfig cfg = SmallConfig(ProtocolKind::kHotStuff1);
  cfg.event_cap = 30000;
  cfg.lookahead = {LookaheadMode::kOff, 0};
  const ExperimentResult serial = RunExperiment(cfg);
  EXPECT_TRUE(serial.event_cap_hit);
  cfg.sim_jobs = 8;
  cfg.lookahead = {LookaheadMode::kAuto, 0};
  ExpectSameResult(RunExperiment(cfg), serial);
}

// The acceptance gate: the fig8_scalability sweep's machine-readable output
// is byte-identical at any --sim-jobs x --lookahead (and at any --jobs).
TEST(ParallelExperimentTest, Fig8ScalabilityCsvByteIdentical) {
  const ScenarioSpec* spec = ScenarioRegistry::Instance().Find("fig8_scalability");
  ASSERT_NE(spec, nullptr);

  auto run_csv = [&](int jobs, int sim_jobs, const char* lookahead) {
    SweepRunner runner(jobs, sim_jobs);
    LookaheadSpec spec_la;
    EXPECT_TRUE(ParseLookahead(lookahead, &spec_la)) << lookahead;
    runner.OverrideLookahead(spec_la);
    const SweepOutcome outcome = runner.Run(*spec, /*smoke=*/true);
    std::ostringstream os;
    EmitCsv(outcome, os);
    return os.str();
  };
  const std::string baseline = run_csv(/*jobs=*/1, /*sim_jobs=*/1, "off");
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(run_csv(/*jobs=*/2, /*sim_jobs=*/1, "off"), baseline);
  EXPECT_EQ(run_csv(/*jobs=*/1, /*sim_jobs=*/8, "off"), baseline);
  EXPECT_EQ(run_csv(/*jobs=*/2, /*sim_jobs=*/4, "off"), baseline);
  EXPECT_EQ(run_csv(/*jobs=*/1, /*sim_jobs=*/4, "auto"), baseline);
  EXPECT_EQ(run_csv(/*jobs=*/2, /*sim_jobs=*/8, "auto"), baseline);
  EXPECT_EQ(run_csv(/*jobs=*/1, /*sim_jobs=*/8, "400"), baseline);
}

// Same gate for the open-loop saturation sweep: million-client sharded pools
// with every arrival process (poisson/bursty/diurnal/flash) must emit
// byte-identical CSV under any executor shape. This is where the per-group
// RNG streams, the cross-shard response fan-out, and the SyncShared-gated
// submission queue all meet the lookahead window at once.
TEST(ParallelExperimentTest, FigSaturationCsvByteIdentical) {
  const ScenarioSpec* spec = ScenarioRegistry::Instance().Find("fig_saturation");
  ASSERT_NE(spec, nullptr);

  auto run_csv = [&](int jobs, int sim_jobs, const char* lookahead) {
    SweepRunner runner(jobs, sim_jobs);
    LookaheadSpec spec_la;
    EXPECT_TRUE(ParseLookahead(lookahead, &spec_la)) << lookahead;
    runner.OverrideLookahead(spec_la);
    const SweepOutcome outcome = runner.Run(*spec, /*smoke=*/true);
    std::ostringstream os;
    EmitCsv(outcome, os);
    return os.str();
  };
  const std::string baseline = run_csv(/*jobs=*/1, /*sim_jobs=*/1, "off");
  EXPECT_FALSE(baseline.empty());
  // The smoke grid keeps the endpoint arrival processes; both must be there.
  EXPECT_NE(baseline.find("poisson"), std::string::npos);
  EXPECT_EQ(run_csv(/*jobs=*/2, /*sim_jobs=*/4, "off"), baseline);
  EXPECT_EQ(run_csv(/*jobs=*/1, /*sim_jobs=*/4, "auto"), baseline);
  EXPECT_EQ(run_csv(/*jobs=*/2, /*sim_jobs=*/8, "auto"), baseline);
}

// par_speedup sweeps sim_jobs and lookahead itself: its machine-readable
// output must be byte-identical across repeated runs (wall_ms is table-only)
// and across CLI overrides (which the axis-respect rule ignores).
TEST(ParallelExperimentTest, ParSpeedupCsvByteIdentical) {
  const ScenarioSpec* spec = ScenarioRegistry::Instance().Find("par_speedup");
  ASSERT_NE(spec, nullptr);

  auto run_csv = [&](int jobs, int sim_jobs, LookaheadMode mode) {
    SweepRunner runner(jobs, sim_jobs);
    runner.OverrideLookahead({mode, 0});
    const SweepOutcome outcome = runner.Run(*spec, /*smoke=*/true);
    std::ostringstream os;
    EmitCsv(outcome, os);
    return os.str();
  };
  const std::string baseline = run_csv(1, 1, LookaheadMode::kOff);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline.find("wall_ms"), std::string::npos)
      << "wall_ms must not reach the machine-readable output";
  // Repeated run: wall-clock noise must not leak into the bytes.
  EXPECT_EQ(run_csv(1, 1, LookaheadMode::kOff), baseline);
  EXPECT_EQ(run_csv(2, 4, LookaheadMode::kOff), baseline);
  EXPECT_EQ(run_csv(1, 8, LookaheadMode::kAuto), baseline);
  EXPECT_EQ(run_csv(2, 1, LookaheadMode::kAuto), baseline);
}

}  // namespace
}  // namespace hotstuff1

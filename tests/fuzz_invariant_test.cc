// Randomized adversary fuzz through the online invariant oracle: every seed
// derives a full (protocol x n x fault x coalition x batch x bandwidth x
// lookahead x sim_jobs) tuple (runtime/fuzz.h) and must finish with zero
// oracle violations — the deterministic simulator makes a failing seed its
// own repro. A mutation self-test then proves the oracle is not vacuous: the
// ConsensusConfig::test_break_safety hook injects an equivocation-commit bug
// into the streamlined core and the oracle must report it with a
// (config, seed) diagnostic.

#include <gtest/gtest.h>

#include "runtime/experiment.h"
#include "runtime/fuzz.h"
#include "runtime/oracle.h"
#include "tests/result_equality.h"

namespace hotstuff1 {
namespace {

class FuzzInvariant : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzInvariant, RandomizedAdversaryRunIsOracleClean) {
  const ExperimentConfig cfg = FuzzConfigFromSeed(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "fuzz seed " << GetParam() << ": " << DescribeConfig(cfg)
               << " sim_jobs=" << cfg.sim_jobs
               << " lookahead=" << FormatLookahead(cfg.lookahead));
  Experiment exp(cfg);
  const ExperimentResult res = exp.Run();

  EXPECT_TRUE(res.safety_ok);
  EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
  // Within the f fault bound every drawn tuple — including the seeds that
  // attach a withhold/delay/target-leader strategy schedule — must also
  // satisfy the Thm B.8 progress promise.
  EXPECT_EQ(res.liveness_violations, 0u) << res.liveness_first_violation;
  // The oracle must actually be observing, not silently unplugged: any run
  // enters views and commits blocks, so events must have flowed.
  ASSERT_NE(exp.oracle(), nullptr);
  EXPECT_GT(exp.oracle()->events_observed(), 0u);
}

// >= 40 randomized tuples, covering every protocol and fault kind across the
// range (the seed->tuple map is uniform over both).
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInvariant, ::testing::Range<uint64_t>(1, 45));

// --- mutation self-test -------------------------------------------------------

ExperimentConfig MutationConfig() {
  // The rollback attack is what gives the injected bug a conflicting
  // certified branch to mis-commit; without faults the bug never fires
  // (a single chain cannot equivocate).
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;  // the core carrying the hook
  cfg.n = 7;
  cfg.batch_size = 10;
  cfg.duration = Millis(400);
  cfg.warmup = Millis(100);
  cfg.num_clients = 80;
  cfg.fault = Fault::kRollbackAttack;
  cfg.num_faulty = 2;
  cfg.rollback_victims = 2;
  cfg.seed = 3;
  cfg.oracle_enabled = true;
  return cfg;
}

TEST(OracleMutation, ControlRunIsCleanAndAttackBites) {
  const ExperimentResult res = RunExperiment(MutationConfig());
  EXPECT_TRUE(res.safety_ok);
  EXPECT_EQ(res.oracle_violations, 0u) << res.oracle_first_violation;
  // The attack must actually produce victim rollbacks, otherwise the
  // mutated run below would pass vacuously (the bug fires on the first
  // would-be rollback).
  EXPECT_GT(res.rollback_events, 0u);
}

TEST(OracleMutation, InjectedEquivocationCommitIsDetected) {
  ExperimentConfig cfg = MutationConfig();
  cfg.test_break_safety = true;
  Experiment exp(cfg);
  const ExperimentResult res = exp.Run();

  // The oracle fires online.
  EXPECT_GT(res.oracle_violations, 0u);

  // The first diagnostic is a self-contained repro: it names a violated
  // invariant, the configuration and the seed.
  const std::string& diag = res.oracle_first_violation;
  EXPECT_NE(diag.find("invariant"), std::string::npos) << diag;
  EXPECT_NE(diag.find("protocol=HotStuff-1"), std::string::npos) << diag;
  EXPECT_NE(diag.find("n=7"), std::string::npos) << diag;
  EXPECT_NE(diag.find("seed=3"), std::string::npos) << diag;

  // The equivocating commit itself surfaces as a commit-conflict in the
  // violation log (alongside the spec/client contradictions it causes).
  ASSERT_NE(exp.oracle(), nullptr);
  bool saw_commit_conflict = false;
  for (const std::string& v : exp.oracle()->violation_log()) {
    saw_commit_conflict =
        saw_commit_conflict || v.find("commit-conflict") != std::string::npos;
  }
  EXPECT_TRUE(saw_commit_conflict);
}

TEST(OracleMutation, CoarseCheckAloneMissesCommitThenCrashEquivocation) {
  // This is why the oracle must watch *online*: the buggy replica commits
  // the abandoned branch and then goes silent, and the end-of-run prefix
  // comparison (Experiment::CheckSafety) skips crashed replicas — so the
  // coarse check reports a clean run even though a correct-then-silent
  // replica exposed an equivocated commit to its clients.
  ExperimentConfig cfg = MutationConfig();
  cfg.test_break_safety = true;
  cfg.oracle_enabled = false;
  const ExperimentResult res = RunExperiment(cfg);
  EXPECT_TRUE(res.safety_ok);           // blind spot, by construction
  EXPECT_EQ(res.oracle_violations, 0u);  // nobody watching
}

TEST(OracleMutation, ViolationDiagnosticsAreExecutorInvariant) {
  // The byte-identical contract must hold for *violating* runs too: the
  // verdict, the violation count, and the first diagnostic (which embeds
  // the oracle's event counter and a virtual timestamp) must not depend on
  // the executor shape. An all-clean sweep would prove much less.
  ExperimentConfig cfg = MutationConfig();
  cfg.test_break_safety = true;
  cfg.sim_jobs = 1;
  cfg.lookahead = {LookaheadMode::kOff, 0};
  const ExperimentResult serial = RunExperiment(cfg);
  ASSERT_GT(serial.oracle_violations, 0u);

  for (uint32_t sim_jobs : {1u, 4u}) {
    for (LookaheadMode mode : {LookaheadMode::kOff, LookaheadMode::kAuto}) {
      if (sim_jobs == 1 && mode == LookaheadMode::kOff) continue;  // baseline
      cfg.sim_jobs = sim_jobs;
      cfg.lookahead = {mode, 0};
      SCOPED_TRACE(::testing::Message() << "sim_jobs=" << sim_jobs
                                        << " lookahead="
                                        << FormatLookahead(cfg.lookahead));
      ExpectSameResult(RunExperiment(cfg), serial);
    }
  }
}

// Enabling the oracle must be a pure observation: every deterministic result
// field matches an identical run without it.
TEST(OracleObserver, EnablingOracleDoesNotPerturbTheRun) {
  ExperimentConfig cfg = MutationConfig();
  const ExperimentResult with_oracle = RunExperiment(cfg);
  cfg.oracle_enabled = false;
  const ExperimentResult without = RunExperiment(cfg);
  EXPECT_EQ(with_oracle.accepted, without.accepted);
  EXPECT_EQ(with_oracle.committed_blocks, without.committed_blocks);
  EXPECT_EQ(with_oracle.views, without.views);
  EXPECT_EQ(with_oracle.rollback_events, without.rollback_events);
  EXPECT_EQ(with_oracle.messages_sent, without.messages_sent);
  EXPECT_EQ(with_oracle.bytes_sent, without.bytes_sent);
}

}  // namespace
}  // namespace hotstuff1

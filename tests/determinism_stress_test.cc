// Randomized determinism stress harness: each seed derives an arbitrary
// ExperimentConfig (committee size — including multi-word quorums past
// n = 64 — protocol, batch, faults, bandwidth, authenticator scheme,
// client-group shard counts, open-loop arrival processes, epoch-based
// committee reconfiguration) and the run is repeated at
// {1, 4} sim_jobs x {off, auto} lookahead. Every deterministic result field
// must be identical, so parallel-executor regressions surface from plain
// `ctest` instead of hand-written reproduction scripts; a failure names the
// seed that rebuilds its exact configuration.
//
// Every config runs with the invariant oracle armed: the oracle's shared
// bookkeeping is itself SyncShared-ordered, so its verdict (zero violations
// here) and its event stream must be identical under every executor shape —
// this is the oracle-under-parallelism regression gate.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "runtime/experiment.h"
#include "tests/result_equality.h"

namespace hotstuff1 {
namespace {

/// Derives one arbitrary-but-reproducible configuration from `seed`. Every
/// draw goes through the deterministic Rng, so a failing seed IS the repro.
ExperimentConfig ConfigFromSeed(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  ExperimentConfig cfg;

  constexpr ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
      ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};
  cfg.protocol = kProtocols[rng.NextBounded(5)];

  // Committee sizes straddle the one-word boundary the ReplicaSet removed.
  constexpr uint32_t kSizes[] = {4, 7, 16, 33, 65, 96};
  cfg.n = kSizes[rng.NextBounded(6)];

  constexpr uint32_t kBatches[] = {10, 50, 100};
  cfg.batch_size = kBatches[rng.NextBounded(3)];

  constexpr Fault kFaults[] = {Fault::kNone, Fault::kCrash, Fault::kTailFork};
  cfg.fault = kFaults[rng.NextBounded(3)];
  if (cfg.fault != Fault::kNone) {
    const uint32_t f = (cfg.n - 1) / 3;
    cfg.num_faulty = 1 + static_cast<uint32_t>(rng.NextBounded(std::max(f, 1u)));
  }

  cfg.bandwidth_bytes_per_us = rng.NextBool(0.5) ? 2000.0 : 200000.0;

  // Authenticator wire scheme: changes per-message byte sizes, hence
  // serialization times and the whole event schedule — a fresh determinism
  // surface the fixed-size era never exercised.
  constexpr CertScheme kSchemes[] = {CertScheme::kMultisigVector,
                                     CertScheme::kAggregate,
                                     CertScheme::kThreshold};
  cfg.cert_scheme = kSchemes[rng.NextBounded(3)];

  // Client-pool shape: shard count and traffic model. Closed loop is drawn
  // with double weight (it is the paper-fidelity default and exercises the
  // acceptance-triggered resubmission path the open loop lacks).
  cfg.client_groups = 1u << rng.NextBounded(4);  // 1, 2, 4, 8
  constexpr ArrivalKind kArrivals[] = {
      ArrivalKind::kClosedLoop, ArrivalKind::kClosedLoop, ArrivalKind::kPoisson,
      ArrivalKind::kBursty,     ArrivalKind::kDiurnal,    ArrivalKind::kFlashCrowd};
  cfg.arrival.kind = kArrivals[rng.NextBounded(6)];
  if (cfg.arrival.kind != ArrivalKind::kClosedLoop) {
    cfg.arrival.offered_load_tps =
        20'000.0 * static_cast<double>(1 + rng.NextBounded(4));
    // Compress the processes' time structure into the 160ms run window so
    // diurnal modulation and the flash ramp actually happen.
    cfg.arrival.diurnal_period = Millis(60);
    cfg.arrival.flash_start = Millis(60);
    cfg.arrival.flash_rise = Millis(10);
    cfg.arrival.flash_decay = Millis(30);
  }

  cfg.num_clients = 2 * cfg.batch_size;
  cfg.duration = Millis(120);
  cfg.warmup = Millis(40);
  cfg.seed = seed;
  cfg.oracle_enabled = true;

  // A third of the configs reconfigure the committee mid-run: shrink to a
  // prefix committee 0..k-1 at epoch 1, then regrow at epoch 3. Prefix
  // committees keep the faulty coalition (ids 1..num_faulty) inside every
  // epoch's fault bound whenever k >= 3*num_faulty + 1. Drawn last so the
  // earlier seeds' (protocol, n, fault, ...) tuples are unchanged.
  if (rng.NextBounded(3) == 0) {
    const uint32_t min_k = std::max(4u, 3 * cfg.num_faulty + 1);
    if (min_k < cfg.n) {
      const uint32_t k =
          min_k + static_cast<uint32_t>(rng.NextBounded(cfg.n - min_k));
      CommitteeStep full0, shrink, regrow;
      full0.from_epoch = 0;
      for (uint32_t i = 0; i < cfg.n; ++i) full0.committee.members.push_back(i);
      shrink.from_epoch = 1;
      for (uint32_t i = 0; i < k; ++i) shrink.committee.members.push_back(i);
      regrow.from_epoch = 3;
      regrow.committee = full0.committee;
      cfg.reconfig.steps = {full0, shrink, regrow};
    }
  }
  return cfg;
}

class DeterminismStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismStress, RandomConfigIsByteIdenticalAcrossExecutors) {
  ExperimentConfig cfg = ConfigFromSeed(GetParam());
  cfg.sim_jobs = 1;
  cfg.lookahead = {LookaheadMode::kOff, 0};
  const ExperimentResult serial = RunExperiment(cfg);
  EXPECT_TRUE(serial.safety_ok) << "seed " << GetParam();
  EXPECT_EQ(serial.oracle_violations, 0u)
      << "seed " << GetParam() << ": " << serial.oracle_first_violation;

  for (uint32_t sim_jobs : {1u, 4u}) {
    for (LookaheadMode mode : {LookaheadMode::kOff, LookaheadMode::kAuto}) {
      if (sim_jobs == 1 && mode == LookaheadMode::kOff) continue;  // baseline
      cfg.sim_jobs = sim_jobs;
      cfg.lookahead = {mode, 0};
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << GetParam() << " n=" << cfg.n << " protocol="
                   << serial.protocol << " batch=" << cfg.batch_size
                   << " fault=" << static_cast<int>(cfg.fault)
                   << " sim_jobs=" << sim_jobs
                   << " lookahead=" << FormatLookahead(cfg.lookahead));
      ExpectSameResult(RunExperiment(cfg), serial);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismStress,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace hotstuff1

// Result<T>: a value or a non-OK Status (Arrow's arrow::Result idiom).

#ifndef HOTSTUFF1_COMMON_RESULT_H_
#define HOTSTUFF1_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hotstuff1 {

/// \brief Holds either a T (success) or a non-OK Status (failure).
template <typename T>
class Result {
 public:
  // Intentionally implicit, so `return value;` and `return status;` both work
  // inside functions returning Result<T> (mirrors arrow::Result).
  Result(T value) : repr_(std::move(value)) {}          // NOLINT
  Result(Status status) : repr_(std::move(status)) {    // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() {
    assert(ok());
    return std::get<T>(repr_);
  }
  T MoveValueOrDie() {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

/// Assign the value of a Result expression or propagate its error.
#define HS1_ASSIGN_OR_RETURN(lhs, rexpr)            \
  auto HS1_CONCAT_(_res_, __LINE__) = (rexpr);      \
  if (!HS1_CONCAT_(_res_, __LINE__).ok())           \
    return HS1_CONCAT_(_res_, __LINE__).status();   \
  lhs = HS1_CONCAT_(_res_, __LINE__).MoveValueOrDie()

#define HS1_CONCAT_INNER_(a, b) a##b
#define HS1_CONCAT_(a, b) HS1_CONCAT_INNER_(a, b)

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_RESULT_H_

// Minimal levelled logging. Disabled levels cost one branch. Not thread-safe
// by design: the simulator is single-threaded.

#ifndef HOTSTUFF1_COMMON_LOGGING_H_
#define HOTSTUFF1_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hotstuff1 {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
const char* LogLevelName(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 protected:
  void Flush();

 private:
  LogLevel level_;
  bool flushed_ = false;
  std::ostringstream stream_;
};

/// Fatal variant: aborts after flushing.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line) : LogMessage(LogLevel::kError, file, line) {}
  [[noreturn]] ~FatalLogMessage();
};

}  // namespace internal

#define HS1_LOG(level)                                                     \
  if (::hotstuff1::LogLevel::level < ::hotstuff1::GetLogLevel()) {         \
  } else                                                                   \
    ::hotstuff1::internal::LogMessage(::hotstuff1::LogLevel::level,        \
                                      __FILE__, __LINE__)                  \
        .stream()

#define HS1_LOG_TRACE() HS1_LOG(kTrace)
#define HS1_LOG_DEBUG() HS1_LOG(kDebug)
#define HS1_LOG_INFO() HS1_LOG(kInfo)
#define HS1_LOG_WARN() HS1_LOG(kWarn)
#define HS1_LOG_ERROR() HS1_LOG(kError)

/// Invariant check that is active in all build types. Consensus safety bugs
/// must never be compiled out.
#define HS1_CHECK(cond)                                                     \
  if (cond) {                                                               \
  } else                                                                    \
    ::hotstuff1::internal::FatalLogMessage(__FILE__, __LINE__).stream()     \
        << "Check failed: " #cond " "

#define HS1_CHECK_EQ(a, b) HS1_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define HS1_CHECK_NE(a, b) HS1_CHECK((a) != (b))
#define HS1_CHECK_LE(a, b) HS1_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HS1_CHECK_LT(a, b) HS1_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define HS1_CHECK_GE(a, b) HS1_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_LOGGING_H_

// Fixed-capacity multi-word replica bitset: the canonical representation of
// "a set of replica ids" wherever quorums are counted — client response
// tallies, leader-side NewView/Wish sender tracking. A plain uint64_t mask
// caps committees at one machine word (n <= 64) and silently aliases ids via
// `1ULL << (id % 64)`; ReplicaSet raises the cap to kCapacity and turns any
// out-of-range id into a hard check instead of a vote for somebody else.
//
// Value semantics are cheap by design (a few words, trivially copyable), so
// the type can live inside per-transaction tallies that are created and
// copied on the hot path.

#ifndef HOTSTUFF1_COMMON_REPLICA_SET_H_
#define HOTSTUFF1_COMMON_REPLICA_SET_H_

#include <bit>
#include <cstdint>

#include "common/logging.h"

namespace hotstuff1 {

class ReplicaSet {
 public:
  /// Largest committee any quorum-tracking structure supports. Raising it is
  /// a recompile (everything speaks ReplicaSet, nothing packs ids into a
  /// single word).
  static constexpr uint32_t kCapacity = 256;

  constexpr ReplicaSet() = default;

  static ReplicaSet Single(uint32_t r) {
    ReplicaSet s;
    s.Set(r);
    return s;
  }

  /// Out-of-range ids are a protocol bug (a vote from a replica that cannot
  /// exist), never silently folded onto another replica's bit.
  void Set(uint32_t r) {
    HS1_CHECK_LT(r, kCapacity) << "replica id beyond ReplicaSet capacity";
    words_[r / 64] |= 1ULL << (r % 64);
  }

  bool Test(uint32_t r) const {
    HS1_CHECK_LT(r, kCapacity) << "replica id beyond ReplicaSet capacity";
    return (words_[r / 64] >> (r % 64)) & 1ULL;
  }

  /// Number of replicas in the set — the quorum-threshold comparison.
  uint32_t Count() const {
    uint32_t total = 0;
    for (uint64_t w : words_) total += static_cast<uint32_t>(std::popcount(w));
    return total;
  }

  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  ReplicaSet& operator|=(const ReplicaSet& o) {
    for (uint32_t i = 0; i < kWords; ++i) words_[i] |= o.words_[i];
    return *this;
  }
  ReplicaSet& operator&=(const ReplicaSet& o) {
    for (uint32_t i = 0; i < kWords; ++i) words_[i] &= o.words_[i];
    return *this;
  }

  friend ReplicaSet operator|(ReplicaSet a, const ReplicaSet& b) { return a |= b; }
  friend ReplicaSet operator&(ReplicaSet a, const ReplicaSet& b) { return a &= b; }

  friend bool operator==(const ReplicaSet& a, const ReplicaSet& b) {
    for (uint32_t i = 0; i < kWords; ++i) {
      if (a.words_[i] != b.words_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const ReplicaSet& a, const ReplicaSet& b) {
    return !(a == b);
  }

 private:
  static constexpr uint32_t kWords = kCapacity / 64;
  uint64_t words_[kWords] = {};
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_REPLICA_SET_H_

// Fixed-capacity multi-word replica bitset: the canonical representation of
// "a set of replica ids" wherever quorums are counted — client response
// tallies, leader-side NewView/Wish sender tracking. A plain uint64_t mask
// caps committees at one machine word (n <= 64) and silently aliases ids via
// `1ULL << (id % 64)`; BasicReplicaSet raises the cap to its Capacity
// parameter and turns any out-of-range id into a hard check instead of a
// vote for somebody else.
//
// The capacity is a compile-time parameter: `ReplicaSet` (what all quorum
// structures speak) is BasicReplicaSet<HS1_REPLICA_SET_CAPACITY>, 512 by
// default and overridable at configure time
// (-DHS1_REPLICA_SET_CAPACITY=1024) — no code edits needed to go past it.
//
// Value semantics are cheap by design (a few words, trivially copyable), so
// the type can live inside per-transaction tallies that are created and
// copied on the hot path.

#ifndef HOTSTUFF1_COMMON_REPLICA_SET_H_
#define HOTSTUFF1_COMMON_REPLICA_SET_H_

#include <bit>
#include <cstdint>

#include "common/logging.h"

namespace hotstuff1 {

template <uint32_t Capacity>
class BasicReplicaSet {
  static_assert(Capacity > 0 && Capacity % 64 == 0,
                "ReplicaSet capacity must be a positive multiple of 64");

 public:
  /// Largest committee this quorum-tracking structure supports.
  static constexpr uint32_t kCapacity = Capacity;

  constexpr BasicReplicaSet() = default;

  static BasicReplicaSet Single(uint32_t r) {
    BasicReplicaSet s;
    s.Set(r);
    return s;
  }

  /// Out-of-range ids are a protocol bug (a vote from a replica that cannot
  /// exist), never silently folded onto another replica's bit.
  void Set(uint32_t r) {
    HS1_CHECK_LT(r, kCapacity) << "replica id beyond ReplicaSet capacity";
    words_[r / 64] |= 1ULL << (r % 64);
  }

  bool Test(uint32_t r) const {
    HS1_CHECK_LT(r, kCapacity) << "replica id beyond ReplicaSet capacity";
    return (words_[r / 64] >> (r % 64)) & 1ULL;
  }

  /// Number of replicas in the set — the quorum-threshold comparison.
  uint32_t Count() const {
    uint32_t total = 0;
    for (uint64_t w : words_) total += static_cast<uint32_t>(std::popcount(w));
    return total;
  }

  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  BasicReplicaSet& operator|=(const BasicReplicaSet& o) {
    for (uint32_t i = 0; i < kWords; ++i) words_[i] |= o.words_[i];
    return *this;
  }
  BasicReplicaSet& operator&=(const BasicReplicaSet& o) {
    for (uint32_t i = 0; i < kWords; ++i) words_[i] &= o.words_[i];
    return *this;
  }

  friend BasicReplicaSet operator|(BasicReplicaSet a, const BasicReplicaSet& b) {
    return a |= b;
  }
  friend BasicReplicaSet operator&(BasicReplicaSet a, const BasicReplicaSet& b) {
    return a &= b;
  }

  friend bool operator==(const BasicReplicaSet& a, const BasicReplicaSet& b) {
    for (uint32_t i = 0; i < kWords; ++i) {
      if (a.words_[i] != b.words_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const BasicReplicaSet& a, const BasicReplicaSet& b) {
    return !(a == b);
  }

 private:
  static constexpr uint32_t kWords = Capacity / 64;
  uint64_t words_[kWords] = {};
};

/// Committee-size ceiling every quorum structure shares. A configure-time
/// knob rather than a code edit: pass -DHS1_REPLICA_SET_CAPACITY=<mult of
/// 64> to raise it further.
#ifndef HS1_REPLICA_SET_CAPACITY
#define HS1_REPLICA_SET_CAPACITY 512
#endif

using ReplicaSet = BasicReplicaSet<HS1_REPLICA_SET_CAPACITY>;

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_REPLICA_SET_H_

// Simulated-time units. All simulator timestamps are microseconds of virtual
// time held in a signed 64-bit integer.

#ifndef HOTSTUFF1_COMMON_UNITS_H_
#define HOTSTUFF1_COMMON_UNITS_H_

#include <cstdint>

namespace hotstuff1 {

/// Virtual time in microseconds.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / kMillisecond; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }

constexpr SimTime Millis(double ms) { return static_cast<SimTime>(ms * kMillisecond); }
constexpr SimTime Micros(int64_t us) { return us; }
constexpr SimTime Seconds(double s) { return static_cast<SimTime>(s * kSecond); }

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_UNITS_H_

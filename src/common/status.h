// Status / Result error handling in the Arrow/RocksDB idiom: no exceptions,
// explicit propagation, cheap OK path.

#ifndef HOTSTUFF1_COMMON_STATUS_H_
#define HOTSTUFF1_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace hotstuff1 {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnauthenticated = 6,   // bad signature / malformed certificate
  kProtocolViolation = 7, // message violates protocol rules
  kInternal = 8,
  kUnavailable = 9,
};

/// \brief Operation outcome. OK is represented by a null state pointer, so
/// the success path costs one pointer compare.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status ProtocolViolation(std::string msg) {
    return Status(StatusCode::kProtocolViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnauthenticated() const { return code() == StatusCode::kUnauthenticated; }
  bool IsProtocolViolation() const {
    return code() == StatusCode::kProtocolViolation;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

const char* StatusCodeName(StatusCode code);

/// Propagate a non-OK Status to the caller.
#define HS1_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::hotstuff1::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_STATUS_H_

// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed so
// that simulations are a pure function of (config, seed).

#ifndef HOTSTUFF1_COMMON_RANDOM_H_
#define HOTSTUFF1_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace hotstuff1 {

/// \brief xoshiro256** 1.0 seeded via splitmix64. Deterministic, fast, and
/// identical across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the 64-bit seed into 256 bits of state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here; we
    // accept the negligible modulo bias for simulation purposes.
    return NextU64() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// \brief Zipfian generator over [0, n) with parameter theta, per the YCSB
/// reference implementation (Gray et al. "Quickly Generating Billion-Record
/// Synthetic Databases").
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    zetan_ = Zeta(n);
    zeta2_ = Zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Rng* rng) const {
    const double u = rng->NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  double Zeta(uint64_t n) const {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta_);
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_RANDOM_H_

// Move-only type-erased callable with small-buffer storage, sized for the
// simulator's event callbacks. std::function's inline buffer (16 bytes on
// libstdc++) is too small for the hot callbacks this codebase schedules —
// a network delivery captures {network*, from, to, shared_ptr<msg>} = 32
// bytes — so every such event paid a heap allocation. InlineFn stores
// captures up to 48 bytes in place (64 bytes total with the vtable pointer,
// one cache line), falling back to the heap only for oversized captures.
//
// Differences from std::function, both deliberate:
//   * move-only (events are scheduled once and run once; copyability would
//     force captured state to be copyable for no reason);
//   * no bad_function_call — invoking an empty InlineFn is UB, checked by
//     the caller owning the slot (the event arena never runs a freed slot).

#ifndef HOTSTUFF1_COMMON_INLINE_FN_H_
#define HOTSTUFF1_COMMON_INLINE_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hotstuff1 {

class InlineFn {
 public:
  /// Largest capture stored without a heap allocation.
  static constexpr size_t kInlineSize = 48;

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        Relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  ~InlineFn() { Reset(); }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    // Move-constructs *src into dst and destroys *src (relocation); both
    // point at kInlineSize-byte buffers. nullptr when a raw buffer copy is
    // equivalent (trivially copyable inline captures, and the heap pointer),
    // which keeps the common relocation an inlinable memcpy instead of an
    // indirect call.
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr when destruction is a no-op (trivially destructible inline
    // captures) — releasing a slot then costs one branch.
    void (*destroy)(void* obj) noexcept;
  };

  template <typename D>
  static void InlineInvoke(void* obj) {
    (*static_cast<D*>(obj))();
  }
  template <typename D>
  static void InlineRelocate(void* dst, void* src) noexcept {
    D* s = static_cast<D*>(src);
    ::new (dst) D(std::move(*s));
    s->~D();
  }
  template <typename D>
  static void InlineDestroy(void* obj) noexcept {
    static_cast<D*>(obj)->~D();
  }

  template <typename D>
  static void HeapInvoke(void* obj) {
    (**static_cast<D**>(obj))();
  }
  template <typename D>
  static void HeapDestroy(void* obj) noexcept {
    delete *static_cast<D**>(obj);
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      &InlineInvoke<D>,
      std::is_trivially_copyable_v<D> ? nullptr : &InlineRelocate<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &InlineDestroy<D>};
  template <typename D>
  static constexpr Ops kHeapOps{&HeapInvoke<D>, nullptr, &HeapDestroy<D>};

  void Relocate(void* dst, void* src) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(dst, src);
    } else {
      // Copying the full buffer (not sizeof(D), unknown here) is fine: the
      // bytes past the capture are indeterminate either way.
      std::memcpy(dst, src, kInlineSize);
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_INLINE_FN_H_

#include "common/status.h"

namespace hotstuff1 {

namespace {
const std::string kEmptyString;
}  // namespace

Status::Status(StatusCode code, std::string msg)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<State>(State{code, std::move(msg)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyString;
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnauthenticated: return "Unauthenticated";
    case StatusCode::kProtocolViolation: return "ProtocolViolation";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace hotstuff1

// Byte-sequence aliases and helpers shared across the codebase.

#ifndef HOTSTUFF1_COMMON_BYTES_H_
#define HOTSTUFF1_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace hotstuff1 {

using Bytes = std::vector<uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string BytesToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

inline void AppendBytes(Bytes* out, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

inline void AppendU64(Bytes* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline void AppendU32(Bytes* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/// Lowercase hex encoding of an arbitrary byte range.
inline std::string HexEncode(const uint8_t* data, size_t len) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

inline std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

}  // namespace hotstuff1

#endif  // HOTSTUFF1_COMMON_BYTES_H_

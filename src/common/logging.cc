#include "common/logging.h"

namespace hotstuff1 {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories from __FILE__ for terse output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

void LogMessage::Flush() {
  if (flushed_) return;
  flushed_ = true;
  stream_ << "\n";
  std::cerr << stream_.str();
  std::cerr.flush();
  (void)level_;
}

LogMessage::~LogMessage() { Flush(); }

FatalLogMessage::~FatalLogMessage() {
  // The derived destructor runs before the base one; flush explicitly so
  // the message reaches stderr before the abort.
  Flush();
  std::abort();
}

}  // namespace internal
}  // namespace hotstuff1

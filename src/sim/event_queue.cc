#include "sim/event_queue.h"

#include <algorithm>

namespace hotstuff1::sim {

void EventArena::Grow() {
  const uint32_t base = static_cast<uint32_t>(chunks_.size()) << kChunkShift;
  chunks_.push_back(std::make_unique<EventRecord[]>(kChunkSize));
  free_.reserve(free_.size() + kChunkSize);
  // LIFO free list; seed high-to-low so fresh slots hand out in ascending
  // index order (denser chunks, friendlier first-touch).
  for (uint32_t i = kChunkSize; i > 0; --i) free_.push_back(base + i - 1);
}

EventQueue::EventQueue() : near_(kBuckets), live_(kBuckets / 64, 0) {}

void EventQueue::PushFar(SimTime t, uint64_t seq, uint32_t idx) {
  far_.push_back(FarEntry{t, seq, idx});
  std::push_heap(far_.begin(), far_.end(), FarLater{});
}

void EventQueue::PopFarTop() {
  std::pop_heap(far_.begin(), far_.end(), FarLater{});
  far_.pop_back();
}

void EventQueue::MigrateFar() {
  while (!far_.empty() && InNear(far_.front().time)) {
    const FarEntry e = far_.front();
    std::pop_heap(far_.begin(), far_.end(), FarLater{});
    far_.pop_back();
    const size_t b = static_cast<size_t>(e.time) & (kBuckets - 1);
    near_[b].slots.push_back(Slot{e.seq, e.idx});
    live_[b >> 6] |= uint64_t{1} << (b & 63);
    ++near_count_;
  }
}

size_t EventQueue::FindLiveBucket(size_t start) const {
  size_t w = start >> 6;
  uint64_t word = live_[w] & (~uint64_t{0} << (start & 63));
  const size_t words = kBuckets / 64;
  // One extra lap step: iteration `words` revisits the starting word
  // unmasked, because a bucket at the tail of the window (time close to
  // near_start_ + kSpan) wraps into the starting word *below* the start bit
  // and the masked first pass cannot see it. Its high bits were zero on that
  // first pass, so ctz of the full word lands on the wrapped low region.
  for (size_t i = 0; i <= words; ++i) {
    if (word != 0) {
      return (w << 6) + static_cast<size_t>(__builtin_ctzll(word));
    }
    w = (w + 1) & (words - 1);
    word = live_[w];
  }
  HS1_CHECK(false) << "live bitmap empty with near_count_ > 0";
  return 0;
}

void EventQueue::ComputeMin() {
  bool have = false;
  if (near_count_ > 0) {
    const size_t start = static_cast<size_t>(near_start_) & (kBuckets - 1);
    const size_t b = FindLiveBucket(start);
    const SimTime t =
        near_start_ + static_cast<SimTime>((b - start) & (kBuckets - 1));
    const Slot& s = near_[b].slots[near_[b].head];
    cache_ = EventHandle{t, s.seq, s.idx};
    cache_is_far_ = false;
    have = true;
  }
  // A far entry can undercut the ring candidate: far times are fixed at
  // push, but near_start_ keeps advancing, so an old far entry may sit
  // inside today's window while fresher (later) events occupy the ring.
  if (!far_.empty()) {
    const FarEntry& f = far_.front();
    if (!have || f.time < cache_.time ||
        (f.time == cache_.time && f.seq < cache_.seq)) {
      cache_ = EventHandle{f.time, f.seq, f.idx};
      cache_is_far_ = true;
      have = true;
    }
  }
  HS1_CHECK(have);
  cache_valid_ = true;
}

}  // namespace hotstuff1::sim

// Deployment topologies matching the paper's evaluation setups (§7).

#ifndef HOTSTUFF1_SIM_TOPOLOGY_H_
#define HOTSTUFF1_SIM_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/network.h"

namespace hotstuff1::sim {

/// Region ids for the paper's five-region geo deployment.
enum Region : uint32_t {
  kNorthVirginia = 0,
  kHongKong = 1,
  kLondon = 2,
  kSaoPaulo = 3,
  kZurich = 4,
};

/// \brief Node placement plus inter-region latency map.
struct Topology {
  uint32_t n = 0;
  /// region_of[node] -> region index (into region_latency).
  std::vector<uint32_t> region_of;
  /// One-way latency between regions, microseconds. Diagonal = intra-region.
  std::vector<std::vector<SimTime>> region_latency;

  SimTime OneWay(NodeId a, NodeId b) const {
    return region_latency[region_of[a]][region_of[b]];
  }

  /// Installs latencies into the network (node count must match).
  void Apply(Network* net) const;

  /// All nodes in one datacenter (Fig. 8 a-d, Fig. 10). `one_way` defaults to
  /// the LAN latency used throughout.
  static Topology Lan(uint32_t n, SimTime one_way = Millis(0.4));

  /// Nodes spread uniformly (round-robin) over the first `num_regions` of the
  /// paper's five regions: North Virginia, Hong Kong, London, Sao Paulo,
  /// Zurich (Fig. 8 e-h).
  static Topology Geo(uint32_t n, uint32_t num_regions);

  /// Two-region split: `k_london` nodes in London, the rest in North
  /// Virginia (Fig. 9 e,j). Nodes [0, n-k_london) are NV.
  static Topology TwoRegion(uint32_t n, uint32_t k_london);

  /// One-way latency between two of the paper's five regions.
  static SimTime RegionOneWay(uint32_t a, uint32_t b);

  static std::string RegionName(uint32_t region);
};

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_TOPOLOGY_H_

#include "sim/topology.h"

#include "common/logging.h"

namespace hotstuff1::sim {

namespace {

constexpr SimTime kIntraRegion = Millis(0.4);

// One-way latencies (ms) between the paper's five regions, derived from
// public inter-AWS-region RTT measurements (RTT/2, rounded).
constexpr double kRegionMs[5][5] = {
    // NV     HK     LDN    SP     ZRH
    {0.4, 100.0, 38.0, 58.0, 45.0},   // North Virginia
    {100.0, 0.4, 90.0, 150.0, 92.0},  // Hong Kong
    {38.0, 90.0, 0.4, 95.0, 8.0},     // London
    {58.0, 150.0, 95.0, 0.4, 102.0},  // Sao Paulo
    {45.0, 92.0, 8.0, 102.0, 0.4},    // Zurich
};

}  // namespace

void Topology::Apply(Network* net) const {
  HS1_CHECK_EQ(net->num_nodes(), n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      net->SetLatency(a, b, OneWay(a, b));
    }
  }
}

Topology Topology::Lan(uint32_t n, SimTime one_way) {
  Topology t;
  t.n = n;
  t.region_of.assign(n, 0);
  t.region_latency = {{one_way}};
  return t;
}

Topology Topology::Geo(uint32_t n, uint32_t num_regions) {
  HS1_CHECK_GE(num_regions, 1u);
  HS1_CHECK_LE(num_regions, 5u);
  Topology t;
  t.n = n;
  t.region_of.resize(n);
  for (uint32_t i = 0; i < n; ++i) t.region_of[i] = i % num_regions;
  t.region_latency.assign(num_regions, std::vector<SimTime>(num_regions));
  for (uint32_t a = 0; a < num_regions; ++a) {
    for (uint32_t b = 0; b < num_regions; ++b) {
      t.region_latency[a][b] = (a == b) ? kIntraRegion : RegionOneWay(a, b);
    }
  }
  return t;
}

Topology Topology::TwoRegion(uint32_t n, uint32_t k_london) {
  HS1_CHECK_LE(k_london, n);
  Topology t;
  t.n = n;
  t.region_of.resize(n);
  // Nodes [0, n-k) in North Virginia (region index 0), [n-k, n) in London
  // (region index 1).
  for (uint32_t i = 0; i < n; ++i) t.region_of[i] = (i < n - k_london) ? 0 : 1;
  const SimTime x = RegionOneWay(kNorthVirginia, kLondon);
  t.region_latency = {{kIntraRegion, x}, {x, kIntraRegion}};
  return t;
}

SimTime Topology::RegionOneWay(uint32_t a, uint32_t b) {
  HS1_CHECK_LT(a, 5u);
  HS1_CHECK_LT(b, 5u);
  return Millis(kRegionMs[a][b]);
}

std::string Topology::RegionName(uint32_t region) {
  switch (region) {
    case kNorthVirginia: return "North Virginia";
    case kHongKong: return "Hong Kong";
    case kLondon: return "London";
    case kSaoPaulo: return "Sao Paulo";
    case kZurich: return "Zurich";
  }
  return "unknown";
}

}  // namespace hotstuff1::sim

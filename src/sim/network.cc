#include "sim/network.h"

#include <algorithm>

#include "common/logging.h"

namespace hotstuff1::sim {

Network::Network(Simulator* sim, uint32_t n, NetworkConfig config)
    : sim_(sim),
      n_(n),
      config_(config),
      handlers_(n),
      latency_(n, std::vector<SimTime>(n, config.default_latency)),
      node_extra_delay_(n, 0),
      egress_busy_until_(n, 0),
      cpu_busy_until_(n, 0),
      crashed_(n, false),
      ingress_(n),
      drain_scheduled_(n, 0),
      messages_sent_by_(n, 0),
      bytes_sent_by_(n, 0),
      messages_dropped_by_(n, 0) {
  rngs_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    // Decorrelated per-sender streams derived from the network seed.
    rngs_.emplace_back(config.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    latency_[i][i] = config.loopback_latency;
  }
}

void Network::SetHandler(NodeId id, Handler handler) {
  HS1_CHECK_LT(id, n_);
  handlers_[id] = std::move(handler);
}

void Network::SetLatency(NodeId from, NodeId to, SimTime one_way) {
  HS1_CHECK_LT(from, n_);
  HS1_CHECK_LT(to, n_);
  latency_[from][to] = one_way;
}

void Network::SetSymmetricLatency(NodeId a, NodeId b, SimTime one_way) {
  HS1_CHECK_LT(a, n_);
  HS1_CHECK_LT(b, n_);
  latency_[a][b] = one_way;
  latency_[b][a] = one_way;
}

void Network::SetAllLatencies(SimTime one_way) {
  for (uint32_t i = 0; i < n_; ++i) {
    for (uint32_t j = 0; j < n_; ++j) {
      latency_[i][j] = (i == j) ? config_.loopback_latency : one_way;
    }
  }
}

SimTime Network::SerializationFloor() const {
  return static_cast<SimTime>(static_cast<double>(kMinWireBytes) /
                              config_.bandwidth_bytes_per_us);
}

SimTime Network::MinDeliveryLatency() const {
  if (n_ < 2) return kNoCrossTraffic;
  SimTime min_latency = kNoCrossTraffic;
  for (NodeId from = 0; from < n_; ++from) {
    for (NodeId to = 0; to < n_; ++to) {
      if (from == to) continue;  // self-delivery stays on the sender's shard
      min_latency = std::min(min_latency, latency_[from][to]);
    }
  }
  return min_latency + SerializationFloor();
}

void Network::ImpairNode(NodeId id, SimTime extra_delay) {
  HS1_CHECK_LT(id, n_);
  node_extra_delay_[id] = extra_delay;
}

void Network::ClearImpairments() {
  std::fill(node_extra_delay_.begin(), node_extra_delay_.end(), 0);
}

int Network::AddRule(FaultRule rule) {
  const int id = next_rule_id_++;
  rules_.emplace_back(id, std::move(rule));
  return id;
}

void Network::RemoveRule(int rule_id) {
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const auto& p) { return p.first == rule_id; }),
               rules_.end());
}

void Network::Crash(NodeId id) { crashed_[id] = true; }
void Network::Recover(NodeId id) { crashed_[id] = false; }

void Network::ConsumeCpu(NodeId id, SimTime cost) {
  const SimTime start = std::max(sim_->Now(), cpu_busy_until_[id]);
  cpu_busy_until_[id] = start + cost;
}

void Network::Send(NodeId from, NodeId to, NetMessagePtr msg) {
  HS1_CHECK_LT(from, n_);
  HS1_CHECK_LT(to, n_);
  if (crashed_[from]) return;

  // An impaired endpoint delays the whole message; two impaired endpoints
  // do not stack (the injected delay models one slow link segment).
  // Self-delivery never crosses a link: it is exempt from impairments and
  // fault rules exactly as it is exempt from jitter and egress
  // serialization below. In particular a loopback send must never consume a
  // drop/jitter draw from the sender's RNG stream — that would let
  // self-traffic (a local scheduling artifact) perturb the fault pattern
  // observed by every later cross-node message from the same sender.
  SimTime extra = 0;
  double jitter_frac = config_.jitter_frac;
  if (to != from) {
    extra = std::max(node_extra_delay_[from], node_extra_delay_[to]);
    for (const auto& [id, rule] : rules_) {
      (void)id;
      if (rule.from_match[from] && rule.to_match[to]) {
        if (rule.drop_prob > 0 && rngs_[from].NextBool(rule.drop_prob)) {
          ++messages_dropped_by_[from];
          return;
        }
        extra += rule.extra_delay;
        jitter_frac += rule.extra_jitter_frac;
      }
    }
  }

  const size_t size = msg->WireSize();
  SimTime depart = sim_->Now();
  if (to != from) {
    // Egress serialization: a broadcast's n-1 copies leave one after another.
    const SimTime tx = static_cast<SimTime>(
        static_cast<double>(size) / config_.bandwidth_bytes_per_us);
    const SimTime start = std::max(sim_->Now(), egress_busy_until_[from]);
    egress_busy_until_[from] = start + tx;
    depart = start + tx;
  }

  SimTime lat = latency_[from][to];
  if (jitter_frac > 0 && to != from) {
    lat += static_cast<SimTime>(static_cast<double>(lat) * jitter_frac *
                                rngs_[from].NextDouble());
  }

  ++messages_sent_by_[from];
  bytes_sent_by_[from] += size;
  DeliverLater(from, to, std::move(msg), depart + lat + extra);
}

void Network::Broadcast(NodeId from, const NetMessagePtr& msg, bool include_self) {
  for (NodeId to = 0; to < n_; ++to) {
    if (to == from && !include_self) continue;
    Send(from, to, msg);
  }
}

void Network::DeliverLater(NodeId from, NodeId to, NetMessagePtr msg, SimTime arrival) {
  // Delivery runs on the destination's shard: the handler mutates only
  // receiver-owned state, so same-tick deliveries to distinct nodes may
  // execute concurrently under a parallel executor.
  sim_->AtShard(arrival, to, [this, from, to, msg = std::move(msg)]() {
    TryDeliver(from, to, msg);
  });
}

void Network::TryDeliver(NodeId from, NodeId to, const NetMessagePtr& msg) {
  if (crashed_[to]) return;
  // If the destination CPU is busy (processing an earlier message), the
  // message waits in the node's ingress queue until the CPU frees up.
  if (cpu_busy_until_[to] > sim_->Now() || !ingress_[to].empty()) {
    ingress_[to].emplace_back(from, msg);
    ScheduleDrain(to);
    return;
  }
  if (handlers_[to]) handlers_[to](from, msg);
}

void Network::ScheduleDrain(NodeId to) {
  if (drain_scheduled_[to]) return;
  drain_scheduled_[to] = true;
  const SimTime when = std::max(sim_->Now(), cpu_busy_until_[to]);
  sim_->AtShard(when, to, [this, to]() { Drain(to); });
}

void Network::Drain(NodeId to) {
  drain_scheduled_[to] = false;
  if (crashed_[to]) {
    ingress_[to].clear();
    return;
  }
  // Process queued messages until the handler makes the CPU busy again.
  while (!ingress_[to].empty() && cpu_busy_until_[to] <= sim_->Now()) {
    auto [from, msg] = std::move(ingress_[to].front());
    ingress_[to].pop_front();
    if (handlers_[to]) handlers_[to](from, msg);
  }
  if (!ingress_[to].empty()) ScheduleDrain(to);
}

}  // namespace hotstuff1::sim

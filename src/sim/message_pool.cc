#include "sim/message_pool.h"

namespace hotstuff1::sim {

struct MessagePool::Cache {
  // free_[c] holds recycled blocks of ClassBytes(c); LIFO for cache warmth.
  void* free_[kClasses][kCacheCap];
  size_t depth_[kClasses] = {};

  ~Cache() {
    for (size_t c = 0; c < kClasses; ++c) {
      for (size_t i = 0; i < depth_[c]; ++i) ::operator delete(free_[c][i]);
    }
  }
};

MessagePool::Cache& MessagePool::Tls() {
  thread_local Cache cache;
  return cache;
}

void* MessagePool::Allocate(size_t n) {
  if (n == 0) n = 1;
  if (n > kMaxPooled) return ::operator new(n);
  const size_t c = ClassOf(n);
  Cache& cache = Tls();
  if (cache.depth_[c] > 0) return cache.free_[c][--cache.depth_[c]];
  // Miss: carve a full class-sized block so any same-class free can reuse it.
  return ::operator new(ClassBytes(c));
}

void MessagePool::Deallocate(void* p, size_t n) noexcept {
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ::operator delete(p);
    return;
  }
  const size_t c = ClassOf(n);
  Cache& cache = Tls();
  if (cache.depth_[c] < kCacheCap) {
    cache.free_[c][cache.depth_[c]++] = p;
    return;
  }
  ::operator delete(p);
}

size_t MessagePool::TlsCachedBlocks() {
  Cache& cache = Tls();
  size_t total = 0;
  for (size_t c = 0; c < kClasses; ++c) total += cache.depth_[c];
  return total;
}

}  // namespace hotstuff1::sim

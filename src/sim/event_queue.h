// The simulator's scheduling core: a chunked event arena (flat records, free
// list, stable addresses) and a calendar queue over (time, seq) keys.
//
// Why a calendar queue: discrete-event consensus workloads cluster event
// timestamps tightly around "now" (deliveries, drains, zero-delay
// follow-ons, short timers). A binary heap pays O(log n) comparator-driven
// moves of full Event structs per operation; the calendar queue appends into
// a per-microsecond bucket ring in O(1) and pops by scanning a bitmap of
// non-empty buckets. Events beyond the ring's horizon (long view timers,
// geo-latency deliveries) overflow into a small min-heap of flat 24-byte
// handles and migrate into the ring in bulk when the window advances.
//
// Ordering contract (the determinism-critical part): Pop returns live
// handles in strictly ascending (time, seq) — exactly std::priority_queue
// with the old EventLater comparator. This relies on one queue invariant:
//
//   no-past-push: every Push happens at time >= the maximum time ever
//   popped (near_start_).
//
// The simulator guarantees it on every path: serial/tick/window execution
// clamp scheduling to the executing event's own time, the cap-fallback
// repush re-inserts at exactly the popped tick, and window commits only push
// at or beyond the executed horizon. Push checks it.
//
// In-bucket order relies on a second property: appends into one bucket
// carry ascending seq. Fresh pushes have globally increasing seqs; repushes
// refill a just-drained bucket in pop (= seq) order; far->near migration
// happens only when the ring is empty and drains the heap in (time, seq)
// order. Peek never advances the window (a peeked-but-unpopped event must
// not constrain later pushes, see Simulator::RunUntil).

#ifndef HOTSTUFF1_SIM_EVENT_QUEUE_H_
#define HOTSTUFF1_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_fn.h"
#include "common/logging.h"
#include "common/units.h"

namespace hotstuff1::sim {

/// Shard affinity of an event. Components partition their per-node state by
/// shard: an event tagged with shard S may mutate only state owned by S (plus
/// gated shared domains — see Simulator::SyncShared). The parallel executor
/// runs one shard's events strictly in sequence order and different shards
/// concurrently; in single-threaded runs the tag is ignored.
using ShardId = uint32_t;

/// Events with no declared affinity. Under a parallel executor these act as
/// full barriers (everything before completes first, nothing after starts
/// until they finish), so untagged events are always safe — just slow.
inline constexpr ShardId kShardSerial = 0xffffffffu;

/// One pending event's payload. The ordering key (time, seq) lives in the
/// queue's handles, so queue operations never touch this (cache-line-sized)
/// record until the event is actually popped or executed.
struct EventRecord {
  ShardId shard = kShardSerial;
  InlineFn cb;
};

/// \brief Chunked slab of EventRecords with a free list.
///
/// Alloc/Free are O(1) and allocate from the heap only when every previously
/// created slot is live (then one fixed-size chunk is added) — the steady
/// state of an event loop recycles slots with zero allocator traffic.
/// Records have stable addresses: callbacks run in place while nested
/// scheduling grows the arena.
class EventArena {
 public:
  static constexpr uint32_t kChunkShift = 9;  // 512 records per chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  uint32_t Alloc(ShardId shard, InlineFn&& cb) {
    if (free_.empty()) Grow();
    const uint32_t idx = free_.back();
    free_.pop_back();
    EventRecord& rec = Get(idx);
    rec.shard = shard;
    rec.cb = std::move(cb);
    return idx;
  }

  EventRecord& Get(uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  void Free(uint32_t idx) {
    Get(idx).cb = nullptr;
    free_.push_back(idx);
  }

 private:
  void Grow();

  std::vector<std::unique_ptr<EventRecord[]>> chunks_;
  std::vector<uint32_t> free_;
};

/// An event's position in the queue: its ordering key plus its arena slot.
struct EventHandle {
  SimTime time = 0;
  uint64_t seq = 0;
  uint32_t idx = 0;
};

/// \brief Calendar queue keyed on (time, seq). See the file comment for the
/// structure and the invariants; owned by exactly one Simulator and driven
/// from one thread at a time (the executor pops rounds before going wide).
class EventQueue {
 public:
  static constexpr size_t kBucketsShift = 14;  // 16384 one-us buckets
  static constexpr size_t kBuckets = size_t{1} << kBucketsShift;
  /// Virtual-time width of the near ring; pushes at or beyond
  /// near_start_ + kSpan overflow into the far heap.
  static constexpr SimTime kSpan = static_cast<SimTime>(kBuckets);

  EventQueue();

  /// Inserts (t, seq) -> idx. Requires t >= every previously popped time
  /// (no-past-push, checked) and seq >= every seq previously pushed at t.
  /// Inline: the common case is one bucket append + a bitmap OR.
  void Push(SimTime t, uint64_t seq, uint32_t idx) {
    HS1_CHECK_GE(t, near_start_);
    ++size_;
    if (cache_valid_ &&
        (t < cache_.time || (t == cache_.time && seq < cache_.seq))) {
      cache_ = EventHandle{t, seq, idx};
      cache_is_far_ = !InNear(t);
    }
    if (InNear(t)) {
      const size_t b = static_cast<size_t>(t) & (kBuckets - 1);
      near_[b].slots.push_back(Slot{seq, idx});
      live_[b >> 6] |= uint64_t{1} << (b & 63);
      ++near_count_;
    } else {
      PushFar(t, seq, idx);
    }
  }

  /// Writes the smallest live key into *out without removing it; false when
  /// empty. Never advances the window.
  bool Peek(EventHandle* out) {
    if (size_ == 0) return false;
    if (!cache_valid_) ComputeMin();
    *out = cache_;
    return true;
  }

  /// Removes and returns the smallest live key. Precondition: !empty().
  EventHandle Pop() {
    HS1_CHECK(size_ > 0);
    if (!cache_valid_) ComputeMin();
    const EventHandle h = cache_;
    cache_valid_ = false;
    if (cache_is_far_) {
      PopFarTop();
    } else {
      const size_t b = static_cast<size_t>(h.time) & (kBuckets - 1);
      Bucket& bk = near_[b];
      if (++bk.head == bk.slots.size()) {
        bk.slots.clear();  // keeps capacity for the next lap of the ring
        bk.head = 0;
        live_[b >> 6] &= ~(uint64_t{1} << (b & 63));
      } else {
        // The bucket still has slots. While a time is in the window its
        // events live only in this bucket, so the next slot (same time, next
        // seq) is the new minimum unless the far top undercuts it — refill
        // the cache and skip the next ComputeMin. Ticks with many same-time
        // events (broadcast arrivals, quorum formation) hit this every pop.
        const Slot& s = bk.slots[bk.head];
        if (far_.empty() || far_.front().time > h.time ||
            (far_.front().time == h.time && far_.front().seq > s.seq)) {
          cache_ = EventHandle{h.time, s.seq, s.idx};
          cache_is_far_ = false;
          cache_valid_ = true;
        }
      }
      --near_count_;
    }
    --size_;
    // The popped key was the global minimum, so this never moves a live key
    // out of the window (no-past-push keeps every live time >= near_start_).
    near_start_ = h.time;
    if (near_count_ == 0 && !far_.empty()) MigrateFar();
    return h;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

 private:
  struct Slot {
    uint64_t seq;
    uint32_t idx;
  };
  struct Bucket {
    std::vector<Slot> slots;
    uint32_t head = 0;  // slots[head..) are live, ascending seq
  };
  struct FarEntry {
    SimTime time;
    uint64_t seq;
    uint32_t idx;
  };
  struct FarLater {
    bool operator()(const FarEntry& a, const FarEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool InNear(SimTime t) const { return t - near_start_ < kSpan; }

  /// Heap-inserts an entry beyond the ring's horizon (cold path).
  void PushFar(SimTime t, uint64_t seq, uint32_t idx);
  /// Heap-removes the far minimum (cold path).
  void PopFarTop();
  /// Ring is empty: moves every now-in-window far entry into it (cold path;
  /// heap drain order keeps per-bucket appends seq-sorted).
  void MigrateFar();

  /// Recomputes cache_ from the ring + far heap. Precondition: size_ > 0.
  void ComputeMin();

  /// First non-empty bucket in ring order starting at `start`, via the
  /// occupancy bitmap. Precondition: near_count_ > 0.
  size_t FindLiveBucket(size_t start) const;

  std::vector<Bucket> near_;             // kBuckets
  std::vector<uint64_t> live_;           // occupancy bitmap, kBuckets bits
  SimTime near_start_ = 0;               // lower bound on every live key
  size_t near_count_ = 0;
  std::vector<FarEntry> far_;            // min-heap under FarLater
  size_t size_ = 0;

  // Cached minimum: filled by Peek/ComputeMin, kept exact by Push (a push
  // below the cached key replaces it), consumed by Pop.
  EventHandle cache_{};
  bool cache_valid_ = false;
  bool cache_is_far_ = false;
};

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_EVENT_QUEUE_H_

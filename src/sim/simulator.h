// Deterministic discrete-event simulator. All protocol activity is ordered
// by (virtual time, insertion sequence), so a run is a pure function of
// (configuration, seed).

#ifndef HOTSTUFF1_SIM_SIMULATOR_H_
#define HOTSTUFF1_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace hotstuff1::sim {

/// \brief Virtual-clock event loop.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (clamped to now).
  void At(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` from now.
  void After(SimTime delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  /// Executes the next event. Returns false if the queue is empty.
  bool Step();

  /// Runs all events with time <= t, then advances the clock to t.
  void RunUntil(SimTime t);

  /// Runs until no events remain (or the event cap is hit).
  void Run();

  bool Empty() const { return queue_.empty(); }
  size_t PendingEvents() const { return queue_.size(); }
  uint64_t EventsProcessed() const { return events_processed_; }

  /// Safety valve against runaway event storms in buggy configurations.
  void SetEventCap(uint64_t cap) { event_cap_ = cap; }

  /// True once the cap stopped execution with events still pending — the run
  /// was truncated, not drained.
  bool cap_hit() const { return cap_hit_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t event_cap_ = UINT64_MAX;
  bool cap_hit_ = false;
};

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_SIMULATOR_H_

// Deterministic discrete-event simulator. All protocol activity is ordered
// by (virtual time, insertion sequence), so a run is a pure function of
// (configuration, seed) — at ANY worker count.
//
// Single-threaded by default; SetJobs(N>1) attaches a ParallelExecutor that
// processes same-timestamp events concurrently while preserving exactly the
// sequential semantics (see parallel_executor.h for the determinism
// contract and docs/ARCHITECTURE.md for the sharding model).
// SetLookahead(W>1) additionally lets the executor run events whose
// timestamps fall within a conservative safe horizon of W microseconds
// concurrently — callers must guarantee that no event ever schedules onto a
// *different* shard less than W ahead of its own timestamp (the experiment
// layer derives W from the network's minimum cross-node delivery latency).
//
// Hot-path storage: pending events live as flat records in an EventArena
// and are ordered by a calendar queue (event_queue.h); callbacks are
// InlineFn (48-byte small-buffer storage). Scheduling and executing an
// event allocates nothing once the arena and queue have warmed up —
// tests/event_alloc_test.cc pins that property.

#ifndef HOTSTUFF1_SIM_SIMULATOR_H_
#define HOTSTUFF1_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/event_queue.h"

namespace hotstuff1::sim {

class ParallelExecutor;

/// \brief Virtual-clock event loop.
///
/// Ownership/threading: one Simulator per Experiment; not copyable. All
/// public methods are called from the thread driving the simulation (or, for
/// At/AtShard/SyncShared, from executor workers while a parallel tick is in
/// flight — the executor makes those paths safe). Distinct Simulator
/// instances are fully independent: the sweep runner exploits this to run
/// experiments embarrassingly parallel across threads.
///
/// Determinism invariant: given the same schedule of At/AtShard calls, event
/// execution order — and therefore every observable result — is identical
/// whether events run on the serial loop or on a parallel executor with any
/// worker count. Callbacks must never read wall-clock time, thread ids, or
/// any other source that varies across runs.
class Simulator {
 public:
  /// Scheduled work. Move-only; captures up to 48 bytes stay heap-free
  /// (std::function's 16-byte buffer made every network delivery allocate).
  using Callback = InlineFn;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Virtual time of the event the calling thread is executing; outside any
  /// event, the global clock. The distinction matters only under a lookahead
  /// window, where events at different timestamps are in flight at once —
  /// callbacks always see their own timestamp, exactly like the serial loop.
  /// Serial runs (no executor) keep the plain-load fast path.
  SimTime Now() const { return exec_ == nullptr ? now_ : NowInExecutor(); }

  /// Schedules `cb` at absolute virtual time `t` (clamped to now). The event
  /// inherits the shard of the event currently executing (a replica's
  /// self-scheduled continuation stays on the replica's shard); scheduled
  /// from outside any event it is kShardSerial. Without an executor no event
  /// context exists, so the inherited shard is always kShardSerial — the
  /// serial fast path below skips the executor's thread-local lookup.
  void At(SimTime t, Callback cb) {
    if (exec_ == nullptr) {
      if (t < now_) t = now_;
      PushEvent(t, kShardSerial, std::move(cb));
      return;
    }
    AtExec(t, std::move(cb));
  }

  /// Schedules `cb` at `t` with an explicit shard affinity. Use this when the
  /// event belongs to a different shard than the caller (e.g. the network
  /// tags a delivery with the destination node).
  void AtShard(SimTime t, ShardId shard, Callback cb) {
    if (exec_ == nullptr) {
      if (t < now_) t = now_;
      PushEvent(t, shard, std::move(cb));
      return;
    }
    AtShardExec(t, shard, std::move(cb));
  }

  /// Schedules `cb` after `delay` from now (shard-inheriting, like At).
  void After(SimTime delay, Callback cb) { At(Now() + delay, std::move(cb)); }

  /// Schedules `cb` after `delay` on an explicit shard.
  void AfterShard(SimTime delay, ShardId shard, Callback cb) {
    AtShard(Now() + delay, shard, std::move(cb));
  }

  /// Attaches (jobs > 1) or detaches (jobs <= 1) the parallel executor.
  /// Results are byte-identical at any value. Call before Run/RunUntil, not
  /// from inside a callback.
  void SetJobs(int jobs);
  int jobs() const;

  /// Sets the conservative lookahead window, in microseconds of virtual
  /// time. 0 or 1 (the default) keeps the executor tick-parallel; W > 1 lets
  /// it run events within [t, t+W) concurrently. Contract: after this call,
  /// no event may schedule onto a different shard less than W after its own
  /// timestamp (checked at runtime). Byte-identical output at any value.
  /// Ignored without an executor; also ignored while an event cap is set,
  /// because exact serial-equivalent cap truncation cannot be guaranteed
  /// once events from several timestamps are in flight at once.
  void SetLookahead(SimTime window);
  SimTime lookahead() const { return lookahead_; }

  /// Serial-domain gate: when called from a callback during a parallel tick,
  /// blocks until every event ordered before the caller has completed, so
  /// accesses to shared (non-sharded) state happen in exact sequence order.
  /// No-op on the single-threaded path. Components guarding shared mutable
  /// state (e.g. the client pool) call this at every entry point.
  void SyncShared();

  /// Executes the next event. Returns false if the queue is empty. Always
  /// single-threaded, even when an executor is attached.
  bool Step();

  /// Runs all events with time <= t, then advances the clock to t.
  void RunUntil(SimTime t);

  /// Runs until no events remain (or the event cap is hit).
  void Run();

  bool Empty() const { return queue_.empty(); }
  size_t PendingEvents() const { return queue_.size(); }
  uint64_t EventsProcessed() const { return events_processed_; }

  /// Safety valve against runaway event storms in buggy configurations.
  void SetEventCap(uint64_t cap) { event_cap_ = cap; }

  /// True once the cap stopped execution with events still pending — the run
  /// was truncated, not drained.
  bool cap_hit() const { return cap_hit_; }

 private:
  friend class ParallelExecutor;

  /// A popped event, fully owned (executor hand-off shape; the serial loop
  /// never materializes one — it runs callbacks in the arena slot).
  struct Event {
    SimTime time;
    uint64_t seq;
    ShardId shard;
    Callback cb;
  };

  /// Slow path of Now(): consults the executor's thread-local event context.
  SimTime NowInExecutor() const;

  /// Executor-mode scheduling: shard inheritance, per-event time clamp, and
  /// staging during parallel ticks/windows.
  void AtExec(SimTime t, Callback cb);
  void AtShardExec(SimTime t, ShardId shard, Callback cb);

  /// Pushes with a fresh sequence number (no clamp, no staging). Takes the
  /// callback by rvalue reference so the whole scheduling path performs a
  /// single relocation: call site -> arena record.
  void PushEvent(SimTime t, ShardId shard, Callback&& cb) {
    queue_.Push(t, next_seq_++, arena_.Alloc(shard, std::move(cb)));
  }
  /// Re-inserts an event that was popped but not executed (cap fallback).
  /// Keeps the original sequence number.
  void RepushEvent(Event ev) {
    queue_.Push(ev.time, ev.seq, arena_.Alloc(ev.shard, std::move(ev.cb)));
  }
  /// Pops the front event out of the queue + arena (executor paths).
  Event PopEvent() {
    const EventHandle h = queue_.Pop();
    EventRecord& rec = arena_.Get(h.idx);
    Event ev{h.time, h.seq, rec.shard, std::move(rec.cb)};
    arena_.Free(h.idx);
    return ev;
  }
  /// Key + shard of the front event without popping; false when empty.
  bool PeekEvent(EventHandle* h, ShardId* shard) {
    if (!queue_.Peek(h)) return false;
    *shard = arena_.Get(h->idx).shard;
    return true;
  }

  EventArena arena_;
  EventQueue queue_;
  SimTime now_ = 0;
  SimTime lookahead_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t event_cap_ = UINT64_MAX;
  bool cap_hit_ = false;
  std::unique_ptr<ParallelExecutor> exec_;
};

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_SIMULATOR_H_

// Deterministic intra-experiment parallelism: a worker pool that processes
// all events sharing one virtual timestamp (a "tick") concurrently while
// reproducing the single-threaded execution byte for byte.
//
// Model
//   * Every event carries a ShardId (simulator.h). Replicas are the natural
//     shards: the network tags each delivery/drain with the destination
//     node, replica continuations inherit their replica's shard, and the
//     client pool runs on its own shard.
//   * Within a tick, events of one shard execute strictly in sequence order
//     (a per-shard chain); events of different shards run concurrently.
//   * kShardSerial events are barriers: everything ordered before them
//     completes first, nothing ordered after starts until they finish.
//   * Callbacks that must touch shared (cross-shard) state call
//     Simulator::SyncShared(), which blocks until every earlier event of the
//     tick has completed — so shared-domain accesses happen in exact
//     sequence order, identical to the serial path.
//   * Events scheduled during a tick are staged per parent event and
//     committed after the round in deterministic order: (parent dispatch
//     order, call order within the parent). That is exactly the order the
//     serial loop would have assigned sequence numbers in, so the queue
//     contents — and all downstream behavior — match the serial path.
//
// Determinism argument (why jobs=1 and jobs=N produce identical bytes):
//   1. Same-shard events: chained, so their relative order is seq order.
//   2. Cross-shard events only interact through (a) per-node state owned by
//      exactly one shard, (b) SyncShared-gated domains (seq order enforced),
//      (c) staged scheduling (seq-order commit), or (d) immutable state.
//   3. Integer counters that multiple shards logically share are kept
//      per-shard and summed on read (order-independent).
//   Anything outside (1)-(3) must be scheduled as a kShardSerial barrier.
//
// The speedup comes from real ticks being wide: epoch-synchronization timer
// storms, broadcast deliveries (small messages serialize onto the same
// arrival tick), and quorum formation — all n replicas verifying signatures
// or executing a freshly committed batch at the same virtual instant.
//
// Lookahead windows (Simulator::SetLookahead(W), W > 1)
//   When the caller guarantees that no event ever schedules onto a
//   *different* shard less than W microseconds after its own timestamp (the
//   classic conservative-PDES safe horizon; the experiment layer derives W
//   from the network's minimum cross-node delivery latency), the executor
//   widens a round from one tick to every queued event in [t, t+W):
//   * Events are totally ordered by a serial-order key that reproduces the
//     (time, seq) order the serial loop would execute: popped events keep
//     their queue key; events a shard schedules for itself inside the window
//     ("inline" events — drain callbacks, short timers) sort after every
//     event that already existed at their timestamp, in (parent order, call
//     order) — exactly where the serial loop's fresh sequence numbers would
//     have put them.
//   * One shard's events run strictly in key order; different shards run
//     concurrently; SyncShared blocks until the caller is the globally
//     smallest incomplete event, so gated domains still see exact serial
//     order even across timestamps.
//   * The window stops before the first kShardSerial barrier, and all
//     cross-window scheduling is committed *after* the window by replaying
//     the executed events in key order, assigning global sequence numbers in
//     exactly the order the serial loop would have (inline events burn the
//     sequence number they would have consumed).
//   Windows are disabled while an event cap is set: serial cap truncation
//   stops mid-tick at an exact event, which cannot be reproduced once later
//   timestamps have already executed — capped runs stay tick-parallel.

#ifndef HOTSTUFF1_SIM_PARALLEL_EXECUTOR_H_
#define HOTSTUFF1_SIM_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace hotstuff1::sim {

/// \brief Tick-parallel executor attached to one Simulator.
///
/// Ownership: created and owned by Simulator::SetJobs; joins its workers on
/// destruction. All public methods except the static context helpers are
/// called by the owning simulator; Stage/SyncShared additionally run on
/// worker threads while a tick is in flight.
class ParallelExecutor {
 public:
  /// Spawns `jobs - 1` workers; the driving thread participates too, so the
  /// total concurrency is `jobs` (>= 2).
  ParallelExecutor(Simulator* sim, int jobs);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int jobs() const { return static_cast<int>(threads_.size()) + 1; }

  /// Processes ticks while the next event's time is <= limit, mirroring the
  /// serial RunUntil/Run loop (including event-cap truncation semantics).
  /// Does not advance the clock past the last executed event.
  void Drain(SimTime limit);

  /// Blocks until all events dispatched before the calling event in the
  /// current tick have completed. No-op when the calling thread is not
  /// executing a tick event.
  void SyncShared();

  /// If the calling thread is executing a tick event of `sim`'s executor,
  /// stages the scheduling request for deterministic commit and returns
  /// true; otherwise returns false and the caller pushes directly.
  static bool StageIfInTick(Simulator* sim, SimTime t, ShardId shard,
                            Simulator::Callback* cb);

  /// Shard of the event the calling thread is executing, or kShardSerial.
  static ShardId InheritedShard();

  /// Virtual time of the event the calling thread is executing for `sim`,
  /// or `fallback` when the thread is not inside one of its events.
  static SimTime EffectiveNow(const Simulator* sim, SimTime fallback);

 private:
  struct WindowEvent;

  struct StagedEvent {
    SimTime time;
    ShardId shard;
    Simulator::Callback cb;
    // Set when the scheduled event ran inside the same window; the replay
    // then only burns the sequence number the serial loop would have used.
    WindowEvent* inline_child = nullptr;
  };
  struct TickEvent {
    uint64_t seq = 0;
    ShardId shard = kShardSerial;
    Simulator::Callback cb;
    int prev_same_shard = -1;  // chain predecessor within the round, or -1
    int next_same_shard = -1;  // chain successor within the round, or -1
    std::vector<StagedEvent> staged;
  };

  /// Total order reproducing the serial loop's (time, seq) execution order
  /// across popped and inline events: popped = {time, 0, seq}; inline =
  /// {time, 1, parent key..., call index}. Lexicographic comparison (with
  /// the shorter key first on a common prefix) puts an inline event after
  /// everything that existed at its timestamp when it was scheduled, in
  /// (parent order, call order) — where its fresh sequence number would
  /// have placed it.
  using OrderKey = std::vector<uint64_t>;

  struct WindowEvent {
    SimTime time = 0;
    ShardId shard = kShardSerial;
    Simulator::Callback cb;
    OrderKey key;
    std::vector<StagedEvent> staged;
  };

  struct KeyOrder {
    bool operator()(const WindowEvent* a, const WindowEvent* b) const {
      return a->key < b->key;
    }
  };

  /// Moves every queued event with time == t into `out` (sequence order),
  /// recording per-shard chain predecessors.
  void PopRound(SimTime t, std::vector<TickEvent>* out);
  /// Runs the full tick at time t (sub-rounds, zero-delay follow-ons,
  /// deterministic commit). Returns true when the event cap truncated it.
  bool RunTickRounds(SimTime t, SimTime limit, std::vector<TickEvent>& round);

  // --- lookahead window machinery -------------------------------------------
  /// Pops the serial-order prefix of queued events with time < horizon,
  /// stopping before the first kShardSerial barrier, and derives the inline
  /// ceiling (below which same-shard follow-ons run inside the window).
  void PopWindow(SimTime horizon);
  /// Executes the popped window on the pool + this thread, then commits.
  void RunWindow();
  /// Claims and runs window events until none remain (lock held at entry
  /// and exit; released around each callback).
  void WindowLoopLocked(std::unique_lock<std::mutex>& lk);
  /// Retires a finished event: unlinks it, promotes its shard successor, and
  /// wakes the waiters that can now make progress. Returns the successor
  /// when the caller should run it directly (it is exactly what a minimum
  /// claim would pick next), else nullptr.
  WindowEvent* CompleteWindowEventLocked(WindowEvent* ev);
  void RunWindowEvent(WindowEvent* ev);
  /// Called from a window event's callback (any worker): routes a
  /// scheduling request to an inline window event or to the staged list.
  void StageWindow(WindowEvent* parent, SimTime t, ShardId shard,
                   Simulator::Callback* cb);
  /// Replays executed events in serial-order keys, assigning the global
  /// sequence numbers the serial loop would have and enqueueing every
  /// non-inline staged event; advances the clock and the processed count.
  void CommitWindow();
  /// Runs one sub-round (a batch of same-timestamp events) with per-shard
  /// chaining, barrier handling, and completion tracking.
  void RunRound(std::vector<TickEvent>& round);
  /// Runs events [begin, end) — all non-barrier — on the pool + this thread.
  void RunSegment(size_t begin, size_t end);
  /// Claims indices off next_task_ and dispatches them until the segment is
  /// exhausted (the per-thread task loop; lock-free steady state).
  void RunTasks(size_t begin, size_t end);
  /// Handles one claimed index: runs it (continuing its shard chain), or
  /// hands it off to the predecessor's runner via the state_ exchange.
  void RunTask(size_t idx, size_t begin, size_t end);
  /// Runs `idx` and then its same-shard successors for as long as the
  /// handoff exchange says their claimers renounced them (chain batching).
  void RunChainFrom(size_t idx, size_t end);
  void RunEvent(size_t idx);
  void WaitAllDoneBelow(size_t idx);
  /// Advances the done_scan_ prefix cursor; true when all events below idx
  /// are complete. Caller holds mu_.
  bool AllDoneBelowLocked(size_t idx);
  void MarkDone(size_t idx);
  /// Grows the done_/state_ flag arrays to hold n events.
  void EnsureFlagCapacity(size_t n);
  void WorkerLoop();
  /// Serial tail used when a round would cross the event cap: re-queues the
  /// round and steps one event at a time exactly like the serial path.
  void SerialCapTail(SimTime limit);

  Simulator* sim_;
  std::vector<std::thread> threads_;
  // Reused across PopRound calls (cleared, keeping its buckets) so the
  // per-tick hot path does not reallocate.
  std::unordered_map<ShardId, int> last_of_shard_;

  // Round state (valid while RunRound is active). The steady-state tick path
  // is lock-free: claims come off next_task_, completion is a done_ flag
  // store, and chain handoffs go through state_ exchanges; mu_ is only taken
  // by threads that actually have to wait (SyncShared, barriers, segment
  // teardown), guarded by the waiters_ Dekker counter.
  std::vector<TickEvent>* round_ = nullptr;
  std::atomic<size_t> next_task_{0};
  size_t segment_begin_ = 0;
  size_t segment_end_ = 0;
  uint64_t segment_gen_ = 0;
  bool segment_active_ = false;
  std::unique_ptr<std::atomic<uint8_t>[]> done_;   // per-event completion
  std::unique_ptr<std::atomic<uint8_t>[]> state_;  // per-event handoff state
  size_t flags_cap_ = 0;
  size_t done_scan_ = 0;        // prefix cursor: all < done_scan_ complete (mu_)
  std::atomic<int> waiters_{0};  // threads blocked on done_cv_ (Dekker flag)
  size_t busy_workers_ = 0;      // workers inside a segment/window loop

  // Window state (valid while RunWindow is active). Incomplete events are
  // indexed three ways, all in serial-order keys: globally (SyncShared's
  // "am I the minimum" check is O(1) at begin()), per shard (to promote the
  // successor when a head completes), and a ready set holding exactly the
  // unclaimed shard heads (claiming pops its minimum in O(log n)). Inline
  // events register under the lock while their parent runs; they sort after
  // the still-incomplete parent, so they never enter the ready set on
  // registration and the global-minimum predicate stays monotone.
  std::vector<std::unique_ptr<WindowEvent>> win_events_;  // all, owned
  std::set<WindowEvent*, KeyOrder> win_pending_;          // all incomplete
  std::set<WindowEvent*, KeyOrder> win_ready_;            // claimable heads
  std::unordered_map<ShardId, std::set<WindowEvent*, KeyOrder>> win_shard_;
  size_t win_outstanding_ = 0;
  SimTime win_horizon_ = 0;         // cross-shard staging must land >= this
  SimTime win_inline_ceiling_ = 0;  // same-shard staging below runs inline
  bool window_active_ = false;
  uint64_t window_gen_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;       // segment/window opened / stop
  std::condition_variable done_cv_;       // an event completed / workers idle
  std::condition_variable win_ready_cv_;  // claimable event added / window end
  std::condition_variable win_min_cv_;    // global minimum retired / window end
  bool stop_ = false;
  bool draining_ = false;  // reentrancy guard
};

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_PARALLEL_EXECUTOR_H_

// Deterministic intra-experiment parallelism: a worker pool that processes
// all events sharing one virtual timestamp (a "tick") concurrently while
// reproducing the single-threaded execution byte for byte.
//
// Model
//   * Every event carries a ShardId (simulator.h). Replicas are the natural
//     shards: the network tags each delivery/drain with the destination
//     node, replica continuations inherit their replica's shard, and the
//     client pool runs on its own shard.
//   * Within a tick, events of one shard execute strictly in sequence order
//     (a per-shard chain); events of different shards run concurrently.
//   * kShardSerial events are barriers: everything ordered before them
//     completes first, nothing ordered after starts until they finish.
//   * Callbacks that must touch shared (cross-shard) state call
//     Simulator::SyncShared(), which blocks until every earlier event of the
//     tick has completed — so shared-domain accesses happen in exact
//     sequence order, identical to the serial path.
//   * Events scheduled during a tick are staged per parent event and
//     committed after the round in deterministic order: (parent dispatch
//     order, call order within the parent). That is exactly the order the
//     serial loop would have assigned sequence numbers in, so the queue
//     contents — and all downstream behavior — match the serial path.
//
// Determinism argument (why jobs=1 and jobs=N produce identical bytes):
//   1. Same-shard events: chained, so their relative order is seq order.
//   2. Cross-shard events only interact through (a) per-node state owned by
//      exactly one shard, (b) SyncShared-gated domains (seq order enforced),
//      (c) staged scheduling (seq-order commit), or (d) immutable state.
//   3. Integer counters that multiple shards logically share are kept
//      per-shard and summed on read (order-independent).
//   Anything outside (1)-(3) must be scheduled as a kShardSerial barrier.
//
// The speedup comes from real ticks being wide: epoch-synchronization timer
// storms, broadcast deliveries (small messages serialize onto the same
// arrival tick), and quorum formation — all n replicas verifying signatures
// or executing a freshly committed batch at the same virtual instant.

#ifndef HOTSTUFF1_SIM_PARALLEL_EXECUTOR_H_
#define HOTSTUFF1_SIM_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace hotstuff1::sim {

/// \brief Tick-parallel executor attached to one Simulator.
///
/// Ownership: created and owned by Simulator::SetJobs; joins its workers on
/// destruction. All public methods except the static context helpers are
/// called by the owning simulator; Stage/SyncShared additionally run on
/// worker threads while a tick is in flight.
class ParallelExecutor {
 public:
  /// Spawns `jobs - 1` workers; the driving thread participates too, so the
  /// total concurrency is `jobs` (>= 2).
  ParallelExecutor(Simulator* sim, int jobs);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int jobs() const { return static_cast<int>(threads_.size()) + 1; }

  /// Processes ticks while the next event's time is <= limit, mirroring the
  /// serial RunUntil/Run loop (including event-cap truncation semantics).
  /// Does not advance the clock past the last executed event.
  void Drain(SimTime limit);

  /// Blocks until all events dispatched before the calling event in the
  /// current tick have completed. No-op when the calling thread is not
  /// executing a tick event.
  void SyncShared();

  /// If the calling thread is executing a tick event of `sim`'s executor,
  /// stages the scheduling request for deterministic commit and returns
  /// true; otherwise returns false and the caller pushes directly.
  static bool StageIfInTick(Simulator* sim, SimTime t, ShardId shard,
                            Simulator::Callback* cb);

  /// Shard of the event the calling thread is executing, or kShardSerial.
  static ShardId InheritedShard();

 private:
  struct StagedEvent {
    SimTime time;
    ShardId shard;
    Simulator::Callback cb;
  };
  struct TickEvent {
    uint64_t seq = 0;
    ShardId shard = kShardSerial;
    Simulator::Callback cb;
    int prev_same_shard = -1;  // chain predecessor within the round, or -1
    std::vector<StagedEvent> staged;
  };

  /// Moves every queued event with time == t into `out` (sequence order),
  /// recording per-shard chain predecessors.
  void PopRound(SimTime t, std::vector<TickEvent>* out);
  /// Runs one sub-round (a batch of same-timestamp events) with per-shard
  /// chaining, barrier handling, and completion tracking.
  void RunRound(std::vector<TickEvent>& round);
  /// Runs events [begin, end) — all non-barrier — on the pool + this thread.
  void RunSegment(size_t begin, size_t end);
  void RunEvent(size_t idx);
  void WaitEventDone(size_t idx);
  void WaitAllDoneBelow(size_t idx);
  void MarkDone(size_t idx);
  void WorkerLoop();
  /// Serial tail used when a round would cross the event cap: re-queues the
  /// round and steps one event at a time exactly like the serial path.
  void SerialCapTail(SimTime limit);

  Simulator* sim_;
  std::vector<std::thread> threads_;
  // Reused across PopRound calls (cleared, keeping its buckets) so the
  // per-tick hot path does not reallocate.
  std::unordered_map<ShardId, int> last_of_shard_;

  // Round state (valid while RunRound is active).
  std::vector<TickEvent>* round_ = nullptr;
  std::atomic<size_t> next_task_{0};
  size_t segment_end_ = 0;
  uint64_t segment_gen_ = 0;
  bool segment_active_ = false;
  std::vector<uint8_t> done_;
  size_t done_watermark_ = 0;  // all events with idx < watermark completed
  size_t busy_workers_ = 0;    // workers inside a segment's task loop

  std::mutex mu_;
  std::condition_variable work_cv_;  // segment opened / stop
  std::condition_variable done_cv_;  // an event completed
  bool stop_ = false;
  bool draining_ = false;  // reentrancy guard
};

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_PARALLEL_EXECUTOR_H_

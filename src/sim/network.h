// Simulated point-to-point network with authenticated-channel semantics,
// replacing the paper's NNG/TCP mesh across AWS machines.
//
// Resource model (what the paper's experiments actually measure):
//   * one-way latency matrix          -> geo topologies, Fig. 8(e-h), 9(e,j)
//   * per-node egress bandwidth       -> O(n) broadcast cost, batching limits
//   * per-node CPU busy-time          -> signature/exec compute-bound regimes
//   * per-node injected delay         -> Fig. 9(a-d,f-i) delay experiments
//   * crash / drop / partition rules  -> failure experiments and tests
//
// Threading / determinism contract (see docs/ARCHITECTURE.md): every piece
// of mutable run-time state is partitioned by node. Send(from, ...) touches
// only sender-owned state (egress clock, the sender's RNG stream, per-sender
// counters) and is called only from events on shard `from`; deliveries and
// ingress drains are scheduled on the destination's shard. Configuration
// mutators (latencies, rules, Crash/Recover) are for setup or for untagged
// (kShardSerial, i.e. barrier) events only.

#ifndef HOTSTUFF1_SIM_NETWORK_H_
#define HOTSTUFF1_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace hotstuff1::sim {

using NodeId = uint32_t;

/// Base class for anything sent over the simulated wire. WireSize feeds the
/// bandwidth model; subclasses report header + payload estimates.
struct NetMessage {
  virtual ~NetMessage() = default;
  virtual size_t WireSize() const { return 64; }
};

/// Smallest wire size any message may report (the leanest header in
/// consensus/messages.h is 32 bytes). The lookahead horizon's serialization
/// floor is derived from it: every cross-node send pays at least
/// kMinWireBytes / bandwidth of egress time before departing.
inline constexpr size_t kMinWireBytes = 32;

using NetMessagePtr = std::shared_ptr<const NetMessage>;

struct NetworkConfig {
  /// Egress bandwidth per node, in bytes per microsecond (2000 = 2 GB/s).
  double bandwidth_bytes_per_us = 2000.0;
  /// Latency for self-delivery (leader processing its own proposal).
  SimTime loopback_latency = 1;
  /// Default one-way latency between distinct nodes (overridden per-pair).
  SimTime default_latency = Millis(0.4);
  /// Multiplicative jitter: actual = latency * (1 + U[0,jitter_frac)).
  double jitter_frac = 0.0;
  uint64_t seed = 1;
};

/// A generic fault rule; applies to cross-node messages with
/// from_match[from] and to_match[to] set (self-delivery is exempt, like
/// jitter and egress serialization). `extra_delay` must be >= 0 and
/// `extra_jitter_frac` multiplies the base latency by U[0, frac) on top of
/// the config jitter — the lookahead horizon (MinDeliveryLatency) relies on
/// faults only ever *adding* delay.
struct FaultRule {
  std::vector<bool> from_match;
  std::vector<bool> to_match;
  SimTime extra_delay = 0;
  double drop_prob = 0.0;
  double extra_jitter_frac = 0.0;
};

class Network {
 public:
  using Handler = std::function<void(NodeId from, const NetMessagePtr& msg)>;

  Network(Simulator* sim, uint32_t n, NetworkConfig config = {});

  uint32_t num_nodes() const { return n_; }
  Simulator* simulator() const { return sim_; }

  // --- wiring ---------------------------------------------------------------
  void SetHandler(NodeId id, Handler handler);

  // --- latency configuration -------------------------------------------------
  void SetLatency(NodeId from, NodeId to, SimTime one_way);
  void SetSymmetricLatency(NodeId a, NodeId b, SimTime one_way);
  void SetAllLatencies(SimTime one_way);
  SimTime latency(NodeId from, NodeId to) const { return latency_[from][to]; }

  // --- lookahead horizon -----------------------------------------------------
  /// Returned by MinDeliveryLatency when no cross-node traffic is possible
  /// (n < 2): effectively "no bound", safely below any overflow.
  static constexpr SimTime kNoCrossTraffic = INT64_MAX / 4;

  /// Guaranteed egress-serialization delay of any cross-node message:
  /// floor(kMinWireBytes / bandwidth). Grows as bandwidth shrinks, so low
  /// bandwidth widens the safe horizon; at GB/s-class bandwidth it rounds
  /// to zero and the horizon shrinks to the pure link delay.
  SimTime SerializationFloor() const;

  /// Conservative lower bound on when any message sent from now on can be
  /// delivered to a *different* node: min pairwise one-way latency plus the
  /// serialization floor. Impairments, fault rules, and jitter only add
  /// delay, so this is a safe per-shard-pair horizon minimum — valid for a
  /// run's lifetime as long as latencies are only lowered between runs or
  /// from barrier events followed by a fresh Simulator::SetLookahead.
  SimTime MinDeliveryLatency() const;

  // --- sending ---------------------------------------------------------------
  void Send(NodeId from, NodeId to, NetMessagePtr msg);
  /// Sends to every node; `include_self` self-delivers at loopback latency
  /// without consuming egress bandwidth.
  void Broadcast(NodeId from, const NetMessagePtr& msg, bool include_self = true);

  // --- faults ---------------------------------------------------------------
  /// Adds `extra_delay` to every message into or out of `id` (Fig. 9 setup).
  void ImpairNode(NodeId id, SimTime extra_delay);
  void ClearImpairments();
  /// Generic rule; returns an id for RemoveRule.
  int AddRule(FaultRule rule);
  void RemoveRule(int rule_id);
  void Crash(NodeId id);
  void Recover(NodeId id);
  bool IsCrashed(NodeId id) const { return crashed_[id]; }

  // --- GST signal ------------------------------------------------------------
  /// Registers the observer notified when the network's Global Stabilization
  /// Time passes (the liveness oracle, runtime/liveness.h). Setup-time only.
  void SetGstCallback(std::function<void()> cb) { gst_callback_ = std::move(cb); }
  /// Declares GST reached. Call only from an untagged (kShardSerial) barrier
  /// event — the experiment schedules one at the adversary schedule's
  /// resolved GST — so the notification lands at a deterministic position in
  /// the serial event order regardless of executor shape.
  void NotifyGstReached() {
    if (gst_callback_) gst_callback_();
  }

  // --- virtual CPU -----------------------------------------------------------
  /// Accounts `cost` of compute at node `id`, starting no earlier than now.
  /// Deliveries to a busy node are deferred until the CPU frees up.
  void ConsumeCpu(NodeId id, SimTime cost);
  SimTime CpuBusyUntil(NodeId id) const { return cpu_busy_until_[id]; }

  // --- stats -----------------------------------------------------------------
  // Counters are kept per sender so concurrent shards never share a cache
  // line or an increment; totals are summed on read (post-run).
  uint64_t messages_sent() const { return Total(messages_sent_by_); }
  uint64_t bytes_sent() const { return Total(bytes_sent_by_); }
  uint64_t messages_dropped() const { return Total(messages_dropped_by_); }

 private:
  void DeliverLater(NodeId from, NodeId to, NetMessagePtr msg, SimTime arrival);
  void TryDeliver(NodeId from, NodeId to, const NetMessagePtr& msg);
  void ScheduleDrain(NodeId to);
  void Drain(NodeId to);

  static uint64_t Total(const std::vector<uint64_t>& v) {
    uint64_t sum = 0;
    for (uint64_t x : v) sum += x;
    return sum;
  }

  Simulator* sim_;
  uint32_t n_;
  NetworkConfig config_;
  // One jitter/drop stream per sender: draws depend only on the sender's own
  // send sequence, never on cross-node interleaving.
  std::vector<Rng> rngs_;

  std::vector<Handler> handlers_;
  std::vector<std::vector<SimTime>> latency_;
  std::vector<SimTime> node_extra_delay_;
  std::vector<SimTime> egress_busy_until_;
  std::vector<SimTime> cpu_busy_until_;
  std::vector<bool> crashed_;
  // Per-node ingress queue: messages that arrived while the node's CPU was
  // busy wait here in FIFO order and drain as the CPU frees up.
  std::vector<std::deque<std::pair<NodeId, NetMessagePtr>>> ingress_;
  // One byte per node, NOT vector<bool>: the flag is written from each
  // node's own shard, and bit-packing would make neighboring nodes' flags
  // share a word (a data race under the parallel executor).
  std::vector<uint8_t> drain_scheduled_;
  std::vector<std::pair<int, FaultRule>> rules_;
  int next_rule_id_ = 0;
  std::function<void()> gst_callback_;

  std::vector<uint64_t> messages_sent_by_;
  std::vector<uint64_t> bytes_sent_by_;
  std::vector<uint64_t> messages_dropped_by_;
};

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_NETWORK_H_

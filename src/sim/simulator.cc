#include "sim/simulator.h"

#include <limits>

#include "common/logging.h"
#include "common/replica_set.h"
#include "sim/parallel_executor.h"

namespace hotstuff1::sim {

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

SimTime Simulator::NowInExecutor() const {
  // Under a lookahead window, concurrently running events sit at different
  // virtual times; each thread sees the timestamp of the event it executes.
  return ParallelExecutor::EffectiveNow(this, now_);
}

void Simulator::AtExec(SimTime t, Callback cb) {
  AtShardExec(t, ParallelExecutor::InheritedShard(), std::move(cb));
}

void Simulator::AtShardExec(SimTime t, ShardId shard, Callback cb) {
  // Clamp to the *executing event's* time (== now_ on the serial and tick
  // paths), so a window event never schedules into its own past.
  const SimTime now = Now();
  if (t < now) t = now;
  // During a parallel tick or window, scheduling requests are staged per
  // parent event and committed in deterministic order after the round.
  if (ParallelExecutor::StageIfInTick(this, t, shard, &cb)) return;
  PushEvent(t, shard, std::move(cb));
}

void Simulator::SetLookahead(SimTime window) {
  if (window < 0) window = 0;
  // Cap so `tick + window` can never overflow the virtual clock.
  constexpr SimTime kMaxLookahead = 3600 * kSecond;
  if (window > kMaxLookahead) window = kMaxLookahead;
  lookahead_ = window;
}

void Simulator::SetJobs(int jobs) {
  // Clamp to the widest useful pool: rounds are at most one event per shard
  // (<= ReplicaSet::kCapacity replicas + clients — the committee-size ceiling
  // every quorum structure shares), so more workers can never help, and
  // absurd values must not reach std::thread's constructor (which throws).
  constexpr int kMaxJobs = static_cast<int>(ReplicaSet::kCapacity);
  if (jobs > kMaxJobs) jobs = kMaxJobs;
  if (jobs <= 1) {
    exec_.reset();
    return;
  }
  if (exec_ && exec_->jobs() == jobs) return;
  exec_ = std::make_unique<ParallelExecutor>(this, jobs);
}

int Simulator::jobs() const { return exec_ ? exec_->jobs() : 1; }

void Simulator::SyncShared() {
  if (exec_) exec_->SyncShared();
}

bool Simulator::Step() {
  EventHandle h;
  if (!queue_.Peek(&h)) return false;
  if (events_processed_ >= event_cap_) {
    cap_hit_ = true;
    return false;
  }
  queue_.Pop();
  HS1_CHECK_GE(h.time, now_);
  now_ = h.time;
  ++events_processed_;
  // Run in the arena slot — no move-out. Nested scheduling may grow the
  // arena, but chunks have stable addresses, so the record stays put.
  EventRecord& rec = arena_.Get(h.idx);
  rec.cb();
  arena_.Free(h.idx);
  return true;
}

void Simulator::RunUntil(SimTime t) {
  if (exec_) {
    exec_->Drain(t);
  } else {
    EventHandle h;
    while (queue_.Peek(&h) && h.time <= t) {
      if (events_processed_ >= event_cap_) {
        cap_hit_ = true;
        break;
      }
      Step();
    }
  }
  if (now_ < t) now_ = t;
}

void Simulator::Run() {
  if (exec_) {
    exec_->Drain(std::numeric_limits<SimTime>::max());
    return;
  }
  while (Step()) {
  }
}

}  // namespace hotstuff1::sim

#include "sim/simulator.h"

#include "common/logging.h"

namespace hotstuff1::sim {

void Simulator::At(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  if (events_processed_ >= event_cap_) {
    cap_hit_ = true;
    return false;
  }
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  HS1_CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++events_processed_;
  ev.cb();
  return true;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    if (events_processed_ >= event_cap_) {
      cap_hit_ = true;
      break;
    }
    Step();
  }
  if (now_ < t) now_ = t;
}

void Simulator::Run() {
  while (Step()) {
  }
}

}  // namespace hotstuff1::sim

#include "sim/parallel_executor.h"

#include <limits>
#include <utility>

#include "common/logging.h"

namespace hotstuff1::sim {

namespace {

// Context of the tick event the current thread is executing (if any). Used
// to inherit shards, stage scheduled events, and resolve SyncShared waits.
struct TickContext {
  ParallelExecutor* exec = nullptr;
  Simulator* sim = nullptr;
  size_t idx = 0;
};
thread_local TickContext tls_ctx;

}  // namespace

ParallelExecutor::ParallelExecutor(Simulator* sim, int jobs) : sim_(sim) {
  HS1_CHECK_GE(jobs, 2);
  threads_.reserve(static_cast<size_t>(jobs - 1));
  for (int i = 0; i < jobs - 1; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ParallelExecutor::StageIfInTick(Simulator* sim, SimTime t, ShardId shard,
                                     Simulator::Callback* cb) {
  TickContext& ctx = tls_ctx;
  if (ctx.exec == nullptr || ctx.sim != sim) return false;
  (*ctx.exec->round_)[ctx.idx].staged.push_back(
      StagedEvent{t, shard, std::move(*cb)});
  return true;
}

ShardId ParallelExecutor::InheritedShard() {
  const TickContext& ctx = tls_ctx;
  if (ctx.exec == nullptr) return kShardSerial;
  return (*ctx.exec->round_)[ctx.idx].shard;
}

void ParallelExecutor::Drain(SimTime limit) {
  HS1_CHECK(!draining_) << "Simulator::Run/RunUntil is not reentrant";
  draining_ = true;
  auto& q = sim_->queue_;
  std::vector<TickEvent> round;
  while (!q.empty() && q.top().time <= limit) {
    if (sim_->events_processed_ >= sim_->event_cap_) {
      sim_->cap_hit_ = true;
      break;
    }
    const SimTime t = q.top().time;
    sim_->now_ = t;
    bool capped = false;
    PopRound(t, &round);
    while (!round.empty()) {
      if (sim_->events_processed_ + round.size() > sim_->event_cap_) {
        // The cap lands inside this round: put the events back (sequence
        // numbers preserved) and truncate one event at a time exactly like
        // the serial loop would.
        for (TickEvent& ev : round) {
          sim_->RepushEvent(Simulator::Event{t, ev.seq, ev.shard, std::move(ev.cb)});
        }
        round.clear();
        SerialCapTail(limit);
        capped = true;
        break;
      }
      RunRound(round);
      sim_->events_processed_ += round.size();
      // Deterministic commit: staged events enter the queue in (parent
      // dispatch order, call order) — the order the serial loop would have
      // assigned sequence numbers in.
      for (TickEvent& ev : round) {
        for (StagedEvent& s : ev.staged) {
          sim_->PushEvent(s.time, s.shard, std::move(s.cb));
        }
      }
      round.clear();
      // Zero-delay follow-ons run within the same tick, after everything
      // that was already queued at this timestamp (their seqs are larger).
      PopRound(t, &round);
    }
    if (capped) break;
  }
  draining_ = false;
}

void ParallelExecutor::SerialCapTail(SimTime limit) {
  auto& q = sim_->queue_;
  while (!q.empty() && q.top().time <= limit) {
    if (!sim_->Step()) break;  // Step sets cap_hit_ at the cap
  }
}

void ParallelExecutor::PopRound(SimTime t, std::vector<TickEvent>* out) {
  auto& q = sim_->queue_;
  auto& last_of_shard = last_of_shard_;
  last_of_shard.clear();
  while (!q.empty() && q.top().time == t) {
    // priority_queue::top() is const; move out via const_cast, which is safe
    // because we pop immediately.
    Simulator::Event ev = std::move(const_cast<Simulator::Event&>(q.top()));
    q.pop();
    TickEvent te;
    te.seq = ev.seq;
    te.shard = ev.shard;
    te.cb = std::move(ev.cb);
    if (te.shard != kShardSerial) {
      auto [it, inserted] =
          last_of_shard.try_emplace(te.shard, static_cast<int>(out->size()));
      if (!inserted) {
        te.prev_same_shard = it->second;
        it->second = static_cast<int>(out->size());
      }
    }
    out->push_back(std::move(te));
  }
}

void ParallelExecutor::RunRound(std::vector<TickEvent>& round) {
  const size_t n = round.size();
  round_ = &round;
  {
    std::lock_guard<std::mutex> lk(mu_);
    done_.assign(n, 0);
    done_watermark_ = 0;
  }
  size_t i = 0;
  while (i < n) {
    if (round[i].shard == kShardSerial) {
      // Barrier: everything before completes, the event runs alone.
      WaitAllDoneBelow(i);
      RunEvent(i);
      ++i;
      continue;
    }
    size_t end = i;
    while (end < n && round[end].shard != kShardSerial) ++end;
    RunSegment(i, end);
    i = end;
  }
  WaitAllDoneBelow(n);
  round_ = nullptr;
}

void ParallelExecutor::RunSegment(size_t begin, size_t end) {
  std::vector<TickEvent>& round = *round_;
  bool one_shard = true;
  for (size_t j = begin + 1; j < end && one_shard; ++j) {
    one_shard = round[j].shard == round[begin].shard;
  }
  if (end - begin == 1 || one_shard) {
    // Nothing to parallelize: run inline without waking the pool. All
    // earlier events are complete here, so chain waits are trivially met.
    for (size_t j = begin; j < end; ++j) RunEvent(j);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    next_task_.store(begin, std::memory_order_relaxed);
    segment_end_ = end;
    ++segment_gen_;
    segment_active_ = true;
  }
  work_cv_.notify_all();
  // The driving thread participates in the segment.
  for (;;) {
    const size_t idx = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= end) break;
    RunEvent(idx);
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Wait for completion AND for every worker to leave its task loop: a
    // worker between tasks could otherwise race the next segment's
    // next_task_ reset and grab an index against stale bounds.
    done_cv_.wait(lk, [&] { return done_watermark_ >= end && busy_workers_ == 0; });
    segment_active_ = false;
  }
}

void ParallelExecutor::WorkerLoop() {
  uint64_t seen_gen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(
        lk, [&] { return stop_ || (segment_active_ && segment_gen_ != seen_gen); });
    if (stop_) return;
    seen_gen = segment_gen_;
    const size_t end = segment_end_;
    ++busy_workers_;
    lk.unlock();
    for (;;) {
      const size_t idx = next_task_.fetch_add(1, std::memory_order_relaxed);
      if (idx >= end) break;
      RunEvent(idx);
    }
    lk.lock();
    --busy_workers_;
    if (busy_workers_ == 0) done_cv_.notify_all();
  }
}

void ParallelExecutor::RunEvent(size_t idx) {
  TickEvent& ev = (*round_)[idx];
  // Per-shard chain: one shard's events execute strictly in sequence order.
  if (ev.prev_same_shard >= 0) WaitEventDone(static_cast<size_t>(ev.prev_same_shard));
  TickContext saved = tls_ctx;
  tls_ctx = TickContext{this, sim_, idx};
  ev.cb();
  tls_ctx = saved;
  MarkDone(idx);
}

void ParallelExecutor::WaitEventDone(size_t idx) {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return done_[idx] != 0; });
}

void ParallelExecutor::WaitAllDoneBelow(size_t idx) {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return done_watermark_ >= idx; });
}

void ParallelExecutor::MarkDone(size_t idx) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    done_[idx] = 1;
    while (done_watermark_ < done_.size() && done_[done_watermark_] != 0) {
      ++done_watermark_;
    }
  }
  done_cv_.notify_all();
}

void ParallelExecutor::SyncShared() {
  const TickContext& ctx = tls_ctx;
  if (ctx.exec != this) return;  // not inside one of this executor's ticks
  WaitAllDoneBelow(ctx.idx);
}

}  // namespace hotstuff1::sim

#include "sim/parallel_executor.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace hotstuff1::sim {

namespace {

// Context of the tick or window event the current thread is executing (if
// any). Used to inherit shards, stage scheduled events, resolve SyncShared
// waits, and report per-event virtual time.
struct TickContext {
  ParallelExecutor* exec = nullptr;
  Simulator* sim = nullptr;
  size_t idx = 0;    // tick mode: index into the current round
  void* win = nullptr;  // window mode: the WindowEvent being executed
  SimTime time = 0;  // the event's own virtual timestamp
};
thread_local TickContext tls_ctx;

// Chain-handoff protocol (state_ array). A claimer whose same-shard
// predecessor is still running cannot execute its event yet; instead of
// blocking (the old WaitEventDone), it exchanges kClaimerPassed into the
// event's state and moves on to the next task. The predecessor's runner,
// after finishing, exchanges kPrevDone into the successor's state. Whichever
// exchange runs SECOND sees the other side's mark and owns the event —
// exchanges on one atomic are totally ordered, so exactly one side runs it.
// The winner being the predecessor's runner is the common case, which makes
// one thread execute a whole per-shard chain back to back.
//
// Deadlock-freedom (why renouncing preserves the old claim discipline's
// guarantee): no thread ever blocks on a chain link, so every claimed index
// is either executed or handed to a runner that executes it; the globally
// smallest incomplete event's predecessor is always complete, so its runner
// is never parked in SyncShared and progress is assured.
constexpr uint8_t kStateClaimerPassed = 1;
constexpr uint8_t kStatePrevDone = 2;

}  // namespace

ParallelExecutor::ParallelExecutor(Simulator* sim, int jobs) : sim_(sim) {
  HS1_CHECK_GE(jobs, 2);
  threads_.reserve(static_cast<size_t>(jobs - 1));
  for (int i = 0; i < jobs - 1; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ParallelExecutor::StageIfInTick(Simulator* sim, SimTime t, ShardId shard,
                                     Simulator::Callback* cb) {
  TickContext& ctx = tls_ctx;
  if (ctx.exec == nullptr || ctx.sim != sim) return false;
  if (ctx.win != nullptr) {
    ctx.exec->StageWindow(static_cast<WindowEvent*>(ctx.win), t, shard, cb);
    return true;
  }
  (*ctx.exec->round_)[ctx.idx].staged.push_back(
      StagedEvent{t, shard, std::move(*cb), nullptr});
  return true;
}

ShardId ParallelExecutor::InheritedShard() {
  const TickContext& ctx = tls_ctx;
  if (ctx.exec == nullptr) return kShardSerial;
  if (ctx.win != nullptr) return static_cast<WindowEvent*>(ctx.win)->shard;
  return (*ctx.exec->round_)[ctx.idx].shard;
}

SimTime ParallelExecutor::EffectiveNow(const Simulator* sim, SimTime fallback) {
  const TickContext& ctx = tls_ctx;
  if (ctx.exec == nullptr || ctx.sim != sim) return fallback;
  return ctx.time;
}

void ParallelExecutor::Drain(SimTime limit) {
  HS1_CHECK(!draining_) << "Simulator::Run/RunUntil is not reentrant";
  draining_ = true;
  // Lookahead requires exact-cap truncation to be impossible mid-window, so
  // a finite event cap pins the executor to the tick path (see header).
  const SimTime window = sim_->lookahead_;
  const bool windowed = window > 1 && sim_->event_cap_ == UINT64_MAX;
  std::vector<TickEvent> round;
  EventHandle h;
  ShardId shard = kShardSerial;
  while (sim_->PeekEvent(&h, &shard) && h.time <= limit) {
    if (sim_->events_processed_ >= sim_->event_cap_) {
      sim_->cap_hit_ = true;
      break;
    }
    const SimTime t = h.time;
    sim_->now_ = t;
    if (!windowed || shard == kShardSerial) {
      // Tick path: also the barrier fallback under lookahead (the tick
      // machinery orders barriers against their same-tick neighbors).
      if (RunTickRounds(t, limit, round)) break;
      continue;
    }
    // Events eligible for the window: time <= limit and time < t + window.
    const SimTime span = std::min<SimTime>(window - 1, limit - t);
    PopWindow(/*horizon=*/t + span + 1);
    RunWindow();
  }
  draining_ = false;
}

bool ParallelExecutor::RunTickRounds(SimTime t, SimTime limit,
                                     std::vector<TickEvent>& round) {
  PopRound(t, &round);
  while (!round.empty()) {
    if (sim_->events_processed_ + round.size() > sim_->event_cap_) {
      // The cap lands inside this round: put the events back (sequence
      // numbers preserved) and truncate one event at a time exactly like
      // the serial loop would.
      for (TickEvent& ev : round) {
        sim_->RepushEvent(Simulator::Event{t, ev.seq, ev.shard, std::move(ev.cb)});
      }
      round.clear();
      SerialCapTail(limit);
      return true;
    }
    RunRound(round);
    sim_->events_processed_ += round.size();
    // Deterministic commit: staged events enter the queue in (parent
    // dispatch order, call order) — the order the serial loop would have
    // assigned sequence numbers in.
    for (TickEvent& ev : round) {
      for (StagedEvent& s : ev.staged) {
        sim_->PushEvent(s.time, s.shard, std::move(s.cb));
      }
    }
    round.clear();
    // Zero-delay follow-ons run within the same tick, after everything
    // that was already queued at this timestamp (their seqs are larger).
    PopRound(t, &round);
  }
  return false;
}

void ParallelExecutor::SerialCapTail(SimTime limit) {
  EventHandle h;
  while (sim_->queue_.Peek(&h) && h.time <= limit) {
    if (!sim_->Step()) break;  // Step sets cap_hit_ at the cap
  }
}

void ParallelExecutor::PopWindow(SimTime horizon) {
  // The pop order is the serial execution order (time, seq); stopping at the
  // first barrier keeps the popped set a clean prefix of it.
  EventHandle h;
  ShardId shard = kShardSerial;
  while (sim_->PeekEvent(&h, &shard) && h.time < horizon &&
         shard != kShardSerial) {
    Simulator::Event ev = sim_->PopEvent();
    auto we = std::make_unique<WindowEvent>();
    we->time = ev.time;
    we->shard = ev.shard;
    we->cb = std::move(ev.cb);
    we->key = {static_cast<uint64_t>(ev.time), 0, ev.seq};
    win_pending_.insert(win_pending_.end(), we.get());
    win_shard_[we->shard].insert(we.get());
    win_events_.push_back(std::move(we));
  }
  win_outstanding_ = win_events_.size();
  // Initially claimable: each shard's first event.
  for (const auto& [s, events] : win_shard_) {
    win_ready_.insert(*events.begin());
  }
  win_horizon_ = horizon;
  // A follow-on may run inside the window only if the serial loop would
  // reach it before anything still queued: strictly before the first
  // unpopped event (a barrier, or the first event at/after the horizon) —
  // at equal timestamps the queued event's smaller sequence number wins.
  win_inline_ceiling_ = sim_->queue_.Peek(&h)
                            ? std::min<SimTime>(horizon, h.time)
                            : horizon;
}

void ParallelExecutor::RunWindow() {
  const bool parallel = win_outstanding_ > 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_active_ = true;
    ++window_gen_;
  }
  if (parallel) work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mu_);
    WindowLoopLocked(lk);
    window_active_ = false;
    // Wait for every worker to leave the window loop before the commit
    // below mutates the window structures.
    done_cv_.wait(lk, [&] { return busy_workers_ == 0; });
  }
  CommitWindow();
}

void ParallelExecutor::WindowLoopLocked(std::unique_lock<std::mutex>& lk) {
  for (;;) {
    if (!win_ready_.empty()) {
      // Claim the smallest ready event: this keeps the globally smallest
      // incomplete event always claimed (or claimable), the progress
      // guarantee that makes SyncShared's global-minimum wait deadlock-free.
      WindowEvent* ev = *win_ready_.begin();
      win_ready_.erase(win_ready_.begin());
      // Successor continuation: when the finished event's shard successor is
      // smaller than everything in the ready set, it is exactly what the
      // loop would claim next — run it directly, skipping a wakeup.
      do {
        lk.unlock();
        RunWindowEvent(ev);
        lk.lock();
        ev = CompleteWindowEventLocked(ev);
      } while (ev != nullptr);
      continue;
    }
    if (win_outstanding_ == 0) return;
    win_ready_cv_.wait(lk);
  }
}

ParallelExecutor::WindowEvent* ParallelExecutor::CompleteWindowEventLocked(
    WindowEvent* ev) {
  const bool was_min = *win_pending_.begin() == ev;
  win_pending_.erase(ev);
  auto shard_it = win_shard_.find(ev->shard);
  shard_it->second.erase(ev);
  WindowEvent* next = nullptr;
  if (shard_it->second.empty()) {
    win_shard_.erase(shard_it);
  } else {
    // The shard's next event becomes claimable (only a head can have been
    // claimed, so the successor is necessarily unclaimed).
    WindowEvent* succ = *shard_it->second.begin();
    if (win_ready_.empty() || KeyOrder{}(succ, *win_ready_.begin())) {
      next = succ;  // caller continues with it directly
    } else {
      win_ready_.insert(succ);
      win_ready_cv_.notify_one();
    }
  }
  --win_outstanding_;
  if (win_outstanding_ == 0) {
    win_ready_cv_.notify_all();
    win_min_cv_.notify_all();
  } else if (was_min) {
    // A new global minimum: exactly what SyncShared waiters poll for.
    win_min_cv_.notify_all();
  }
  return next;
}

void ParallelExecutor::RunWindowEvent(WindowEvent* ev) {
  TickContext saved = tls_ctx;
  tls_ctx = TickContext{this, sim_, 0, ev, ev->time};
  ev->cb();
  tls_ctx = saved;
}

void ParallelExecutor::StageWindow(WindowEvent* parent, SimTime t, ShardId shard,
                                   Simulator::Callback* cb) {
  if (shard == parent->shard && t < win_inline_ceiling_) {
    // The serial loop would execute this event inside the current window,
    // interleaved with its shard's remaining events. Register it as an
    // inline window event at its serial position; its parent's staged list
    // keeps a marker so the commit replay burns the matching seq.
    auto child = std::make_unique<WindowEvent>();
    child->time = t;
    child->shard = shard;
    child->cb = std::move(*cb);
    child->key.reserve(parent->key.size() + 3);
    child->key.push_back(static_cast<uint64_t>(t));
    child->key.push_back(1);
    child->key.insert(child->key.end(), parent->key.begin(), parent->key.end());
    child->key.push_back(parent->staged.size());
    WindowEvent* raw = child.get();
    parent->staged.push_back(StagedEvent{t, shard, {}, raw});
    {
      std::lock_guard<std::mutex> lk(mu_);
      win_events_.push_back(std::move(child));
      win_pending_.insert(raw);
      win_shard_[raw->shard].insert(raw);
      ++win_outstanding_;
      // No wakeups: the child sorts after its still-running parent (same
      // shard), so it cannot be claimable or the global minimum yet.
    }
    return;
  }
  // Cross-shard scheduling must land at or beyond the horizon — that is the
  // lookahead contract (Simulator::SetLookahead). Anything closer could be
  // ordered before an event another shard has already executed.
  HS1_CHECK(shard == parent->shard || t >= win_horizon_)
      << "cross-shard event scheduled inside the lookahead window (target t=" << t
      << ", horizon=" << win_horizon_
      << "): the configured lookahead exceeds the minimum cross-shard latency";
  parent->staged.push_back(StagedEvent{t, shard, std::move(*cb), nullptr});
}

void ParallelExecutor::CommitWindow() {
  // Replay the executed events in serial order, assigning the sequence
  // numbers the serial loop would have: each staged entry consumes one, and
  // only the non-inline ones actually enter the queue.
  std::vector<WindowEvent*> order;
  order.reserve(win_events_.size());
  for (const auto& ev : win_events_) order.push_back(ev.get());
  std::sort(order.begin(), order.end(),
            [](const WindowEvent* a, const WindowEvent* b) { return a->key < b->key; });
  SimTime last_time = sim_->now_;
  for (WindowEvent* ev : order) {
    if (ev->time > last_time) last_time = ev->time;
    for (StagedEvent& s : ev->staged) {
      if (s.inline_child != nullptr) {
        ++sim_->next_seq_;  // the serial loop numbered this push too
      } else {
        sim_->PushEvent(s.time, s.shard, std::move(s.cb));
      }
    }
  }
  sim_->events_processed_ += win_events_.size();
  sim_->now_ = last_time;
  win_events_.clear();
  win_outstanding_ = 0;
}

void ParallelExecutor::PopRound(SimTime t, std::vector<TickEvent>* out) {
  auto& last_of_shard = last_of_shard_;
  last_of_shard.clear();
  EventHandle h;
  while (sim_->queue_.Peek(&h) && h.time == t) {
    Simulator::Event ev = sim_->PopEvent();
    TickEvent te;
    te.seq = ev.seq;
    te.shard = ev.shard;
    te.cb = std::move(ev.cb);
    if (te.shard != kShardSerial) {
      const int idx = static_cast<int>(out->size());
      auto [it, inserted] = last_of_shard.try_emplace(te.shard, idx);
      if (!inserted) {
        te.prev_same_shard = it->second;
        (*out)[it->second].next_same_shard = idx;
        it->second = idx;
      }
    }
    out->push_back(std::move(te));
  }
}

void ParallelExecutor::RunRound(std::vector<TickEvent>& round) {
  const size_t n = round.size();
  round_ = &round;
  EnsureFlagCapacity(n);
  for (size_t i = 0; i < n; ++i) {
    done_[i].store(0, std::memory_order_relaxed);
    state_[i].store(0, std::memory_order_relaxed);
  }
  done_scan_ = 0;
  // The resets publish to workers through mu_ in RunSegment (workers only
  // enter a segment after acquiring it), so no fence is needed here.
  size_t i = 0;
  while (i < n) {
    if (round[i].shard == kShardSerial) {
      // Barrier: everything before completes, the event runs alone.
      WaitAllDoneBelow(i);
      RunEvent(i);
      ++i;
      continue;
    }
    size_t end = i;
    while (end < n && round[end].shard != kShardSerial) ++end;
    RunSegment(i, end);
    i = end;
  }
  WaitAllDoneBelow(n);
  round_ = nullptr;
}

void ParallelExecutor::RunSegment(size_t begin, size_t end) {
  std::vector<TickEvent>& round = *round_;
  bool one_shard = true;
  for (size_t j = begin + 1; j < end && one_shard; ++j) {
    one_shard = round[j].shard == round[begin].shard;
  }
  if (end - begin == 1 || one_shard) {
    // Nothing to parallelize: run inline without waking the pool. All
    // earlier events are complete here, and index order == chain order.
    for (size_t j = begin; j < end; ++j) RunEvent(j);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    next_task_.store(begin, std::memory_order_relaxed);
    segment_begin_ = begin;
    segment_end_ = end;
    ++segment_gen_;
    segment_active_ = true;
  }
  work_cv_.notify_all();
  // The driving thread participates in the segment.
  RunTasks(begin, end);
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Wait for completion AND for every worker to leave its task loop: a
    // worker between tasks could otherwise race the next segment's
    // next_task_ reset and grab an index against stale bounds.
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    done_cv_.wait(lk, [&] {
      return AllDoneBelowLocked(end) && busy_workers_ == 0;
    });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    segment_active_ = false;
  }
}

void ParallelExecutor::RunTasks(size_t begin, size_t end) {
  for (;;) {
    const size_t idx = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= end) return;
    RunTask(idx, begin, end);
  }
}

void ParallelExecutor::RunTask(size_t idx, size_t begin, size_t end) {
  const int prev = (*round_)[idx].prev_same_shard;
  if (prev >= static_cast<int>(begin) &&
      done_[prev].load(std::memory_order_seq_cst) == 0) {
    // The chain predecessor is (or just was) still running. Hand the event
    // off instead of blocking: if our exchange runs first, the
    // predecessor's runner sees the mark and continues the chain into this
    // event; if it runs second, the predecessor has retired and we own it.
    if (state_[idx].exchange(kStateClaimerPassed, std::memory_order_seq_cst) !=
        kStatePrevDone) {
      return;
    }
  }
  RunChainFrom(idx, end);
}

void ParallelExecutor::RunChainFrom(size_t idx, size_t end) {
  for (;;) {
    RunEvent(idx);
    const int next = (*round_)[idx].next_same_shard;
    if (next < 0 || static_cast<size_t>(next) >= end) return;
    // Mirror of RunTask's handoff: if the successor's claimer already
    // renounced it, keep the chain; otherwise the claimer (who has not
    // arrived yet) will see our done flag and run it.
    if (state_[next].exchange(kStatePrevDone, std::memory_order_seq_cst) !=
        kStateClaimerPassed) {
      return;
    }
    idx = static_cast<size_t>(next);
  }
}

void ParallelExecutor::WorkerLoop() {
  uint64_t seen_gen = 0;
  uint64_t seen_window_gen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] {
      return stop_ || (segment_active_ && segment_gen_ != seen_gen) ||
             (window_active_ && window_gen_ != seen_window_gen);
    });
    if (stop_) return;
    if (window_active_ && window_gen_ != seen_window_gen) {
      seen_window_gen = window_gen_;
      ++busy_workers_;
      WindowLoopLocked(lk);
      --busy_workers_;
      if (busy_workers_ == 0) done_cv_.notify_all();
      continue;
    }
    seen_gen = segment_gen_;
    const size_t begin = segment_begin_;
    const size_t end = segment_end_;
    ++busy_workers_;
    lk.unlock();
    RunTasks(begin, end);
    lk.lock();
    --busy_workers_;
    if (busy_workers_ == 0) done_cv_.notify_all();
  }
}

void ParallelExecutor::RunEvent(size_t idx) {
  // Chain order is enforced by the claim/handoff protocol (RunTask /
  // RunChainFrom): whoever reaches here owns the event and its same-shard
  // predecessor has completed.
  TickEvent& ev = (*round_)[idx];
  TickContext saved = tls_ctx;
  tls_ctx = TickContext{this, sim_, idx, nullptr, sim_->now_};
  ev.cb();
  tls_ctx = saved;
  MarkDone(idx);
}

bool ParallelExecutor::AllDoneBelowLocked(size_t idx) {
  while (done_scan_ < idx &&
         done_[done_scan_].load(std::memory_order_seq_cst) != 0) {
    ++done_scan_;
  }
  return done_scan_ >= idx;
}

void ParallelExecutor::WaitAllDoneBelow(size_t idx) {
  std::unique_lock<std::mutex> lk(mu_);
  if (AllDoneBelowLocked(idx)) return;
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  done_cv_.wait(lk, [&] { return AllDoneBelowLocked(idx); });
  waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void ParallelExecutor::MarkDone(size_t idx) {
  // Lock-free fast path. The seq_cst store/load pair against
  // WaitAllDoneBelow's registered-then-recheck sequence guarantees either we
  // see the waiter (and notify under the lock), or the waiter's predicate
  // re-check sees our flag before it sleeps.
  done_[idx].store(1, std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(mu_);
    done_cv_.notify_all();
  }
}

void ParallelExecutor::EnsureFlagCapacity(size_t n) {
  if (n <= flags_cap_) return;
  size_t cap = flags_cap_ == 0 ? 256 : flags_cap_;
  while (cap < n) cap *= 2;
  done_ = std::make_unique<std::atomic<uint8_t>[]>(cap);
  state_ = std::make_unique<std::atomic<uint8_t>[]>(cap);
  flags_cap_ = cap;
}

void ParallelExecutor::SyncShared() {
  const TickContext& ctx = tls_ctx;
  if (ctx.exec != this) return;  // not inside one of this executor's ticks
  if (ctx.win != nullptr) {
    // Window mode: proceed once the caller is the globally smallest
    // incomplete event — every event the serial loop would have run first
    // has completed, and (children sorting after their incomplete parents)
    // none can appear later.
    WindowEvent* self = static_cast<WindowEvent*>(ctx.win);
    std::unique_lock<std::mutex> lk(mu_);
    win_min_cv_.wait(lk, [&] { return *win_pending_.begin() == self; });
    return;
  }
  WaitAllDoneBelow(ctx.idx);
}

}  // namespace hotstuff1::sim

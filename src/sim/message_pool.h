// Pooled allocation for simulated wire messages.
//
// Consensus traffic allocates the same handful of message shapes millions of
// times per run (a broadcast fans one NetMessagePtr out to n nodes, but every
// *distinct* message is a fresh shared_ptr control block + payload). The
// general-purpose allocator handles that fine in isolation; under the sweep
// runner's thread pool it becomes the dominant source of cross-thread
// contention and cache churn. MakeMessage<T> routes the combined
// payload+control-block allocation of std::allocate_shared through small
// per-thread size-class caches, so the steady state of a run recycles message
// blocks with zero allocator traffic.
//
// Threading: a message may be allocated on one thread (sender shard) and
// released on another (last receiver to drop its reference). Caches are
// strictly thread-local — a block freed on thread B enters B's cache and is
// reused by B — so no atomics or locks are involved anywhere. Each cache
// drains itself on thread exit, keeping leak detectors quiet.
//
// Determinism: block addresses differ run-to-run (exactly as with the global
// allocator); nothing in the simulator keys ordering off message addresses.

#ifndef HOTSTUFF1_SIM_MESSAGE_POOL_H_
#define HOTSTUFF1_SIM_MESSAGE_POOL_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hotstuff1::sim {

/// Thread-local size-class pool. Blocks of up to kMaxPooled bytes are rounded
/// up to a 64-byte class and recycled through a bounded per-thread free list;
/// larger (or overflow) blocks fall through to operator new/delete.
class MessagePool {
 public:
  static constexpr size_t kGranularity = 64;
  static constexpr size_t kClasses = 16;
  static constexpr size_t kMaxPooled = kGranularity * kClasses;  // 1024 bytes
  /// Per-class, per-thread cache depth. Sized for the deepest in-flight
  /// message population a node fan-out produces (n=128 broadcast plus queued
  /// ingress); beyond it, frees go straight back to the heap.
  static constexpr size_t kCacheCap = 256;

  static void* Allocate(size_t n);
  static void Deallocate(void* p, size_t n) noexcept;

  /// Calling thread's cache hit/miss counters (tests).
  static size_t TlsCachedBlocks();

 private:
  static constexpr size_t ClassOf(size_t n) { return (n - 1) / kGranularity; }
  static constexpr size_t ClassBytes(size_t c) { return (c + 1) * kGranularity; }

  struct Cache;
  static Cache& Tls();
};

/// Minimal C++17 allocator over MessagePool. Stateless; all instances equal.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "MessagePool blocks are max_align_t-aligned");
    return static_cast<T*>(MessagePool::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) noexcept {
    MessagePool::Deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const noexcept {
    return false;
  }
};

/// Drop-in replacement for std::make_shared at message construction sites.
/// One pooled block holds the control block and the T payload (same layout
/// trick as make_shared), so a message costs zero heap allocations once the
/// calling thread's cache has warmed up.
template <typename T, typename... Args>
std::shared_ptr<T> MakeMessage(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace hotstuff1::sim

#endif  // HOTSTUFF1_SIM_MESSAGE_POOL_H_

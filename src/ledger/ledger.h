// The dual ledger of §3/§4: a committed global-ledger plus a speculative
// local-ledger implemented as an undo-logged overlay on one KvState.
//
// Invariants:
//  * state() always equals: committed chain effects + speculative stack
//    effects, applied in chain order.
//  * the speculative stack is a single path extending the committed tip.
//  * Rollback (Def. 4.7) pops the stack down to a common ancestor, restoring
//    state byte-for-byte; the global ledger is never rolled back.

#ifndef HOTSTUFF1_LEDGER_LEDGER_H_
#define HOTSTUFF1_LEDGER_LEDGER_H_

#include <cstdint>
#include <vector>

#include "ledger/block.h"
#include "ledger/block_store.h"
#include "ledger/kv_state.h"

namespace hotstuff1 {

/// Execution outcome for one committed or speculated block.
struct ExecResult {
  BlockPtr block;
  /// One result per transaction, positionally aligned with block->txns().
  std::vector<uint64_t> txn_results;
  /// True if the block had already been speculatively executed (so the
  /// replica already sent speculative responses for it).
  bool was_speculated = false;
};

class Ledger {
 public:
  /// `store` must outlive the ledger and contain every block passed in.
  /// `initial_state` is the pre-loaded application database.
  Ledger(const BlockStore* store, KvState initial_state);

  // --- committed (global) ledger --------------------------------------------
  const BlockPtr& committed_tip() const { return committed_tip_; }
  uint64_t committed_height() const { return committed_tip_->height(); }
  /// Committed blocks in order, starting with genesis.
  const std::vector<BlockPtr>& committed_chain() const { return committed_chain_; }
  bool IsCommitted(const Hash256& hash) const;

  // --- speculative (local) ledger -------------------------------------------
  /// Tip of the speculative chain (== committed tip when nothing is
  /// speculated).
  BlockPtr spec_tip() const;
  size_t spec_depth() const { return spec_stack_.size(); }
  bool IsSpeculated(const Hash256& hash) const;

  /// Speculatively executes `block`, which must extend spec_tip(). Returns
  /// per-transaction results. The caller (protocol) is responsible for the
  /// Prefix-Speculation and No-Gap rules; the ledger enforces only chain
  /// shape.
  const std::vector<uint64_t>& Speculate(const BlockPtr& block);

  /// Rolls the local ledger back so that spec_tip() has hash
  /// `ancestor_hash`; the ancestor must be on the speculative stack or be
  /// the committed tip. Returns the number of blocks rolled back.
  size_t RollbackTo(const Hash256& ancestor_hash);

  /// Commits every uncommitted ancestor of `target` (inclusive), in chain
  /// order. Speculated prefix blocks are promoted without re-execution;
  /// conflicting speculation is rolled back first; remaining blocks are
  /// executed directly. All blocks on the path must be in the store.
  std::vector<ExecResult> CommitChain(const BlockPtr& target);

  const KvState& state() const { return state_; }
  KvState& mutable_state() { return state_; }

  // --- stats -----------------------------------------------------------------
  uint64_t rollback_events() const { return rollback_events_; }
  uint64_t blocks_rolled_back() const { return blocks_rolled_back_; }
  uint64_t txns_committed() const { return txns_committed_; }
  uint64_t txns_speculated() const { return txns_speculated_; }

 private:
  struct SpecEntry {
    BlockPtr block;
    KvState::UndoLog undo;
    std::vector<uint64_t> results;
  };

  const BlockStore* store_;
  KvState state_;
  BlockPtr committed_tip_;
  std::vector<BlockPtr> committed_chain_;
  std::vector<SpecEntry> spec_stack_;

  uint64_t rollback_events_ = 0;
  uint64_t blocks_rolled_back_ = 0;
  uint64_t txns_committed_ = 0;
  uint64_t txns_speculated_ = 0;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_LEDGER_LEDGER_H_

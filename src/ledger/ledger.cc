#include "ledger/ledger.h"

#include <algorithm>

#include "common/logging.h"

namespace hotstuff1 {

Ledger::Ledger(const BlockStore* store, KvState initial_state)
    : store_(store), state_(std::move(initial_state)), committed_tip_(store->genesis()) {
  committed_chain_.push_back(committed_tip_);
}

bool Ledger::IsCommitted(const Hash256& hash) const {
  const BlockPtr b = store_->GetOrNull(hash);
  if (!b) return false;
  if (b->height() > committed_height()) return false;
  return committed_chain_[b->height()]->hash() == hash;
}

BlockPtr Ledger::spec_tip() const {
  return spec_stack_.empty() ? committed_tip_ : spec_stack_.back().block;
}

bool Ledger::IsSpeculated(const Hash256& hash) const {
  return std::any_of(spec_stack_.begin(), spec_stack_.end(),
                     [&](const SpecEntry& e) { return e.block->hash() == hash; });
}

const std::vector<uint64_t>& Ledger::Speculate(const BlockPtr& block) {
  HS1_CHECK(block->parent_hash() == spec_tip()->hash())
      << "speculation must extend the local-ledger tip: block "
      << block->ToString() << " does not extend " << spec_tip()->ToString();
  SpecEntry entry;
  entry.block = block;
  entry.results.reserve(block->txns().size());
  for (const Transaction& txn : block->txns()) {
    entry.results.push_back(state_.ApplyTxn(txn, &entry.undo));
  }
  txns_speculated_ += block->txns().size();
  spec_stack_.push_back(std::move(entry));
  return spec_stack_.back().results;
}

size_t Ledger::RollbackTo(const Hash256& ancestor_hash) {
  if (spec_tip()->hash() == ancestor_hash) return 0;
  size_t count = 0;
  while (!spec_stack_.empty() && spec_stack_.back().block->hash() != ancestor_hash) {
    state_.Undo(spec_stack_.back().undo);
    spec_stack_.pop_back();
    ++count;
  }
  if (spec_stack_.empty()) {
    HS1_CHECK(committed_tip_->hash() == ancestor_hash)
        << "rollback target " << ancestor_hash.Short()
        << " is neither on the speculative stack nor the committed tip";
  }
  ++rollback_events_;
  blocks_rolled_back_ += count;
  return count;
}

std::vector<ExecResult> Ledger::CommitChain(const BlockPtr& target) {
  std::vector<ExecResult> out;
  if (target->height() <= committed_height()) {
    // Must already be committed, otherwise a conflicting block reached the
    // commit rule -- a safety violation we refuse to mask.
    HS1_CHECK(IsCommitted(target->hash()))
        << "commit of " << target->ToString()
        << " conflicts with committed chain at height " << target->height();
    return out;
  }

  // Path from the first uncommitted ancestor up to target, in chain order.
  std::vector<BlockPtr> path;
  BlockPtr cur = target;
  while (cur->height() > committed_height()) {
    path.push_back(cur);
    BlockPtr parent = store_->GetOrNull(cur->parent_hash());
    HS1_CHECK(parent != nullptr)
        << "commit path has a gap below " << cur->ToString()
        << "; the protocol must fetch missing blocks before committing";
    cur = parent;
  }
  HS1_CHECK(cur->hash() == committed_tip_->hash())
      << "commit of " << target->ToString() << " forks below the committed tip";
  std::reverse(path.begin(), path.end());

  // Longest prefix of the speculative stack that matches the commit path is
  // promoted; everything above it is rolled back.
  size_t matched = 0;
  while (matched < path.size() && matched < spec_stack_.size() &&
         spec_stack_[matched].block->hash() == path[matched]->hash()) {
    ++matched;
  }
  // Speculation above the matched prefix is rolled back only when it
  // *diverges* from the commit path; speculation that extends the commit
  // target survives the commit.
  if (matched < path.size() && spec_stack_.size() > matched) {
    RollbackTo(matched == 0 ? committed_tip_->hash() : path[matched - 1]->hash());
  }

  out.reserve(path.size());
  for (size_t i = 0; i < path.size(); ++i) {
    ExecResult res;
    res.block = path[i];
    if (i < matched) {
      res.txn_results = std::move(spec_stack_[i].results);
      res.was_speculated = true;
    } else {
      res.txn_results.reserve(path[i]->txns().size());
      for (const Transaction& txn : path[i]->txns()) {
        res.txn_results.push_back(state_.ApplyTxn(txn, nullptr));
      }
    }
    txns_committed_ += path[i]->txns().size();
    committed_chain_.push_back(path[i]);
    out.push_back(std::move(res));
  }
  spec_stack_.erase(spec_stack_.begin(), spec_stack_.begin() + matched);
  committed_tip_ = path.back();
  HS1_CHECK_EQ(committed_chain_.size(), committed_height() + 1);
  return out;
}

}  // namespace hotstuff1

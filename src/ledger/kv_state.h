// The replicated state machine: a key-value store with undo-log support so
// speculative execution can be rolled back (§3, Rollback; §4.2).

#ifndef HOTSTUFF1_LEDGER_KV_STATE_H_
#define HOTSTUFF1_LEDGER_KV_STATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ledger/block.h"

namespace hotstuff1 {

class KvState {
 public:
  struct UndoEntry {
    uint64_t key;
    uint64_t old_value;
    bool existed;
  };
  /// Undo records in application order; Undo() replays them in reverse.
  using UndoLog = std::vector<UndoEntry>;

  void Reserve(size_t n) { map_.reserve(n); }

  /// Returns the value for `key`, or 0 when absent (fresh records read as 0).
  uint64_t Get(uint64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second;
  }

  bool Contains(uint64_t key) const { return map_.count(key) > 0; }
  size_t size() const { return map_.size(); }

  /// Applies one operation; appends an undo record for mutations if `undo`
  /// is non-null. Returns the operation result (read value / written value).
  uint64_t ApplyOp(const TxnOp& op, UndoLog* undo);

  /// Applies every op of `txn`; returns a deterministic result folding all
  /// op results (what replicas return to the client, and what clients match
  /// across the response quorum).
  uint64_t ApplyTxn(const Transaction& txn, UndoLog* undo);

  /// Reverts the mutations recorded in `log` (reverse order).
  void Undo(const UndoLog& log);

  /// Direct write used by workload loaders (no undo).
  void Put(uint64_t key, uint64_t value) { map_[key] = value; }

  /// Order-insensitive fingerprint of the full state; equal states have
  /// equal fingerprints. Used by tests to compare replicas.
  uint64_t Fingerprint() const;

 private:
  std::unordered_map<uint64_t, uint64_t> map_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_LEDGER_KV_STATE_H_

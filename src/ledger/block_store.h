// Per-replica store of every block the replica has seen, indexed by hash.
// Supports the ancestry queries the commit/speculation rules need and the
// fetch-by-hash recovery path (§4.2, Recovery Mechanism).

#ifndef HOTSTUFF1_LEDGER_BLOCK_STORE_H_
#define HOTSTUFF1_LEDGER_BLOCK_STORE_H_

#include <unordered_map>

#include "common/result.h"
#include "ledger/block.h"

namespace hotstuff1 {

class BlockStore {
 public:
  BlockStore();

  /// Inserts a block (idempotent). The parent need not be present yet.
  void Put(BlockPtr block);

  bool Contains(const Hash256& hash) const { return by_hash_.count(hash) > 0; }

  /// Returns the block or NotFound.
  Result<BlockPtr> Get(const Hash256& hash) const;

  /// Returns nullptr when absent (hot-path form of Get).
  BlockPtr GetOrNull(const Hash256& hash) const;

  BlockPtr genesis() const { return genesis_; }
  size_t size() const { return by_hash_.size(); }

  /// True iff `ancestor` is on the parent chain of `block` (inclusive).
  /// Requires intermediate blocks to be present; returns false on a gap.
  bool IsAncestor(const Hash256& ancestor, const BlockPtr& block) const;

  /// Walks up from `block` to its ancestor at `height`. nullptr on a gap.
  BlockPtr AncestorAt(const BlockPtr& block, uint64_t height) const;

  /// Lowest common ancestor of two blocks; nullptr on a gap. Both chains
  /// share genesis, so for fully-connected stores this never fails.
  BlockPtr CommonAncestor(const BlockPtr& a, const BlockPtr& b) const;

  /// Parent of `block`, or nullptr if missing / genesis.
  BlockPtr Parent(const BlockPtr& block) const;

 private:
  std::unordered_map<Hash256, BlockPtr, Hash256Hasher> by_hash_;
  BlockPtr genesis_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_LEDGER_BLOCK_STORE_H_

// Transactions and blocks. Blocks are identified by (view, slot) per the
// slotting design (§6.1) and hash-linked through parent pointers; the
// non-slotted protocols always use slot 1.

#ifndef HOTSTUFF1_LEDGER_BLOCK_H_
#define HOTSTUFF1_LEDGER_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace hotstuff1 {

/// A single key-value operation inside a transaction.
struct TxnOp {
  enum class Kind : uint8_t { kRead = 0, kWrite = 1, kReadModifyWrite = 2 };
  Kind kind = Kind::kWrite;
  uint64_t key = 0;
  uint64_t value = 0;
};

/// A client transaction: an ordered list of KV operations. `submit_time`
/// feeds client-latency measurement; it does not affect execution.
struct Transaction {
  uint64_t id = 0;  // globally unique (client id, sequence) packed by caller
  SimTime submit_time = 0;
  std::vector<TxnOp> ops;
  uint32_t payload_bytes = 0;  // extra wire bytes beyond the op encoding

  size_t WireSize() const { return 24 + ops.size() * 17 + payload_bytes; }
};

/// Block position in the two-dimensional (view, slot) chain of Fig. 5.
/// Ordering is lexicographic: lower view first, then lower slot (§6.1).
struct BlockId {
  uint64_t view = 0;
  uint32_t slot = 1;

  bool operator==(const BlockId& o) const { return view == o.view && slot == o.slot; }
  bool operator!=(const BlockId& o) const { return !(*this == o); }
  bool operator<(const BlockId& o) const {
    if (view != o.view) return view < o.view;
    return slot < o.slot;
  }
  bool operator<=(const BlockId& o) const { return *this < o || *this == o; }

  std::string ToString() const {
    return "B(" + std::to_string(slot) + "," + std::to_string(view) + ")";
  }
};

class Block;
using BlockPtr = std::shared_ptr<const Block>;

/// \brief Immutable block of client transactions.
class Block {
 public:
  /// Builds a block and computes its hash. `carry_hash` is the hash of the
  /// carried uncertified block for first-slot proposals in way (ii) of §6.1,
  /// or zero when absent.
  Block(BlockId id, Hash256 parent_hash, uint64_t height, ReplicaId proposer,
        std::vector<Transaction> txns, Hash256 carry_hash = Hash256{});

  const BlockId& id() const { return id_; }
  uint64_t view() const { return id_.view; }
  uint32_t slot() const { return id_.slot; }
  const Hash256& parent_hash() const { return parent_hash_; }
  /// Distance from genesis (genesis = 0); commit order index.
  uint64_t height() const { return height_; }
  ReplicaId proposer() const { return proposer_; }
  const std::vector<Transaction>& txns() const { return txns_; }
  const Hash256& carry_hash() const { return carry_hash_; }
  bool has_carry() const { return !carry_hash_.IsZero(); }
  const Hash256& hash() const { return hash_; }

  bool IsGenesis() const { return height_ == 0; }

  size_t WireSize() const;

  /// The genesis block every replica hard-codes ("the Propose message for
  /// view 0 extends a hard-coded certificate", §4.1).
  static BlockPtr Genesis();

  std::string ToString() const;

 private:
  BlockId id_;
  Hash256 parent_hash_;
  uint64_t height_;
  ReplicaId proposer_;
  std::vector<Transaction> txns_;
  Hash256 carry_hash_;
  Hash256 hash_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_LEDGER_BLOCK_H_

#include "ledger/kv_state.h"

namespace hotstuff1 {

namespace {

// 64-bit mix (splitmix64 finalizer) for result folding and fingerprints.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t KvState::ApplyOp(const TxnOp& op, UndoLog* undo) {
  switch (op.kind) {
    case TxnOp::Kind::kRead:
      return Get(op.key);
    case TxnOp::Kind::kWrite: {
      auto it = map_.find(op.key);
      if (undo) {
        undo->push_back(UndoEntry{op.key, it == map_.end() ? 0 : it->second,
                                  it != map_.end()});
      }
      if (it == map_.end()) {
        map_.emplace(op.key, op.value);
      } else {
        it->second = op.value;
      }
      return op.value;
    }
    case TxnOp::Kind::kReadModifyWrite: {
      auto it = map_.find(op.key);
      const uint64_t old = it == map_.end() ? 0 : it->second;
      if (undo) undo->push_back(UndoEntry{op.key, old, it != map_.end()});
      const uint64_t updated = old + op.value;
      if (it == map_.end()) {
        map_.emplace(op.key, updated);
      } else {
        it->second = updated;
      }
      return updated;
    }
  }
  return 0;
}

uint64_t KvState::ApplyTxn(const Transaction& txn, UndoLog* undo) {
  uint64_t result = Mix(txn.id);
  for (const TxnOp& op : txn.ops) {
    result = Mix(result ^ ApplyOp(op, undo));
  }
  return result;
}

void KvState::Undo(const UndoLog& log) {
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    if (it->existed) {
      map_[it->key] = it->old_value;
    } else {
      map_.erase(it->key);
    }
  }
}

uint64_t KvState::Fingerprint() const {
  uint64_t fp = 0;
  for (const auto& [k, v] : map_) {
    fp ^= Mix(Mix(k) ^ v);  // XOR-fold: order independent
  }
  return fp;
}

}  // namespace hotstuff1

#include "ledger/block.h"

namespace hotstuff1 {

Block::Block(BlockId id, Hash256 parent_hash, uint64_t height, ReplicaId proposer,
             std::vector<Transaction> txns, Hash256 carry_hash)
    : id_(id),
      parent_hash_(parent_hash),
      height_(height),
      proposer_(proposer),
      txns_(std::move(txns)),
      carry_hash_(carry_hash) {
  Sha256 ctx;
  ctx.Update("hs1-block");
  ctx.UpdateU64(id_.view);
  ctx.UpdateU64(id_.slot);
  ctx.Update(parent_hash_);
  ctx.UpdateU64(height_);
  ctx.UpdateU64(proposer_);
  ctx.Update(carry_hash_);
  ctx.UpdateU64(txns_.size());
  for (const Transaction& t : txns_) {
    ctx.UpdateU64(t.id);
    ctx.UpdateU64(t.ops.size());
    for (const TxnOp& op : t.ops) {
      ctx.UpdateU64(static_cast<uint64_t>(op.kind));
      ctx.UpdateU64(op.key);
      ctx.UpdateU64(op.value);
    }
  }
  hash_ = ctx.Finish();
}

size_t Block::WireSize() const {
  size_t size = 96;  // header: ids, hashes, proposer
  for (const Transaction& t : txns_) size += t.WireSize();
  return size;
}

BlockPtr Block::Genesis() {
  static const BlockPtr kGenesis = std::make_shared<Block>(
      BlockId{0, 0}, Hash256{}, /*height=*/0, /*proposer=*/0,
      std::vector<Transaction>{});
  return kGenesis;
}

std::string Block::ToString() const {
  return id_.ToString() + "@h" + std::to_string(height_) + " " + hash_.Short();
}

}  // namespace hotstuff1

#include "ledger/block_store.h"

#include "common/logging.h"

namespace hotstuff1 {

BlockStore::BlockStore() : genesis_(Block::Genesis()) {
  by_hash_.emplace(genesis_->hash(), genesis_);
}

void BlockStore::Put(BlockPtr block) {
  by_hash_.emplace(block->hash(), std::move(block));
}

Result<BlockPtr> BlockStore::Get(const Hash256& hash) const {
  auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) {
    return Status::NotFound("block " + hash.Short() + " not in store");
  }
  return it->second;
}

BlockPtr BlockStore::GetOrNull(const Hash256& hash) const {
  auto it = by_hash_.find(hash);
  return it == by_hash_.end() ? nullptr : it->second;
}

BlockPtr BlockStore::Parent(const BlockPtr& block) const {
  if (block->IsGenesis()) return nullptr;
  return GetOrNull(block->parent_hash());
}

BlockPtr BlockStore::AncestorAt(const BlockPtr& block, uint64_t height) const {
  BlockPtr cur = block;
  while (cur && cur->height() > height) cur = Parent(cur);
  if (!cur || cur->height() != height) return nullptr;
  return cur;
}

bool BlockStore::IsAncestor(const Hash256& ancestor, const BlockPtr& block) const {
  BlockPtr anc = GetOrNull(ancestor);
  if (!anc) return false;
  BlockPtr at = AncestorAt(block, anc->height());
  return at && at->hash() == ancestor;
}

BlockPtr BlockStore::CommonAncestor(const BlockPtr& a, const BlockPtr& b) const {
  BlockPtr x = a, y = b;
  while (x && y && x->hash() != y->hash()) {
    if (x->height() > y->height()) {
      x = Parent(x);
    } else if (y->height() > x->height()) {
      y = Parent(y);
    } else {
      x = Parent(x);
      y = Parent(y);
    }
  }
  if (!x || !y) return nullptr;
  return x;
}

}  // namespace hotstuff1

// Shared protocol configuration: quorum parameters, timers, the virtual CPU
// cost model, and test/ablation hooks.

#ifndef HOTSTUFF1_CONSENSUS_CONFIG_H_
#define HOTSTUFF1_CONSENSUS_CONFIG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "crypto/authenticator.h"

namespace hotstuff1 {

/// Virtual CPU costs (microseconds) charged against a replica's simulated
/// processor. Calibrated so that the no-failure latency/throughput regimes
/// of §7 appear (see DESIGN.md "Virtual resource model").
struct CostModel {
  SimTime sign_us = 12;           // producing one signature share
  SimTime verify_us = 15;         // verifying one signature
  SimTime per_message_us = 6;     // parsing/dispatch per received message
  double per_txn_exec_us = 0.5;   // executing one transaction
  SimTime propose_base_us = 25;   // assembling a proposal

  SimTime ExecCost(size_t txns) const {
    return static_cast<SimTime>(per_txn_exec_us * static_cast<double>(txns));
  }
};

/// Byzantine behaviours used by the failure experiments (§7.3).
enum class Fault : uint8_t {
  kNone = 0,
  kCrash = 1,
  /// D6: as leader, delay proposing until the view timer is nearly over.
  /// Under slotting the incentive flips and the leader proposes promptly
  /// (the experiment's point), so slotted replicas ignore this flag.
  kSlowLeader = 2,
  /// D7: as leader, ignore the previous view's votes/certificate and extend
  /// the certificate of view v-2, orphaning the previous proposal.
  kTailFork = 3,
  /// §7.3 Rollback: as leader, form P(v) but equivocate - send the honest
  /// extension only to `rollback_victims` correct replicas and a conflicting
  /// proposal (extending P(v-1)) to everyone else, forcing the victims to
  /// roll back their speculation. Colluding faulty replicas vote for the
  /// conflicting branch.
  kRollbackAttack = 4,
};

struct AdversarySpec {
  Fault fault = Fault::kNone;
  /// For kRollbackAttack: |S|, the number of correct replicas to mislead.
  uint32_t rollback_victims = 0;
  /// Faulty replicas vote for any proposal from a faulty leader, bypassing
  /// safety checks (collusion). Defaults on for Byzantine faults.
  bool collude = false;
  /// Shared membership of the adversary's coalition: faulty->at(r) is true
  /// iff replica r is adversary-controlled. Null for honest replicas.
  std::shared_ptr<const std::vector<bool>> faulty;

  bool IsByzantine() const {
    return fault != Fault::kNone && fault != Fault::kCrash;
  }
};

struct ConsensusConfig {
  uint32_t n = 4;
  uint32_t f = 1;
  uint32_t batch_size = 100;
  /// Assumed transmission bound Δ (drives ShareTimer = entry + 3Δ).
  SimTime delta = Millis(2);
  /// View timer length τ handed to the pacemaker.
  SimTime view_timer = Millis(10);
  CostModel costs;
  /// Wire encoding of shares/certificates — a pure byte-size axis charged by
  /// Network's bandwidth serialization (crypto/authenticator.h). The
  /// consensus-visible certificate contract is scheme-independent.
  CertScheme cert_scheme = CertScheme::kMultisigVector;

  /// Slotted HotStuff-1: cap on slots per view; 0 = adaptive (as many as the
  /// view timer allows, §6.1).
  uint32_t max_slots_per_view = 0;

  // --- ablation & test hooks -------------------------------------------------
  /// Disable speculative responses entirely (HotStuff-1 degenerates to
  /// HotStuff-2 latency; ablation 1 in DESIGN.md).
  bool speculation_enabled = true;
  /// Disable the Prefix Speculation rule (Def. 3.1). Test-only: reproduces
  /// the Appendix A client-safety violations.
  bool enforce_prefix_rule = true;
  /// Disable the No-Gap rule (Def. 3.2). Test-only.
  bool enforce_no_gap_rule = true;
  /// Disable the trusted-previous-leader fast path (§6.3; ablation 3).
  bool trusted_leader_enabled = true;
  /// Test-only mutation hook for the invariant oracle's self-test: the
  /// streamlined HotStuff-1 core injects an equivocation-commit bug (a
  /// replica whose speculation conflicts with the certified chain commits
  /// the speculated branch instead of rolling it back). Proves the oracle
  /// fires; never enable outside tests.
  bool test_break_safety = false;

  uint32_t quorum() const { return n - f; }

  /// Size model the transport stamps onto outgoing messages.
  AuthSizeModel auth_model() const { return AuthSizeModel{cert_scheme, n}; }

  /// Standard configuration for n replicas with f = floor((n-1)/3).
  static ConsensusConfig ForN(uint32_t n) {
    ConsensusConfig cfg;
    cfg.n = n;
    cfg.f = (n - 1) / 3;
    return cfg;
  }
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_CONFIG_H_

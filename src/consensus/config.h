// Shared protocol configuration: quorum parameters, timers, the virtual CPU
// cost model, and test/ablation hooks.

#ifndef HOTSTUFF1_CONSENSUS_CONFIG_H_
#define HOTSTUFF1_CONSENSUS_CONFIG_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "consensus/committee.h"
#include "crypto/authenticator.h"

namespace hotstuff1 {

/// Virtual CPU costs (microseconds) charged against a replica's simulated
/// processor. Calibrated so that the no-failure latency/throughput regimes
/// of §7 appear (see DESIGN.md "Virtual resource model").
struct CostModel {
  SimTime sign_us = 12;           // producing one signature share
  SimTime verify_us = 15;         // verifying one signature
  SimTime per_message_us = 6;     // parsing/dispatch per received message
  double per_txn_exec_us = 0.5;   // executing one transaction
  SimTime propose_base_us = 25;   // assembling a proposal

  SimTime ExecCost(size_t txns) const {
    return static_cast<SimTime>(per_txn_exec_us * static_cast<double>(txns));
  }
};

// --- composable adversary strategies -----------------------------------------
// The legacy Fault enum below models three fixed attacks. The strategy
// schedule generalizes them: per-epoch combinations of four primitives, each
// independently toggled for the adversary coalition. runtime/adversary.{h,cc}
// parses/formats schedules and threads them into AdversarySpec; replicas
// consult them through the AdversarySpec helpers at their transport and
// proposal choke points.

/// Primitive adversary actions, combinable as a bitmask per epoch.
enum StrategyAction : uint32_t {
  kActNone = 0,
  /// Split proposals across a victim mask (§7.3 rollback equivocation).
  kActEquivocate = 1u << 0,
  /// Drop all outbound protocol traffic (silent-but-listening coalition).
  kActWithhold = 1u << 1,
  /// Extra one-way delay on all of the coalition's outbound traffic
  /// (implemented as Network fault rules — only ever *adds* delay, so the
  /// lookahead horizon stays valid).
  kActDelay = 1u << 2,
  /// Drop traffic addressed to the current or next view's leader, starving
  /// certificate formation without going fully silent.
  kActTargetLeader = 1u << 3,
  /// Network split: traffic between the entry's node groups is dropped for
  /// the entry's epochs; the partition heals when the entry ends (its
  /// to_epoch is the heal time). Environmental — applies to all traffic,
  /// not just the coalition's.
  kActPartition = 1u << 4,
  /// Correlated regional outage: all traffic to and from the entry's
  /// topology regions is dropped. Environmental.
  kActOutage = 1u << 5,
  /// WAN jitter: every cross-node delivery gains a uniformly random extra
  /// delay of up to jitter_pct% of its base latency (only ever *adds* delay,
  /// so the lookahead horizon stays valid). Environmental.
  kActJitter = 1u << 6,
};

/// Sentinel for an open-ended strategy entry.
inline constexpr uint32_t kEpochForever = UINT32_MAX;

/// One schedule row: `actions` are live during epochs [from_epoch, to_epoch).
struct StrategyEntry {
  uint32_t from_epoch = 0;
  uint32_t to_epoch = kEpochForever;  // exclusive; kEpochForever = open-ended
  uint32_t actions = kActNone;
  SimTime delay = 0;  // only read when actions has kActDelay
  /// kActPartition: node groups isolated from each other (each group a
  /// sorted id list; nodes in no group communicate freely with everyone).
  std::vector<std::vector<uint32_t>> partition;
  /// kActOutage: topology region indices cut off from the rest.
  std::vector<uint32_t> outage_regions;
  /// kActJitter: max extra delay as an integer percentage of base latency.
  uint32_t jitter_pct = 0;
};

inline bool operator==(const StrategyEntry& a, const StrategyEntry& b) {
  return a.from_epoch == b.from_epoch && a.to_epoch == b.to_epoch &&
         a.actions == b.actions && a.delay == b.delay &&
         a.partition == b.partition && a.outage_regions == b.outage_regions &&
         a.jitter_pct == b.jitter_pct;
}

/// A per-epoch adversary strategy for the whole coalition. Epochs are fixed
/// wall-clock slices of `epoch_length` virtual time (0 = resolve to
/// (f+1) * view_timer at experiment setup, mirroring the pacemaker's
/// f+1-views-per-epoch grouping). `declared_gst` is the time the adversary
/// *claims* interference ends (Global Stabilization Time): kGstAuto derives
/// it from the schedule — the end of the last interference entry, or "never"
/// for open-ended interference. A schedule that keeps interfering past its
/// declared GST is exactly what the liveness oracle exists to flag.
struct StrategySchedule {
  std::vector<StrategyEntry> entries;
  SimTime epoch_length = 0;          // 0 = auto: (f+1) * view_timer
  static constexpr SimTime kGstAuto = -1;
  static constexpr SimTime kGstNever = INT64_MAX;
  SimTime declared_gst = kGstAuto;

  bool empty() const { return entries.empty(); }

  bool HasAction(uint32_t action) const {
    for (const StrategyEntry& e : entries) {
      if (e.actions & action) return true;
    }
    return false;
  }

  /// OR of all actions live during epoch `epoch`.
  uint32_t ActionsInEpoch(uint32_t epoch) const {
    uint32_t a = kActNone;
    for (const StrategyEntry& e : entries) {
      if (epoch >= e.from_epoch && epoch < e.to_epoch) a |= e.actions;
    }
    return a;
  }

  /// Epoch index at virtual time `now`. Requires a resolved epoch_length.
  uint32_t EpochAt(SimTime now) const {
    return epoch_length <= 0 ? 0 : static_cast<uint32_t>(now / epoch_length);
  }

  uint32_t ActionsAt(SimTime now) const {
    return entries.empty() ? kActNone : ActionsInEpoch(EpochAt(now));
  }

  /// Actions that perturb message timeliness (everything but equivocation;
  /// an equivocating leader is a safety problem, not a progress problem).
  /// Partitions, outages, and jitter are environmental interference: their
  /// entries' ends (heal times) push GST just like coalition delay does.
  static constexpr uint32_t kInterference =
      kActWithhold | kActDelay | kActTargetLeader | kActPartition | kActOutage |
      kActJitter;

  /// Concrete GST given a resolved epoch_length: the declared time if set,
  /// else the end of the last interference entry (0 when the schedule never
  /// interferes, kGstNever when it interferes open-endedly).
  SimTime ResolvedGst() const {
    if (declared_gst != kGstAuto) return declared_gst;
    SimTime gst = 0;
    for (const StrategyEntry& e : entries) {
      if (!(e.actions & kInterference)) continue;
      if (e.to_epoch == kEpochForever) return kGstNever;
      gst = std::max(gst, static_cast<SimTime>(e.to_epoch) * epoch_length);
    }
    return gst;
  }
};

inline bool operator==(const StrategySchedule& a, const StrategySchedule& b) {
  return a.entries == b.entries && a.epoch_length == b.epoch_length &&
         a.declared_gst == b.declared_gst;
}
inline bool operator!=(const StrategySchedule& a, const StrategySchedule& b) {
  return !(a == b);
}

/// Byzantine behaviours used by the failure experiments (§7.3).
enum class Fault : uint8_t {
  kNone = 0,
  kCrash = 1,
  /// D6: as leader, delay proposing until the view timer is nearly over.
  /// Under slotting the incentive flips and the leader proposes promptly
  /// (the experiment's point), so slotted replicas ignore this flag.
  kSlowLeader = 2,
  /// D7: as leader, ignore the previous view's votes/certificate and extend
  /// the certificate of view v-2, orphaning the previous proposal.
  kTailFork = 3,
  /// §7.3 Rollback: as leader, form P(v) but equivocate - send the honest
  /// extension only to `rollback_victims` correct replicas and a conflicting
  /// proposal (extending P(v-1)) to everyone else, forcing the victims to
  /// roll back their speculation. Colluding faulty replicas vote for the
  /// conflicting branch.
  kRollbackAttack = 4,
};

struct AdversarySpec {
  Fault fault = Fault::kNone;
  /// For kRollbackAttack: |S|, the number of correct replicas to mislead.
  uint32_t rollback_victims = 0;
  /// Faulty replicas vote for any proposal from a faulty leader, bypassing
  /// safety checks (collusion). Defaults on for Byzantine faults.
  bool collude = false;
  /// Shared membership of the adversary's coalition: faulty->at(r) is true
  /// iff replica r is adversary-controlled. Null for honest replicas.
  std::shared_ptr<const std::vector<bool>> faulty;
  /// Per-epoch strategy schedule (resolved: epoch_length > 0). Null for
  /// honest replicas and for legacy fixed-fault runs without a schedule.
  std::shared_ptr<const StrategySchedule> schedule;

  bool IsByzantine() const {
    return fault != Fault::kNone && fault != Fault::kCrash;
  }

  /// Schedule-driven actions live at `now` (legacy faults NOT folded in —
  /// use the named helpers below for behaviour checks).
  uint32_t ScheduledActions(SimTime now) const {
    return schedule ? schedule->ActionsAt(now) : kActNone;
  }
  /// The leader splits proposals across the victim mask. True for the legacy
  /// kRollbackAttack in every epoch, and wherever the schedule says so.
  bool Equivocates(SimTime now) const {
    return fault == Fault::kRollbackAttack ||
           (ScheduledActions(now) & kActEquivocate) != 0;
  }
  bool Withholds(SimTime now) const {
    return (ScheduledActions(now) & kActWithhold) != 0;
  }
  bool TargetsLeader(SimTime now) const {
    return (ScheduledActions(now) & kActTargetLeader) != 0;
  }
};

struct ConsensusConfig {
  uint32_t n = 4;
  uint32_t f = 1;
  uint32_t batch_size = 100;
  /// Assumed transmission bound Δ (drives ShareTimer = entry + 3Δ).
  SimTime delta = Millis(2);
  /// View timer length τ handed to the pacemaker.
  SimTime view_timer = Millis(10);
  CostModel costs;
  /// Wire encoding of shares/certificates — a pure byte-size axis charged by
  /// Network's bandwidth serialization (crypto/authenticator.h). The
  /// consensus-visible certificate contract is scheme-independent.
  CertScheme cert_scheme = CertScheme::kMultisigVector;

  /// Slotted HotStuff-1: cap on slots per view; 0 = adaptive (as many as the
  /// view timer allows, §6.1).
  uint32_t max_slots_per_view = 0;

  /// Epoch-based committee reconfiguration schedule (resolved:
  /// views_per_epoch > 0). Null = the full static committee of n nodes —
  /// byte-identical legacy behaviour. When set, `n`/`f` describe the
  /// *allocated* node pool (epoch geometry, transport sizing, fault masks);
  /// per-view quorum/leader arithmetic goes through the schedule.
  std::shared_ptr<const CommitteeSchedule> committee;

  // --- ablation & test hooks -------------------------------------------------
  /// Disable speculative responses entirely (HotStuff-1 degenerates to
  /// HotStuff-2 latency; ablation 1 in DESIGN.md).
  bool speculation_enabled = true;
  /// Disable the Prefix Speculation rule (Def. 3.1). Test-only: reproduces
  /// the Appendix A client-safety violations.
  bool enforce_prefix_rule = true;
  /// Disable the No-Gap rule (Def. 3.2). Test-only.
  bool enforce_no_gap_rule = true;
  /// Disable the trusted-previous-leader fast path (§6.3; ablation 3).
  bool trusted_leader_enabled = true;
  /// Test-only mutation hook for the invariant oracle's self-test: the
  /// streamlined HotStuff-1 core injects an equivocation-commit bug (a
  /// replica whose speculation conflicts with the certified chain commits
  /// the speculated branch instead of rolling it back). Proves the oracle
  /// fires; never enable outside tests.
  bool test_break_safety = false;
  /// Test-only mutation hook for the *liveness* oracle's self-test: the
  /// pacemaker silently stops sending Wish messages after epoch 0, so view
  /// synchronization stalls at the first epoch boundary while every
  /// end-of-run safety check stays green. Only the online progress monitor
  /// (runtime/liveness.h) catches it. Never enable outside tests.
  bool test_break_liveness = false;
  /// Test-only mutation hook for the oracle's *cross-reconfiguration*
  /// self-test: a replica that is voted out of the committee commits a
  /// fabricated block on top of its committed tip as it leaves, then halts.
  /// The end-of-run CheckSafety skips crashed replicas, so only the
  /// InvariantOracle's height-keyed commit lattice — which spans epochs —
  /// catches the conflict with what the new committee commits at that
  /// height. Never enable outside tests.
  bool test_break_reconfig = false;

  uint32_t quorum() const { return n - f; }

  /// Size model the transport stamps onto outgoing messages.
  AuthSizeModel auth_model() const { return AuthSizeModel{cert_scheme, n}; }

  /// Standard configuration for n replicas with f = floor((n-1)/3).
  static ConsensusConfig ForN(uint32_t n) {
    ConsensusConfig cfg;
    cfg.n = n;
    cfg.f = (n - 1) / 3;
    return cfg;
  }
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_CONFIG_H_

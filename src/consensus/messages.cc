#include "consensus/messages.h"

namespace hotstuff1 {

const char* MessageTypeName(ConsensusMessage::Type type) {
  switch (type) {
    case ConsensusMessage::Type::kPropose: return "Propose";
    case ConsensusMessage::Type::kVote: return "Vote";
    case ConsensusMessage::Type::kPrepare: return "Prepare";
    case ConsensusMessage::Type::kNewView: return "NewView";
    case ConsensusMessage::Type::kReject: return "Reject";
    case ConsensusMessage::Type::kWish: return "Wish";
    case ConsensusMessage::Type::kTimeoutCert: return "TimeoutCert";
    case ConsensusMessage::Type::kFetchRequest: return "FetchRequest";
    case ConsensusMessage::Type::kFetchResponse: return "FetchResponse";
  }
  return "?";
}

}  // namespace hotstuff1

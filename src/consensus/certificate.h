// Certificates: quorums of signature shares over a block, in one of four
// roles. Matching the paper's implementation note (§7), a certificate is a
// list of n−f digital signatures rather than an aggregated threshold
// signature; the consensus-visible contract is identical.
//
// Kinds:
//   kPrepare  - first-phase certificate P(v) (basic & streamlined protocols)
//   kCommit   - second-phase certificate C(v) (basic HotStuff-1 only)
//   kNewSlot  - slotting: certifies slot (s, v) within a view (§6.1)
//   kNewView  - slotting: formed from NewView votes; annotated with the view
//               `fv` in which it was formed (§6.1)

#ifndef HOTSTUFF1_CONSENSUS_CERTIFICATE_H_
#define HOTSTUFF1_CONSENSUS_CERTIFICATE_H_

#include <string>
#include <vector>

#include "common/replica_set.h"
#include "common/status.h"
#include "crypto/authenticator.h"
#include "crypto/signer.h"
#include "ledger/block.h"

namespace hotstuff1 {

enum class CertKind : uint8_t {
  kPrepare = 0,
  kCommit = 1,
  kNewSlot = 2,
  kNewView = 3,
};

const char* CertKindName(CertKind kind);

/// Digest a voter signs for a given vote. `context_view` is the view the
/// vote is cast in (for NewView votes, the view being entered), binding
/// shares to their protocol step so they cannot be replayed across views,
/// slots, or certificate kinds.
Hash256 VoteDigest(CertKind kind, uint64_t context_view, const BlockId& block_id,
                   const Hash256& block_hash);

/// \brief Quorum certificate over one block.
class Certificate {
 public:
  Certificate() = default;
  Certificate(CertKind kind, BlockId block_id, Hash256 block_hash,
              uint64_t formed_view, std::vector<Signature> sigs)
      : kind_(kind),
        block_id_(block_id),
        block_hash_(block_hash),
        formed_view_(formed_view),
        sigs_(std::move(sigs)) {}

  /// The hard-coded certificate for the genesis block that every replica
  /// assumes valid (§4.1).
  static Certificate Genesis();

  CertKind kind() const { return kind_; }
  /// (slot, view) of the certified block.
  const BlockId& block_id() const { return block_id_; }
  uint64_t view() const { return block_id_.view; }
  uint32_t slot() const { return block_id_.slot; }
  const Hash256& block_hash() const { return block_hash_; }
  /// View in which the certificate was formed. Equals the block's view for
  /// Prepare/Commit/NewSlot certificates; may be higher for NewView
  /// certificates (the `fv` annotation of §6.1).
  uint64_t formed_view() const { return formed_view_; }
  const std::vector<Signature>& sigs() const { return sigs_; }

  bool IsGenesis() const { return block_id_ == BlockId{0, 0} && sigs_.empty(); }

  /// Lexicographic certificate ranking used for "highest known certificate"
  /// comparisons ((view, slot) of the certified block, §6.1).
  bool RanksLowerThan(const Certificate& other) const {
    return block_id_ < other.block_id_;
  }
  bool RanksAtMost(const Certificate& other) const {
    return block_id_ <= other.block_id_;
  }

  /// Full verification: quorum size, signer distinctness, signature validity
  /// over the reconstructed vote digest. Genesis verifies trivially.
  Status Verify(const KeyRegistry& registry, uint32_t quorum) const;

  /// Wire bytes: a 64-byte header (kind, block id, hashes, formed view) plus
  /// the authenticator section, whose size the scheme decides — the share
  /// vector is O(n), an aggregate is O(1) + bitmap, a threshold signature is
  /// O(1). The default model (multisig vector) reproduces the historical
  /// 64 + shares*96 accounting. Only the byte count varies: `sigs_` itself —
  /// share counting, signer distinctness, digest verification — is identical
  /// under every scheme.
  size_t WireSize(const AuthSizeModel& model = AuthSizeModel{}) const {
    return 64 + model.CertBytes(sigs_.size());
  }

  std::string ToString() const;

 private:
  CertKind kind_ = CertKind::kPrepare;
  BlockId block_id_{0, 0};
  Hash256 block_hash_;
  uint64_t formed_view_ = 0;
  std::vector<Signature> sigs_;
};

/// \brief Accumulates vote shares until a quorum forms. One instance per
/// (kind, context view, block) the aggregating leader tracks.
class VoteAccumulator {
 public:
  VoteAccumulator(CertKind kind, uint64_t context_view, BlockId block_id,
                  Hash256 block_hash, uint32_t quorum)
      : kind_(kind),
        context_view_(context_view),
        block_id_(block_id),
        block_hash_(block_hash),
        quorum_(quorum) {}

  /// Adds a share if the signer is new. Returns true when the quorum is
  /// reached exactly by this addition (fires once).
  bool Add(const Signature& sig);

  size_t count() const { return sigs_.size(); }
  bool complete() const { return sigs_.size() >= quorum_; }

  /// Builds the certificate; requires complete(). `formed_view` defaults to
  /// the block's view.
  Certificate Build(uint64_t formed_view) const;
  Certificate Build() const { return Build(block_id_.view); }

  const Hash256& block_hash() const { return block_hash_; }
  const BlockId& block_id() const { return block_id_; }

 private:
  CertKind kind_;
  uint64_t context_view_;
  BlockId block_id_;
  Hash256 block_hash_;
  uint32_t quorum_;
  ReplicaSet signers_;  // O(1) duplicate-signer rejection at any committee size
  std::vector<Signature> sigs_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_CERTIFICATE_H_

#include "consensus/metrics.h"

// Header-only; TU kept for build-system symmetry.

namespace hotstuff1 {}

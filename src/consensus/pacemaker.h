// Pacemaker / view synchronizer (Fig. 3): views are grouped into epochs of
// f+1 consecutive views; replicas synchronize at every epoch boundary by
// exchanging Wish messages with the f+1 leaders of the next epoch, which
// form and broadcast a timeout certificate TC_v. On receiving TC_v at time
// t, a replica schedules StartTime[v+k] = t + k*tau; the start of view v+k
// is also the timeout of view v+k-1.
//
// Inside an epoch, views advance at network speed (a replica enters view
// v+1 the moment it completes view v); the wall-clock schedule only forces
// laggards forward.

#ifndef HOTSTUFF1_CONSENSUS_PACEMAKER_H_
#define HOTSTUFF1_CONSENSUS_PACEMAKER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/replica_set.h"
#include "consensus/committee.h"
#include "consensus/messages.h"
#include "crypto/signer.h"
#include "sim/simulator.h"

namespace hotstuff1 {

class Pacemaker {
 public:
  struct Callbacks {
    /// Replica enters `view` (possibly jumping over stale views).
    std::function<void(uint64_t view)> enter_view;
    /// The replica's current view timed out; the replica must send its
    /// NewView message and then call CompletedView(view + 1).
    std::function<void(uint64_t view)> view_timeout;
    /// Transports (the pacemaker shares the replica's network identity).
    std::function<void(ReplicaId to, std::shared_ptr<WishMsg>)> send_wish;
    std::function<void(std::shared_ptr<TimeoutCertMsg>)> broadcast_tc;
    std::function<void(ReplicaId to, std::shared_ptr<TimeoutCertMsg>)> send_tc;
  };

  Pacemaker(sim::Simulator* sim, const KeyRegistry* registry, Signer signer,
            uint32_t n, uint32_t f, SimTime tau, SimTime delta, Callbacks cb);

  /// Begins operation: synchronizes the first epoch (view 1).
  void Start();

  /// The replica finished view `next_view - 1` and wants to enter
  /// `next_view` (Fig. 3, CompletedView).
  void CompletedView(uint64_t next_view);

  void OnWish(const WishMsg& msg);
  void OnTimeoutCert(const TimeoutCertMsg& msg);

  uint64_t current_view() const { return current_view_; }
  /// Virtual time at which this replica entered its current view; the
  /// leader's ShareTimer deadline is entered_at() + 3 * delta (§4.2.1).
  SimTime entered_at() const { return entered_at_; }
  SimTime share_timer_deadline() const { return entered_at_ + 3 * delta_; }
  SimTime tau() const { return tau_; }

  uint64_t epochs_synchronized() const { return epochs_synchronized_; }

  /// Mutation hook (ConsensusConfig::test_break_liveness): stop sending Wish
  /// messages for every epoch after the first, so view synchronization
  /// silently starves once epoch 0's views complete. Safety stays intact —
  /// only the liveness oracle's progress monitor can catch this.
  void set_break_epoch_sync(bool broken) { break_epoch_sync_ = broken; }

  /// First view of the epoch containing `view`.
  uint64_t EpochStart(uint64_t view) const { return view - (view % (f_ + 1)); }

  /// Committee reconfiguration: wish sending, aggregation targets, and TC
  /// quorum arithmetic follow the view's epoch committee. Epoch *geometry*
  /// (f_+1 views per epoch) stays pinned to the allocated pool — membership
  /// changes must not move the certified boundaries — so the schedule's
  /// views_per_epoch must equal f_+1.
  void set_committee(std::shared_ptr<const CommitteeSchedule> committee);

  /// Bounded-state introspection (the per-view Wish/TC maps are pruned below
  /// the current epoch; see PruneStaleViews).
  size_t wish_state_size() const { return wishes_.size(); }
  size_t tc_handled_size() const { return tc_handled_.size(); }

 private:
  void SynchronizeEpoch(uint64_t view);
  void EnterView(uint64_t view);
  void ScheduleEpochTimers(uint64_t first_view, SimTime tc_time);
  void PruneStaleViews();
  Hash256 WishDigest(uint64_t view) const;

  /// Wish quorum for the epoch boundary at `view` (committee-aware n-f).
  uint32_t WishQuorum(uint64_t view) const;
  /// Number of wish/TC aggregation targets for the boundary at `view` - 1.
  uint32_t AggregatorF(uint64_t view) const;
  /// k-th aggregation target: the k-th leader of the epoch starting at `view`.
  ReplicaId Aggregator(uint64_t view, uint32_t k) const;
  /// Is `r` allowed to contribute a Wish share for the boundary at `view`?
  bool IsWishMember(uint64_t view, ReplicaId r) const;

  sim::Simulator* sim_;
  const KeyRegistry* registry_;
  Signer signer_;
  uint32_t n_, f_;
  SimTime tau_, delta_;
  Callbacks cb_;
  std::shared_ptr<const CommitteeSchedule> committee_;  // null = static

  uint64_t current_view_ = 0;
  SimTime entered_at_ = 0;
  bool break_epoch_sync_ = false;
  bool waiting_for_tc_ = false;
  uint64_t pending_epoch_view_ = 0;

  // Wish aggregation (this replica acting as a next-epoch leader).
  struct WishState {
    ReplicaSet signers;
    std::vector<Signature> sigs;
    bool tc_sent = false;
  };
  std::map<uint64_t, WishState> wishes_;
  std::set<uint64_t> tc_handled_;
  uint64_t epochs_synchronized_ = 0;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_PACEMAKER_H_

// Wire messages exchanged by replicas. Message payloads hold shared block
// pointers (the simulator is in-process); WireSize() reports what the real
// encoding would occupy so the bandwidth model stays honest.

#ifndef HOTSTUFF1_CONSENSUS_MESSAGES_H_
#define HOTSTUFF1_CONSENSUS_MESSAGES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/certificate.h"
#include "ledger/block.h"
#include "sim/network.h"

namespace hotstuff1 {

struct ConsensusMessage : public sim::NetMessage {
  enum class Type : uint8_t {
    kPropose = 0,
    kVote = 1,         // ProposeVote (basic) / NewSlot vote (slotted)
    kPrepare = 2,      // basic HotStuff-1: leader broadcasts P(v)
    kNewView = 3,      // view transition, optionally carrying a vote share
    kReject = 4,       // slotted: replica rejects an unsafe first slot
    kWish = 5,         // pacemaker epoch synchronization
    kTimeoutCert = 6,  // pacemaker TC broadcast/relay
    kFetchRequest = 7, // recovery: ask for a block by hash
    kFetchResponse = 8,
  };

  ConsensusMessage(Type t, ReplicaId s) : type(t), sender(s) {}

  Type type;
  ReplicaId sender;

  /// Authenticator size model the WireSize overrides consult for share and
  /// certificate bytes. Messages travel as shared_ptr<const ...>, so the
  /// sender's transport (ReplicaBase::SendTo/Broadcast/SendMasked — the one
  /// choke point all consensus traffic crosses) stamps it via this mutable
  /// field before Network::Send reads WireSize; receivers only ever read.
  /// The default (vector scheme) reproduces the pre-model byte accounting,
  /// so unstamped messages (unit tests constructing messages directly) keep
  /// their legacy sizes.
  mutable AuthSizeModel auth;
  void StampAuth(const AuthSizeModel& model) const { auth = model; }
};

using ConsensusMessagePtr = std::shared_ptr<const ConsensusMessage>;

const char* MessageTypeName(ConsensusMessage::Type type);

/// Leader proposal. For slotted first-slot proposals in way (ii), the block's
/// parent is the carried block (chained through it), `justify` certifies the
/// grandparent, and `carry` attaches the carried block so receivers missing
/// it need not fetch (wire cost counts only its hash; see DESIGN.md).
struct ProposeMsg : public ConsensusMessage {
  ProposeMsg(ReplicaId s) : ConsensusMessage(Type::kPropose, s) {}

  BlockPtr block;
  Certificate justify;                     // P(v_lp) the proposal extends
  std::optional<Certificate> commit_cert;  // basic HotStuff-1: C(v_lc)
  BlockPtr carry;                          // slotted way (ii) carry block

  size_t WireSize() const override {
    size_t sz = 32 + block->WireSize() + justify.WireSize(auth);
    if (commit_cert) sz += commit_cert->WireSize(auth);
    if (carry) sz += 32;  // H_u only; the block itself was already broadcast
    return sz;
  }
};

/// A vote share sent to the aggregating leader: ProposeVote in basic
/// HotStuff-1 (to L_v) or a NewSlot vote in slotted HotStuff-1 (to L_v).
struct VoteMsg : public ConsensusMessage {
  VoteMsg(ReplicaId s) : ConsensusMessage(Type::kVote, s) {}

  CertKind vote_kind = CertKind::kPrepare;
  uint64_t context_view = 0;  // view the vote is cast in
  BlockId block_id;
  Hash256 block_hash;
  Signature share;
  Certificate high_cert;  // voter's highest certificate (slotted NewSlot msgs)

  // 64 fixed (kind, views, block id, hashes) + one share + the carried cert.
  // Vector scheme: 64 + 96 + cert = the historical 160 + cert.
  size_t WireSize() const override {
    return 64 + auth.ShareBytes() + high_cert.WireSize(auth);
  }
};

/// Basic HotStuff-1 second half-phase: the leader broadcasts the prepare
/// certificate it formed (Fig. 2, line 15).
struct PrepareMsg : public ConsensusMessage {
  PrepareMsg(ReplicaId s) : ConsensusMessage(Type::kPrepare, s) {}

  Certificate cert;

  size_t WireSize() const override { return 48 + cert.WireSize(auth); }
};

/// View transition message to the next leader. In the streamlined protocols
/// this doubles as the vote carrier (Fig. 4 line 18); on timeout the share
/// is absent (⊥). In slotted HotStuff-1 the share is a New-View share over
/// (P(s_lp, v_lp), H_h) where H_h is the highest voted block (Fig. 7 l.28).
struct NewViewMsg : public ConsensusMessage {
  NewViewMsg(ReplicaId s) : ConsensusMessage(Type::kNewView, s) {}

  uint64_t target_view = 0;
  Certificate high_cert;
  bool has_share = false;
  CertKind share_kind = CertKind::kPrepare;
  Signature share;
  BlockId voted_id;     // id of the block the share votes for (H_h's id)
  Hash256 voted_hash;   // H_h

  // 104 fixed (target view, share metadata, voted id/hash) + the share slot
  // + the carried cert. Vector scheme: 104 + 96 + cert = the historical
  // 200 + cert. The share slot is charged even when has_share is false (⊥
  // timeouts), matching the fixed-frame encoding the constants assume.
  size_t WireSize() const override {
    return 104 + auth.ShareBytes() + high_cert.WireSize(auth);
  }
};

/// Slotted HotStuff-1: replica rejects an unsafe proposal and reports its
/// highest certificate (Fig. 7 line 25).
struct RejectMsg : public ConsensusMessage {
  RejectMsg(ReplicaId s) : ConsensusMessage(Type::kReject, s) {}

  uint64_t view = 0;
  uint32_t slot = 1;
  Certificate high_cert;

  size_t WireSize() const override { return 64 + high_cert.WireSize(auth); }
};

/// Pacemaker Wish (Fig. 3 line 10).
struct WishMsg : public ConsensusMessage {
  WishMsg(ReplicaId s) : ConsensusMessage(Type::kWish, s) {}

  uint64_t view = 0;
  Signature share;

  // 16 fixed (view) + one share. Vector scheme: the historical 112.
  size_t WireSize() const override { return 16 + auth.ShareBytes(); }
};

/// Pacemaker timeout certificate TC_v (Fig. 3 lines 12-15).
struct TimeoutCertMsg : public ConsensusMessage {
  TimeoutCertMsg(ReplicaId s) : ConsensusMessage(Type::kTimeoutCert, s) {}

  uint64_t view = 0;
  std::vector<Signature> sigs;

  // A TC is a quorum certificate over (view, ⊥): same authenticator shapes
  // as a block certificate. Vector scheme: the historical 48 + |sigs|*96.
  size_t WireSize() const override { return 48 + auth.CertBytes(sigs.size()); }
};

/// Recovery fetch of a missing block (§4.2, Recovery Mechanism).
struct FetchRequestMsg : public ConsensusMessage {
  FetchRequestMsg(ReplicaId s) : ConsensusMessage(Type::kFetchRequest, s) {}

  Hash256 hash;

  size_t WireSize() const override { return 64; }
};

struct FetchResponseMsg : public ConsensusMessage {
  FetchResponseMsg(ReplicaId s) : ConsensusMessage(Type::kFetchResponse, s) {}

  BlockPtr block;

  size_t WireSize() const override { return 32 + (block ? block->WireSize() : 0); }
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_MESSAGES_H_

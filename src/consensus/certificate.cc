#include "consensus/certificate.h"

#include "common/logging.h"

namespace hotstuff1 {

const char* CertKindName(CertKind kind) {
  switch (kind) {
    case CertKind::kPrepare: return "Prepare";
    case CertKind::kCommit: return "Commit";
    case CertKind::kNewSlot: return "NewSlot";
    case CertKind::kNewView: return "NewView";
  }
  return "?";
}

Hash256 VoteDigest(CertKind kind, uint64_t context_view, const BlockId& block_id,
                   const Hash256& block_hash) {
  Sha256 ctx;
  ctx.Update("hs1-vote");
  const uint8_t k = static_cast<uint8_t>(kind);
  ctx.Update(&k, 1);
  ctx.UpdateU64(context_view);
  ctx.UpdateU64(block_id.view);
  ctx.UpdateU64(block_id.slot);
  ctx.Update(block_hash);
  return ctx.Finish();
}

namespace {

SignDomain DomainFor(CertKind kind) {
  switch (kind) {
    case CertKind::kPrepare: return SignDomain::kProposeVote;
    case CertKind::kCommit: return SignDomain::kCommitVote;
    case CertKind::kNewSlot: return SignDomain::kNewSlot;
    case CertKind::kNewView: return SignDomain::kNewView;
  }
  return SignDomain::kProposeVote;
}

}  // namespace

Certificate Certificate::Genesis() {
  Certificate cert;
  cert.kind_ = CertKind::kPrepare;
  cert.block_id_ = BlockId{0, 0};
  cert.block_hash_ = Block::Genesis()->hash();
  cert.formed_view_ = 0;
  return cert;
}

Status Certificate::Verify(const KeyRegistry& registry, uint32_t quorum) const {
  if (IsGenesis()) {
    if (block_hash_ != Block::Genesis()->hash()) {
      return Status::Unauthenticated("malformed genesis certificate");
    }
    return Status::OK();
  }
  const uint64_t context_view =
      kind_ == CertKind::kNewView ? formed_view_ : block_id_.view;
  const Hash256 digest = VoteDigest(kind_, context_view, block_id_, block_hash_);
  return registry.VerifyQuorum(sigs_, DomainFor(kind_), digest, quorum);
}

std::string Certificate::ToString() const {
  std::string out = "P[";
  out += CertKindName(kind_);
  out += "](" + std::to_string(block_id_.slot) + "," + std::to_string(block_id_.view) + ")";
  if (kind_ == CertKind::kNewView) out += " fv=" + std::to_string(formed_view_);
  out += " " + block_hash_.Short();
  return out;
}

bool VoteAccumulator::Add(const Signature& sig) {
  if (signers_.Test(sig.signer)) return false;
  signers_.Set(sig.signer);
  sigs_.push_back(sig);
  return sigs_.size() == quorum_;
}

Certificate VoteAccumulator::Build(uint64_t formed_view) const {
  HS1_CHECK(complete()) << "building certificate from incomplete quorum";
  return Certificate(kind_, block_id_, block_hash_, formed_view, sigs_);
}

}  // namespace hotstuff1

#include "consensus/mempool.h"

// Interfaces are header-only; this TU anchors the vtables.

namespace hotstuff1 {

// (intentionally empty)

}  // namespace hotstuff1

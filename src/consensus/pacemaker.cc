#include "consensus/pacemaker.h"

#include "common/logging.h"
#include "sim/message_pool.h"

namespace hotstuff1 {

Pacemaker::Pacemaker(sim::Simulator* sim, const KeyRegistry* registry, Signer signer,
                     uint32_t n, uint32_t f, SimTime tau, SimTime delta, Callbacks cb)
    : sim_(sim),
      registry_(registry),
      signer_(signer),
      n_(n),
      f_(f),
      tau_(tau),
      delta_(delta),
      cb_(std::move(cb)) {}

void Pacemaker::set_committee(std::shared_ptr<const CommitteeSchedule> committee) {
  if (committee) {
    HS1_CHECK_EQ(committee->views_per_epoch, static_cast<uint64_t>(f_) + 1)
        << "committee schedule epoch geometry must match the pacemaker's";
  }
  committee_ = std::move(committee);
}

uint32_t Pacemaker::WishQuorum(uint64_t view) const {
  return committee_ ? committee_->AtView(view).quorum() : n_ - f_;
}

uint32_t Pacemaker::AggregatorF(uint64_t view) const {
  return committee_ ? committee_->AtView(view).f() : f_;
}

ReplicaId Pacemaker::Aggregator(uint64_t view, uint32_t k) const {
  if (!committee_) return static_cast<ReplicaId>((view + k) % n_);
  const Committee& c = committee_->AtView(view);
  return c.members[(view + k) % c.members.size()];
}

bool Pacemaker::IsWishMember(uint64_t view, ReplicaId r) const {
  return !committee_ || committee_->AtView(view).Contains(r);
}

Hash256 Pacemaker::WishDigest(uint64_t view) const {
  Sha256 ctx;
  ctx.Update("hs1-wish");
  ctx.UpdateU64(view);
  return ctx.Finish();
}

void Pacemaker::Start() {
  // Epoch 0 covers views [0, f]; view 0 is the hard-coded genesis slot, so
  // the first view actually entered is view 1.
  SynchronizeEpoch(0);
}

void Pacemaker::CompletedView(uint64_t next_view) {
  if (next_view % (f_ + 1) != 0) {
    EnterView(next_view);
  } else {
    SynchronizeEpoch(next_view);
  }
}

void Pacemaker::SynchronizeEpoch(uint64_t view) {
  waiting_for_tc_ = true;
  pending_epoch_view_ = view;
  // test_break_liveness: the replica blocks waiting for a TC that no one will
  // ever assemble (every replica drops its Wishes past epoch 0), modelling a
  // view-synchronization bug that stalls the system without violating safety.
  if (break_epoch_sync_ && view > 0) return;
  // Standby replicas hold no wish power for this boundary's committee; they
  // block here and join the epoch when the TC broadcast arrives.
  if (!IsWishMember(view, signer_.id())) return;
  auto msg = sim::MakeMessage<WishMsg>(signer_.id());
  msg->view = view;
  msg->share = signer_.Sign(SignDomain::kWish, WishDigest(view));
  for (uint32_t k = 0; k <= AggregatorF(view); ++k) {
    cb_.send_wish(Aggregator(view, k), msg);
  }
}

void Pacemaker::OnWish(const WishMsg& msg) {
  if (!registry_->Verify(msg.share, SignDomain::kWish, WishDigest(msg.view))) {
    HS1_LOG_WARN() << "pacemaker: invalid wish share from " << msg.sender;
    return;
  }
  // Only the boundary committee's shares count toward the TC quorum: a
  // voted-out (or never-admitted) replica must not be able to help certify
  // an epoch it holds no power in.
  if (!IsWishMember(msg.view, msg.share.signer)) return;
  WishState& ws = wishes_[msg.view];
  if (ws.tc_sent) return;
  if (ws.signers.Test(msg.share.signer)) return;
  ws.signers.Set(msg.share.signer);
  ws.sigs.push_back(msg.share);
  if (ws.signers.Count() >= WishQuorum(msg.view)) {
    ws.tc_sent = true;
    auto tc = sim::MakeMessage<TimeoutCertMsg>(signer_.id());
    tc->view = msg.view;
    tc->sigs = ws.sigs;
    cb_.broadcast_tc(std::move(tc));
  }
}

void Pacemaker::OnTimeoutCert(const TimeoutCertMsg& msg) {
  if (tc_handled_.count(msg.view)) return;
  const Status st = registry_->VerifyQuorum(msg.sigs, SignDomain::kWish,
                                            WishDigest(msg.view),
                                            WishQuorum(msg.view));
  if (!st.ok()) {
    HS1_LOG_WARN() << "pacemaker: bad TC for view " << msg.view << ": " << st;
    return;
  }
  tc_handled_.insert(msg.view);

  // Relay to the epoch's leaders so that a leader that missed the Wish
  // quorum still learns the certificate (Fig. 3 line 15).
  auto relay = sim::MakeMessage<TimeoutCertMsg>(signer_.id());
  relay->view = msg.view;
  relay->sigs = msg.sigs;
  for (uint32_t k = 0; k <= AggregatorF(msg.view); ++k) {
    cb_.send_tc(Aggregator(msg.view, k), relay);
  }

  ScheduleEpochTimers(msg.view, sim_->Now());
  ++epochs_synchronized_;

  if (msg.view >= pending_epoch_view_) waiting_for_tc_ = false;
  const uint64_t target = msg.view == 0 ? 1 : msg.view;
  if (current_view_ < target) EnterView(target);
}

void Pacemaker::ScheduleEpochTimers(uint64_t first_view, SimTime tc_time) {
  // StartTime[first + k] = tc_time + k*tau; the start of view v+1 is the
  // timeout of view v.
  for (uint32_t k = 0; k <= f_; ++k) {
    const uint64_t v = first_view + k;
    sim_->At(tc_time + static_cast<SimTime>(k + 1) * tau_, [this, v]() {
      // Drive the replica forward until it has left view v; guard against
      // re-entrancy when the replica is blocked on an epoch boundary.
      while (current_view_ <= v && !waiting_for_tc_) {
        const uint64_t stuck = current_view_;
        cb_.view_timeout(stuck);
        if (current_view_ == stuck) break;  // replica declined to advance
      }
    });
  }
}

void Pacemaker::EnterView(uint64_t view) {
  // A replica that was jumped forward (TC for a later epoch) ignores stale
  // entry requests.
  if (view <= current_view_) return;
  current_view_ = view;
  entered_at_ = sim_->Now();
  PruneStaleViews();
  cb_.enter_view(view);
}

void Pacemaker::PruneStaleViews() {
  // Wish aggregation state and TC dedup markers are only ever consulted for
  // the current epoch's boundary (and the next one, whose wishes may already
  // be arriving). Everything strictly below the current epoch is dead weight
  // — without pruning both containers grow one entry per epoch forever, a
  // slow leak and map-lookup tax on long soak and reconfiguration runs.
  // Dropping a stale TC marker is harmless: re-handling a very late TC is
  // idempotent for view state (EnterView ignores stale views) and merely
  // re-relays a bounded message.
  const uint64_t floor = EpochStart(current_view_);
  wishes_.erase(wishes_.begin(), wishes_.lower_bound(floor));
  tc_handled_.erase(tc_handled_.begin(), tc_handled_.lower_bound(floor));
}

}  // namespace hotstuff1

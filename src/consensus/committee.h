// Epoch-based committee reconfiguration. Membership is a pure function of
// the view: a CommitteeSchedule maps pacemaker epochs (f_base+1 views each)
// to sorted member lists over a fixed allocation of `max_n` nodes. Nodes are
// never created or destroyed mid-run — they switch between *member* (vote,
// propose, aggregate, wish) and *standby* (learn, execute, answer clients)
// at certified epoch boundaries, so `Network`/shard maps stay fixed-size and
// the conservative lookahead horizon stays valid.
//
// A null schedule on ConsensusConfig means "the full static committee",
// byte-identical to every pre-reconfiguration run.

#ifndef HOTSTUFF1_CONSENSUS_COMMITTEE_H_
#define HOTSTUFF1_CONSENSUS_COMMITTEE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/signer.h"

namespace hotstuff1 {

/// One epoch's active membership: a sorted, duplicate-free id list.
struct Committee {
  std::vector<ReplicaId> members;

  uint32_t n() const { return static_cast<uint32_t>(members.size()); }
  /// Fault bound of *this* committee (BFT arithmetic follows its size).
  uint32_t f() const { return (n() - 1) / 3; }
  uint32_t quorum() const { return n() - f(); }

  bool Contains(ReplicaId r) const;

  bool operator==(const Committee& o) const { return members == o.members; }
  bool operator!=(const Committee& o) const { return !(*this == o); }
};

/// A membership step: `committee` becomes active at epoch `from_epoch` and
/// stays active until a later step replaces it.
struct CommitteeStep {
  uint32_t from_epoch = 0;
  Committee committee;

  bool operator==(const CommitteeStep& o) const {
    return from_epoch == o.from_epoch && committee == o.committee;
  }
};

/// \brief Epoch-indexed membership schedule.
///
/// Epoch geometry is the pacemaker's: epoch e covers views
/// [e*views_per_epoch, (e+1)*views_per_epoch), with views_per_epoch =
/// f_base+1 fixed by the *allocated* committee for the whole run (membership
/// changes must not move the epoch boundaries the Wish/TC synchronization
/// already certifies). `views_per_epoch` is 0 in an unresolved schedule (as
/// parsed from text) and is stamped by Experiment::Setup.
struct CommitteeSchedule {
  uint64_t views_per_epoch = 0;
  std::vector<CommitteeStep> steps;  // strictly increasing from_epoch; [0] at epoch 0

  bool empty() const { return steps.empty(); }

  const Committee& AtEpoch(uint32_t epoch) const;
  const Committee& AtView(uint64_t view) const { return AtEpoch(EpochOf(view)); }
  uint32_t EpochOf(uint64_t view) const {
    return static_cast<uint32_t>(view / views_per_epoch);
  }

  /// Round-robin over the view's active committee (replaces `view % n`).
  ReplicaId LeaderOfView(uint64_t view) const {
    const Committee& c = AtView(view);
    return c.members[view % c.members.size()];
  }

  /// Largest member id across all steps (the schedule's allocation floor).
  ReplicaId MaxMember() const;
  /// Smallest committee size across all steps.
  uint32_t MinN() const;
  /// Smallest per-epoch fault bound across all steps.
  uint32_t MinF() const;

  bool operator==(const CommitteeSchedule& o) const {
    return views_per_epoch == o.views_per_epoch && steps == o.steps;
  }
  bool operator!=(const CommitteeSchedule& o) const { return !(*this == o); }
};

/// Parses the reconfiguration text grammar:
///
///   schedule := step (';' step)*
///   step     := <epoch> ':' range ('+' range)*
///   range    := <id> | <lo> '-' <hi>            (inclusive)
///
/// e.g. "0:0-15;4:0-11;8:0-3+8-19" — full 0..15 committee until epoch 4,
/// shrink to 0..11, then a 16-member split committee from epoch 8. Steps
/// must have strictly increasing epochs; a schedule that does not start at
/// epoch 0 gets no implicit prefix and is rejected. Every committee needs
/// >= 4 members (the smallest BFT quorum geometry). Numbers are strict
/// non-negative digit strings (no sign, no whitespace). An empty text
/// parses to an empty (null-equivalent) schedule. `views_per_epoch` is left
/// 0 — the runtime resolves it.
bool ParseCommitteeSchedule(const std::string& text, CommitteeSchedule* out,
                            std::string* error = nullptr);

/// Inverse of ParseCommitteeSchedule (round-trips through Parse).
std::string FormatCommitteeSchedule(const CommitteeSchedule& s);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_COMMITTEE_H_

// Base class shared by every protocol replica: network wiring, pacemaker,
// block store + ledger, signing/verification with CPU accounting, client
// batching and responses, and block-fetch recovery.

#ifndef HOTSTUFF1_CONSENSUS_REPLICA_H_
#define HOTSTUFF1_CONSENSUS_REPLICA_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "consensus/certificate.h"
#include "consensus/config.h"
#include "consensus/mempool.h"
#include "consensus/messages.h"
#include "consensus/metrics.h"
#include "consensus/pacemaker.h"
#include "ledger/block_store.h"
#include "ledger/ledger.h"
#include "sim/network.h"

namespace hotstuff1 {

class InvariantOracle;  // runtime/oracle.h
class LivenessOracle;   // runtime/liveness.h

class ReplicaBase {
 public:
  ReplicaBase(ReplicaId id, const ConsensusConfig& config, sim::Network* net,
              const KeyRegistry* registry, TransactionSource* source,
              ResponseSink* sink, KvState initial_state);
  virtual ~ReplicaBase() = default;

  ReplicaBase(const ReplicaBase&) = delete;
  ReplicaBase& operator=(const ReplicaBase&) = delete;

  /// Kicks off the pacemaker (epoch-0 synchronization).
  void Start();

  ReplicaId id() const { return id_; }
  const ConsensusConfig& config() const { return config_; }
  uint64_t view() const { return pacemaker_.current_view(); }
  const ReplicaMetrics& metrics() const { return metrics_; }
  const Ledger& ledger() const { return ledger_; }
  const BlockStore& store() const { return store_; }
  const Pacemaker& pacemaker() const { return pacemaker_; }

  void SetAdversary(const AdversarySpec& spec) { adversary_ = spec; }
  const AdversarySpec& adversary() const { return adversary_; }
  /// Attaches the online invariant oracle (null = disabled). The base class
  /// reports views entered, commits, speculative responses and rollbacks;
  /// the protocol cores add certificate formations at their aggregation
  /// sites. Reporting is a pure observation and never alters behaviour.
  void SetOracle(InvariantOracle* oracle) { oracle_ = oracle; }
  /// Attaches the online liveness oracle (null = disabled). The base class
  /// feeds it the same view-entry and commit events as the safety oracle;
  /// like the safety oracle it is a pure observer.
  void SetLivenessOracle(LivenessOracle* oracle) { liveness_ = oracle; }
  /// Marks the replica crashed: it stops processing and sending. (The
  /// network additionally drops its traffic when Network::Crash is used.)
  void SetCrashed() { crashed_ = true; }
  bool crashed() const { return crashed_; }

  /// Protocol name for reports.
  virtual const char* Name() const = 0;

 protected:
  // --- subclass interface ----------------------------------------------------
  virtual void OnEnterView(uint64_t view) = 0;
  virtual void OnViewTimeout(uint64_t view) = 0;
  virtual void OnProtocolMessage(const ConsensusMessage& msg) = 0;
  /// A previously missing block arrived via fetch.
  virtual void OnBlockFetched(const BlockPtr& /*block*/) {}

  // --- transport -------------------------------------------------------------
  void SendTo(ReplicaId to, ConsensusMessagePtr msg);
  void Broadcast(const ConsensusMessagePtr& msg, bool include_self = true);
  /// Sends only to destinations with mask[to] set (conceal-style faults).
  void SendMasked(const std::vector<bool>& mask, const ConsensusMessagePtr& msg);

  // --- crypto with CPU accounting ---------------------------------------------
  void ChargeCpu(SimTime cost) { net_->ConsumeCpu(id_, cost); }
  Signature SignVote(CertKind kind, uint64_t context_view, const BlockId& block_id,
                     const Hash256& block_hash);
  bool CheckVote(CertKind kind, uint64_t context_view, const BlockId& block_id,
                 const Hash256& block_hash, const Signature& sig);
  /// Verifies a certificate, charging CPU only the first time a given
  /// certificate content is seen (verification results are cached, as real
  /// implementations do).
  bool CheckCert(const Certificate& cert);

  // --- clients ---------------------------------------------------------------
  std::vector<Transaction> DrawBatch();
  void RespondToClients(const BlockPtr& block, const std::vector<uint64_t>& results,
                        bool speculative);
  /// Sends committed responses for freshly committed blocks that were not
  /// already answered speculatively, and charges execution CPU.
  void DeliverCommits(const std::vector<ExecResult>& committed);

  /// Commits `target` and every uncommitted ancestor if the full path down
  /// to the committed tip is locally available; otherwise kicks off fetches
  /// for the gap and returns without committing (retried on later commits).
  void TryCommit(const BlockPtr& target);

  // --- recovery ---------------------------------------------------------------
  /// True if the block is locally known; otherwise requests it from `hint`
  /// and f other replicas and returns false (§4.2 Recovery Mechanism).
  bool EnsureBlock(const Hash256& hash, ReplicaId hint);

  /// Justify certificate attached to the proposal of a stored block (what
  /// the commit rules consult). Null when unknown.
  const Certificate* JustifyOf(const Hash256& block_hash) const;
  void RecordJustify(const Hash256& block_hash, const Certificate& justify);

  // --- per-view committee arithmetic -----------------------------------------
  // With a reconfiguration schedule, leadership, quorum sizes, and the right
  // to vote/propose/aggregate are functions of the view's epoch committee;
  // without one they collapse to the static n/f arithmetic. Non-members stay
  // full learners/executors (they receive broadcasts, commit via
  // certificates, answer clients) — they just hold no protocol power.
  ReplicaId LeaderOf(uint64_t v) const {
    if (config_.committee) return config_.committee->LeaderOfView(v);
    return static_cast<ReplicaId>(v % config_.n);
  }
  bool IsLeaderOf(uint64_t v) const { return LeaderOf(v) == id_; }
  uint32_t QuorumOf(uint64_t v) const {
    return config_.committee ? config_.committee->AtView(v).quorum()
                             : config_.quorum();
  }
  uint32_t CommitteeNOf(uint64_t v) const {
    return config_.committee ? config_.committee->AtView(v).n() : config_.n;
  }
  uint32_t CommitteeFOf(uint64_t v) const {
    return config_.committee ? config_.committee->AtView(v).f() : config_.f;
  }
  bool IsMember(uint64_t v, ReplicaId r) const {
    return !config_.committee || config_.committee->AtView(v).Contains(r);
  }
  /// True when this replica holds protocol power (vote/propose/aggregate/
  /// wish) in view `v`.
  bool ActiveInView(uint64_t v) const { return IsMember(v, id_); }

  sim::Simulator* simulator() const { return net_->simulator(); }
  SimTime Now() const { return net_->simulator()->Now(); }

  ReplicaId id_;
  ConsensusConfig config_;
  /// Stamped onto every outgoing message so WireSize charges the configured
  /// authenticator byte shapes (see the transport methods in replica.cc).
  AuthSizeModel auth_model_;
  sim::Network* net_;
  const KeyRegistry* registry_;
  Signer signer_;
  TransactionSource* source_;
  ResponseSink* sink_;

  BlockStore store_;
  Ledger ledger_;
  Pacemaker pacemaker_;
  ReplicaMetrics metrics_;
  AdversarySpec adversary_;
  InvariantOracle* oracle_ = nullptr;
  LivenessOracle* liveness_ = nullptr;
  bool crashed_ = false;
  /// Highest view this replica has timed out of (exitView() semantics:
  /// "disable voting for view v"). During epoch synchronization the
  /// pacemaker's current_view() lingers on the old view until the TC
  /// arrives; voting or aggregating in a view <= exited_view_ would
  /// contradict the NewView message already sent and is forbidden.
  uint64_t exited_view_ = 0;

 private:
  /// Strategy-schedule wire suppression (withhold / target-leader): true when
  /// this (adversarial) replica must drop its outbound message to `to` right
  /// now. Self-delivery is never suppressed — the coalition keeps its own
  /// protocol state while starving everyone else.
  bool SuppressSendTo(ReplicaId to) const;

  /// test_break_reconfig mutation (see ConsensusConfig): on entering the
  /// first view of an epoch that voted this replica out, commit a fabricated
  /// block atop the committed tip and halt. Only the cross-epoch oracle
  /// lattice can catch the resulting conflict.
  void MaybeBreakReconfig(uint64_t view);

  void HandleMessage(sim::NodeId from, const sim::NetMessagePtr& raw);
  void HandleFetchRequest(const FetchRequestMsg& msg);
  void HandleFetchResponse(const FetchResponseMsg& msg);

  std::unordered_set<Hash256, Hash256Hasher> verified_certs_;
  std::unordered_map<Hash256, Certificate, Hash256Hasher> justify_of_;
  // In-flight fetches and when they may be re-issued (requests and
  // responses can be lost; fetches must retry).
  std::unordered_map<Hash256, SimTime, Hash256Hasher> fetch_retry_at_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_REPLICA_H_

#include "consensus/replica.h"

#include "common/logging.h"
#include "sim/message_pool.h"
#include "runtime/liveness.h"
#include "runtime/oracle.h"

namespace hotstuff1 {

ReplicaBase::ReplicaBase(ReplicaId id, const ConsensusConfig& config,
                         sim::Network* net, const KeyRegistry* registry,
                         TransactionSource* source, ResponseSink* sink,
                         KvState initial_state)
    : id_(id),
      config_(config),
      auth_model_(config.auth_model()),
      net_(net),
      registry_(registry),
      signer_(registry, id),
      source_(source),
      sink_(sink),
      ledger_(&store_, std::move(initial_state)),
      pacemaker_(
          net->simulator(), registry, Signer(registry, id), config.n, config.f,
          config.view_timer, config.delta,
          Pacemaker::Callbacks{
              [this](uint64_t v) {
                if (!crashed_) {
                  ++metrics_.views_entered;
                  if (oracle_) oracle_->OnViewEntered(id_, v);
                  if (liveness_) liveness_->OnViewEntered(id_, v);
                  MaybeBreakReconfig(v);
                  if (!crashed_) OnEnterView(v);
                }
              },
              [this](uint64_t v) {
                if (!crashed_) {
                  ++metrics_.timeouts;
                  exited_view_ = std::max(exited_view_, v);
                  OnViewTimeout(v);
                }
              },
              [this](ReplicaId to, std::shared_ptr<WishMsg> m) {
                SendTo(to, std::move(m));
              },
              [this](std::shared_ptr<TimeoutCertMsg> m) { Broadcast(std::move(m)); },
              [this](ReplicaId to, std::shared_ptr<TimeoutCertMsg> m) {
                SendTo(to, std::move(m));
              },
          }) {
  net_->SetHandler(id_, [this](sim::NodeId from, const sim::NetMessagePtr& msg) {
    HandleMessage(from, msg);
  });
  if (config_.test_break_liveness) pacemaker_.set_break_epoch_sync(true);
  if (config_.committee) pacemaker_.set_committee(config_.committee);
}

void ReplicaBase::MaybeBreakReconfig(uint64_t view) {
  if (!config_.test_break_reconfig || !config_.committee) return;
  const uint32_t epoch = config_.committee->EpochOf(view);
  if (epoch == 0 || view % config_.committee->views_per_epoch != 0) return;
  const Committee& prev = config_.committee->AtEpoch(epoch - 1);
  const Committee& cur = config_.committee->AtEpoch(epoch);
  if (!prev.Contains(id_) || cur.Contains(id_)) return;
  // Voted out: commit a fabricated block on the committed tip at a height
  // the new committee will also commit, then halt. Halting keeps the local
  // ledger self-consistent (a later honest commit at this height would trip
  // the Ledger's own fork check and abort the process) and removes this
  // replica from the end-of-run CheckSafety comparison — exactly the blind
  // spot the oracle's cross-epoch lattice covers.
  const BlockPtr tip = ledger_.committed_tip();
  auto forged = std::make_shared<Block>(BlockId{view, 1}, tip->hash(),
                                        tip->height() + 1, id_,
                                        std::vector<Transaction>{});
  store_.Put(forged);
  DeliverCommits(ledger_.CommitChain(forged));
  SetCrashed();
}

void ReplicaBase::Start() { pacemaker_.Start(); }

void ReplicaBase::HandleMessage(sim::NodeId from, const sim::NetMessagePtr& raw) {
  if (crashed_) return;
  const auto* msg = static_cast<const ConsensusMessage*>(raw.get());
  // Channel authentication: the claimed sender must match the wire origin
  // (a faulty replica cannot impersonate another replica, §2).
  if (static_cast<ReplicaId>(from) != msg->sender) return;
  ChargeCpu(config_.costs.per_message_us);
  switch (msg->type) {
    case ConsensusMessage::Type::kWish:
      pacemaker_.OnWish(static_cast<const WishMsg&>(*msg));
      return;
    case ConsensusMessage::Type::kTimeoutCert:
      pacemaker_.OnTimeoutCert(static_cast<const TimeoutCertMsg&>(*msg));
      return;
    case ConsensusMessage::Type::kFetchRequest:
      HandleFetchRequest(static_cast<const FetchRequestMsg&>(*msg));
      return;
    case ConsensusMessage::Type::kFetchResponse:
      HandleFetchResponse(static_cast<const FetchResponseMsg&>(*msg));
      return;
    default:
      OnProtocolMessage(*msg);
      return;
  }
}

// Every consensus send crosses one of these three methods (pacemaker traffic
// routes through the Callbacks lambdas above), so stamping here is exhaustive:
// the authenticator size model is attached on the sender's shard before
// Network::Send reads WireSize, and receivers only ever read it.

bool ReplicaBase::SuppressSendTo(ReplicaId to) const {
  if (to == id_ || !adversary_.schedule) return false;
  const SimTime now = Now();
  if (adversary_.Withholds(now)) return true;
  if (adversary_.TargetsLeader(now)) {
    const uint64_t v = view();
    if (to == LeaderOf(v) || to == LeaderOf(v + 1)) return true;
  }
  return false;
}

void ReplicaBase::SendTo(ReplicaId to, ConsensusMessagePtr msg) {
  if (crashed_ || SuppressSendTo(to)) return;
  msg->StampAuth(auth_model_);
  net_->Send(id_, to, std::move(msg));
}

void ReplicaBase::Broadcast(const ConsensusMessagePtr& msg, bool include_self) {
  if (crashed_) return;
  msg->StampAuth(auth_model_);
  if (adversary_.schedule) {
    // Per-destination so the suppression filter applies; Network::Broadcast
    // is the same loop without the filter.
    for (ReplicaId to = 0; to < config_.n; ++to) {
      if (to == id_ && !include_self) continue;
      if (SuppressSendTo(to)) continue;
      net_->Send(id_, to, msg);
    }
    return;
  }
  net_->Broadcast(id_, msg, include_self);
}

void ReplicaBase::SendMasked(const std::vector<bool>& mask,
                             const ConsensusMessagePtr& msg) {
  if (crashed_) return;
  msg->StampAuth(auth_model_);
  for (ReplicaId to = 0; to < config_.n; ++to) {
    if (mask[to] && !SuppressSendTo(to)) net_->Send(id_, to, msg);
  }
}

Signature ReplicaBase::SignVote(CertKind kind, uint64_t context_view,
                                const BlockId& block_id, const Hash256& block_hash) {
  ChargeCpu(config_.costs.sign_us);
  SignDomain domain;
  switch (kind) {
    case CertKind::kPrepare: domain = SignDomain::kProposeVote; break;
    case CertKind::kCommit: domain = SignDomain::kCommitVote; break;
    case CertKind::kNewSlot: domain = SignDomain::kNewSlot; break;
    case CertKind::kNewView: domain = SignDomain::kNewView; break;
    default: domain = SignDomain::kProposeVote; break;
  }
  return signer_.Sign(domain, VoteDigest(kind, context_view, block_id, block_hash));
}

bool ReplicaBase::CheckVote(CertKind kind, uint64_t context_view,
                            const BlockId& block_id, const Hash256& block_hash,
                            const Signature& sig) {
  ChargeCpu(config_.costs.verify_us);
  SignDomain domain;
  switch (kind) {
    case CertKind::kPrepare: domain = SignDomain::kProposeVote; break;
    case CertKind::kCommit: domain = SignDomain::kCommitVote; break;
    case CertKind::kNewSlot: domain = SignDomain::kNewSlot; break;
    case CertKind::kNewView: domain = SignDomain::kNewView; break;
    default: domain = SignDomain::kProposeVote; break;
  }
  return registry_->Verify(sig, domain,
                           VoteDigest(kind, context_view, block_id, block_hash));
}

bool ReplicaBase::CheckCert(const Certificate& cert) {
  if (cert.IsGenesis()) return true;
  const uint64_t context_view =
      cert.kind() == CertKind::kNewView ? cert.formed_view() : cert.view();
  const Hash256 key =
      VoteDigest(cert.kind(), context_view, cert.block_id(), cert.block_hash());
  if (verified_certs_.count(key)) return true;
  ChargeCpu(config_.costs.verify_us * static_cast<SimTime>(cert.sigs().size()));
  // Quorum arithmetic follows the committee of the view the shares were cast
  // in. NewView shares sign the view being *entered* (the digest context
  // above) but are cast by the previous view's committee — at a growth
  // boundary the new, larger quorum must not reject a certificate the old
  // committee legitimately formed.
  const uint64_t quorum_view =
      cert.kind() == CertKind::kNewView
          ? (cert.formed_view() == 0 ? 0 : cert.formed_view() - 1)
          : cert.view();
  const Status st = cert.Verify(*registry_, QuorumOf(quorum_view));
  if (!st.ok()) {
    HS1_LOG_WARN() << "replica " << id_ << ": bad certificate " << cert.ToString()
                   << ": " << st;
    return false;
  }
  verified_certs_.insert(key);
  return true;
}

std::vector<Transaction> ReplicaBase::DrawBatch() {
  return source_->DrawBatch(id_, config_.batch_size, Now());
}

void ReplicaBase::RespondToClients(const BlockPtr& block,
                                   const std::vector<uint64_t>& results,
                                   bool speculative) {
  if (crashed_ || block->txns().empty()) return;
  if (oracle_ && speculative) oracle_->OnSpeculativeResponse(id_, block);
  sink_->OnBlockResponse(id_, block, results, speculative, Now());
}

void ReplicaBase::DeliverCommits(const std::vector<ExecResult>& committed) {
  for (const ExecResult& res : committed) {
    ++metrics_.blocks_committed;
    metrics_.txns_committed += res.block->txns().size();
    if (oracle_) oracle_->OnBlockCommitted(id_, res.block);
    if (liveness_) liveness_->OnBlockCommitted(id_, res.block);
    if (!res.was_speculated) {
      // Execution happened just now, at commit time; charge it.
      ChargeCpu(config_.costs.ExecCost(res.block->txns().size()));
      RespondToClients(res.block, res.txn_results, /*speculative=*/false);
    }
  }
}

void ReplicaBase::TryCommit(const BlockPtr& target) {
  if (target->height() <= ledger_.committed_height()) return;
  // Verify chain connectivity before committing; a gap means we are missing
  // an ancestor (e.g. a concealed proposal) and must fetch it first.
  BlockPtr cur = target;
  while (cur->height() > ledger_.committed_height()) {
    const BlockPtr parent = store_.GetOrNull(cur->parent_hash());
    if (!parent) {
      EnsureBlock(cur->parent_hash(), LeaderOf(cur->view()));
      return;
    }
    cur = parent;
  }
  // CommitChain may first roll back speculation that diverges from the
  // commit path (Def. 4.7); the oracle distinguishes expected victim
  // rollbacks from protocol bugs.
  const uint64_t rollbacks_before = ledger_.rollback_events();
  const uint64_t rolled_before = ledger_.blocks_rolled_back();
  DeliverCommits(ledger_.CommitChain(target));
  if (oracle_ && ledger_.rollback_events() != rollbacks_before) {
    // The conflicting view is the committed block's chain view, not this
    // replica's current view: a CPU-backlogged victim may process an old
    // conflicting commit arbitrarily late, and rollback legality (Def. 4.7)
    // is a property of the chain position, not of the wall clock.
    oracle_->OnRollback(id_, ledger_.blocks_rolled_back() - rolled_before,
                        target->id().view);
  }
}

bool ReplicaBase::EnsureBlock(const Hash256& hash, ReplicaId hint) {
  if (store_.Contains(hash)) return true;
  auto [it, fresh] = fetch_retry_at_.try_emplace(hash, 0);
  if (!fresh && Now() < it->second) return false;  // request already in flight
  // Requests or responses may be lost; allow a re-issue after a round trip
  // plus slack.
  it->second = Now() + 4 * config_.delta;
  ++metrics_.fetches;
  auto req = sim::MakeMessage<FetchRequestMsg>(id_);
  req->hash = hash;
  // Ask the hint plus f other replicas: at least one correct replica that
  // voted for the block will answer (§4.2).
  SendTo(hint, req);
  uint32_t asked = 0;
  for (ReplicaId r = 0; r < config_.n && asked < config_.f; ++r) {
    if (r == hint || r == id_) continue;
    SendTo(r, req);
    ++asked;
  }
  return false;
}

void ReplicaBase::HandleFetchRequest(const FetchRequestMsg& msg) {
  const BlockPtr block = store_.GetOrNull(msg.hash);
  if (!block) return;
  auto resp = sim::MakeMessage<FetchResponseMsg>(id_);
  resp->block = block;
  SendTo(msg.sender, resp);
}

void ReplicaBase::HandleFetchResponse(const FetchResponseMsg& msg) {
  if (!msg.block) return;
  if (store_.Contains(msg.block->hash())) return;
  store_.Put(msg.block);
  fetch_retry_at_.erase(msg.block->hash());
  OnBlockFetched(msg.block);
}

const Certificate* ReplicaBase::JustifyOf(const Hash256& block_hash) const {
  auto it = justify_of_.find(block_hash);
  return it == justify_of_.end() ? nullptr : &it->second;
}

void ReplicaBase::RecordJustify(const Hash256& block_hash, const Certificate& justify) {
  justify_of_.emplace(block_hash, justify);
}

}  // namespace hotstuff1

// Interfaces between consensus replicas and the client world, plus a
// standalone transaction source for tests and micro-benchmarks.

#ifndef HOTSTUFF1_CONSENSUS_MEMPOOL_H_
#define HOTSTUFF1_CONSENSUS_MEMPOOL_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "crypto/signer.h"
#include "ledger/block.h"

namespace hotstuff1 {

/// \brief Where leaders draw batches of pending client transactions.
///
/// Modelling note (see DESIGN.md): clients broadcast requests to all
/// replicas in the paper's system; we model the resulting shared pending set
/// as one queue with per-replica visibility delays, which gives exact
/// dedup across leaders. Transactions in orphaned (never committed) blocks
/// are re-submitted by their clients after a timeout, exactly like a real
/// client retry.
class TransactionSource {
 public:
  virtual ~TransactionSource() = default;

  /// Up to `max` transactions visible to `leader` at `now`, in FIFO order.
  virtual std::vector<Transaction> DrawBatch(ReplicaId leader, size_t max,
                                             SimTime now) = 0;

  /// Number of transactions currently waiting (for diagnostics).
  virtual size_t PendingCount() const = 0;
};

/// \brief Where replicas deliver client responses. One call covers a whole
/// block (the per-client fan-out is aggregated; latency accounting uses the
/// replica->client network delay inside the implementation).
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;

  /// `speculative` distinguishes HotStuff-1 early (prepare-time) responses
  /// from committed responses. `results` aligns with block->txns().
  virtual void OnBlockResponse(ReplicaId from, const BlockPtr& block,
                               const std::vector<uint64_t>& results,
                               bool speculative, SimTime send_time) = 0;
};

/// \brief Infinite synthetic source: mints fresh transactions on demand from
/// a generator callback. No queueing, no client latency semantics; used by
/// unit tests and micro-benchmarks.
class SyntheticSource : public TransactionSource {
 public:
  using Generator = std::function<Transaction(uint64_t seq)>;

  explicit SyntheticSource(Generator gen) : gen_(std::move(gen)) {}

  std::vector<Transaction> DrawBatch(ReplicaId /*leader*/, size_t max,
                                     SimTime now) override {
    std::vector<Transaction> out;
    out.reserve(max);
    for (size_t i = 0; i < max; ++i) {
      Transaction t = gen_(next_seq_++);
      t.submit_time = now;
      out.push_back(std::move(t));
    }
    return out;
  }

  size_t PendingCount() const override { return SIZE_MAX; }

 private:
  Generator gen_;
  uint64_t next_seq_ = 0;
};

/// \brief Response sink that drops everything (tests that only care about
/// replica-side state).
class NullResponseSink : public ResponseSink {
 public:
  void OnBlockResponse(ReplicaId, const BlockPtr&, const std::vector<uint64_t>&,
                       bool, SimTime) override {}
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_MEMPOOL_H_

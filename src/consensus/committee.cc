#include "consensus/committee.h"

#include <algorithm>

#include "common/logging.h"

namespace hotstuff1 {

bool Committee::Contains(ReplicaId r) const {
  return std::binary_search(members.begin(), members.end(), r);
}

const Committee& CommitteeSchedule::AtEpoch(uint32_t epoch) const {
  HS1_CHECK(!steps.empty()) << "AtEpoch on an empty committee schedule";
  // Last step with from_epoch <= epoch; steps are strictly increasing and
  // steps[0].from_epoch == 0, so the scan always lands.
  size_t i = steps.size();
  while (i > 0 && steps[i - 1].from_epoch > epoch) --i;
  HS1_CHECK_GE(i, 1u);
  return steps[i - 1].committee;
}

ReplicaId CommitteeSchedule::MaxMember() const {
  ReplicaId max = 0;
  for (const CommitteeStep& s : steps) {
    if (!s.committee.members.empty()) max = std::max(max, s.committee.members.back());
  }
  return max;
}

uint32_t CommitteeSchedule::MinN() const {
  uint32_t min = UINT32_MAX;
  for (const CommitteeStep& s : steps) min = std::min(min, s.committee.n());
  return min;
}

uint32_t CommitteeSchedule::MinF() const {
  uint32_t min = UINT32_MAX;
  for (const CommitteeStep& s : steps) min = std::min(min, s.committee.f());
  return min;
}

namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

// Strict non-negative integer: digits only (no sign, no whitespace, no
// empty string), bounded to keep downstream arithmetic safe.
bool ParseStrictUint(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 9) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

}  // namespace

bool ParseCommitteeSchedule(const std::string& text, CommitteeSchedule* out,
                            std::string* error) {
  CommitteeSchedule sched;
  for (const std::string& seg : Split(text, ';')) {
    if (seg.empty()) continue;
    const size_t colon = seg.find(':');
    if (colon == std::string::npos) {
      return Fail(error, "committee step without ':': '" + seg + "'");
    }
    uint64_t epoch = 0;
    if (!ParseStrictUint(seg.substr(0, colon), &epoch)) {
      return Fail(error, "bad epoch in committee step: '" + seg + "'");
    }
    CommitteeStep step;
    step.from_epoch = static_cast<uint32_t>(epoch);
    for (const std::string& range : Split(seg.substr(colon + 1), '+')) {
      const size_t dash = range.find('-');
      uint64_t lo = 0, hi = 0;
      if (dash == std::string::npos) {
        if (!ParseStrictUint(range, &lo)) {
          return Fail(error, "bad member id: '" + range + "'");
        }
        hi = lo;
      } else {
        if (!ParseStrictUint(range.substr(0, dash), &lo) ||
            !ParseStrictUint(range.substr(dash + 1), &hi) || hi < lo) {
          return Fail(error, "bad member range: '" + range + "'");
        }
      }
      for (uint64_t id = lo; id <= hi; ++id) {
        step.committee.members.push_back(static_cast<ReplicaId>(id));
      }
    }
    std::sort(step.committee.members.begin(), step.committee.members.end());
    if (std::adjacent_find(step.committee.members.begin(),
                           step.committee.members.end()) !=
        step.committee.members.end()) {
      return Fail(error, "duplicate member in committee step: '" + seg + "'");
    }
    if (step.committee.n() < 4) {
      return Fail(error, "committee needs >= 4 members: '" + seg + "'");
    }
    if (!sched.steps.empty() && step.from_epoch <= sched.steps.back().from_epoch) {
      return Fail(error, "committee step epochs must strictly increase: '" + seg + "'");
    }
    sched.steps.push_back(std::move(step));
  }
  if (!sched.steps.empty() && sched.steps.front().from_epoch != 0) {
    return Fail(error, "committee schedule must start at epoch 0");
  }
  *out = std::move(sched);
  return true;
}

std::string FormatCommitteeSchedule(const CommitteeSchedule& s) {
  std::string text;
  for (const CommitteeStep& step : s.steps) {
    if (!text.empty()) text += ';';
    text += std::to_string(step.from_epoch);
    text += ':';
    // Re-compress the sorted id list into maximal inclusive ranges.
    const std::vector<ReplicaId>& m = step.committee.members;
    for (size_t i = 0; i < m.size();) {
      size_t j = i;
      while (j + 1 < m.size() && m[j + 1] == m[j] + 1) ++j;
      if (i > 0) text += '+';
      text += std::to_string(m[i]);
      if (j > i) text += '-' + std::to_string(m[j]);
      i = j + 1;
    }
  }
  return text;
}

}  // namespace hotstuff1

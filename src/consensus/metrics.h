// Per-replica counters and latency aggregation.

#ifndef HOTSTUFF1_CONSENSUS_METRICS_H_
#define HOTSTUFF1_CONSENSUS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace hotstuff1 {

struct ReplicaMetrics {
  uint64_t views_entered = 0;
  uint64_t timeouts = 0;
  uint64_t blocks_proposed = 0;
  uint64_t slots_proposed = 0;
  uint64_t blocks_committed = 0;
  uint64_t txns_committed = 0;
  uint64_t blocks_speculated = 0;
  uint64_t rollback_events = 0;
  uint64_t blocks_rolled_back = 0;
  uint64_t rejects_sent = 0;
  uint64_t votes_sent = 0;
  uint64_t proposals_received = 0;
  uint64_t fetches = 0;
};

/// \brief Latency sample set with exact quantiles (samples are kept; a run
/// produces at most a few million).
class LatencyRecorder {
 public:
  void Add(SimTime latency) { samples_.push_back(latency); }

  size_t count() const { return samples_.size(); }

  double AvgMs() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (SimTime s : samples_) sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size()) / kMillisecond;
  }

  /// Exact quantile in milliseconds; q in [0, 1].
  double PercentileMs(double q) const {
    if (samples_.empty()) return 0;
    std::vector<SimTime> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = std::min(sorted.size() - 1,
                                static_cast<size_t>(q * static_cast<double>(sorted.size())));
    return ToMillis(sorted[idx]);
  }

  double MaxMs() const {
    if (samples_.empty()) return 0;
    return ToMillis(*std::max_element(samples_.begin(), samples_.end()));
  }

  void Clear() { samples_.clear(); }

  const std::vector<SimTime>& samples() const { return samples_; }

  /// Concatenates another recorder's samples (used to merge per-shard
  /// recorders; concatenation order must be deterministic for in-order
  /// statistics like AvgMs to be executor-independent).
  void Append(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  }

 private:
  std::vector<SimTime> samples_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CONSENSUS_METRICS_H_

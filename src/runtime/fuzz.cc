#include "runtime/fuzz.h"

#include <algorithm>

#include "common/random.h"

namespace hotstuff1 {

ExperimentConfig FuzzConfigFromSeed(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xf022edULL);
  ExperimentConfig cfg;

  constexpr ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
      ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};
  cfg.protocol = kProtocols[rng.NextBounded(5)];

  // Small committees dominate (cheap points, most schedule diversity per
  // token of CPU); one draw in six crosses the 64-replica word boundary.
  constexpr uint32_t kSmall[] = {4, 7, 10, 16, 25, 33};
  constexpr uint32_t kWide[] = {65, 96, 128};
  cfg.n = rng.NextBounded(6) == 0 ? kWide[rng.NextBounded(3)]
                                  : kSmall[rng.NextBounded(6)];
  const uint32_t f = (cfg.n - 1) / 3;

  constexpr uint32_t kBatches[] = {10, 25, 50, 100};
  cfg.batch_size = kBatches[rng.NextBounded(4)];

  constexpr Fault kFaults[] = {Fault::kNone, Fault::kCrash, Fault::kSlowLeader,
                               Fault::kTailFork, Fault::kRollbackAttack};
  cfg.fault = kFaults[rng.NextBounded(5)];
  if (cfg.fault != Fault::kNone) {
    // Coalition ("collusion") size 1..f; Byzantine coalitions collude by
    // construction (AdversarySpec::collude).
    cfg.num_faulty = 1 + static_cast<uint32_t>(rng.NextBounded(std::max(f, 1u)));
  }
  if (cfg.fault == Fault::kRollbackAttack) {
    cfg.rollback_victims =
        1 + static_cast<uint32_t>(rng.NextBounded(std::max(f, 1u)));
  }

  constexpr double kBandwidths[] = {2000.0, 20000.0, 200000.0};
  cfg.bandwidth_bytes_per_us = kBandwidths[rng.NextBounded(3)];

  cfg.sim_jobs = 1u << rng.NextBounded(3);  // 1, 2 or 4 workers
  cfg.lookahead = rng.NextBool(0.5) ? LookaheadSpec{LookaheadMode::kAuto, 0}
                                    : LookaheadSpec{LookaheadMode::kOff, 0};

  cfg.num_clients = 2 * cfg.batch_size;
  // Wide committees pay ~n^2 per view; keep their windows shorter so a fuzz
  // sweep's cost stays dominated by schedule diversity, not one big point.
  cfg.duration = cfg.n >= 64 ? Millis(100) : Millis(150);
  cfg.warmup = Millis(40);
  cfg.seed = seed;
  cfg.oracle_enabled = true;
  return cfg;
}

}  // namespace hotstuff1

#include "runtime/fuzz.h"

#include <algorithm>

#include "common/random.h"

namespace hotstuff1 {

ExperimentConfig FuzzConfigFromSeed(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xf022edULL);
  ExperimentConfig cfg;

  constexpr ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
      ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};
  cfg.protocol = kProtocols[rng.NextBounded(5)];

  // Small committees dominate (cheap points, most schedule diversity per
  // token of CPU); one draw in six crosses the 64-replica word boundary.
  constexpr uint32_t kSmall[] = {4, 7, 10, 16, 25, 33};
  constexpr uint32_t kWide[] = {65, 96, 128};
  cfg.n = rng.NextBounded(6) == 0 ? kWide[rng.NextBounded(3)]
                                  : kSmall[rng.NextBounded(6)];
  const uint32_t f = (cfg.n - 1) / 3;

  constexpr uint32_t kBatches[] = {10, 25, 50, 100};
  cfg.batch_size = kBatches[rng.NextBounded(4)];

  constexpr Fault kFaults[] = {Fault::kNone, Fault::kCrash, Fault::kSlowLeader,
                               Fault::kTailFork, Fault::kRollbackAttack};
  cfg.fault = kFaults[rng.NextBounded(5)];
  if (cfg.fault != Fault::kNone) {
    // Coalition ("collusion") size 1..f; Byzantine coalitions collude by
    // construction (AdversarySpec::collude).
    cfg.num_faulty = 1 + static_cast<uint32_t>(rng.NextBounded(std::max(f, 1u)));
  }
  if (cfg.fault == Fault::kRollbackAttack) {
    cfg.rollback_victims =
        1 + static_cast<uint32_t>(rng.NextBounded(std::max(f, 1u)));
  }

  constexpr double kBandwidths[] = {2000.0, 20000.0, 200000.0};
  cfg.bandwidth_bytes_per_us = kBandwidths[rng.NextBounded(3)];

  cfg.sim_jobs = 1u << rng.NextBounded(3);  // 1, 2 or 4 workers
  cfg.lookahead = rng.NextBool(0.5) ? LookaheadSpec{LookaheadMode::kAuto, 0}
                                    : LookaheadSpec{LookaheadMode::kOff, 0};

  cfg.num_clients = 2 * cfg.batch_size;
  // Wide committees pay ~n^2 per view; keep their windows shorter so a fuzz
  // sweep's cost stays dominated by schedule diversity, not one big point.
  cfg.duration = cfg.n >= 64 ? Millis(100) : Millis(150);
  cfg.warmup = Millis(40);
  cfg.seed = seed;
  cfg.oracle_enabled = true;

  // Half the Byzantine coalitions additionally follow a bounded strategy
  // schedule. Crash coalitions are excluded (a crashed replica has no
  // transport to script) and so is the equivocate primitive (it designates
  // rollback victims, which these faults do not configure — the dedicated
  // rollback tuples already cover equivocation). The entry is bounded so
  // the auto-derived GST is finite and the liveness monitor arms; with the
  // coalition <= f the run must stay clean under BOTH oracles. Drawn last
  // so pre-existing seeds keep their (protocol, n, fault, ...) tuples.
  if (cfg.fault != Fault::kNone && cfg.fault != Fault::kCrash &&
      rng.NextBool(0.5)) {
    StrategyEntry entry;
    entry.from_epoch = static_cast<uint32_t>(rng.NextBounded(2));
    entry.to_epoch =
        entry.from_epoch + 1 + static_cast<uint32_t>(rng.NextBounded(3));
    constexpr uint32_t kDrawable[] = {kActWithhold, kActDelay,
                                      kActTargetLeader};
    entry.actions = kDrawable[rng.NextBounded(3)];
    if (entry.actions & kActDelay) {
      // 0.2ms..2ms of extra one-way delay: disruptive at fuzz bandwidths
      // without swamping the short fuzz windows.
      entry.delay = 200 + static_cast<SimTime>(rng.NextBounded(1800));
    }
    cfg.strategy.entries.push_back(entry);
  }

  // A quarter of the configurations additionally reconfigure the committee:
  // shrink to a prefix committee 0..k-1 at epoch 2, half the time growing
  // back to the full set at epoch 5. Prefix committees keep the coalition
  // (ids 1..num_faulty) inside every epoch's fault bound as long as
  // k >= 3*num_faulty + 1. Rollback-attack tuples are excluded — victim
  // designation and equivocation splits are defined against the static
  // committee, and mixing the two would fuzz an adversary the paper does not
  // model. Drawn after the strategy so pre-existing seeds keep their tuples.
  if (cfg.fault != Fault::kRollbackAttack && rng.NextBool(0.25)) {
    const uint32_t min_k = std::max(4u, 3 * cfg.num_faulty + 1);
    if (min_k < cfg.n) {
      const uint32_t k =
          min_k + static_cast<uint32_t>(rng.NextBounded(cfg.n - min_k));
      CommitteeStep full0, shrink, regrow;
      full0.from_epoch = 0;
      for (uint32_t i = 0; i < cfg.n; ++i) full0.committee.members.push_back(i);
      shrink.from_epoch = 2;
      for (uint32_t i = 0; i < k; ++i) shrink.committee.members.push_back(i);
      cfg.reconfig.steps = {full0, shrink};
      if (rng.NextBool(0.5)) {
        regrow.from_epoch = 5;
        regrow.committee = full0.committee;
        cfg.reconfig.steps.push_back(regrow);
      }
    }
  }
  return cfg;
}

OverThresholdCase OverThresholdCaseFromSeed(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x07e12ULL);
  constexpr ProtocolKind kProtocols[] = {
      ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
      ProtocolKind::kHotStuff1Basic, ProtocolKind::kHotStuff1,
      ProtocolKind::kHotStuff1Slotted};

  OverThresholdCase c;
  ExperimentConfig& cfg = c.config;
  cfg.n = 7;  // f = 2: coalition 3..4 exceeds the fault bound
  const uint32_t f = (cfg.n - 1) / 3;
  cfg.batch_size = 10;
  cfg.num_clients = 2 * cfg.batch_size;
  cfg.duration = Millis(150);
  cfg.warmup = Millis(40);
  cfg.seed = seed + 1;
  cfg.oracle_enabled = true;

  if (seed < 10) {
    // Tuples 0..4: crash f+1..2f replicas. Tuples 5..9: the same coalition
    // stays up but withholds every outbound message past its own declared
    // GST. Either way the pacemaker's n-f Wish quorum is unreachable, no
    // view ever starts, and only the liveness oracle's end-of-run silence
    // check can see the stall (there are no view events to judge online).
    cfg.protocol = kProtocols[seed % 5];
    cfg.num_faulty = f + 1 + static_cast<uint32_t>(rng.NextBounded(f));
    if (seed < 5) {
      cfg.fault = Fault::kCrash;
      c.label = std::string(ProtocolName(cfg.protocol)) + " crash>f";
    } else {
      cfg.strategy.entries.push_back(
          {/*from_epoch=*/0, kEpochForever, kActWithhold, /*delay=*/0});
      cfg.strategy.declared_gst = Millis(30);
      c.label = std::string(ProtocolName(cfg.protocol)) + " withhold>f";
    }
    // The auto grace (>= 500ms) is sized for long runs; these windows end at
    // 190ms, so bound the silence threshold explicitly.
    cfg.liveness_grace = Millis(60);
    c.expect_liveness = true;
  } else {
    // Tuple 10: the injected equivocation-commit bug under a live rollback
    // attack — the safety oracle's commit-conflict lattice must fire while
    // the liveness oracle stays silent (commits keep flowing throughout).
    cfg.protocol = ProtocolKind::kHotStuff1;
    cfg.fault = Fault::kRollbackAttack;
    cfg.num_faulty = f;
    cfg.rollback_victims = f;
    cfg.duration = Millis(400);
    cfg.warmup = Millis(100);
    cfg.num_clients = 80;
    cfg.seed = 3;
    cfg.test_break_safety = true;
    c.label = "HotStuff-1 break-safety";
    c.expect_safety = true;
  }
  return c;
}

}  // namespace hotstuff1

// The experiment runner: wires simulator, network, topology, workload,
// clients, replicas and faults; runs for a virtual duration; collects the
// metrics the paper reports (throughput, client latency) plus safety
// diagnostics.

#ifndef HOTSTUFF1_RUNTIME_EXPERIMENT_H_
#define HOTSTUFF1_RUNTIME_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "client/client_pool.h"
#include "consensus/replica.h"
#include "runtime/adversary.h"
#include "sim/topology.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace hotstuff1 {

class InvariantOracle;  // runtime/oracle.h
class LivenessOracle;   // runtime/liveness.h

enum class ProtocolKind {
  kHotStuff = 0,
  kHotStuff2 = 1,
  kHotStuff1Basic = 2,
  kHotStuff1 = 3,         // streamlined
  kHotStuff1Slotted = 4,  // streamlined + slotting
};

const char* ProtocolName(ProtocolKind kind);
bool IsSpeculative(ProtocolKind kind);

enum class WorkloadKind { kYcsb = 0, kTpcc = 1 };

/// How the simulator's conservative lookahead window is chosen (the safe
/// horizon within which the parallel executor may run events of different
/// timestamps concurrently — see docs/ARCHITECTURE.md, "Lookahead window").
enum class LookaheadMode : uint32_t {
  kAuto = 0,    // derive from min cross-shard delivery latency at setup
  kOff = 1,     // tick-parallel only (PR 2 behavior)
  kWindow = 2,  // explicit window, microseconds of virtual time
};

struct LookaheadSpec {
  LookaheadMode mode = LookaheadMode::kAuto;
  SimTime window = 0;  // only read when mode == kWindow
};

inline bool operator==(const LookaheadSpec& a, const LookaheadSpec& b) {
  return a.mode == b.mode &&
         (a.mode != LookaheadMode::kWindow || a.window == b.window);
}
inline bool operator!=(const LookaheadSpec& a, const LookaheadSpec& b) {
  return !(a == b);
}

/// Parses "auto", "off", or a positive integer microsecond window ("0" is
/// off). Returns false on anything else.
bool ParseLookahead(const std::string& s, LookaheadSpec* out);
std::string FormatLookahead(const LookaheadSpec& spec);

struct ExperimentConfig {
  ProtocolKind protocol = ProtocolKind::kHotStuff1;
  uint32_t n = 32;
  uint32_t batch_size = 100;
  sim::Topology topology;     // defaults to LAN(n) when empty
  uint32_t client_region = 0; // clients' region (paper: North Virginia)

  SimTime duration = Seconds(3);
  SimTime warmup = Millis(500);
  SimTime view_timer = Millis(10);
  SimTime delta = Millis(2);
  uint32_t max_slots = 0;

  WorkloadKind workload = WorkloadKind::kYcsb;
  YcsbConfig ycsb;
  TpccConfig tpcc;
  uint32_t num_clients = 0;  // 0 -> 8 * batch_size (closed loop) / 1M (open)
  // Client-group shard count for the pool (--client-groups); 1 reproduces
  // the historical single-shard pool byte-for-byte.
  uint32_t client_groups = 1;
  // Traffic model (--arrival / --offered-load); closed loop by default.
  ArrivalConfig arrival;
  uint64_t seed = 1;

  // Faults (Fig. 10).
  Fault fault = Fault::kNone;
  uint32_t num_faulty = 0;
  uint32_t rollback_victims = 0;

  // Composable per-epoch adversary strategy for the coalition (--strategy;
  // grammar in runtime/adversary.h). Generalizes the fixed Fault attacks:
  // the same `num_faulty` replicas follow this schedule. epoch_length 0 is
  // resolved to (f+1) * view_timer at setup.
  StrategySchedule strategy;

  // Epoch-based committee reconfiguration (--reconfig; grammar in
  // consensus/committee.h). All `n` nodes are allocated up front; the
  // schedule switches each between member and standby at pacemaker epoch
  // boundaries. views_per_epoch 0 is resolved to f+1 at setup; every member
  // id must be < n. An empty schedule is the static full committee.
  CommitteeSchedule reconfig;

  // Liveness-oracle thresholds (runtime/liveness.h); 0 = auto. Only read
  // when oracle_enabled.
  uint64_t liveness_k = 0;
  SimTime liveness_grace = 0;

  // Message-delay injection (Fig. 9): extra one-way delay on traffic to or
  // from the last `num_impaired` replicas.
  SimTime inject_delay = 0;
  uint32_t num_impaired = 0;

  // Ablation hooks.
  bool speculation_enabled = true;
  bool trusted_leader_enabled = true;
  // Test hook: record accepted (txn, block) pairs in the client pool.
  bool track_accepted = false;

  CostModel costs;
  // Authenticator wire encoding (--cert-scheme): what one signature share or
  // certificate costs in bytes through the bandwidth model. Pure size axis —
  // the consensus contract is identical under every scheme.
  CertScheme cert_scheme = CertScheme::kMultisigVector;
  double bandwidth_bytes_per_us = 2000.0;

  // Intra-experiment parallelism: worker threads for the simulator's event
  // loop (--sim-jobs). 1 = the classic single-threaded loop; any value
  // yields byte-identical results (see docs/ARCHITECTURE.md, determinism
  // contract).
  uint32_t sim_jobs = 1;

  // Conservative lookahead window for the parallel event loop (--lookahead).
  // kAuto derives the safe horizon from the topology's minimum cross-shard
  // delivery latency plus the bandwidth serialization floor; any setting is
  // byte-identical to any other. Only consulted when sim_jobs > 1, and
  // forced off (tick-parallel) while event_cap is set.
  LookaheadSpec lookahead;

  // Safety valve against runaway event storms: 0 = unlimited. A truncated
  // run is reported via ExperimentResult::event_cap_hit, never silently.
  uint64_t event_cap = 0;

  // Arms the online invariant oracle (runtime/oracle.h): every protocol core
  // and the client pool report state transitions into it, and violations of
  // the paper's safety claims fail the run with a (config, seed, event)
  // diagnostic. Pure observer: enabling it never changes simulation results.
  bool oracle_enabled = false;

  // Test-only mutation hook (see docs/ARCHITECTURE.md, "Mutation self-test"):
  // injects an equivocation-commit bug into the streamlined HotStuff-1 core
  // so tests can prove the oracle actually fires. Never enable outside tests.
  bool test_break_safety = false;
  // Test-only mutation hook: stalls the pacemaker's epoch synchronization
  // after epoch 0 (see ConsensusConfig::test_break_liveness) to prove the
  // liveness oracle's progress monitor fires. Never enable outside tests.
  bool test_break_liveness = false;
  // Test-only mutation hook: a replica voted out at an epoch boundary forges
  // a conflicting commit at its last height and halts (see
  // ConsensusConfig::test_break_reconfig). End-of-run CheckSafety skips
  // crashed replicas, so only the oracle's cross-epoch committed-block
  // lattice can catch it. Never enable outside tests.
  bool test_break_reconfig = false;
};

struct ExperimentResult {
  std::string protocol;
  double throughput_tps = 0;
  double avg_latency_ms = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  double p999_latency_ms = 0;
  uint64_t accepted = 0;
  uint64_t accepted_speculative = 0;
  uint64_t resubmissions = 0;
  // Transactions still waiting in the submission queue at the end of the
  // run. Grows without bound past the saturation knee in open-loop runs.
  uint64_t backlog = 0;
  uint64_t committed_blocks = 0;  // at observer replica 0
  uint64_t committed_txns = 0;
  uint64_t views = 0;             // views entered at observer
  uint64_t slots = 0;             // total slots proposed (all replicas)
  uint64_t timeouts = 0;
  uint64_t rollback_events = 0;   // across correct replicas
  uint64_t blocks_rolled_back = 0;
  uint64_t rejects = 0;
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  // Reconfiguration: membership changes the observer replica actually lived
  // through (schedule steps whose first view was entered), and the size of
  // the committee active in the observer's final view. 0 / base n for runs
  // without a schedule. Deterministic like every other consensus metric.
  uint64_t committee_changes = 0;
  uint32_t final_committee_n = 0;
  bool safety_ok = true;  // committed prefixes agree across correct replicas
  bool event_cap_hit = false;  // simulator stopped at its event cap: truncated run
  // Simulator events executed during the whole run (setup + warmup +
  // measurement). Deterministic: identical at any jobs/sim-jobs/lookahead.
  uint64_t events_processed = 0;
  // Online invariant-oracle verdict (0 and empty when the oracle is off or
  // the run is clean). Deterministic: identical at any jobs/sim-jobs/lookahead.
  uint64_t oracle_violations = 0;
  std::string oracle_first_violation;
  // Online liveness-oracle verdict (runtime/liveness.h), same determinism
  // contract as the safety oracle's fields above.
  uint64_t liveness_violations = 0;
  std::string liveness_first_violation;
  // True when event_cap forced the parallel executor to silently fall back
  // to tick-parallel scheduling (cap accounting needs the serial tick
  // boundary, so windowed lookahead is disabled while a cap is set).
  // Executor-shape-dependent by definition: excluded from CSV/JSON emitters
  // and from result-equality checks, surfaced as a visible warning instead.
  bool cap_parallelism_degraded = false;
  // Real (wall-clock) milliseconds spent executing the run. The only
  // nondeterministic field; excluded from every deterministic emitter, used
  // by the par_speedup scenario.
  double wall_ms = 0;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  /// Builds the whole system (callable once; Run() calls it lazily).
  void Setup();

  /// Runs warmup + measurement and returns the collected result.
  ExperimentResult Run();

  // --- test access ------------------------------------------------------------
  sim::Simulator& simulator() { return *sim_; }
  sim::Network& network() { return *net_; }
  ClientPool& clients() { return *clients_; }
  const KeyRegistry& registry() const { return *registry_; }
  std::vector<std::unique_ptr<ReplicaBase>>& replicas() { return replicas_; }
  const ExperimentConfig& config() const { return config_; }
  /// Null unless config().oracle_enabled.
  InvariantOracle* oracle() { return oracle_.get(); }
  /// Null unless config().oracle_enabled.
  LivenessOracle* liveness_oracle() { return liveness_.get(); }

  /// Committed-prefix agreement across correct replicas (Theorem B.5 check).
  bool CheckSafety() const;

 private:
  std::unique_ptr<ReplicaBase> MakeReplica(ReplicaId id, const ConsensusConfig& cc,
                                           KvState state);

  ExperimentConfig config_;
  bool setup_done_ = false;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<KeyRegistry> registry_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<ClientPool> clients_;
  std::unique_ptr<InvariantOracle> oracle_;
  std::unique_ptr<LivenessOracle> liveness_;
  bool cap_parallelism_degraded_ = false;
  std::shared_ptr<const CommitteeSchedule> committee_;  // resolved; null = static
  AdversaryPlan plan_;
  std::vector<std::unique_ptr<ReplicaBase>> replicas_;
};

/// One-line human summary of a configuration ("protocol=... n=... fault=...").
/// Embedded in invariant-oracle diagnostics so a violation names its repro.
std::string DescribeConfig(const ExperimentConfig& config);

/// Convenience: run one configuration and return the result.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Reproduces one figure data point the way the paper measures (§7 Metrics):
/// *throughput* is the saturated maximum (deep closed-loop client pool),
/// while *client latency* is measured at a light operating point (one batch
/// of transactions in flight), where queueing does not mask the protocols'
/// phase-count differences. Returns the saturation result with its latency
/// fields replaced by the light-load measurements.
ExperimentResult RunPaperPoint(const ExperimentConfig& config);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_EXPERIMENT_H_

#include "runtime/oracle.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/adversary.h"

namespace hotstuff1 {

InvariantOracle::InvariantOracle(sim::Simulator* sim, Setup setup)
    : sim_(sim), setup_(std::move(setup)) {
  replicas_.resize(setup_.n);
  const Hash256 genesis = Block::Genesis()->hash();
  for (ReplicaState& st : replicas_) st.committed_hash = genesis;
  height_of_[genesis] = 0;

  // Same designation the attacking leader uses to split its equivocating
  // proposals — one helper, consumed by both sides (RollbackVictimMask).
  const bool equivocates =
      setup_.fault == Fault::kRollbackAttack ||
      (setup_.schedule && setup_.schedule->HasAction(kActEquivocate));
  victim_mask_ = equivocates
                     ? RollbackVictimMask(setup_.n, setup_.faulty_mask.get(),
                                          setup_.rollback_victims)
                     : std::vector<bool>(setup_.n, false);
  misled_views_.resize(setup_.n);
}

void InvariantOracle::Report(const char* invariant, const std::string& detail) {
  ++violation_count_;
  if (violations_.size() >= kMaxStoredViolations) return;
  std::string diag = "oracle: invariant '";
  diag += invariant;
  diag += "' violated at t=" + std::to_string(sim_->Now());
  diag += "us event#" + std::to_string(events_);
  diag += ": " + detail;
  diag += " [" + setup_.config_summary + " seed=" + std::to_string(setup_.seed) + "]";
  HS1_LOG_ERROR() << diag;
  violations_.push_back(std::move(diag));
}

void InvariantOracle::OnViewEntered(ReplicaId replica, uint64_t view) {
  sim_->SyncShared();
  ++events_;
  if (IsFaulty(replica)) return;
  ReplicaState& st = replicas_[replica];
  if (view <= st.last_view) {
    Report("view-monotonic", "replica " + std::to_string(replica) +
                                 " entered view " + std::to_string(view) +
                                 " after view " + std::to_string(st.last_view));
  }
  st.last_view = std::max(st.last_view, view);
}

void InvariantOracle::OnCertificateFormed(ReplicaId replica,
                                          const Certificate& cert) {
  sim_->SyncShared();
  ++events_;
  // Register the certified block globally — certificates formed by faulty
  // replicas via collusion are still valid quorum artifacts, and commits
  // anywhere may rest on them.
  certified_.insert(cert.block_hash());
  if (IsFaulty(replica)) return;
  ReplicaState& st = replicas_[replica];
  if (st.has_formed_cert && cert.block_id() < st.last_cert_id) {
    Report("cert-monotonic",
           "replica " + std::to_string(replica) + " formed certificate for " +
               cert.block_id().ToString() + " after one for " +
               st.last_cert_id.ToString());
  }
  st.has_formed_cert = true;
  if (st.last_cert_id < cert.block_id()) st.last_cert_id = cert.block_id();
}

void InvariantOracle::OnBlockCommitted(ReplicaId replica, const BlockPtr& block) {
  sim_->SyncShared();
  ++events_;
  height_of_[block->hash()] = block->height();
  if (IsFaulty(replica)) return;  // a faulty ledger constrains nothing
  ReplicaState& st = replicas_[replica];

  // commit-chain: heights advance by one and hash-link to the previous
  // commit of this replica.
  if (block->height() != st.committed_height + 1 ||
      block->parent_hash() != st.committed_hash) {
    Report("commit-chain",
           "replica " + std::to_string(replica) + " committed " +
               block->ToString() + " at height " +
               std::to_string(block->height()) + " atop height " +
               std::to_string(st.committed_height) + " tip " +
               st.committed_hash.Short());
  }

  // commit-chain: the committed block must be certified. A slotted carry
  // block has no certificate of its own; it is admitted when the next commit
  // is its certified first-slot child carrying it (§6.1 execution unit).
  if (st.pending_uncertified) {
    if (!certified_.count(block->hash()) ||
        block->carry_hash() != st.pending_uncertified->hash()) {
      Report("commit-chain",
             "replica " + std::to_string(replica) + " committed uncertified " +
                 st.pending_uncertified->ToString() +
                 " not carried by the next certified commit " + block->ToString());
    }
    st.pending_uncertified = nullptr;
  } else if (!certified_.count(block->hash())) {
    st.pending_uncertified = block;  // judged when the next commit arrives
  }

  st.committed_height = block->height();
  st.committed_hash = block->hash();

  // commit-conflict + cross-checks against speculation and client accepts.
  HeightEntry& entry = heights_[block->height()];
  if (entry.has_commit) {
    if (entry.committed_hash != block->hash()) {
      std::string detail =
          "replica " + std::to_string(replica) + " committed " +
          block->ToString() + " (" + block->hash().Short() + ") at height " +
          std::to_string(block->height()) + " but replica " +
          std::to_string(entry.first_committer) + " committed " +
          entry.committed_hash.Short() + " there";
      if (setup_.committee) {
        // Reconfiguration context: which epoch's committee each side was in
        // when it last spoke, so a cross-membership fork names its boundary.
        const uint64_t e = EpochIndex(st.last_view);
        detail += " (committer in epoch " + std::to_string(e) +
                  ", committee n=" +
                  std::to_string(
                      setup_.committee->AtEpoch(static_cast<uint32_t>(e)).n()) +
                  "; first committer in epoch " +
                  std::to_string(
                      EpochIndex(replicas_[entry.first_committer].last_view)) +
                  ")";
      }
      Report("commit-conflict", detail);
    }
    return;
  }
  entry.has_commit = true;
  entry.committed_hash = block->hash();
  entry.first_committer = replica;
  for (const auto& [responder, hash] : entry.spec_responses) {
    if (hash != block->hash()) {
      Report("spec-contradiction",
             "replica " + std::to_string(responder) +
                 " speculatively responded with " + hash.Short() +
                 " at height " + std::to_string(block->height()) +
                 " but " + block->hash().Short() + " committed there");
    }
  }
  entry.spec_responses.clear();
  for (const Hash256& accepted : entry.client_accepts) {
    if (accepted != block->hash()) {
      Report("client-accept",
             "clients accepted block " + accepted.Short() + " at height " +
                 std::to_string(block->height()) + " but " +
                 block->hash().Short() + " committed there");
    }
  }
  entry.client_accepts.clear();
}

void InvariantOracle::OnSpeculativeResponse(ReplicaId replica,
                                            const BlockPtr& block) {
  sim_->SyncShared();
  ++events_;
  height_of_[block->hash()] = block->height();
  // Faulty replicas may respond with anything; designated rollback victims
  // are *expected* to speculate the losing branch (§7.3) — Def. 4.7 rollback
  // is their recovery, not a violation.
  if (IsFaulty(replica) || IsRollbackVictim(replica)) return;
  HeightEntry& entry = heights_[block->height()];
  if (entry.has_commit) {
    if (entry.committed_hash != block->hash()) {
      Report("spec-contradiction",
             "replica " + std::to_string(replica) +
                 " speculatively responded with " + block->hash().Short() +
                 " at height " + std::to_string(block->height()) + " where " +
                 entry.committed_hash.Short() + " is already committed");
    }
    return;
  }
  entry.spec_responses.emplace_back(replica, block->hash());
}

void InvariantOracle::OnEquivocationSent(ReplicaId leader, uint64_t view) {
  sim_->SyncShared();
  ++events_;
  (void)leader;  // any coalition leader misleads the same designated set
  for (ReplicaId r = 0; r < setup_.n; ++r) {
    if (IsRollbackVictim(r)) misled_views_[r].push_back(view);
  }
}

void InvariantOracle::OnRollback(ReplicaId replica, uint64_t blocks_rolled_back,
                                 uint64_t conflict_view) {
  sim_->SyncShared();
  ++events_;
  if (IsFaulty(replica)) return;
  const std::string prefix = "replica " + std::to_string(replica) +
                             " rolled back " +
                             std::to_string(blocks_rolled_back) +
                             " speculative block(s) at conflicting view " +
                             std::to_string(conflict_view) + " ";
  if (!IsRollbackVictim(replica)) {
    Report("unexpected-rollback",
           prefix + (victim_mask_.empty() ||
                             std::find(victim_mask_.begin(), victim_mask_.end(),
                                       true) == victim_mask_.end()
                         ? "without an equivocation attack in the configuration"
                         : "but is not a designated victim"));
    return;
  }
  // Def. 4.7 legality: the rollback must be justified by an outstanding
  // misleading campaign at most two epochs older than the conflicting view
  // (see the header). Campaigns newer than the conflict are ongoing and also
  // legal. The justifying record is consumed, oldest first, so one campaign
  // cannot launder an unrelated buggy rollback later in the run.
  std::vector<uint64_t>& records = misled_views_[replica];
  const uint64_t conflict_epoch = EpochIndex(conflict_view);
  auto it = std::find_if(records.begin(), records.end(), [&](uint64_t m) {
    return EpochIndex(m) + 2 >= conflict_epoch;
  });
  if (it == records.end()) {
    Report("unexpected-rollback",
           prefix + (records.empty()
                         ? "with no outstanding misleading campaign"
                         : "but every outstanding campaign is stale (newest "
                           "at view " +
                               std::to_string(records.back()) +
                               ", >2 epochs before the conflict)"));
    return;
  }
  records.erase(it);
}

void InvariantOracle::OnClientAccept(uint64_t txn_id, const Hash256& block_hash,
                                     bool speculative) {
  sim_->SyncShared();
  ++events_;
  auto height_it = height_of_.find(block_hash);
  if (height_it == height_of_.end()) return;  // height unknown: cannot judge
  HeightEntry& entry = heights_[height_it->second];
  if (entry.has_commit) {
    if (entry.committed_hash != block_hash) {
      Report("client-accept",
             "txn " + std::to_string(txn_id) + " accepted " +
                 std::string(speculative ? "speculatively" : "committed") +
                 " in block " + block_hash.Short() + " at height " +
                 std::to_string(height_it->second) + " where " +
                 entry.committed_hash.Short() + " is committed");
    }
    return;
  }
  if (std::find(entry.client_accepts.begin(), entry.client_accepts.end(),
                block_hash) == entry.client_accepts.end()) {
    entry.client_accepts.push_back(block_hash);
  }
}

}  // namespace hotstuff1

// Seed-derived randomized experiment configurations for the adversary fuzz
// harness. One helper shared by the `fuzz` registry scenario and
// tests/fuzz_invariant_test.cc so "a failing seed IS the repro": the tuple
// (protocol x n x fault x collusion size x batch x bandwidth x lookahead x
// sim_jobs) is a pure function of the seed, every draw goes through the
// deterministic Rng, and the invariant oracle is armed on every config.

#ifndef HOTSTUFF1_RUNTIME_FUZZ_H_
#define HOTSTUFF1_RUNTIME_FUZZ_H_

#include <string>

#include "runtime/experiment.h"

namespace hotstuff1 {

/// Derives one arbitrary-but-reproducible oracle-enabled configuration from
/// `seed`. Committee sizes span 4..128 (multi-word quorums included, weighted
/// toward small committees so a fuzz sweep stays cheap); faults cover every
/// Fault kind with a randomized coalition size <= f and randomized rollback
/// victim count; the executor axes (sim_jobs, lookahead) are drawn too, so
/// the oracle's shard-safe bookkeeping is exercised under every scheduler.
/// Byzantine coalitions additionally draw a bounded per-epoch strategy
/// schedule (withhold / delay / target-leader) on half the seeds — within
/// the f threshold every such run must still be safety- AND liveness-clean.
ExperimentConfig FuzzConfigFromSeed(uint64_t seed);

/// One deterministic over-threshold adversary tuple: a configuration where
/// the fault bound is exceeded (coalition > f) or a protocol bug is injected,
/// so an oracle is *expected* to fire — the positive-control counterpart of
/// the clean fuzz sweep, generalizing the test_break_safety mutation test
/// across all five protocol cores.
struct OverThresholdCase {
  ExperimentConfig config;
  /// Exactly one of these is set: the oracle family that must report a
  /// violation (the other family must stay silent).
  bool expect_safety = false;
  bool expect_liveness = false;
  std::string label;  // row label, e.g. "HotStuff-1 crash f+1"
};

/// Number of distinct over-threshold tuples (valid seeds are 0..count-1).
/// Tuples 0..4 crash a coalition of f+1..2f under each protocol and 5..9
/// script an over-threshold withhold schedule (both starve the pacemaker's
/// n-f Wish quorum, so the liveness oracle must flag the stall); tuple 10
/// injects the equivocation-commit bug (test_break_safety), which the
/// safety oracle must catch while the liveness oracle stays silent.
inline constexpr uint64_t kOverThresholdCases = 11;

OverThresholdCase OverThresholdCaseFromSeed(uint64_t seed);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_FUZZ_H_

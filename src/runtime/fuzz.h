// Seed-derived randomized experiment configurations for the adversary fuzz
// harness. One helper shared by the `fuzz` registry scenario and
// tests/fuzz_invariant_test.cc so "a failing seed IS the repro": the tuple
// (protocol x n x fault x collusion size x batch x bandwidth x lookahead x
// sim_jobs) is a pure function of the seed, every draw goes through the
// deterministic Rng, and the invariant oracle is armed on every config.

#ifndef HOTSTUFF1_RUNTIME_FUZZ_H_
#define HOTSTUFF1_RUNTIME_FUZZ_H_

#include <string>

#include "runtime/experiment.h"

namespace hotstuff1 {

/// Derives one arbitrary-but-reproducible oracle-enabled configuration from
/// `seed`. Committee sizes span 4..128 (multi-word quorums included, weighted
/// toward small committees so a fuzz sweep stays cheap); faults cover every
/// Fault kind with a randomized coalition size <= f and randomized rollback
/// victim count; the executor axes (sim_jobs, lookahead) are drawn too, so
/// the oracle's shard-safe bookkeeping is exercised under every scheduler.
ExperimentConfig FuzzConfigFromSeed(uint64_t seed);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_FUZZ_H_

#include "runtime/experiment.h"

#include <chrono>
#include <cstdlib>

#include "baselines/hotstuff.h"
#include "baselines/hotstuff2.h"
#include "common/logging.h"
#include "core/hotstuff1_basic.h"
#include "core/hotstuff1_slotted.h"
#include "core/hotstuff1_streamlined.h"
#include "runtime/liveness.h"
#include "runtime/oracle.h"

namespace hotstuff1 {

const char* ProtocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kHotStuff: return "HotStuff";
    case ProtocolKind::kHotStuff2: return "HotStuff-2";
    case ProtocolKind::kHotStuff1Basic: return "HotStuff-1 (basic)";
    case ProtocolKind::kHotStuff1: return "HotStuff-1";
    case ProtocolKind::kHotStuff1Slotted: return "HotStuff-1 (slotting)";
  }
  return "?";
}

bool IsSpeculative(ProtocolKind kind) {
  return kind == ProtocolKind::kHotStuff1Basic || kind == ProtocolKind::kHotStuff1 ||
         kind == ProtocolKind::kHotStuff1Slotted;
}

bool ParseLookahead(const std::string& s, LookaheadSpec* out) {
  if (s == "auto") {
    *out = LookaheadSpec{LookaheadMode::kAuto, 0};
    return true;
  }
  if (s == "off") {
    *out = LookaheadSpec{LookaheadMode::kOff, 0};
    return true;
  }
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v == 0 ? LookaheadSpec{LookaheadMode::kOff, 0}
                : LookaheadSpec{LookaheadMode::kWindow, static_cast<SimTime>(v)};
  return true;
}

std::string FormatLookahead(const LookaheadSpec& spec) {
  switch (spec.mode) {
    case LookaheadMode::kAuto: return "auto";
    case LookaheadMode::kOff: return "off";
    case LookaheadMode::kWindow: return std::to_string(spec.window);
  }
  return "?";
}

std::string DescribeConfig(const ExperimentConfig& config) {
  // Deliberately omits the executor shape (sim_jobs / lookahead): results
  // are byte-identical across it by contract, so it is not part of a repro —
  // and including it would make otherwise-identical oracle diagnostics
  // differ across executor configurations.
  std::string out = "protocol=";
  out += ProtocolName(config.protocol);
  out += " n=" + std::to_string(config.n);
  out += " batch=" + std::to_string(config.batch_size);
  out += " fault=" + std::to_string(static_cast<int>(config.fault));
  out += " faulty=" + std::to_string(config.num_faulty);
  out += " victims=" + std::to_string(config.rollback_victims);
  if (!config.strategy.empty()) {
    // As typed on the command line (epoch_length left unresolved): the line
    // is a repro, so it must match the flag that produced it.
    out += " strategy=" + FormatStrategySchedule(config.strategy);
  }
  if (!config.reconfig.empty()) {
    // As typed on the command line (views_per_epoch left unresolved).
    out += " reconfig=" + FormatCommitteeSchedule(config.reconfig);
  }
  out += " bw=" +
         std::to_string(static_cast<long long>(config.bandwidth_bytes_per_us));
  out += " groups=" + std::to_string(config.client_groups);
  out += " cert=";
  out += CertSchemeName(config.cert_scheme);
  out += " arrival=";
  out += ArrivalKindName(config.arrival.kind);
  if (config.arrival.kind != ArrivalKind::kClosedLoop) {
    out += " load=" + std::to_string(
                          static_cast<long long>(config.arrival.offered_load_tps));
  }
  return out;
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}
Experiment::~Experiment() = default;

std::unique_ptr<ReplicaBase> Experiment::MakeReplica(ReplicaId id,
                                                     const ConsensusConfig& cc,
                                                     KvState state) {
  switch (config_.protocol) {
    case ProtocolKind::kHotStuff:
      return std::make_unique<HotStuffReplica>(id, cc, net_.get(), registry_.get(),
                                               clients_.get(), clients_.get(),
                                               std::move(state));
    case ProtocolKind::kHotStuff2:
      return std::make_unique<HotStuff2Replica>(id, cc, net_.get(), registry_.get(),
                                                clients_.get(), clients_.get(),
                                                std::move(state));
    case ProtocolKind::kHotStuff1Basic:
      return std::make_unique<HotStuff1BasicReplica>(id, cc, net_.get(),
                                                     registry_.get(), clients_.get(),
                                                     clients_.get(), std::move(state));
    case ProtocolKind::kHotStuff1:
      return std::make_unique<HotStuff1StreamlinedReplica>(
          id, cc, net_.get(), registry_.get(), clients_.get(), clients_.get(),
          std::move(state));
    case ProtocolKind::kHotStuff1Slotted:
      return std::make_unique<HotStuff1SlottedReplica>(
          id, cc, net_.get(), registry_.get(), clients_.get(), clients_.get(),
          std::move(state));
  }
  return nullptr;
}

void Experiment::Setup() {
  if (setup_done_) return;
  setup_done_ = true;
  const uint32_t n = config_.n;
  if (config_.topology.n == 0) config_.topology = sim::Topology::Lan(n);
  HS1_CHECK_EQ(config_.topology.n, n);

  sim_ = std::make_unique<sim::Simulator>();
  if (config_.event_cap > 0) sim_->SetEventCap(config_.event_cap);
  if (config_.sim_jobs > 1) sim_->SetJobs(static_cast<int>(config_.sim_jobs));
  sim::NetworkConfig net_cfg;
  net_cfg.bandwidth_bytes_per_us = config_.bandwidth_bytes_per_us;
  net_cfg.seed = config_.seed;
  net_ = std::make_unique<sim::Network>(sim_.get(), n, net_cfg);
  config_.topology.Apply(net_.get());

  // Fig. 9 delay injection: the last `num_impaired` replicas are impacted.
  for (uint32_t i = 0; i < config_.num_impaired && i < n; ++i) {
    net_->ImpairNode(n - 1 - i, config_.inject_delay);
  }

  registry_ = std::make_unique<KeyRegistry>(n, config_.seed ^ 0x5e17c0defeedULL);

  if (config_.workload == WorkloadKind::kYcsb) {
    workload_ = std::make_unique<YcsbWorkload>(config_.ycsb);
  } else {
    workload_ = std::make_unique<TpccWorkload>(config_.tpcc);
  }

  // Clients sit in `client_region`; their delay to each replica follows the
  // topology's inter-region latency.
  std::vector<SimTime> client_lat(n);
  for (uint32_t r = 0; r < n; ++r) {
    client_lat[r] =
        config_.topology.region_latency[config_.client_region]
                                       [config_.topology.region_of[r]];
  }
  // Fig. 9 semantics: delays are injected on *all* traffic to and from the
  // impacted replicas, including client requests and responses.
  for (uint32_t i = 0; i < config_.num_impaired && i < n; ++i) {
    client_lat[n - 1 - i] += config_.inject_delay;
  }
  ClientPoolConfig cp;
  // Open loop defaults to a million-strong population: client records are
  // lazy, so the figure is a label space, not a memory commitment.
  const uint32_t default_clients =
      config_.arrival.kind == ArrivalKind::kClosedLoop ? 8 * config_.batch_size
                                                       : 1'000'000;
  cp.num_clients = config_.num_clients > 0 ? config_.num_clients : default_clients;
  cp.groups = config_.client_groups;
  cp.arrival = config_.arrival;
  const uint32_t f = (n - 1) / 3;
  cp.quorum_commit = f + 1;
  cp.quorum_speculative =
      (IsSpeculative(config_.protocol) && config_.speculation_enabled) ? n - f : 0;
  cp.resubmit_timeout = std::max<SimTime>(Millis(100), 8 * config_.view_timer);
  cp.seed = config_.seed * 1000003 + 17;
  cp.track_accepted = config_.track_accepted;
  clients_ = std::make_unique<ClientPool>(sim_.get(), workload_.get(), cp,
                                          std::move(client_lat));

  // Conservative lookahead horizon: no event may schedule onto another
  // shard sooner than the fastest cross-shard path — a network delivery
  // (min pairwise latency + egress serialization floor) or a replica->
  // client response hop. Faults, jitter, and impairments only add delay.
  SimTime lookahead_window = 0;
  switch (config_.lookahead.mode) {
    case LookaheadMode::kOff:
      break;
    case LookaheadMode::kWindow:
      lookahead_window = config_.lookahead.window;
      break;
    case LookaheadMode::kAuto:
      lookahead_window =
          std::min(net_->MinDeliveryLatency(), clients_->MinResponseLatency());
      break;
  }
  sim_->SetLookahead(lookahead_window);

  ConsensusConfig cc = ConsensusConfig::ForN(n);
  cc.batch_size = config_.batch_size;
  cc.delta = config_.delta;
  cc.view_timer = config_.view_timer;
  cc.costs = config_.costs;
  cc.cert_scheme = config_.cert_scheme;
  cc.max_slots_per_view = config_.max_slots;
  cc.speculation_enabled = config_.speculation_enabled;
  cc.trusted_leader_enabled = config_.trusted_leader_enabled;
  cc.test_break_safety = config_.test_break_safety;
  cc.test_break_liveness = config_.test_break_liveness;
  cc.test_break_reconfig = config_.test_break_reconfig;

  // Committee reconfiguration: resolve the schedule's epoch geometry against
  // the allocated pool (f+1 views per epoch, matching the pacemaker's
  // Wish/TC boundaries) and check every member fits the allocation. The
  // shared schedule threads into every replica's config and pacemaker.
  if (!config_.reconfig.empty()) {
    CommitteeSchedule sched = config_.reconfig;
    if (sched.views_per_epoch == 0) sched.views_per_epoch = f + 1;
    HS1_CHECK_EQ(sched.views_per_epoch, static_cast<uint64_t>(f) + 1)
        << "reconfig epoch geometry must match the pacemaker's";
    HS1_CHECK_LT(sched.MaxMember(), n) << "committee member outside allocation";
    committee_ = std::make_shared<const CommitteeSchedule>(std::move(sched));
    cc.committee = committee_;
  }

  StrategySchedule schedule = config_.strategy;
  if (!schedule.empty() && schedule.epoch_length <= 0) {
    // Auto epoch: one pacemaker epoch (f+1 views) of wall-clock time.
    schedule.epoch_length = static_cast<SimTime>(f + 1) * config_.view_timer;
  }
  plan_ = MakeAdversaryPlan(n, config_.fault, config_.num_faulty,
                            config_.rollback_victims, std::move(schedule));

  // The event cap needs the serial tick boundary for exact accounting, so
  // the parallel executor silently pins itself to tick-parallel while a cap
  // is set — visible here instead of silent (EmitTables / RunScenario warn).
  cap_parallelism_degraded_ =
      config_.event_cap > 0 && config_.sim_jobs > 1 && lookahead_window > 0;

  if (config_.oracle_enabled) {
    InvariantOracle::Setup os;
    os.n = n;
    os.fault = config_.fault;
    os.rollback_victims = plan_.rollback_victims;  // post-clamp
    os.faulty_mask = plan_.faulty_mask;
    os.schedule = plan_.schedule;
    os.committee = committee_;
    os.seed = config_.seed;
    os.config_summary = DescribeConfig(config_);
    oracle_ = std::make_unique<InvariantOracle>(sim_.get(), std::move(os));
    clients_->SetOracle(oracle_.get());

    LivenessOracle::Setup ls;
    ls.n = n;
    ls.faulty_mask = plan_.faulty_mask;
    ls.gst = plan_.schedule ? plan_.schedule->ResolvedGst() : 0;
    ls.k = config_.liveness_k;
    ls.grace = config_.liveness_grace;
    ls.view_timer = config_.view_timer;
    ls.seed = config_.seed;
    ls.config_summary = DescribeConfig(config_);
    liveness_ = std::make_unique<LivenessOracle>(sim_.get(), std::move(ls));
    net_->SetGstCallback([this]() { liveness_->OnGstReached(); });
  }

  // GST barrier event: scheduled whenever the schedule promises a concrete
  // stabilization time, independent of the oracle toggle (the notification
  // is a no-op without a registered callback), so enabling the oracle never
  // changes the event stream it observes.
  const SimTime gst = plan_.schedule ? plan_.schedule->ResolvedGst() : 0;
  if (gst > 0 && gst < StrategySchedule::kGstNever) {
    sim_->At(gst, [this]() { net_->NotifyGstReached(); });
  }

  // kActDelay entries are realized as Network fault rules on the coalition's
  // outbound traffic, installed/removed by barrier (kShardSerial) events at
  // the entry's epoch boundaries. FaultRule delays are >= 0, so the
  // lookahead horizon derived above stays valid for the whole run.
  if (plan_.schedule && plan_.schedule->HasAction(kActDelay)) {
    std::vector<bool> from(n, false);
    for (ReplicaId r : plan_.members) from[r] = true;
    const std::vector<bool> to(n, true);
    for (const StrategyEntry& e : plan_.schedule->entries) {
      if (!(e.actions & kActDelay)) continue;
      const SimTime start =
          static_cast<SimTime>(e.from_epoch) * plan_.schedule->epoch_length;
      auto rule_id = std::make_shared<int>(-1);
      sim_->At(start, [this, from, to, delay = e.delay, rule_id]() {
        sim::FaultRule rule;
        rule.from_match = from;
        rule.to_match = to;
        rule.extra_delay = delay;
        *rule_id = net_->AddRule(std::move(rule));
      });
      if (e.to_epoch != kEpochForever) {
        const SimTime end =
            static_cast<SimTime>(e.to_epoch) * plan_.schedule->epoch_length;
        sim_->At(end, [this, rule_id]() {
          if (*rule_id >= 0) net_->RemoveRule(*rule_id);
        });
      }
    }
  }

  // Environmental interference (partition / correlated regional outage / WAN
  // jitter) realizes the same way: barrier events install FaultRules at the
  // entry's start and remove them at its end (the heal time). All three only
  // drop or add delay, so the lookahead horizon stays valid; none of them is
  // coalition-bound — they model the network, not the adversary's replicas.
  if (plan_.schedule &&
      plan_.schedule->HasAction(kActPartition | kActOutage | kActJitter)) {
    for (const StrategyEntry& e : plan_.schedule->entries) {
      std::vector<sim::FaultRule> rules;
      if (e.actions & kActPartition) {
        // One rule per group: drop everything it sends to the other groups.
        // Nodes in no group keep talking to everyone.
        for (size_t g = 0; g < e.partition.size(); ++g) {
          std::vector<bool> from(n, false), others(n, false);
          for (const uint32_t id : e.partition[g]) {
            if (id < n) from[id] = true;
          }
          for (size_t h = 0; h < e.partition.size(); ++h) {
            if (h == g) continue;
            for (const uint32_t id : e.partition[h]) {
              if (id < n) others[id] = true;
            }
          }
          sim::FaultRule rule;
          rule.from_match = std::move(from);
          rule.to_match = std::move(others);
          rule.drop_prob = 1.0;
          rules.push_back(std::move(rule));
        }
      }
      if (e.actions & kActOutage) {
        // The listed regions fall off the map: all their traffic, both
        // directions, is dropped until the entry heals.
        std::vector<bool> member(n, false);
        for (uint32_t r = 0; r < n; ++r) {
          for (const uint32_t region : e.outage_regions) {
            if (config_.topology.region_of[r] == region) member[r] = true;
          }
        }
        sim::FaultRule out_rule;
        out_rule.from_match = member;
        out_rule.to_match = std::vector<bool>(n, true);
        out_rule.drop_prob = 1.0;
        rules.push_back(std::move(out_rule));
        sim::FaultRule in_rule;
        in_rule.from_match = std::vector<bool>(n, true);
        in_rule.to_match = std::move(member);
        in_rule.drop_prob = 1.0;
        rules.push_back(std::move(in_rule));
      }
      if (e.actions & kActJitter) {
        sim::FaultRule rule;
        rule.from_match = std::vector<bool>(n, true);
        rule.to_match = std::vector<bool>(n, true);
        rule.extra_jitter_frac = static_cast<double>(e.jitter_pct) / 100.0;
        rules.push_back(std::move(rule));
      }
      if (rules.empty()) continue;
      const SimTime start =
          static_cast<SimTime>(e.from_epoch) * plan_.schedule->epoch_length;
      auto rule_ids = std::make_shared<std::vector<int>>();
      sim_->At(start, [this, rules, rule_ids]() {
        for (const sim::FaultRule& r : rules) rule_ids->push_back(net_->AddRule(r));
      });
      if (e.to_epoch != kEpochForever) {
        const SimTime end =
            static_cast<SimTime>(e.to_epoch) * plan_.schedule->epoch_length;
        sim_->At(end, [this, rule_ids]() {
          for (const int id : *rule_ids) net_->RemoveRule(id);
          rule_ids->clear();
        });
      }
    }
  }

  replicas_.reserve(n);
  for (ReplicaId id = 0; id < n; ++id) {
    KvState state;  // lazy materialization: absent keys read as zero
    state.Reserve(1 << 16);
    replicas_.push_back(MakeReplica(id, cc, std::move(state)));
    replicas_.back()->SetOracle(oracle_.get());
    replicas_.back()->SetLivenessOracle(liveness_.get());
    const AdversarySpec spec = plan_.SpecFor(id);
    if (spec.fault == Fault::kCrash) {
      net_->Crash(id);
      replicas_.back()->SetCrashed();
    } else if (spec.fault != Fault::kNone || spec.schedule) {
      replicas_.back()->SetAdversary(spec);
    }
  }
}

ExperimentResult Experiment::Run() {
  Setup();
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto& r : replicas_) {
    if (!r->crashed()) r->Start();
  }
  clients_->Start();

  sim_->RunUntil(config_.warmup);
  clients_->ResetStats();
  const uint64_t committed_before = replicas_[0]->metrics().txns_committed;
  const uint64_t views_before = replicas_[0]->metrics().views_entered;

  sim_->RunUntil(config_.warmup + config_.duration);

  ExperimentResult res;
  res.protocol = ProtocolName(config_.protocol);
  res.accepted = clients_->accepted();
  res.accepted_speculative = clients_->accepted_speculative();
  res.resubmissions = clients_->resubmissions();
  res.throughput_tps =
      static_cast<double>(res.accepted) / ToSeconds(config_.duration);
  const LatencyRecorder lat = clients_->latencies();
  res.avg_latency_ms = lat.AvgMs();
  res.p50_latency_ms = lat.PercentileMs(0.50);
  res.p99_latency_ms = lat.PercentileMs(0.99);
  res.p999_latency_ms = lat.PercentileMs(0.999);
  res.backlog = clients_->backlog();
  res.committed_blocks = replicas_[0]->metrics().blocks_committed;
  res.committed_txns = replicas_[0]->metrics().txns_committed - committed_before;
  res.views = replicas_[0]->metrics().views_entered - views_before;
  res.messages_sent = net_->messages_sent();
  res.bytes_sent = net_->bytes_sent();
  const uint64_t final_view = replicas_[0]->view();
  if (committee_) {
    res.final_committee_n = committee_->AtView(final_view).n();
    for (size_t i = 1; i < committee_->steps.size(); ++i) {
      const uint64_t first_view = static_cast<uint64_t>(
          committee_->steps[i].from_epoch) * committee_->views_per_epoch;
      if (first_view <= final_view &&
          committee_->steps[i].committee != committee_->steps[i - 1].committee) {
        ++res.committee_changes;
      }
    }
  } else {
    res.final_committee_n = config_.n;
  }
  for (uint32_t id = 0; id < config_.n; ++id) {
    const auto& m = replicas_[id]->metrics();
    res.slots += m.slots_proposed;
    res.timeouts += m.timeouts;
    res.rejects += m.rejects_sent;
    if (!plan_.faulty_mask || !(*plan_.faulty_mask)[id]) {
      res.rollback_events += m.rollback_events;
      res.blocks_rolled_back += m.blocks_rolled_back;
    }
  }
  res.safety_ok = CheckSafety();
  res.event_cap_hit = sim_->cap_hit();
  res.events_processed = sim_->EventsProcessed();
  if (oracle_) {
    res.oracle_violations = oracle_->violations();
    res.oracle_first_violation = oracle_->FirstDiagnostic();
  }
  if (liveness_) {
    liveness_->Finalize(config_.warmup + config_.duration, sim_->cap_hit());
    res.liveness_violations = liveness_->violations();
    res.liveness_first_violation = liveness_->FirstDiagnostic();
  }
  res.cap_parallelism_degraded = cap_parallelism_degraded_;
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return res;
}

bool Experiment::CheckSafety() const {
  // Theorem B.5: committed blocks at equal positions agree across correct
  // replicas.
  const std::vector<BlockPtr>* reference = nullptr;
  for (uint32_t id = 0; id < config_.n; ++id) {
    if (replicas_[id]->crashed()) continue;
    if (plan_.faulty_mask && (*plan_.faulty_mask)[id]) continue;
    const auto& chain = replicas_[id]->ledger().committed_chain();
    if (reference == nullptr) {
      reference = &chain;
      continue;
    }
    const size_t common = std::min(reference->size(), chain.size());
    for (size_t h = 0; h < common; ++h) {
      if ((*reference)[h]->hash() != chain[h]->hash()) return false;
    }
  }
  return true;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  Experiment exp(config);
  return exp.Run();
}

ExperimentResult RunPaperPoint(const ExperimentConfig& config) {
  ExperimentConfig sat = config;
  if (sat.num_clients == 0) sat.num_clients = 8 * sat.batch_size;
  ExperimentResult result = RunExperiment(sat);

  ExperimentConfig light = config;
  light.num_clients = std::max<uint32_t>(16, config.batch_size);
  const ExperimentResult lat = RunExperiment(light);
  result.avg_latency_ms = lat.avg_latency_ms;
  result.p50_latency_ms = lat.p50_latency_ms;
  result.p99_latency_ms = lat.p99_latency_ms;
  result.p999_latency_ms = lat.p999_latency_ms;
  result.safety_ok = result.safety_ok && lat.safety_ok;
  result.event_cap_hit = result.event_cap_hit || lat.event_cap_hit;
  result.oracle_violations += lat.oracle_violations;
  if (result.oracle_first_violation.empty()) {
    result.oracle_first_violation = lat.oracle_first_violation;
  }
  result.liveness_violations += lat.liveness_violations;
  if (result.liveness_first_violation.empty()) {
    result.liveness_first_violation = lat.liveness_first_violation;
  }
  result.cap_parallelism_degraded =
      result.cap_parallelism_degraded || lat.cap_parallelism_degraded;
  result.wall_ms += lat.wall_ms;
  return result;
}

}  // namespace hotstuff1

// Declarative scenario engine: a ScenarioSpec describes a paper figure (or
// any experiment sweep) as axes over the ExperimentConfig space plus metric
// columns, and a ScenarioRegistry makes every spec launchable by name from
// hs1bench / hs1sim. Specs are pure data + mutators; execution lives in
// sweep_runner.{h,cc}.

#ifndef HOTSTUFF1_RUNTIME_SCENARIO_H_
#define HOTSTUFF1_RUNTIME_SCENARIO_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/experiment.h"

namespace hotstuff1 {

/// One labelled position on a sweep axis: applied on top of the spec's base
/// config (and any outer axes) when the point is expanded.
///
/// Determinism: `apply` must be a pure function of the config it receives —
/// no I/O, no wall clock, no shared mutable state — because it runs once per
/// expanded point, possibly concurrently on sweep worker threads.
struct AxisPoint {
  std::string label;
  std::function<void(ExperimentConfig&)> apply;  // null = label-only
};

using Axis = std::vector<AxisPoint>;

/// A metric column: extract a raw value from an ExperimentResult, format it
/// for the human-readable table. `value` and `format` must be pure (they
/// run per point per emitter, in deterministic spec order).
///
/// `deterministic = false` marks a metric whose value varies across runs
/// (wall_ms is the only one). The machine-readable emitters (CSV/JSON) skip
/// such columns so their bytes stay identical at any --jobs / --sim-jobs /
/// --lookahead *and across repeated runs*; tables still show them.
struct MetricSpec {
  std::string name;
  std::function<double(const ExperimentResult&)> value;
  std::function<std::string(double)> format;
  bool deterministic = true;
};

// Stock metrics used by most figure scenarios.
MetricSpec ThroughputMetric();
MetricSpec AvgLatencyMetric();
MetricSpec P50LatencyMetric();
MetricSpec P99LatencyMetric();
MetricSpec P999LatencyMetric();
MetricSpec CountMetric(std::string name,
                       std::function<double(const ExperimentResult&)> value);
/// Real milliseconds spent executing the point. The one inherently
/// nondeterministic metric — only speedup-style scenarios should use it,
/// and their output is exempt from the byte-identical contract.
MetricSpec WallClockMetric();

/// The protocol column axis shared by the figure benches (HotStuff,
/// HotStuff-2, HotStuff-1, HS-1 slotted).
Axis PaperProtocolAxis();

/// How each expanded point is measured.
enum class RunMode {
  kPaperPoint,  // RunPaperPoint: saturated throughput + light-load latency
  kSingle,      // RunExperiment: one run per point
};

struct ScenarioRunOptions;  // sweep_runner.h
struct SweepPoint;          // defined below ScenarioSpec

/// \brief Declarative description of one benchmark scenario.
///
/// Expansion order is tables x rows x cols x seeds (all deterministic), with
/// mutators applied base -> table -> row -> col, so inner axes may derive
/// values (timers, durations) from what outer axes already set. The point's
/// seed is written into the config before the mutators run; axes normally
/// leave it alone, but may consult or override it (the fuzz scenario derives
/// entire configurations from per-row seeds).
///
/// Ownership/threading: specs are value types. The registry keeps one copy
/// alive for the process lifetime and hands out const pointers; the sweep
/// runner only ever reads a spec, so one spec may serve concurrent runs.
/// Authoring guide: docs/scenario-authoring.md.
struct ScenarioSpec {
  std::string name;         // registry key, e.g. "fig8_scalability"
  std::string title;        // table caption stem, e.g. "Figure 8(a,b): Scalability"
  std::string description;  // one line for --list
  std::string table_name;   // axis header, e.g. "delay" (empty if no table axis)
  std::string row_name = "x";  // row axis header, e.g. "n", "batch", "k"

  ExperimentConfig base;
  Axis tables;  // optional outer axis (one table group per point)
  Axis rows;    // x-axis of each table
  Axis cols;    // column axis, typically protocols
  std::vector<MetricSpec> metrics;
  std::vector<uint64_t> seeds;  // empty -> {base.seed}
  RunMode mode = RunMode::kPaperPoint;

  /// CI-sized override applied after all axes when running with --smoke.
  /// Null picks the default (short duration/warmup, kSingle measurement).
  std::function<void(ExperimentConfig&)> smoke;

  /// Per-point pass/fail override. When set, RunScenario's exit code comes
  /// from this instead of the default "any oracle/liveness/safety violation
  /// fails" rule — for scenarios whose points *expect* a violation
  /// (fig_liveness's over-threshold rows, the over-threshold fuzz tier).
  /// Must be pure (runs once per point, in deterministic spec order).
  std::function<bool(const SweepPoint&, const ExperimentResult&)> point_judge;

  /// Free-form note printed under the scenario's tables (par_speedup uses it
  /// to annotate single-core hosts where speedup is meaningless).
  std::string table_note;

  /// Escape hatch for scenarios that are not config sweeps (micro-benchmarks):
  /// when set, the sweep machinery is bypassed and this runs instead.
  std::function<int(const ScenarioRunOptions&)> custom_run;
};

/// One expanded (config, seed) execution point of a scenario sweep.
struct SweepPoint {
  size_t index = 0;  // position in deterministic spec order
  std::string table_label, row_label, col_label;
  uint64_t seed = 0;
  RunMode mode = RunMode::kPaperPoint;
  ExperimentConfig config;
};

/// Expands a spec into its deterministic point list. With `smoke`, the spec's
/// smoke mutator (or the default CI shrink) is applied to every point and the
/// row/table axes are subsampled to their endpoints.
std::vector<SweepPoint> ExpandScenario(const ScenarioSpec& spec, bool smoke = false);

/// \brief Global name -> spec catalog; definitions self-register at load.
///
/// Threading: populated by static initializers before main() and read-only
/// afterwards, so lookups need no synchronization. Register at runtime only
/// from a single thread (tests do this before spawning workers).
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Instance();

  /// Registers a spec (fatal on duplicate or empty name).
  void Register(ScenarioSpec spec);

  const ScenarioSpec* Find(const std::string& name) const;
  std::vector<const ScenarioSpec*> All() const;  // sorted by name

 private:
  std::vector<ScenarioSpec> specs_;
};

struct ScenarioRegistrar {
  explicit ScenarioRegistrar(ScenarioSpec spec);
};

/// Registers the ScenarioSpec returned by `maker` under a unique object name.
#define HS1_REGISTER_SCENARIO(maker) \
  static const ::hotstuff1::ScenarioRegistrar hs1_scenario_registrar_##maker{maker()}

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_SCENARIO_H_

// Helpers for placing Byzantine/crash faults across a replica set, plus the
// composable per-epoch strategy-schedule library (parse/format and plan
// threading; the primitive semantics live in consensus/config.h).

#ifndef HOTSTUFF1_RUNTIME_ADVERSARY_H_
#define HOTSTUFF1_RUNTIME_ADVERSARY_H_

#include <memory>
#include <string>
#include <vector>

#include "consensus/config.h"
#include "crypto/signer.h"  // ReplicaId

namespace hotstuff1 {

/// Fault placement for an experiment: which replicas are adversarial and
/// what they do.
struct AdversaryPlan {
  Fault fault = Fault::kNone;
  /// Faulty replica ids (contiguous from 1 by default, so that round-robin
  /// leadership hits them every rotation).
  std::vector<ReplicaId> members;
  std::shared_ptr<const std::vector<bool>> faulty_mask;
  uint32_t rollback_victims = 0;
  /// Resolved strategy schedule shared by every coalition member (null when
  /// the run uses only a legacy fixed fault).
  std::shared_ptr<const StrategySchedule> schedule;

  /// Per-replica spec (kNone for honest replicas).
  AdversarySpec SpecFor(ReplicaId r) const;
};

/// Builds a plan with `count` faulty replicas of behaviour `fault`, placed
/// at ids 1..count (id 0 stays honest as the measurement observer).
/// `rollback_victims` is clamped to f = (n-1)/3: the §7.3 attack misleads a
/// subset S of correct replicas with |S| <= f — any more and the doomed
/// branch could gather an n-f speculative client quorum, which would break
/// client safety (Cor. B.10) rather than model the paper's adversary.
/// `schedule` must be resolved (epoch_length > 0) or empty; a schedule with
/// an equivocate entry turns collusion on for the coalition (the conflicting
/// branch needs the coalition's votes, exactly as under kRollbackAttack).
AdversaryPlan MakeAdversaryPlan(uint32_t n, Fault fault, uint32_t count,
                                uint32_t rollback_victims = 0,
                                StrategySchedule schedule = {});

/// The designated victim set of the §7.3 rollback attack: the first
/// `victims` correct replicas in id order. mask[r] is true iff r is a
/// victim. Single source of truth consumed by BOTH sides — the attacking
/// leader (which sends the honest branch exactly to this set) and the
/// invariant oracle (which exempts exactly this set from rollback checks);
/// any drift between the two would mis-attribute rollbacks.
/// `faulty` may be null (no replica is faulty).
std::vector<bool> RollbackVictimMask(uint32_t n, const std::vector<bool>* faulty,
                                     uint32_t victims);

// --- strategy-schedule text form ---------------------------------------------
// Grammar (the --strategy flag; see docs/scenario-authoring.md):
//
//   schedule  := segment (';' segment)*
//   segment   := entry | "epoch=" <us> | "gst=" <us>
//   entry     := range ':' action (',' action)*
//   range     := <from> | <from> '-' | <from> '-' <to>      (to exclusive,
//                "<from>-" = open-ended)
//   action    := "equivocate" | "withhold" | "delay=" <us> | "target-leader"
//              | "partition=" group ('|' group)+   (group := idlist)
//              | "outage=" idlist                  (correlated region outage)
//              | "jitter=" <pct>                   (WAN jitter, % of latency)
//   idlist    := idrange ('+' idrange)*
//   idrange   := <id> | <lo> '-' <hi>              (hi inclusive)
//
// All numbers are plain digit strings: no sign characters, no whitespace
// ("+5" and " 5" are rejected — Format never emits them, and accepting them
// would break the round-trip contract).
//
// Examples: "0-:withhold"            withhold forever
//           "1-3:delay=5000;gst=90000"  5ms extra delay in epochs 1-2,
//                                       declared GST at 90ms
//           "0-3:partition=0-7|8-15"    split the first 16 replicas into two
//                                       halves during epochs 0-2
//           "2:outage=0+2,jitter=50"    regions 0 and 2 degraded and +50%
//                                       uniform jitter during epoch 2
//
// Parse and Format round-trip: Parse(Format(s)) == s for any valid schedule.

/// Parses the grammar above into `out`. Returns false (and fills `error`
/// when non-null) on malformed input. An empty string parses to an empty
/// schedule.
bool ParseStrategySchedule(const std::string& text, StrategySchedule* out,
                           std::string* error = nullptr);

/// Canonical text form of a schedule ("" for an empty one).
std::string FormatStrategySchedule(const StrategySchedule& schedule);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_ADVERSARY_H_

// Helpers for placing Byzantine/crash faults across a replica set.

#ifndef HOTSTUFF1_RUNTIME_ADVERSARY_H_
#define HOTSTUFF1_RUNTIME_ADVERSARY_H_

#include <memory>
#include <vector>

#include "consensus/config.h"
#include "crypto/signer.h"  // ReplicaId

namespace hotstuff1 {

/// Fault placement for an experiment: which replicas are adversarial and
/// what they do.
struct AdversaryPlan {
  Fault fault = Fault::kNone;
  /// Faulty replica ids (contiguous from 1 by default, so that round-robin
  /// leadership hits them every rotation).
  std::vector<ReplicaId> members;
  std::shared_ptr<const std::vector<bool>> faulty_mask;
  uint32_t rollback_victims = 0;

  /// Per-replica spec (kNone for honest replicas).
  AdversarySpec SpecFor(ReplicaId r) const;
};

/// Builds a plan with `count` faulty replicas of behaviour `fault`, placed
/// at ids 1..count (id 0 stays honest as the measurement observer).
AdversaryPlan MakeAdversaryPlan(uint32_t n, Fault fault, uint32_t count,
                                uint32_t rollback_victims = 0);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_ADVERSARY_H_

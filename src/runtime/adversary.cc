#include "runtime/adversary.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace hotstuff1 {

AdversarySpec AdversaryPlan::SpecFor(ReplicaId r) const {
  AdversarySpec spec;
  if (!faulty_mask || !(*faulty_mask)[r]) return spec;
  spec.fault = fault;
  spec.collude = (fault != Fault::kNone && fault != Fault::kCrash) ||
                 (schedule && schedule->HasAction(kActEquivocate));
  spec.faulty = faulty_mask;
  spec.rollback_victims = rollback_victims;
  spec.schedule = schedule;
  return spec;
}

AdversaryPlan MakeAdversaryPlan(uint32_t n, Fault fault, uint32_t count,
                                uint32_t rollback_victims,
                                StrategySchedule schedule) {
  HS1_CHECK_LT(count, n);
  AdversaryPlan plan;
  plan.fault = fault;
  // |S| <= f (see header): over-asking for victims silently models a
  // different, client-safety-breaking adversary, so clamp instead.
  plan.rollback_victims = std::min(rollback_victims, (n - 1) / 3);
  auto mask = std::make_shared<std::vector<bool>>(n, false);
  for (uint32_t i = 1; i <= count && i < n; ++i) {
    plan.members.push_back(i);
    (*mask)[i] = true;
  }
  plan.faulty_mask = std::move(mask);
  if (!schedule.empty()) {
    HS1_CHECK_GE(schedule.epoch_length, 1);  // callers resolve before planning
    plan.schedule = std::make_shared<const StrategySchedule>(std::move(schedule));
  }
  return plan;
}

std::vector<bool> RollbackVictimMask(uint32_t n, const std::vector<bool>* faulty,
                                     uint32_t victims) {
  std::vector<bool> mask(n, false);
  uint32_t chosen = 0;
  for (ReplicaId r = 0; r < n && chosen < victims; ++r) {
    if (faulty != nullptr && (*faulty)[r]) continue;
    mask[r] = true;
    ++chosen;
  }
  return mask;
}

namespace {

bool Fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

/// Strict non-negative integer parse of the whole string: plain digits only.
/// strtoll would silently accept leading whitespace and sign characters
/// ("+5", " 5", "\t5"), widening the grammar beyond what Format ever emits
/// and breaking the Parse/Format round-trip contract.
bool ParseNumber(const std::string& s, int64_t* out) {
  if (s.empty() || s.size() > 18) return false;  // 18 digits always fit int64
  int64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

/// Parses "<id>|<lo>-<hi>" terms joined by '+' into an id list (e.g.
/// "0-3+8" -> {0,1,2,3,8}). Returns false on malformed or empty input.
bool ParseIdList(const std::string& s, std::vector<uint32_t>* out) {
  for (const std::string& part : Split(s, '+')) {
    int64_t lo = 0, hi = 0;
    const size_t dash = part.find('-');
    if (dash == std::string::npos) {
      if (!ParseNumber(part, &lo)) return false;
      out->push_back(static_cast<uint32_t>(lo));
    } else {
      if (!ParseNumber(part.substr(0, dash), &lo) ||
          !ParseNumber(part.substr(dash + 1), &hi) || hi < lo) {
        return false;
      }
      for (int64_t i = lo; i <= hi; ++i) out->push_back(static_cast<uint32_t>(i));
    }
  }
  return !out->empty();
}

/// Canonical text form of an id list: maximal runs re-compressed to
/// "lo-hi", joined by '+'.
std::string FormatIdList(const std::vector<uint32_t>& ids) {
  std::string out;
  size_t i = 0;
  while (i < ids.size()) {
    size_t j = i;
    while (j + 1 < ids.size() && ids[j + 1] == ids[j] + 1) ++j;
    if (!out.empty()) out += "+";
    out += std::to_string(ids[i]);
    if (j > i) out += "-" + std::to_string(ids[j]);
    i = j + 1;
  }
  return out;
}

bool ParseEntry(const std::string& segment, StrategyEntry* out,
                std::string* error) {
  const size_t colon = segment.find(':');
  if (colon == std::string::npos) {
    return Fail(error, "strategy entry '" + segment + "' lacks ':'");
  }
  const std::string range = segment.substr(0, colon);
  StrategyEntry entry;
  int64_t from = 0, to = 0;
  const size_t dash = range.find('-');
  if (dash == std::string::npos) {
    if (!ParseNumber(range, &from)) {
      return Fail(error, "bad epoch '" + range + "'");
    }
    entry.from_epoch = static_cast<uint32_t>(from);
    entry.to_epoch = entry.from_epoch + 1;  // single epoch
  } else {
    if (!ParseNumber(range.substr(0, dash), &from)) {
      return Fail(error, "bad epoch range '" + range + "'");
    }
    entry.from_epoch = static_cast<uint32_t>(from);
    const std::string to_str = range.substr(dash + 1);
    if (to_str.empty()) {
      entry.to_epoch = kEpochForever;
    } else if (ParseNumber(to_str, &to) && to > from) {
      entry.to_epoch = static_cast<uint32_t>(to);
    } else {
      return Fail(error, "bad epoch range '" + range + "' (want to > from)");
    }
  }
  for (const std::string& action : Split(segment.substr(colon + 1), ',')) {
    if (action == "equivocate") {
      entry.actions |= kActEquivocate;
    } else if (action == "withhold") {
      entry.actions |= kActWithhold;
    } else if (action == "target-leader") {
      entry.actions |= kActTargetLeader;
    } else if (action.rfind("delay=", 0) == 0) {
      int64_t us = 0;
      if (!ParseNumber(action.substr(6), &us) || us <= 0) {
        return Fail(error, "bad '" + action + "' (want delay=<positive us>)");
      }
      entry.actions |= kActDelay;
      entry.delay = us;
    } else if (action.rfind("partition=", 0) == 0) {
      std::vector<std::vector<uint32_t>> groups;
      std::vector<bool> seen;
      for (const std::string& g : Split(action.substr(10), '|')) {
        std::vector<uint32_t> ids;
        if (!ParseIdList(g, &ids)) {
          return Fail(error, "bad '" + action +
                                 "' (want partition=<ids>('|'<ids>)+, ids as "
                                 "<id> or <lo>-<hi> joined by '+')");
        }
        for (const uint32_t id : ids) {
          if (id >= seen.size()) seen.resize(id + 1, false);
          if (seen[id]) {
            return Fail(error, "bad '" + action + "' (replica " +
                                   std::to_string(id) + " in two groups)");
          }
          seen[id] = true;
        }
        groups.push_back(std::move(ids));
      }
      if (groups.size() < 2) {
        return Fail(error, "bad '" + action + "' (want >= 2 groups)");
      }
      entry.actions |= kActPartition;
      entry.partition = std::move(groups);
    } else if (action.rfind("outage=", 0) == 0) {
      std::vector<uint32_t> regions;
      if (!ParseIdList(action.substr(7), &regions)) {
        return Fail(error,
                    "bad '" + action + "' (want outage=<region>('+'<region>)*)");
      }
      entry.actions |= kActOutage;
      entry.outage_regions = std::move(regions);
    } else if (action.rfind("jitter=", 0) == 0) {
      int64_t pct = 0;
      if (!ParseNumber(action.substr(7), &pct) || pct <= 0 || pct > 1000) {
        return Fail(error, "bad '" + action + "' (want jitter=<pct in 1..1000>)");
      }
      entry.actions |= kActJitter;
      entry.jitter_pct = static_cast<uint32_t>(pct);
    } else {
      return Fail(error, "unknown strategy action '" + action +
                             "' (want equivocate|withhold|delay=<us>|"
                             "target-leader|partition=<groups>|"
                             "outage=<regions>|jitter=<pct>)");
    }
  }
  if (entry.actions == kActNone) {
    return Fail(error, "strategy entry '" + segment + "' has no actions");
  }
  *out = entry;
  return true;
}

}  // namespace

bool ParseStrategySchedule(const std::string& text, StrategySchedule* out,
                           std::string* error) {
  StrategySchedule schedule;
  if (text.empty()) {
    *out = schedule;
    return true;
  }
  for (const std::string& segment : Split(text, ';')) {
    if (segment.empty()) continue;
    int64_t v = 0;
    if (segment.rfind("epoch=", 0) == 0) {
      if (!ParseNumber(segment.substr(6), &v) || v <= 0) {
        return Fail(error, "bad '" + segment + "' (want epoch=<positive us>)");
      }
      schedule.epoch_length = v;
    } else if (segment.rfind("gst=", 0) == 0) {
      if (!ParseNumber(segment.substr(4), &v)) {
        return Fail(error, "bad '" + segment + "' (want gst=<us>)");
      }
      schedule.declared_gst = v;
    } else {
      StrategyEntry entry;
      if (!ParseEntry(segment, &entry, error)) return false;
      schedule.entries.push_back(entry);
    }
  }
  if (schedule.entries.empty()) {
    return Fail(error, "strategy '" + text + "' has no entries");
  }
  *out = schedule;
  return true;
}

std::string FormatStrategySchedule(const StrategySchedule& schedule) {
  std::string out;
  for (const StrategyEntry& e : schedule.entries) {
    if (!out.empty()) out += ";";
    out += std::to_string(e.from_epoch);
    if (e.to_epoch == kEpochForever) {
      out += "-";
    } else if (e.to_epoch != e.from_epoch + 1) {
      out += "-" + std::to_string(e.to_epoch);
    }
    out += ":";
    bool first = true;
    const auto add = [&](const std::string& s) {
      if (!first) out += ",";
      out += s;
      first = false;
    };
    if (e.actions & kActEquivocate) add("equivocate");
    if (e.actions & kActWithhold) add("withhold");
    if (e.actions & kActDelay) add("delay=" + std::to_string(e.delay));
    if (e.actions & kActTargetLeader) add("target-leader");
    if (e.actions & kActPartition) {
      std::string p = "partition=";
      for (size_t g = 0; g < e.partition.size(); ++g) {
        if (g > 0) p += "|";
        p += FormatIdList(e.partition[g]);
      }
      add(p);
    }
    if (e.actions & kActOutage) add("outage=" + FormatIdList(e.outage_regions));
    if (e.actions & kActJitter) add("jitter=" + std::to_string(e.jitter_pct));
  }
  if (schedule.epoch_length > 0) {
    out += ";epoch=" + std::to_string(schedule.epoch_length);
  }
  if (schedule.declared_gst != StrategySchedule::kGstAuto) {
    out += ";gst=" + std::to_string(schedule.declared_gst);
  }
  return out;
}

}  // namespace hotstuff1

#include "runtime/adversary.h"

#include <algorithm>

#include "common/logging.h"

namespace hotstuff1 {

AdversarySpec AdversaryPlan::SpecFor(ReplicaId r) const {
  AdversarySpec spec;
  if (!faulty_mask || !(*faulty_mask)[r]) return spec;
  spec.fault = fault;
  spec.collude = fault != Fault::kNone && fault != Fault::kCrash;
  spec.faulty = faulty_mask;
  spec.rollback_victims = rollback_victims;
  return spec;
}

AdversaryPlan MakeAdversaryPlan(uint32_t n, Fault fault, uint32_t count,
                                uint32_t rollback_victims) {
  HS1_CHECK_LT(count, n);
  AdversaryPlan plan;
  plan.fault = fault;
  // |S| <= f (see header): over-asking for victims silently models a
  // different, client-safety-breaking adversary, so clamp instead.
  plan.rollback_victims = std::min(rollback_victims, (n - 1) / 3);
  auto mask = std::make_shared<std::vector<bool>>(n, false);
  for (uint32_t i = 1; i <= count && i < n; ++i) {
    plan.members.push_back(i);
    (*mask)[i] = true;
  }
  plan.faulty_mask = std::move(mask);
  return plan;
}

std::vector<bool> RollbackVictimMask(uint32_t n, const std::vector<bool>* faulty,
                                     uint32_t victims) {
  std::vector<bool> mask(n, false);
  uint32_t chosen = 0;
  for (ReplicaId r = 0; r < n && chosen < victims; ++r) {
    if (faulty != nullptr && (*faulty)[r]) continue;
    mask[r] = true;
    ++chosen;
  }
  return mask;
}

}  // namespace hotstuff1

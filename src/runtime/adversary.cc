#include "runtime/adversary.h"

#include "common/logging.h"

namespace hotstuff1 {

AdversarySpec AdversaryPlan::SpecFor(ReplicaId r) const {
  AdversarySpec spec;
  if (!faulty_mask || !(*faulty_mask)[r]) return spec;
  spec.fault = fault;
  spec.collude = fault != Fault::kNone && fault != Fault::kCrash;
  spec.faulty = faulty_mask;
  spec.rollback_victims = rollback_victims;
  return spec;
}

AdversaryPlan MakeAdversaryPlan(uint32_t n, Fault fault, uint32_t count,
                                uint32_t rollback_victims) {
  HS1_CHECK_LT(count, n);
  AdversaryPlan plan;
  plan.fault = fault;
  plan.rollback_victims = rollback_victims;
  auto mask = std::make_shared<std::vector<bool>>(n, false);
  for (uint32_t i = 1; i <= count && i < n; ++i) {
    plan.members.push_back(i);
    (*mask)[i] = true;
  }
  plan.faulty_mask = std::move(mask);
  return plan;
}

}  // namespace hotstuff1

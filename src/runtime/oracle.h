// Online invariant oracle: a passive observer every protocol core and the
// client pool report into at each state transition, checking the paper's
// safety claims *while the run executes* instead of as an end-of-run prefix
// comparison:
//
//   * commit-conflict   - no two correct replicas commit different blocks at
//                         the same height (Theorem B.5, online form);
//   * commit-chain      - each correct replica's commits advance height by
//                         exactly one and hash-link to its previous commit,
//                         and every committed block is certified (a slotted
//                         carry block is admitted when the next commit is its
//                         certified first-slot child, §6.1);
//   * spec-contradiction- a speculative response issued by a correct replica
//                         that is not a designated rollback victim is never
//                         contradicted by a conflicting commit at the same
//                         height (the speculation rules of §3/§4 make
//                         speculative responses final);
//   * client-accept     - a block a client accepted (speculatively or
//                         committed, Cor. B.10) never conflicts with the
//                         committed lattice;
//   * unexpected-rollback - rollbacks (Def. 4.7) only occur under
//                         kRollbackAttack and only at designated victims;
//   * view-monotonic    - views entered by a correct replica strictly
//                         increase; formed certificates rank monotonically.
//
// A violation is reported immediately (HS1_LOG_ERROR) with a reproducible
// `(config, seed, event)` diagnostic and counted into
// ExperimentResult::oracle_violations, so a buggy run fails loudly instead
// of emitting a silently wrong CSV row.
//
// Threading / determinism: oracle state is one shared domain in the
// Simulator::SyncShared sense (docs/ARCHITECTURE.md, "Shared domains").
// Events arrive from many shards — each replica's shard, the client pool's
// shard — so every entry point gates on SyncShared before touching state:
// earlier events have completed, mutations happen in exact serial event
// order, and the violation log, counters and diagnostics are byte-identical
// at any --jobs x --sim-jobs x --lookahead. The oracle never schedules
// events, draws randomness, or charges CPU, so enabling it cannot perturb
// the simulation it observes.

#ifndef HOTSTUFF1_RUNTIME_ORACLE_H_
#define HOTSTUFF1_RUNTIME_ORACLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "consensus/certificate.h"
#include "consensus/committee.h"
#include "consensus/config.h"
#include "ledger/block.h"
#include "sim/simulator.h"

namespace hotstuff1 {

class InvariantOracle {
 public:
  /// What the oracle must know about the run to judge events: the committee,
  /// the adversary placement (faulty replicas are exempt from checks — they
  /// may do anything), which correct replicas the rollback attack designates
  /// as victims, and the (config, seed) pair for diagnostics.
  struct Setup {
    uint32_t n = 0;
    Fault fault = Fault::kNone;
    uint32_t rollback_victims = 0;
    std::shared_ptr<const std::vector<bool>> faulty_mask;  // null = all correct
    /// Resolved strategy schedule, when the run uses one; an equivocate
    /// entry designates rollback victims exactly like kRollbackAttack.
    std::shared_ptr<const StrategySchedule> schedule;
    /// Resolved committee schedule, when the run reconfigures (null =
    /// static). The committed-block lattice is keyed by chain height and
    /// deliberately NOT reset at membership changes: Theorem B.5 agreement
    /// binds the whole chain, so a replica voted out in epoch e must still
    /// agree with blocks committed by the epoch-e+1 committee at heights it
    /// ever speaks for. End-of-run CheckSafety cannot see this (it skips
    /// crashed/out replicas); only this cross-epoch lattice can.
    std::shared_ptr<const CommitteeSchedule> committee;
    uint64_t seed = 0;
    std::string config_summary;  // one-line repro, e.g. "protocol=... n=..."
  };

  InvariantOracle(sim::Simulator* sim, Setup setup);

  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  // --- event API (called from replica / client-pool events) -------------------
  void OnViewEntered(ReplicaId replica, uint64_t view);
  void OnCertificateFormed(ReplicaId replica, const Certificate& cert);
  void OnBlockCommitted(ReplicaId replica, const BlockPtr& block);
  void OnSpeculativeResponse(ReplicaId replica, const BlockPtr& block);
  /// The attacking leader split proposals at `view`: every designated victim
  /// now has an outstanding misleading campaign at that view. Rollback
  /// legality (Def. 4.7) is judged against these records.
  void OnEquivocationSent(ReplicaId leader, uint64_t view);
  /// `conflict_view` is the chain view of the committed block that displaced
  /// the speculation (NOT the replica's wall-clock view — a backlogged victim
  /// may process the conflicting commit arbitrarily late). Legal only for a
  /// designated victim holding an outstanding campaign record no more than
  /// two epochs older than the conflicting view: one epoch for the faulty
  /// leadership window that planted it plus one epoch of fetch/timeout
  /// recovery slack before honest leaders commit the winning branch.
  void OnRollback(ReplicaId replica, uint64_t blocks_rolled_back,
                  uint64_t conflict_view);
  void OnClientAccept(uint64_t txn_id, const Hash256& block_hash, bool speculative);

  // --- results (read after the run, off the event loop) ------------------------
  uint64_t violations() const { return violation_count_; }
  /// First diagnostic line, empty when clean. At most kMaxStoredViolations
  /// full diagnostics are retained; the count keeps growing past that.
  const std::vector<std::string>& violation_log() const { return violations_; }
  std::string FirstDiagnostic() const {
    return violations_.empty() ? std::string() : violations_.front();
  }
  /// Total events observed; tests use this to prove the plumbing is live.
  uint64_t events_observed() const { return events_; }

  static constexpr size_t kMaxStoredViolations = 16;

 private:
  bool IsFaulty(ReplicaId r) const {
    return setup_.faulty_mask && r < setup_.faulty_mask->size() &&
           (*setup_.faulty_mask)[r];
  }
  bool IsRollbackVictim(ReplicaId r) const {
    return r < victim_mask_.size() && victim_mask_[r];
  }
  /// Pacemaker epoch of a view (f+1 consecutive views per epoch; the
  /// committee schedule, when present, carries the same resolved geometry).
  uint64_t EpochIndex(uint64_t view) const {
    if (setup_.committee && setup_.committee->views_per_epoch > 0) {
      return view / setup_.committee->views_per_epoch;
    }
    const uint32_t f = setup_.n > 0 ? (setup_.n - 1) / 3 : 0;
    return view / (f + 1);
  }
  /// Formats, logs and stores one violation with the (config, seed, event)
  /// diagnostic. Deterministic: every input derives from simulation state.
  void Report(const char* invariant, const std::string& detail);

  /// Global commit lattice entry for one chain height.
  struct HeightEntry {
    bool has_commit = false;
    Hash256 committed_hash;
    ReplicaId first_committer = 0;
    /// Speculative responses by correct non-victim replicas issued before a
    /// commit reached this height; cross-checked when the commit lands.
    std::vector<std::pair<ReplicaId, Hash256>> spec_responses;
    /// Distinct block hashes clients accepted at this height (pre-commit).
    std::vector<Hash256> client_accepts;
  };

  /// Per-replica serial state (only that replica's events touch it, but it
  /// lives behind the same SyncShared gate as the global maps).
  struct ReplicaState {
    uint64_t last_view = 0;
    uint64_t committed_height = 0;
    Hash256 committed_hash;  // genesis at start
    bool has_formed_cert = false;
    BlockId last_cert_id{};
    /// A committed block with no certificate of its own, awaiting its
    /// certified first-slot child (slotted carry unit, §6.1).
    BlockPtr pending_uncertified;
  };

  sim::Simulator* sim_;
  Setup setup_;
  std::vector<bool> victim_mask_;
  /// Outstanding misleading-campaign views per victim, appended by
  /// OnEquivocationSent and consumed (oldest matching first) when the
  /// victim's rollback uses them as its Def. 4.7 justification.
  std::vector<std::vector<uint64_t>> misled_views_;

  std::vector<ReplicaState> replicas_;
  std::unordered_map<uint64_t, HeightEntry> heights_;
  std::unordered_set<Hash256, Hash256Hasher> certified_;
  std::unordered_map<Hash256, uint64_t, Hash256Hasher> height_of_;

  uint64_t events_ = 0;
  uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_ORACLE_H_

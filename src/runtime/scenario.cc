#include "runtime/scenario.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/report.h"

namespace hotstuff1 {

MetricSpec ThroughputMetric() {
  return {"throughput_tps",
          [](const ExperimentResult& r) { return r.throughput_tps; },
          [](double v) { return FormatTps(v); }};
}

MetricSpec AvgLatencyMetric() {
  return {"avg_latency_ms",
          [](const ExperimentResult& r) { return r.avg_latency_ms; },
          [](double v) { return FormatMs(v); }};
}

MetricSpec P50LatencyMetric() {
  return {"p50_latency_ms",
          [](const ExperimentResult& r) { return r.p50_latency_ms; },
          [](double v) { return FormatMs(v); }};
}

MetricSpec P99LatencyMetric() {
  return {"p99_latency_ms",
          [](const ExperimentResult& r) { return r.p99_latency_ms; },
          [](double v) { return FormatMs(v); }};
}

MetricSpec P999LatencyMetric() {
  return {"p999_latency_ms",
          [](const ExperimentResult& r) { return r.p999_latency_ms; },
          [](double v) { return FormatMs(v); }};
}

MetricSpec CountMetric(std::string name,
                       std::function<double(const ExperimentResult&)> value) {
  return {std::move(name), std::move(value),
          [](double v) { return FormatCount(static_cast<uint64_t>(v)); }};
}

MetricSpec WallClockMetric() {
  return {"wall_ms", [](const ExperimentResult& r) { return r.wall_ms; },
          [](double v) { return FormatMs(v); }, /*deterministic=*/false};
}

Axis PaperProtocolAxis() {
  Axis axis;
  for (ProtocolKind kind :
       {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1,
        ProtocolKind::kHotStuff1Slotted}) {
    axis.push_back(
        {ProtocolName(kind), [kind](ExperimentConfig& c) { c.protocol = kind; }});
  }
  return axis;
}

namespace {

// CI-sized default: a short window is enough to prove the point executes and
// stays safe; figures use the full spec.
void DefaultSmoke(ExperimentConfig& cfg) {
  cfg.duration = std::min<SimTime>(cfg.duration, Millis(120));
  cfg.warmup = std::min<SimTime>(cfg.warmup, Millis(40));
}

// Smoke runs keep only the endpoints of an axis: first and last point cover
// the extremes without CI paying for the interior.
Axis SubsampleEndpoints(const Axis& axis) {
  if (axis.size() <= 2) return axis;
  return {axis.front(), axis.back()};
}

}  // namespace

std::vector<SweepPoint> ExpandScenario(const ScenarioSpec& spec, bool smoke) {
  HS1_CHECK(!spec.custom_run) << "custom scenarios do not expand to sweep points";
  const Axis no_axis{{"", nullptr}};
  Axis tables = spec.tables.empty() ? no_axis : spec.tables;
  Axis rows = spec.rows.empty() ? no_axis : spec.rows;
  const Axis& cols = spec.cols.empty() ? no_axis : spec.cols;
  std::vector<uint64_t> seeds =
      spec.seeds.empty() ? std::vector<uint64_t>{spec.base.seed} : spec.seeds;
  if (smoke) {
    tables = SubsampleEndpoints(tables);
    rows = SubsampleEndpoints(rows);
    seeds.resize(1);
  }

  std::vector<SweepPoint> points;
  points.reserve(tables.size() * rows.size() * cols.size() * seeds.size());
  for (const AxisPoint& table : tables) {
    for (const AxisPoint& row : rows) {
      for (const AxisPoint& col : cols) {
        for (uint64_t seed : seeds) {
          SweepPoint p;
          p.index = points.size();
          p.table_label = table.label;
          p.row_label = row.label;
          p.col_label = col.label;
          p.seed = seed;
          p.mode = smoke ? RunMode::kSingle : spec.mode;
          p.config = spec.base;
          // The point seed is assigned before the mutators run, so an axis
          // may derive (or wholly replace) the configuration from it — the
          // fuzz scenario's rows do exactly that. Ordinary axes never touch
          // config.seed, so they observe the same semantics as before.
          p.config.seed = seed;
          if (table.apply) table.apply(p.config);
          if (row.apply) row.apply(p.config);
          if (col.apply) col.apply(p.config);
          // Reflect any mutator override back into the point, so the CSV
          // seed column always names the seed the point actually ran —
          // "a failing seed IS the repro" must survive seed-deriving axes.
          p.seed = p.config.seed;
          if (smoke) (spec.smoke ? spec.smoke : DefaultSmoke)(p.config);
          points.push_back(std::move(p));
        }
      }
    }
  }
  return points;
}

ScenarioRegistry& ScenarioRegistry::Instance() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(ScenarioSpec spec) {
  HS1_CHECK(!spec.name.empty()) << "scenario needs a name";
  HS1_CHECK(Find(spec.name) == nullptr) << "duplicate scenario: " << spec.name;
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::Find(const std::string& name) const {
  for (const ScenarioSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> ScenarioRegistry::All() const {
  std::vector<const ScenarioSpec*> all;
  all.reserve(specs_.size());
  for (const ScenarioSpec& s : specs_) all.push_back(&s);
  std::sort(all.begin(), all.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) { return a->name < b->name; });
  return all;
}

ScenarioRegistrar::ScenarioRegistrar(ScenarioSpec spec) {
  ScenarioRegistry::Instance().Register(std::move(spec));
}

}  // namespace hotstuff1

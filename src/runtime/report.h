// Plain-text table printing for the figure-reproduction benches.

#ifndef HOTSTUFF1_RUNTIME_REPORT_H_
#define HOTSTUFF1_RUNTIME_REPORT_H_

#include <iostream>
#include <string>
#include <vector>

#include "common/units.h"

namespace hotstuff1 {

/// \brief Aligned text table with a caption, printed like the paper's
/// figure series (one row per x-axis point, one column per protocol).
class ReportTable {
 public:
  ReportTable(std::string caption, std::vector<std::string> columns)
      : caption_(std::move(caption)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void Print(std::ostream& os = std::cout) const;

  /// Same data as Print(), one CSV line per row with a header line.
  void PrintCsv(std::ostream& os = std::cout) const;
  /// Same data as Print(), as {"caption":..., "columns":[...], "rows":[[...]]}.
  void PrintJson(std::ostream& os = std::cout) const;

  const std::string& caption() const { return caption_; }

 private:
  std::string caption_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatTps(double tps);
std::string FormatMs(double ms);
std::string FormatCount(uint64_t v);

/// Aggregate statistics for one table cell over its per-seed samples.
/// Deterministic: computed with two fixed-order passes, so the emitted
/// bytes never depend on worker scheduling.
struct SampleStats {
  uint64_t count = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1 denominator); 0 if count < 2
  double ci95 = 0;    ///< 95% CI half-width, normal approx: 1.96 * stddev / sqrt(n)
  // Interpolated quantiles (see Quantile); equal to the single sample when
  // count == 1. p999 saturates to the max for small samples — still useful
  // as a tail bound for the saturation sweeps and the bench ledger.
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};
SampleStats ComputeStats(const std::vector<double>& samples);

/// Interpolated quantile of an ascending-sorted sample vector: index
/// q*(n-1), linear interpolation between neighbors. Returns 0 when empty.
double Quantile(const std::vector<double>& sorted, double q);

/// Quotes a CSV cell when it contains a delimiter, quote, or newline.
std::string CsvEscape(const std::string& s);
/// Escapes quotes, backslashes, and newlines for a JSON string body
/// (no surrounding quotes).
std::string JsonEscape(const std::string& s);

/// Virtual measurement duration for benches: H1_DURATION_MS env override,
/// else `default_ms`.
SimTime BenchDuration(double default_ms = 2000.0);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_REPORT_H_

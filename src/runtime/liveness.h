// Online liveness oracle: the progress-monitor counterpart of the safety
// oracle (runtime/oracle.h). Thm B.8 guarantees that after GST some correct
// replica commits within k views; this observer flags runs that break that
// promise, online where possible and with an end-of-run silence check where
// the run stalls so hard that no further events arrive to judge.
//
//   * liveness-stall   - correct replicas entered more than k views past the
//                        last correct commit after GST (views churn, nothing
//                        commits — e.g. leaders propose but certificates
//                        never form);
//   * liveness-silence - the run ended >= `grace` of virtual time after both
//                        GST and the last correct commit (views stopped
//                        entirely — e.g. an over-threshold coalition starves
//                        the pacemaker's n-f Wish quorum, so epoch
//                        synchronization never completes and no view-entry
//                        events exist for the online check to see).
//
// Violations carry the same reproducible `(config, seed, event#, t)`
// diagnostics as the safety oracle.
//
// Threading / determinism: same contract as InvariantOracle — state lives in
// the shared serial domain, every event-loop entry point gates on
// Simulator::SyncShared, nothing here schedules events, draws randomness or
// charges CPU, so the monitor is a pure observer and its verdict is
// byte-identical at any --jobs x --sim-jobs x --lookahead. Finalize runs off
// the event loop, after the simulator stopped.

#ifndef HOTSTUFF1_RUNTIME_LIVENESS_H_
#define HOTSTUFF1_RUNTIME_LIVENESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/signer.h"  // ReplicaId
#include "ledger/block.h"
#include "sim/simulator.h"

namespace hotstuff1 {

class LivenessOracle {
 public:
  struct Setup {
    uint32_t n = 0;
    std::shared_ptr<const std::vector<bool>> faulty_mask;  // null = all correct
    /// Virtual time at which the network is promised to stabilize. 0 arms
    /// the monitor from the start (synchronous run / legacy fixed faults);
    /// StrategySchedule::kGstNever (open-ended interference with no declared
    /// GST) leaves the monitor inert — nothing was promised, so nothing can
    /// be violated.
    SimTime gst = 0;
    /// Online threshold: flag when correct replicas enter more than k views
    /// past the last correct commit (after GST). 0 = auto — conservative
    /// enough that no legitimate short run can trip it (see liveness.cc).
    uint64_t k = 0;
    /// End-of-run threshold: flag when the run ends >= grace after both GST
    /// and the last correct commit. 0 = auto (see liveness.cc).
    SimTime grace = 0;
    /// View timer tau; scales the auto grace threshold.
    SimTime view_timer = 0;
    uint64_t seed = 0;
    std::string config_summary;  // one-line repro, shared with the safety oracle
  };

  LivenessOracle(sim::Simulator* sim, Setup setup);

  LivenessOracle(const LivenessOracle&) = delete;
  LivenessOracle& operator=(const LivenessOracle&) = delete;

  // --- event API (called from replica events / the GST barrier event) ---------
  void OnViewEntered(ReplicaId replica, uint64_t view);
  void OnBlockCommitted(ReplicaId replica, const BlockPtr& block);
  /// Fired by Network's GST barrier event (Network::NotifyGstReached).
  void OnGstReached();

  /// End-of-run silence check; call once, off the event loop, with the run's
  /// final virtual time. A cap-truncated run is skipped (its silence says
  /// nothing about the protocol).
  void Finalize(SimTime end, bool event_cap_hit);

  // --- results (read after the run, off the event loop) ------------------------
  uint64_t violations() const { return violation_count_; }
  const std::vector<std::string>& violation_log() const { return violations_; }
  std::string FirstDiagnostic() const {
    return violations_.empty() ? std::string() : violations_.front();
  }
  uint64_t events_observed() const { return events_; }
  uint64_t threshold_k() const { return k_; }
  SimTime threshold_grace() const { return grace_; }

  static constexpr size_t kMaxStoredViolations = 16;

 private:
  bool IsFaulty(ReplicaId r) const {
    return setup_.faulty_mask && r < setup_.faulty_mask->size() &&
           (*setup_.faulty_mask)[r];
  }
  void Report(const char* invariant, SimTime t, const std::string& detail);

  sim::Simulator* sim_;
  Setup setup_;
  uint64_t k_ = 0;       // resolved online threshold
  SimTime grace_ = 0;    // resolved silence threshold
  bool gst_reached_ = false;
  SimTime gst_time_ = 0;

  /// Highest view any correct replica has entered.
  uint64_t max_view_ = 0;
  /// max_view_ at the last correct commit (or at GST); the online check
  /// fires when max_view_ outruns this by more than k.
  uint64_t progress_view_ = 0;
  SimTime last_commit_time_ = 0;
  bool finalized_ = false;

  uint64_t events_ = 0;
  uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_LIVENESS_H_

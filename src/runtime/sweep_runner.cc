#include "runtime/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <thread>
#include <tuple>

#include "common/logging.h"
#include "runtime/report.h"

namespace hotstuff1 {

bool ParseReportFormat(const std::string& s, ReportFormat* out) {
  if (s == "table") *out = ReportFormat::kTable;
  else if (s == "csv") *out = ReportFormat::kCsv;
  else if (s == "json") *out = ReportFormat::kJson;
  else return false;
  return true;
}

bool SweepOutcome::AllSafe() const {
  for (const ExperimentResult& r : results) {
    if (!r.safety_ok) return false;
  }
  return true;
}

bool SweepOutcome::AnyCapHit() const {
  for (const ExperimentResult& r : results) {
    if (r.event_cap_hit) return true;
  }
  return false;
}

bool SweepOutcome::AnyCapDegraded() const {
  for (const ExperimentResult& r : results) {
    if (r.cap_parallelism_degraded) return true;
  }
  return false;
}

uint64_t SweepOutcome::TotalOracleViolations() const {
  uint64_t total = 0;
  for (const ExperimentResult& r : results) total += r.oracle_violations;
  return total;
}

std::string SweepOutcome::FirstOracleDiagnostic() const {
  for (const ExperimentResult& r : results) {
    if (!r.oracle_first_violation.empty()) return r.oracle_first_violation;
  }
  return {};
}

uint64_t SweepOutcome::TotalLivenessViolations() const {
  uint64_t total = 0;
  for (const ExperimentResult& r : results) total += r.liveness_violations;
  return total;
}

std::string SweepOutcome::FirstLivenessDiagnostic() const {
  for (const ExperimentResult& r : results) {
    if (!r.liveness_first_violation.empty()) return r.liveness_first_violation;
  }
  return {};
}

SweepOutcome SweepRunner::Run(const ScenarioSpec& spec, bool smoke) const {
  SweepOutcome outcome;
  outcome.spec = &spec;
  outcome.points = ExpandScenario(spec, smoke);
  if (sim_jobs_ > 0) {
    // Respect scenarios that sweep sim_jobs themselves (par_speedup): if any
    // axis mutator changed it from the base, the global override would
    // silently relabel the rows, so it is ignored for that scenario.
    const bool axis_sweeps_sim_jobs =
        std::any_of(outcome.points.begin(), outcome.points.end(),
                    [&](const SweepPoint& p) {
                      return p.config.sim_jobs != spec.base.sim_jobs;
                    });
    if (!axis_sweeps_sim_jobs) {
      for (SweepPoint& p : outcome.points) {
        p.config.sim_jobs = static_cast<uint32_t>(sim_jobs_);
      }
    }
  }
  if (has_lookahead_) {
    // Same respect-the-axis rule for --lookahead (par_speedup sweeps it).
    const bool axis_sweeps_lookahead =
        std::any_of(outcome.points.begin(), outcome.points.end(),
                    [&](const SweepPoint& p) {
                      return p.config.lookahead != spec.base.lookahead;
                    });
    if (!axis_sweeps_lookahead) {
      for (SweepPoint& p : outcome.points) p.config.lookahead = lookahead_;
    }
  }
  if (has_arrival_) {
    // fig_saturation sweeps the arrival process as its table axis.
    const bool axis_sweeps_arrival =
        std::any_of(outcome.points.begin(), outcome.points.end(),
                    [&](const SweepPoint& p) {
                      return p.config.arrival.kind != spec.base.arrival.kind;
                    });
    if (!axis_sweeps_arrival) {
      for (SweepPoint& p : outcome.points) p.config.arrival.kind = arrival_;
    }
  }
  if (has_offered_load_) {
    // fig_saturation sweeps the offered load as its row axis.
    const bool axis_sweeps_load = std::any_of(
        outcome.points.begin(), outcome.points.end(), [&](const SweepPoint& p) {
          return p.config.arrival.offered_load_tps !=
                 spec.base.arrival.offered_load_tps;
        });
    if (!axis_sweeps_load) {
      for (SweepPoint& p : outcome.points) {
        p.config.arrival.offered_load_tps = offered_load_;
      }
    }
  }
  if (has_cert_scheme_) {
    // fig_cert_size sweeps the authenticator scheme as its column axis.
    const bool axis_sweeps_scheme =
        std::any_of(outcome.points.begin(), outcome.points.end(),
                    [&](const SweepPoint& p) {
                      return p.config.cert_scheme != spec.base.cert_scheme;
                    });
    if (!axis_sweeps_scheme) {
      for (SweepPoint& p : outcome.points) p.config.cert_scheme = cert_scheme_;
    }
  }
  if (client_groups_ > 0) {
    const bool axis_sweeps_groups =
        std::any_of(outcome.points.begin(), outcome.points.end(),
                    [&](const SweepPoint& p) {
                      return p.config.client_groups != spec.base.client_groups;
                    });
    if (!axis_sweeps_groups) {
      for (SweepPoint& p : outcome.points) p.config.client_groups = client_groups_;
    }
  }
  if (has_strategy_) {
    // fig_liveness sweeps the strategy (its rows vary the coalition, its
    // base carries the schedule); the global override must not relabel it.
    const bool axis_sweeps_strategy =
        std::any_of(outcome.points.begin(), outcome.points.end(),
                    [&](const SweepPoint& p) {
                      return p.config.strategy != spec.base.strategy;
                    });
    if (!axis_sweeps_strategy) {
      for (SweepPoint& p : outcome.points) p.config.strategy = strategy_;
    }
  }
  if (has_reconfig_) {
    // fig_reconfig sweeps the committee schedule as its row axis; the global
    // override must not relabel it.
    const bool axis_sweeps_reconfig =
        std::any_of(outcome.points.begin(), outcome.points.end(),
                    [&](const SweepPoint& p) {
                      return p.config.reconfig != spec.base.reconfig;
                    });
    if (!axis_sweeps_reconfig) {
      for (SweepPoint& p : outcome.points) p.config.reconfig = reconfig_;
    }
  }
  if (force_oracle_) {
    for (SweepPoint& p : outcome.points) p.config.oracle_enabled = true;
  }
  outcome.results.resize(outcome.points.size());

  auto run_point = [&](size_t i) {
    const SweepPoint& p = outcome.points[i];
    outcome.results[i] = p.mode == RunMode::kPaperPoint ? RunPaperPoint(p.config)
                                                        : RunExperiment(p.config);
  };

  const size_t total = outcome.points.size();
  const size_t workers = std::min<size_t>(static_cast<size_t>(jobs_), total);
  if (workers <= 1) {
    for (size_t i = 0; i < total; ++i) run_point(i);
    return outcome;
  }

  // Points are independent (each Experiment owns its simulator); workers pull
  // indices from a shared counter and write into their own result slot, so
  // the merged vector is in spec order regardless of completion order.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
        run_point(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return outcome;
}

namespace {

// First-appearance-ordered unique labels along one point field.
std::vector<std::string> UniqueLabels(const std::vector<SweepPoint>& points,
                                      std::string SweepPoint::*field) {
  std::vector<std::string> labels;
  for (const SweepPoint& p : points) {
    const std::string& l = p.*field;
    if (std::find(labels.begin(), labels.end(), l) == labels.end()) labels.push_back(l);
  }
  return labels;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

// Diagnostics appended to every machine-readable row.
struct DiagColumn {
  const char* name;
  std::function<std::string(const ExperimentResult&)> value;
};

std::vector<DiagColumn> DiagColumns(const std::vector<MetricSpec>& metrics) {
  std::vector<DiagColumn> all = {
      {"accepted", [](const ExperimentResult& r) { return std::to_string(r.accepted); }},
      {"views", [](const ExperimentResult& r) { return std::to_string(r.views); }},
      {"timeouts", [](const ExperimentResult& r) { return std::to_string(r.timeouts); }},
      {"resubmissions",
       [](const ExperimentResult& r) { return std::to_string(r.resubmissions); }},
      {"backlog", [](const ExperimentResult& r) { return std::to_string(r.backlog); }},
      {"rollback_events",
       [](const ExperimentResult& r) { return std::to_string(r.rollback_events); }},
      {"safety_ok", [](const ExperimentResult& r) { return r.safety_ok ? "1" : "0"; }},
      {"event_cap_hit",
       [](const ExperimentResult& r) { return r.event_cap_hit ? "1" : "0"; }},
      // liveness_violations sits BEFORE oracle_violations: CI awk gates
      // address oracle_violations as the last field ($NF).
      {"liveness_violations",
       [](const ExperimentResult& r) {
         return std::to_string(r.liveness_violations);
       }},
      {"oracle_violations",
       [](const ExperimentResult& r) { return std::to_string(r.oracle_violations); }},
  };
  // A scenario metric with the same name (e.g. ablation's "views") already
  // carries the value; drop the diagnostic duplicate.
  std::vector<DiagColumn> kept;
  for (DiagColumn& d : all) {
    const bool shadowed =
        std::any_of(metrics.begin(), metrics.end(),
                    [&](const MetricSpec& m) { return m.name == d.name; });
    if (!shadowed) kept.push_back(std::move(d));
  }
  return kept;
}

}  // namespace

void EmitTables(const SweepOutcome& outcome, std::ostream& os) {
  const ScenarioSpec& spec = *outcome.spec;
  const std::vector<std::string> tables =
      UniqueLabels(outcome.points, &SweepPoint::table_label);
  const std::vector<std::string> rows =
      UniqueLabels(outcome.points, &SweepPoint::row_label);
  const std::vector<std::string> cols =
      UniqueLabels(outcome.points, &SweepPoint::col_label);

  // Per-seed samples per (table, row, col, metric); cells report the mean
  // and, with multiple seeds, the sample stddev ("mean ±sd"). Points are
  // visited in spec order, so the statistics — like every emitter — are
  // byte-identical at any worker count.
  std::map<std::tuple<std::string, std::string, std::string, size_t>,
           std::vector<double>>
      acc;
  bool multi_seed = false;
  for (size_t i = 0; i < outcome.points.size(); ++i) {
    const SweepPoint& p = outcome.points[i];
    for (size_t m = 0; m < spec.metrics.size(); ++m) {
      auto& samples = acc[{p.table_label, p.row_label, p.col_label, m}];
      samples.push_back(spec.metrics[m].value(outcome.results[i]));
      multi_seed = multi_seed || samples.size() > 1;
    }
  }

  for (const std::string& table : tables) {
    for (size_t m = 0; m < spec.metrics.size(); ++m) {
      std::string caption = spec.title;
      if (!table.empty()) {
        caption += " [" + (spec.table_name.empty() ? std::string("axis")
                                                   : spec.table_name) +
                   "=" + table + "]";
      }
      caption += " - " + spec.metrics[m].name;
      std::vector<std::string> header{spec.row_name};
      header.insert(header.end(), cols.begin(), cols.end());
      ReportTable report(caption, header);
      for (const std::string& row : rows) {
        std::vector<std::string> cells{row};
        for (const std::string& col : cols) {
          const SampleStats s = ComputeStats(acc[{table, row, col, m}]);
          if (s.count == 0) {
            cells.push_back("-");
          } else if (s.count == 1) {
            cells.push_back(spec.metrics[m].format(s.mean));
          } else {
            cells.push_back(spec.metrics[m].format(s.mean) + " ±" +
                            spec.metrics[m].format(s.stddev));
          }
        }
        report.AddRow(std::move(cells));
      }
      report.Print(os);
    }
  }
  if (multi_seed) {
    os << "(± = sample stddev over seeds; 95% CI half-width = 1.96*sd/sqrt(k))\n";
  }
  // Truncation is never silent: name the points whose simulator stopped at
  // its event cap (also visible as the event_cap_hit CSV/JSON column).
  size_t capped = 0;
  for (const ExperimentResult& r : outcome.results) capped += r.event_cap_hit ? 1 : 0;
  if (capped > 0) {
    os << "WARNING: " << capped << " of " << outcome.results.size()
       << " points hit the simulator event cap - their results are truncated:\n";
    size_t listed = 0;
    for (size_t i = 0; i < outcome.points.size() && listed < 8; ++i) {
      if (!outcome.results[i].event_cap_hit) continue;
      const SweepPoint& p = outcome.points[i];
      os << "  [" << (p.table_label.empty() ? "-" : p.table_label) << " | "
         << (p.row_label.empty() ? "-" : p.row_label) << " | "
         << (p.col_label.empty() ? "-" : p.col_label) << " | seed " << p.seed
         << "]\n";
      ++listed;
    }
    if (capped > listed) os << "  ... and " << (capped - listed) << " more\n";
  }
  // Degraded parallelism is also never silent: an event cap pins the
  // parallel executor to tick-parallel scheduling, so --sim-jobs > 1 with a
  // cap runs slower than the flag suggests.
  size_t degraded = 0;
  for (const ExperimentResult& r : outcome.results) {
    degraded += r.cap_parallelism_degraded ? 1 : 0;
  }
  if (degraded > 0) {
    os << "NOTE: " << degraded << " of " << outcome.results.size()
       << " points ran with an event cap under --sim-jobs > 1; windowed "
          "lookahead is disabled while a cap is set, so those points fell "
          "back to tick-parallel scheduling (cap_parallelism_degraded)\n";
  }
  if (!spec.table_note.empty()) os << spec.table_note << "\n";
}

void EmitCsv(const SweepOutcome& outcome, std::ostream& os) {
  const ScenarioSpec& spec = *outcome.spec;
  const std::vector<DiagColumn> diags =
      outcome.synthetic ? std::vector<DiagColumn>{} : DiagColumns(spec.metrics);
  os << "scenario,table,row,col,seed";
  // Nondeterministic metrics (wall_ms) are table-only: the machine-readable
  // bytes must be identical across repeated runs for the CI diff gates.
  for (const MetricSpec& m : spec.metrics) {
    if (m.deterministic) os << "," << CsvEscape(m.name);
  }
  for (const DiagColumn& d : diags) os << "," << d.name;
  os << "\n";
  for (size_t i = 0; i < outcome.points.size(); ++i) {
    const SweepPoint& p = outcome.points[i];
    const ExperimentResult& r = outcome.results[i];
    os << CsvEscape(spec.name) << "," << CsvEscape(p.table_label) << ","
       << CsvEscape(p.row_label) << "," << CsvEscape(p.col_label) << "," << p.seed;
    for (const MetricSpec& m : spec.metrics) {
      if (m.deterministic) os << "," << FormatDouble(m.value(r));
    }
    for (const DiagColumn& d : diags) os << "," << d.value(r);
    os << "\n";
  }
  os.flush();
}

void EmitJson(const SweepOutcome& outcome, std::ostream& os) {
  const ScenarioSpec& spec = *outcome.spec;
  const std::vector<DiagColumn> diags =
      outcome.synthetic ? std::vector<DiagColumn>{} : DiagColumns(spec.metrics);
  os << "{\"scenario\":\"" << JsonEscape(spec.name) << "\",\"points\":[";
  for (size_t i = 0; i < outcome.points.size(); ++i) {
    const SweepPoint& p = outcome.points[i];
    const ExperimentResult& r = outcome.results[i];
    os << (i == 0 ? "" : ",") << "\n  {\"table\":\"" << JsonEscape(p.table_label)
       << "\",\"row\":\"" << JsonEscape(p.row_label) << "\",\"col\":\""
       << JsonEscape(p.col_label) << "\",\"seed\":" << p.seed;
    for (const MetricSpec& m : spec.metrics) {
      if (!m.deterministic) continue;  // see EmitCsv
      os << ",\"" << JsonEscape(m.name) << "\":" << FormatDouble(m.value(r));
    }
    for (const DiagColumn& d : diags) os << ",\"" << d.name << "\":" << d.value(r);
    os << "}";
  }
  os << "\n]}\n";
  os.flush();
}

int RunScenario(const ScenarioSpec& spec, const ScenarioRunOptions& options) {
  std::ostream& os = options.out ? *options.out : std::cout;
  if (spec.custom_run) return spec.custom_run(options);

  SweepRunner runner(options.jobs, options.sim_jobs);
  if (options.has_lookahead) runner.OverrideLookahead(options.lookahead);
  if (options.oracle) runner.ForceOracle();
  if (options.has_strategy) runner.ForceStrategy(options.strategy);
  if (options.has_reconfig) runner.ForceReconfig(options.reconfig);
  if (options.has_arrival) runner.ForceArrival(options.arrival);
  if (options.has_offered_load) runner.ForceOfferedLoad(options.offered_load);
  if (options.client_groups > 0) runner.ForceClientGroups(options.client_groups);
  if (options.has_cert_scheme) runner.ForceCertScheme(options.cert_scheme);
  SweepOutcome outcome = runner.Run(spec, options.smoke);
  if (options.repeat > 1) {
    // Rerun and keep the per-point *median* wall-clock time. Every
    // deterministic field is byte-identical across reruns by contract, so
    // only wall_ms (table-only) changes — but it changes from a noisy single
    // sample to a gateable median.
    std::vector<std::vector<double>> walls(outcome.results.size());
    for (size_t i = 0; i < outcome.results.size(); ++i) {
      walls[i].push_back(outcome.results[i].wall_ms);
    }
    for (int rep = 1; rep < options.repeat; ++rep) {
      const SweepOutcome again = runner.Run(spec, options.smoke);
      for (size_t i = 0; i < again.results.size(); ++i) {
        walls[i].push_back(again.results[i].wall_ms);
      }
    }
    for (size_t i = 0; i < outcome.results.size(); ++i) {
      std::sort(walls[i].begin(), walls[i].end());
      outcome.results[i].wall_ms = walls[i][walls[i].size() / 2];
    }
  }
  switch (options.format) {
    case ReportFormat::kTable: EmitTables(outcome, os); break;
    case ReportFormat::kCsv: EmitCsv(outcome, os); break;
    case ReportFormat::kJson: EmitJson(outcome, os); break;
  }
  if (outcome.AnyCapHit()) {
    std::cerr << "warning: scenario '" << spec.name
              << "' hit the simulator event cap; results are truncated\n";
  }
  if (outcome.AnyCapDegraded()) {
    std::cerr << "warning: scenario '" << spec.name
              << "' ran capped points with --sim-jobs > 1; windowed lookahead "
                 "was disabled for them (cap_parallelism_degraded)\n";
  }
  // A scenario whose points *expect* violations judges itself: the exit code
  // comes from its point_judge, not the blanket any-violation-fails rule.
  if (spec.point_judge) {
    int code = 0;
    for (size_t i = 0; i < outcome.points.size(); ++i) {
      if (spec.point_judge(outcome.points[i], outcome.results[i])) continue;
      const SweepPoint& p = outcome.points[i];
      std::cerr << "JUDGE FAILED in scenario '" << spec.name << "': point ["
                << (p.table_label.empty() ? "-" : p.table_label) << " | "
                << (p.row_label.empty() ? "-" : p.row_label) << " | "
                << (p.col_label.empty() ? "-" : p.col_label) << " | seed "
                << p.seed << "] did not behave as the scenario expects\n";
      code = 1;
    }
    return code;
  }
  int code = 0;
  if (const uint64_t v = outcome.TotalOracleViolations(); v > 0) {
    std::cerr << "ORACLE VIOLATION in scenario '" << spec.name << "' (" << v
              << " total): " << outcome.FirstOracleDiagnostic() << "\n";
    code = 1;
  }
  if (const uint64_t v = outcome.TotalLivenessViolations(); v > 0) {
    std::cerr << "LIVENESS VIOLATION in scenario '" << spec.name << "' (" << v
              << " total): " << outcome.FirstLivenessDiagnostic() << "\n";
    code = 1;
  }
  if (!outcome.AllSafe()) {
    std::cerr << "SAFETY VIOLATION in scenario '" << spec.name << "'\n";
    code = 1;
  }
  return code;
}

}  // namespace hotstuff1

// Executes a ScenarioSpec: expands it into independent (config, seed) points,
// runs them on a worker pool (each Experiment owns its own Simulator/Network,
// so points are embarrassingly parallel), and merges results in deterministic
// spec order — output is byte-identical at any worker count.

#ifndef HOTSTUFF1_RUNTIME_SWEEP_RUNNER_H_
#define HOTSTUFF1_RUNTIME_SWEEP_RUNNER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/scenario.h"

namespace hotstuff1 {

enum class ReportFormat { kTable = 0, kCsv = 1, kJson = 2 };

/// Parses "table" / "csv" / "json"; returns false on anything else.
bool ParseReportFormat(const std::string& s, ReportFormat* out);

struct ScenarioRunOptions {
  int jobs = 1;          // worker threads across points (clamped to the count)
  // Threads inside each experiment's event loop; 0 keeps each point's
  // configured value. Ignored when the scenario itself sweeps sim_jobs as
  // an axis (overriding would relabel its rows).
  int sim_jobs = 0;
  // Lookahead policy for every point (--lookahead); has_lookahead = false
  // keeps each point's configured value. Like sim_jobs, ignored when the
  // scenario sweeps lookahead as an axis.
  bool has_lookahead = false;
  LookaheadSpec lookahead;
  // Traffic-model overrides (--arrival / --offered-load / --client-groups);
  // applied to every point unless the scenario sweeps that field as an axis
  // (the same respect-the-axis rule as sim_jobs / lookahead).
  bool has_arrival = false;
  ArrivalKind arrival = ArrivalKind::kClosedLoop;
  bool has_offered_load = false;
  double offered_load = 0;
  uint32_t client_groups = 0;  // 0 keeps each point's configured value
  // Authenticator-scheme override (--cert-scheme); applied to every point
  // unless the scenario sweeps cert_scheme as an axis (fig_cert_size does).
  bool has_cert_scheme = false;
  CertScheme cert_scheme = CertScheme::kMultisigVector;
  // Arms the online invariant oracle on every point (--oracle). Scenarios
  // that enable it in their base config (fuzz) run with it regardless.
  bool oracle = false;
  // Adversary strategy schedule forced onto every point (--strategy; grammar
  // in runtime/adversary.h). Respect-the-axis: ignored when the scenario
  // sweeps the strategy itself (fig_liveness does).
  bool has_strategy = false;
  StrategySchedule strategy;
  // Committee reconfiguration schedule forced onto every point (--reconfig;
  // grammar in consensus/committee.h). Respect-the-axis: ignored when the
  // scenario sweeps the schedule itself (fig_reconfig does).
  bool has_reconfig = false;
  CommitteeSchedule reconfig;
  bool smoke = false;    // CI-sized points, endpoint-subsampled axes
  // Reruns the scenario this many times and reports *median* wall-clock
  // metrics (--repeat). Deterministic metrics are byte-identical across the
  // reruns by contract, so only wall_ms-derived values change; medians make
  // BENCH ledgers stable enough to gate on.
  int repeat = 1;
  // When non-empty, perf scenarios (throughput) additionally write their
  // machine-readable ledger to this path (--bench-json). Sweep scenarios
  // ignore it.
  std::string bench_json;
  ReportFormat format = ReportFormat::kTable;
  std::ostream* out = nullptr;  // default std::cout
};

/// A completed sweep: points and index-aligned results.
struct SweepOutcome {
  const ScenarioSpec* spec = nullptr;
  std::vector<SweepPoint> points;
  std::vector<ExperimentResult> results;
  /// True when the results were synthesized rather than produced by
  /// experiments (micro's wall-clock points). The machine emitters then
  /// omit the experiment diagnostic columns (safety_ok, oracle_violations,
  /// ...) instead of fabricating verdicts for runs that never happened.
  bool synthetic = false;

  bool AllSafe() const;
  bool AnyCapHit() const;
  /// Any point silently fell back to tick-parallel because an event cap was
  /// set under --sim-jobs > 1 (ExperimentResult::cap_parallelism_degraded).
  bool AnyCapDegraded() const;
  /// Sum of invariant-oracle violations across points (0 when disabled).
  uint64_t TotalOracleViolations() const;
  /// First oracle diagnostic in spec order; empty when clean.
  std::string FirstOracleDiagnostic() const;
  /// Liveness-oracle counterparts of the two above.
  uint64_t TotalLivenessViolations() const;
  std::string FirstLivenessDiagnostic() const;
};

/// \brief Parallel executor for scenario sweeps.
///
/// Two orthogonal axes of parallelism compose here: `jobs` worker threads
/// each run whole (config, seed) points (every Experiment owns its own
/// Simulator/Network, so points never share state), while `sim_jobs > 0`
/// forces every point's config to use that many threads *inside* its
/// simulator event loop. Both are determinism-preserving: merged output is
/// byte-identical at any (jobs, sim_jobs) combination.
class SweepRunner {
 public:
  explicit SweepRunner(int jobs, int sim_jobs = 0)
      : jobs_(jobs < 1 ? 1 : jobs), sim_jobs_(sim_jobs) {}

  /// Forces `spec` onto every point's config (unless the scenario sweeps
  /// lookahead itself — same respect-the-axis rule as sim_jobs).
  SweepRunner& OverrideLookahead(const LookaheadSpec& spec) {
    lookahead_ = spec;
    has_lookahead_ = true;
    return *this;
  }

  /// Arms the invariant oracle on every point (idempotent with scenarios
  /// that already enable it; the oracle never changes simulation results).
  SweepRunner& ForceOracle() {
    force_oracle_ = true;
    return *this;
  }

  /// Forces an arrival process onto every point (respect-the-axis rule).
  SweepRunner& ForceArrival(ArrivalKind kind) {
    arrival_ = kind;
    has_arrival_ = true;
    return *this;
  }

  /// Forces an aggregate offered load (txn/s) onto every point.
  SweepRunner& ForceOfferedLoad(double tps) {
    offered_load_ = tps;
    has_offered_load_ = true;
    return *this;
  }

  /// Forces the client-group shard count onto every point (0 = keep).
  SweepRunner& ForceClientGroups(uint32_t groups) {
    client_groups_ = groups;
    return *this;
  }

  /// Forces an authenticator scheme onto every point (respect-the-axis rule:
  /// ignored for scenarios that sweep cert_scheme themselves).
  SweepRunner& ForceCertScheme(CertScheme scheme) {
    cert_scheme_ = scheme;
    has_cert_scheme_ = true;
    return *this;
  }

  /// Forces an adversary strategy schedule onto every point (respect-the-axis
  /// rule: ignored for scenarios that sweep the strategy themselves).
  SweepRunner& ForceStrategy(const StrategySchedule& strategy) {
    strategy_ = strategy;
    has_strategy_ = true;
    return *this;
  }

  /// Forces a committee reconfiguration schedule onto every point
  /// (respect-the-axis rule: ignored for scenarios sweeping it themselves).
  SweepRunner& ForceReconfig(const CommitteeSchedule& reconfig) {
    reconfig_ = reconfig;
    has_reconfig_ = true;
    return *this;
  }

  /// Runs every expanded point of `spec` and returns merged results.
  SweepOutcome Run(const ScenarioSpec& spec, bool smoke = false) const;

 private:
  int jobs_;
  int sim_jobs_;
  bool has_lookahead_ = false;
  bool force_oracle_ = false;
  LookaheadSpec lookahead_;
  bool has_arrival_ = false;
  ArrivalKind arrival_ = ArrivalKind::kClosedLoop;
  bool has_offered_load_ = false;
  double offered_load_ = 0;
  uint32_t client_groups_ = 0;
  bool has_cert_scheme_ = false;
  CertScheme cert_scheme_ = CertScheme::kMultisigVector;
  bool has_strategy_ = false;
  StrategySchedule strategy_;
  bool has_reconfig_ = false;
  CommitteeSchedule reconfig_;
};

// Emitters over a merged outcome. All iterate points in spec order, so the
// bytes written are independent of the worker count that produced them.
void EmitTables(const SweepOutcome& outcome, std::ostream& os);
void EmitCsv(const SweepOutcome& outcome, std::ostream& os);
void EmitJson(const SweepOutcome& outcome, std::ostream& os);

/// Runs one registered scenario end to end (sweep or custom) and writes the
/// requested format. Returns a process exit code (0 ok, 1 safety violation).
int RunScenario(const ScenarioSpec& spec, const ScenarioRunOptions& options);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_RUNTIME_SWEEP_RUNNER_H_

#include "runtime/liveness.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "consensus/config.h"

namespace hotstuff1 {
namespace {

// Auto thresholds. They must be loose enough that no *legitimate* run can
// trip them — including short fuzz points (~150ms of virtual time) where an
// f-sized crash coalition occupies every early view and the first honest
// commit legitimately takes many view timers — while still bounding how long
// a real post-GST stall can hide. Scenarios that want a sharp detector
// (fig_liveness, the over-threshold fuzz tier) set explicit thresholds
// matched to their own durations.
uint64_t AutoK(uint32_t f) {
  // Within any epoch of f+1 consecutive views at most f have faulty
  // leaders, so a correct commit is never more than ~2(f+1) views away in a
  // legitimate run. The auto threshold carries far more headroom than that
  // bound: the chained baselines can legitimately burn *every* view of a
  // short window on timeouts (an f-sized crash coalition keeps their leaders
  // waiting out the share timer each rotation, fuzz seed 31 at n=4), so k
  // must exceed any view count reachable in a fuzz-sized window. Detectors
  // that want a sharp k set it explicitly.
  return 8ull * (f + 1) + 32;
}

SimTime AutoGrace(uint64_t k, SimTime view_timer) {
  // Long enough that a run must idle for ~2k view timers — beyond any
  // legitimate commit gap — and floored so sub-second smoke windows can
  // never reach it at all.
  return std::max<SimTime>(2 * static_cast<SimTime>(k) * view_timer, Millis(500));
}

}  // namespace

LivenessOracle::LivenessOracle(sim::Simulator* sim, Setup setup)
    : sim_(sim), setup_(std::move(setup)) {
  const uint32_t f = setup_.n > 0 ? (setup_.n - 1) / 3 : 0;
  k_ = setup_.k > 0 ? setup_.k : AutoK(f);
  const SimTime tau = setup_.view_timer > 0 ? setup_.view_timer : Millis(10);
  grace_ = setup_.grace > 0 ? setup_.grace : AutoGrace(k_, tau);
  if (setup_.gst == 0) {
    // Synchronous from the start (no interference schedule): Thm B.8's
    // clock starts immediately, without a GST barrier event.
    gst_reached_ = true;
    gst_time_ = 0;
  }
}

void LivenessOracle::Report(const char* invariant, SimTime t,
                            const std::string& detail) {
  ++violation_count_;
  if (violations_.size() >= kMaxStoredViolations) return;
  std::string diag = "liveness: invariant '";
  diag += invariant;
  diag += "' violated at t=" + std::to_string(t);
  diag += "us event#" + std::to_string(events_);
  diag += ": " + detail;
  diag += " [" + setup_.config_summary + " seed=" + std::to_string(setup_.seed) + "]";
  HS1_LOG_ERROR() << diag;
  violations_.push_back(std::move(diag));
}

void LivenessOracle::OnViewEntered(ReplicaId replica, uint64_t view) {
  sim_->SyncShared();
  ++events_;
  if (IsFaulty(replica)) return;
  max_view_ = std::max(max_view_, view);
  if (gst_reached_ && max_view_ > progress_view_ + k_) {
    Report("liveness-stall", sim_->Now(),
           "correct replicas reached view " + std::to_string(max_view_) +
               " with no correct commit since view " +
               std::to_string(progress_view_) + " (k=" + std::to_string(k_) +
               " views past GST, Thm B.8)");
    // Re-arm: a persistent stall reports once per k further views instead of
    // once per view entry.
    progress_view_ = max_view_;
  }
}

void LivenessOracle::OnBlockCommitted(ReplicaId replica, const BlockPtr&) {
  sim_->SyncShared();
  ++events_;
  if (IsFaulty(replica)) return;
  last_commit_time_ = sim_->Now();
  progress_view_ = max_view_;
}

void LivenessOracle::OnGstReached() {
  sim_->SyncShared();
  ++events_;
  gst_reached_ = true;
  gst_time_ = sim_->Now();
  // Thm B.8 measures from GST: pre-GST view churn is the adversary's
  // prerogative and must not count against the k-view budget.
  progress_view_ = max_view_;
}

void LivenessOracle::Finalize(SimTime end, bool event_cap_hit) {
  if (finalized_) return;
  finalized_ = true;
  // A cap-truncated run proves nothing about progress; a run whose GST never
  // arrived promised nothing (StrategySchedule::kGstNever).
  if (event_cap_hit || !gst_reached_) return;
  const SimTime base = std::max(last_commit_time_, gst_time_);
  if (end - base >= grace_) {
    Report("liveness-silence", end,
           "no correct commit for " + std::to_string(end - base) +
               "us after GST (t=" + std::to_string(gst_time_) +
               "us, last correct commit t=" + std::to_string(last_commit_time_) +
               "us, grace=" + std::to_string(grace_) + "us)");
  }
}

}  // namespace hotstuff1

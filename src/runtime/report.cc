#include "runtime/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>

namespace hotstuff1 {

void ReportTable::Print(std::ostream& os) const {
  os << "\n== " << caption_ << " ==\n";
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) rule += std::string(widths[c] + 2, '-');
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

std::string JsonString(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

}  // namespace

void ReportTable::PrintCsv(std::ostream& os) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << CsvEscape(columns_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) os << (c == 0 ? "" : ",") << CsvEscape(row[c]);
    os << "\n";
  }
  os.flush();
}

void ReportTable::PrintJson(std::ostream& os) const {
  os << "{\"caption\":" << JsonString(caption_) << ",\"columns\":[";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << JsonString(columns_[c]);
  }
  os << "],\"rows\":[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "" : ",") << "\n  [";
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      os << (c == 0 ? "" : ",") << JsonString(rows_[r][c]);
    }
    os << "]";
  }
  os << "\n]}\n";
  os.flush();
}

std::string FormatTps(double tps) {
  char buf[32];
  if (tps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", tps / 1e6);
  } else if (tps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", tps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", tps);
  }
  return buf;
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  }
  return buf;
}

std::string FormatCount(uint64_t v) { return std::to_string(v); }

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

SampleStats ComputeStats(const std::vector<double>& samples) {
  SampleStats s;
  s.count = samples.size();
  if (s.count == 0) return s;
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = Quantile(sorted, 0.50);
  s.p99 = Quantile(sorted, 0.99);
  s.p999 = Quantile(sorted, 0.999);
  if (s.count < 2) return s;
  double sq = 0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count - 1));
  s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  return s;
}

SimTime BenchDuration(double default_ms) {
  if (const char* env = std::getenv("H1_DURATION_MS")) {
    const double ms = std::atof(env);
    if (ms > 0) return Millis(ms);
  }
  return Millis(default_ms);
}

}  // namespace hotstuff1

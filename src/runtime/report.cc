#include "runtime/report.h"

#include <cstdio>
#include <cstdlib>
#include <iomanip>

namespace hotstuff1 {

void ReportTable::Print(std::ostream& os) const {
  os << "\n== " << caption_ << " ==\n";
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) rule += std::string(widths[c] + 2, '-');
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string FormatTps(double tps) {
  char buf[32];
  if (tps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", tps / 1e6);
  } else if (tps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", tps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", tps);
  }
  return buf;
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  }
  return buf;
}

std::string FormatCount(uint64_t v) { return std::to_string(v); }

SimTime BenchDuration(double default_ms) {
  if (const char* env = std::getenv("H1_DURATION_MS")) {
    const double ms = std::atof(env);
    if (ms > 0) return Millis(ms);
  }
  return Millis(default_ms);
}

}  // namespace hotstuff1

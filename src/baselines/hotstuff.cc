#include "baselines/hotstuff.h"

#include "common/logging.h"
#include "sim/message_pool.h"
#include "runtime/adversary.h"
#include "runtime/oracle.h"

namespace hotstuff1 {

ChainedReplica::ChainedReplica(ReplicaId id, const ConsensusConfig& config,
                               sim::Network* net, const KeyRegistry* registry,
                               TransactionSource* source, ResponseSink* sink,
                               KvState initial_state)
    : ReplicaBase(id, config, net, registry, source, sink, std::move(initial_state)),
      high_cert_(Certificate::Genesis()) {}

void ChainedReplica::UpdateHighCert(const Certificate& cert) {
  if (high_cert_.block_id() < cert.block_id()) high_cert_ = cert;
}

void ChainedReplica::OnEnterView(uint64_t v) {
  // Drop leader state and buffered proposals for views we have left behind.
  while (!nv_state_.empty() && nv_state_.begin()->first < v) {
    nv_state_.erase(nv_state_.begin());
  }
  while (!pending_votes_.empty() && pending_votes_.begin()->first < v) {
    pending_votes_.erase(pending_votes_.begin());
  }

  if (v == 1 && ActiveInView(1)) {
    // Bootstrap: there is no view 0 to exit, so every committee member hands
    // L_1 a NewView over the hard-coded genesis certificate (§4.1 note).
    auto nv = sim::MakeMessage<NewViewMsg>(id_);
    nv->target_view = 1;
    nv->high_cert = high_cert_;
    nv->has_share = false;
    SendTo(LeaderOf(1), std::move(nv));
  }

  // A proposal for this view may have arrived while we were in the previous
  // one; vote on it now.
  auto pending = pending_votes_.find(v);
  if (pending != pending_votes_.end()) {
    auto msg = pending->second;
    pending_votes_.erase(pending);
    HandlePropose(*msg);  // full re-validation; votes and exits the view
    return;
  }

  if (IsLeaderOf(v)) {
    // ShareTimer(v) = entry + 3Δ (§4.2.1): the fallback deadline after which
    // the leader proposes with whatever certificates it has heard.
    simulator()->After(3 * config_.delta, [this, v]() {
      if (crashed_ || view() != v) return;
      nv_state_[v].share_timer_passed = true;
      MaybePropose(v);
    });
    MaybePropose(v);  // quorum may already be waiting
  }
}

void ChainedReplica::OnViewTimeout(uint64_t v) {
  // Standby replicas advance their view clock but hold no NewView power.
  if (ActiveInView(v + 1)) {
    auto nv = sim::MakeMessage<NewViewMsg>(id_);
    nv->target_view = v + 1;
    nv->high_cert = high_cert_;
    nv->has_share = false;
    SendTo(LeaderOf(v + 1), std::move(nv));
  }
  pacemaker_.CompletedView(v + 1);
}

void ChainedReplica::OnProtocolMessage(const ConsensusMessage& msg) {
  switch (msg.type) {
    case ConsensusMessage::Type::kPropose:
      HandlePropose(static_cast<const ProposeMsg&>(msg));
      break;
    case ConsensusMessage::Type::kNewView:
      HandleNewView(static_cast<const NewViewMsg&>(msg));
      break;
    default:
      break;  // chained protocols use no other message types
  }
}

void ChainedReplica::HandlePropose(const ProposeMsg& msg) {
  ++metrics_.proposals_received;
  if (!msg.block) return;
  const uint64_t v = msg.block->view();
  if (msg.sender != LeaderOf(v)) return;
  if (msg.block->slot() != 1) return;
  if (!CheckCert(msg.justify)) return;
  // Well-formedness: the proposal must extend the block its certificate
  // certifies.
  if (msg.block->parent_hash() != msg.justify.block_hash()) return;

  if (!EnsureBlock(msg.justify.block_hash(), msg.sender)) {
    // Parent missing: stash and retry once the fetch completes (§4.2).
    pending_votes_[v] = sim::MakeMessage<ProposeMsg>(msg);
    return;
  }
  const BlockPtr certified = store_.GetOrNull(msg.justify.block_hash());
  if (msg.block->height() != certified->height() + 1) return;

  store_.Put(msg.block);
  RecordJustify(msg.block->hash(), msg.justify);
  UpdateHighCert(msg.justify);
  ProcessCertificate(msg.justify, certified, v);

  if (v == view()) {
    VoteOn(msg);
    // Fig. 4 line 19: exitView() runs at the end of the Propose event even
    // when the vote-safety check declined to vote (e.g. the next leader
    // already holds a higher certificate it formed from vote shares).
    if (view() == v && v > exited_view_) ExitView(v);
  } else if (v > view()) {
    pending_votes_[v] = sim::MakeMessage<ProposeMsg>(msg);
  }
}

void ChainedReplica::VoteOn(const ProposeMsg& msg) {
  const uint64_t v = msg.block->view();
  if (!ActiveInView(v)) return;  // standby: learn and execute, never vote
  if (v != view() || voted_view_ >= v) return;
  if (v <= exited_view_) return;  // exitView(): no voting after timeout

  // Vote-safety (Fig. 4 line 16): vote only when the proposal extends a
  // certificate not lower than our highest known one. UpdateHighCert already
  // ran, so safety is equivalent to the justify *being* the highest.
  const bool safe = msg.justify.block_id() == high_cert_.block_id() &&
                    msg.justify.block_hash() == high_cert_.block_hash();
  const bool collude = adversary_.collude && adversary_.faulty &&
                       (*adversary_.faulty)[msg.sender];
  if (!safe && !collude) return;

  voted_view_ = v;
  ++metrics_.votes_sent;
  auto nv = sim::MakeMessage<NewViewMsg>(id_);
  nv->target_view = v + 1;
  nv->high_cert = high_cert_;
  nv->has_share = true;
  nv->share_kind = CertKind::kPrepare;
  nv->voted_id = msg.block->id();
  nv->voted_hash = msg.block->hash();
  nv->share = SignVote(CertKind::kPrepare, v, msg.block->id(), msg.block->hash());
  SendTo(LeaderOf(v + 1), std::move(nv));
  ExitView(v);  // callers re-check view() before their own ExitView
}

void ChainedReplica::ExitView(uint64_t v) { pacemaker_.CompletedView(v + 1); }

void ChainedReplica::HandleNewView(const NewViewMsg& msg) {
  const uint64_t tv = msg.target_view;
  if (LeaderOf(tv) != id_) return;
  if (tv < view()) return;
  LeaderViewState& st = nv_state_[tv];
  if (st.proposed) return;
  if (!CheckCert(msg.high_cert)) return;
  UpdateHighCert(msg.high_cert);
  // Readiness counts the *previous* view's committee (the replicas that are
  // finishing view tv-1 and reporting in); at an epoch boundary those are
  // the outgoing members.
  if (IsMember(tv == 0 ? 0 : tv - 1, msg.sender)) st.senders.Set(msg.sender);

  // A tail-forking leader pretends it received no votes for the previous
  // proposal (Example 6.2) and never forms P(v-1).
  const bool ignore_shares = adversary_.fault == Fault::kTailFork;
  if (msg.has_share && !ignore_shares &&
      msg.share_kind == CertKind::kPrepare && msg.voted_id.view + 1 == tv &&
      IsMember(msg.voted_id.view, msg.sender)) {
    if (CheckVote(CertKind::kPrepare, msg.voted_id.view, msg.voted_id,
                  msg.voted_hash, msg.share)) {
      auto [it, inserted] = st.accs.try_emplace(
          msg.voted_hash, CertKind::kPrepare, msg.voted_id.view, msg.voted_id,
          msg.voted_hash, QuorumOf(msg.voted_id.view));
      (void)inserted;
      if (it->second.Add(msg.share)) {
        st.formed = true;
        const Certificate formed = it->second.Build();
        if (oracle_) oracle_->OnCertificateFormed(id_, formed);
        UpdateHighCert(formed);
      }
    }
  }
  MaybePropose(tv);
}

void ChainedReplica::MaybePropose(uint64_t v) {
  if (crashed_ || view() != v || v <= exited_view_ || !IsLeaderOf(v)) return;
  LeaderViewState& st = nv_state_[v];
  if (st.proposed || st.waiting_block) return;
  const uint64_t prev = v == 0 ? 0 : v - 1;  // senders finish view v-1
  if (st.senders.Count() < QuorumOf(prev)) return;

  bool ready = st.formed || st.senders.Count() >= CommitteeNOf(prev) ||
               st.share_timer_passed;
  if (adversary_.fault == Fault::kTailFork) ready = true;
  if (!ready) return;
  Propose(v);
}

void ChainedReplica::Propose(uint64_t v) {
  LeaderViewState& st = nv_state_[v];
  st.proposed = true;

  if (adversary_.fault == Fault::kSlowLeader) {
    // D6: the rational leader holds its proposal to collect high-fee
    // transactions, proposing only late in its view (Example 6.1).
    const SimTime when = pacemaker_.entered_at() + (pacemaker_.tau() * 3) / 4;
    simulator()->At(when, [this, v]() {
      if (crashed_ || view() != v) return;
      BuildAndSend(v, high_cert_);
    });
    return;
  }

  if (adversary_.Equivocates(Now()) && adversary_.faulty &&
      high_cert_.block_id().view + 1 == v) {
    // §7.3 Rollback: equivocate across P(v-1) and P(v-2) so that a subset of
    // correct replicas speculates a block the winning branch abandons.
    // (Either the legacy kRollbackAttack or a strategy schedule with an
    // equivocate entry live in the current epoch lands here.)
    const Certificate honest = high_cert_;
    const Certificate* prev = JustifyOf(honest.block_hash());
    const BlockPtr parent_a = store_.GetOrNull(honest.block_hash());
    const BlockPtr parent_b = prev ? store_.GetOrNull(prev->block_hash()) : nullptr;
    if (prev != nullptr && parent_a != nullptr && parent_b != nullptr) {
      ChargeCpu(config_.costs.propose_base_us);
      std::vector<Transaction> txns = DrawBatch();
      auto block_a = std::make_shared<Block>(BlockId{v, 1}, parent_a->hash(),
                                             parent_a->height() + 1, id_, txns);
      auto block_b = std::make_shared<Block>(BlockId{v, 1}, parent_b->hash(),
                                             parent_b->height() + 1, id_,
                                             std::move(txns));
      store_.Put(block_a);
      store_.Put(block_b);
      RecordJustify(block_a->hash(), honest);
      RecordJustify(block_b->hash(), *prev);

      // Victim designation shared with the invariant oracle's exemption
      // list — see RollbackVictimMask.
      const std::vector<bool> mask_a = RollbackVictimMask(
          config_.n, adversary_.faulty.get(), adversary_.rollback_victims);
      std::vector<bool> mask_b(config_.n);
      for (ReplicaId r = 0; r < config_.n; ++r) mask_b[r] = !mask_a[r];

      auto msg_a = sim::MakeMessage<ProposeMsg>(id_);
      msg_a->block = block_a;
      msg_a->justify = honest;
      auto msg_b = sim::MakeMessage<ProposeMsg>(id_);
      msg_b->block = block_b;
      msg_b->justify = *prev;
      ++metrics_.blocks_proposed;
      ++metrics_.slots_proposed;
      // Record the campaign before the sends so that even a same-tick victim
      // rollback finds its justification outstanding.
      if (oracle_) oracle_->OnEquivocationSent(id_, v);
      SendMasked(mask_a, msg_a);
      SendMasked(mask_b, msg_b);
      return;
    }
    // Attack prerequisites missing; behave honestly below.
  }

  BuildAndSend(v, high_cert_);
}

void ChainedReplica::BuildAndSend(uint64_t v, const Certificate& justify) {
  LeaderViewState& st = nv_state_[v];
  const BlockPtr parent = store_.GetOrNull(justify.block_hash());
  if (!parent) {
    st.proposed = false;
    st.waiting_block = true;
    EnsureBlock(justify.block_hash(), LeaderOf(justify.block_id().view));
    return;
  }
  st.proposed = true;
  ChargeCpu(config_.costs.propose_base_us);
  auto block = std::make_shared<Block>(BlockId{v, 1}, parent->hash(),
                                       parent->height() + 1, id_, DrawBatch());
  store_.Put(block);
  RecordJustify(block->hash(), justify);
  ++metrics_.blocks_proposed;
  ++metrics_.slots_proposed;

  auto msg = sim::MakeMessage<ProposeMsg>(id_);
  msg->block = std::move(block);
  msg->justify = justify;
  Broadcast(std::move(msg));
}

void ChainedReplica::OnBlockFetched(const BlockPtr& block) {
  // Retry buffered proposals whose parent just arrived. Collect first:
  // HandlePropose may advance the view, which prunes pending_votes_ and
  // would invalidate a live iterator.
  std::vector<std::shared_ptr<const ProposeMsg>> ready;
  for (auto it = pending_votes_.begin(); it != pending_votes_.end();) {
    if (it->second->justify.block_hash() == block->hash()) {
      ready.push_back(it->second);
      it = pending_votes_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& msg : ready) HandlePropose(*msg);
  // Retry a leader proposal that was waiting on its parent.
  const uint64_t v = view();
  if (IsLeaderOf(v)) {
    auto it = nv_state_.find(v);
    if (it != nv_state_.end() && it->second.waiting_block) {
      it->second.waiting_block = false;
      MaybePropose(v);
    }
  }
}

void ChainedReplica::CommitTwoChain(const BlockPtr& certified) {
  // Prefix commit rule (Def. 4.6): P(w) extends P(w-1), i.e. the certified
  // block's own justify certifies a block of the immediately preceding view.
  const Certificate* justify = JustifyOf(certified->hash());
  if (justify == nullptr) return;
  if (justify->block_id().view + 1 != certified->view()) return;
  const BlockPtr target = store_.GetOrNull(justify->block_hash());
  if (!target) return;
  TryCommit(target);
}

void ChainedReplica::CommitThreeChain(const BlockPtr& certified) {
  // Chained HotStuff: commit the tail of a 3-chain with consecutive views.
  const Certificate* j2 = JustifyOf(certified->hash());
  if (j2 == nullptr || j2->block_id().view + 1 != certified->view()) return;
  const BlockPtr b2 = store_.GetOrNull(j2->block_hash());
  if (!b2) return;
  const Certificate* j3 = JustifyOf(b2->hash());
  if (j3 == nullptr || j3->block_id().view + 1 != b2->view()) return;
  const BlockPtr b3 = store_.GetOrNull(j3->block_hash());
  if (!b3) return;
  TryCommit(b3);
}

void HotStuffReplica::ProcessCertificate(const Certificate& /*justify*/,
                                         const BlockPtr& certified,
                                         uint64_t /*proposal_view*/) {
  CommitThreeChain(certified);
}

}  // namespace hotstuff1

// HotStuff-2 (Malkhi & Nayak, 2023) as the paper's streamlined baseline:
// the chained skeleton with the two-chain (prefix) commit rule. 5 half-phases
// from proposal to committed client response (7 including the client hops).

#ifndef HOTSTUFF1_BASELINES_HOTSTUFF2_H_
#define HOTSTUFF1_BASELINES_HOTSTUFF2_H_

#include "baselines/hotstuff.h"

namespace hotstuff1 {

class HotStuff2Replica : public ChainedReplica {
 public:
  using ChainedReplica::ChainedReplica;
  const char* Name() const override { return "HotStuff-2"; }

 protected:
  void ProcessCertificate(const Certificate& justify, const BlockPtr& certified,
                          uint64_t proposal_view) override;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_BASELINES_HOTSTUFF2_H_

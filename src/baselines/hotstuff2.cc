#include "baselines/hotstuff2.h"

namespace hotstuff1 {

void HotStuff2Replica::ProcessCertificate(const Certificate& /*justify*/,
                                          const BlockPtr& certified,
                                          uint64_t /*proposal_view*/) {
  CommitTwoChain(certified);
}

}  // namespace hotstuff1

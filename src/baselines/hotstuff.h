// The streamlined chained skeleton shared by HotStuff, HotStuff-2 and
// streamlined HotStuff-1, plus the HotStuff baseline itself.
//
// Skeleton (one phase per view): the leader of view v collects NewView
// messages carrying prepare shares for the view v-1 proposal, forms P(v-1)
// when possible, proposes a block extending its highest certificate, and
// broadcasts it. Replicas validate, apply the protocol-specific commit rule
// (the `ProcessCertificate` hook), vote by sending a NewView message with a
// prepare share to the next leader, and exit the view.
//
// The protocols differ only in the hook:
//   HotStuff     - 3-chain commit (consecutive views), f+1 client quorum
//   HotStuff-2   - 2-chain / prefix commit (Def. 4.6), f+1 client quorum
//   HotStuff-1   - 2-chain commit + speculation at 1-chain (§5), n-f quorum

#ifndef HOTSTUFF1_BASELINES_HOTSTUFF_H_
#define HOTSTUFF1_BASELINES_HOTSTUFF_H_

#include <map>
#include <memory>
#include <unordered_map>

#include "common/replica_set.h"
#include "consensus/replica.h"

namespace hotstuff1 {

class ChainedReplica : public ReplicaBase {
 public:
  ChainedReplica(ReplicaId id, const ConsensusConfig& config, sim::Network* net,
                 const KeyRegistry* registry, TransactionSource* source,
                 ResponseSink* sink, KvState initial_state);

  const Certificate& high_cert() const { return high_cert_; }
  uint64_t voted_view() const { return voted_view_; }

 protected:
  // --- protocol-specific hook -------------------------------------------------
  /// Called once per newly learned certificate `justify` (whose block is in
  /// the store), in the context of a proposal for view `proposal_view`.
  /// Applies the protocol's commit rule and (for HotStuff-1) speculation.
  virtual void ProcessCertificate(const Certificate& justify,
                                  const BlockPtr& certified,
                                  uint64_t proposal_view) = 0;

  // --- ReplicaBase ------------------------------------------------------------
  void OnEnterView(uint64_t view) override;
  void OnViewTimeout(uint64_t view) override;
  void OnProtocolMessage(const ConsensusMessage& msg) override;
  void OnBlockFetched(const BlockPtr& block) override;

  /// Commits the ancestor certified by `target`'s justify when views are
  /// adjacent; shared by the 2-chain protocols. Returns the newly committed
  /// execution results.
  void CommitTwoChain(const BlockPtr& certified);
  /// 3-chain commit rule of HotStuff.
  void CommitThreeChain(const BlockPtr& certified);

  void UpdateHighCert(const Certificate& cert);

 private:
  struct LeaderViewState {
    ReplicaSet senders;
    // One accumulator per distinct voted block (normally a single one).
    std::unordered_map<Hash256, VoteAccumulator, Hash256Hasher> accs;
    bool formed = false;       // formed P(v-1) from shares
    bool share_timer_passed = false;
    bool proposed = false;
    bool waiting_block = false;  // parent missing; fetch in flight
  };

  void HandlePropose(const ProposeMsg& msg);
  void HandleNewView(const NewViewMsg& msg);
  void MaybePropose(uint64_t view);
  void Propose(uint64_t view);
  void BuildAndSend(uint64_t view, const Certificate& justify);
  void VoteOn(const ProposeMsg& msg);
  void ExitView(uint64_t view);

  Certificate high_cert_;
  uint64_t voted_view_ = 0;
  std::map<uint64_t, LeaderViewState> nv_state_;
  // Proposal awaiting view entry (arrived early) keyed by its view.
  std::map<uint64_t, std::shared_ptr<const ProposeMsg>> pending_votes_;
};

/// HotStuff (Yin et al., PODC'19), chained: 3-chain commit, no speculation.
/// 7 half-phases from proposal to committed response.
class HotStuffReplica : public ChainedReplica {
 public:
  using ChainedReplica::ChainedReplica;
  const char* Name() const override { return "HotStuff"; }

 protected:
  void ProcessCertificate(const Certificate& justify, const BlockPtr& certified,
                          uint64_t proposal_view) override;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_BASELINES_HOTSTUFF_H_

#include "crypto/signer.h"

#include <unordered_set>

namespace hotstuff1 {

KeyRegistry::KeyRegistry(uint32_t n, uint64_t seed) {
  keys_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Sha256 ctx;
    ctx.Update("hs1-keygen");
    ctx.UpdateU64(seed);
    ctx.UpdateU64(i);
    keys_.push_back(ctx.Finish());
  }
}

Hash256 KeyRegistry::ComputeMac(ReplicaId signer, SignDomain domain,
                                const Hash256& digest) const {
  Sha256 ctx;
  ctx.Update(keys_[signer]);
  const uint8_t d = static_cast<uint8_t>(domain);
  ctx.Update(&d, 1);
  ctx.Update(digest);
  return ctx.Finish();
}

bool KeyRegistry::Verify(const Signature& sig, SignDomain domain,
                         const Hash256& digest) const {
  if (sig.signer >= keys_.size()) return false;
  return ComputeMac(sig.signer, domain, digest) == sig.mac;
}

Status KeyRegistry::VerifyQuorum(const std::vector<Signature>& sigs,
                                 SignDomain domain, const Hash256& digest,
                                 uint32_t quorum) const {
  if (sigs.size() < quorum) {
    return Status::Unauthenticated("quorum too small: have " +
                                   std::to_string(sigs.size()) + ", need " +
                                   std::to_string(quorum));
  }
  std::unordered_set<ReplicaId> seen;
  seen.reserve(sigs.size());
  for (const Signature& sig : sigs) {
    if (!seen.insert(sig.signer).second) {
      return Status::Unauthenticated("duplicate signer " + std::to_string(sig.signer));
    }
    if (!Verify(sig, domain, digest)) {
      return Status::Unauthenticated("invalid signature from replica " +
                                     std::to_string(sig.signer));
    }
  }
  return Status::OK();
}

}  // namespace hotstuff1

// FIPS 180-4 SHA-256, implemented from scratch (no OpenSSL dependency).
// Used for block hashing, signature MACs, and workload key derivation.

#ifndef HOTSTUFF1_CRYPTO_SHA256_H_
#define HOTSTUFF1_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace hotstuff1 {

/// 32-byte digest value type.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256& other) const { return bytes == other.bytes; }
  bool operator!=(const Hash256& other) const { return bytes != other.bytes; }
  bool operator<(const Hash256& other) const { return bytes < other.bytes; }

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  /// First 8 bytes as little-endian u64, for hashing into containers.
  uint64_t Prefix64() const {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes[i]) << (8 * i);
    return v;
  }

  std::string ToHex() const { return HexEncode(bytes.data(), bytes.size()); }
  /// Short (8 hex char) form for log messages.
  std::string Short() const { return ToHex().substr(0, 8); }
};

struct Hash256Hasher {
  size_t operator()(const Hash256& h) const { return static_cast<size_t>(h.Prefix64()); }
};

/// \brief Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  void Update(const Hash256& h) { Update(h.bytes.data(), h.bytes.size()); }
  void UpdateU64(uint64_t v) {
    uint8_t buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
    Update(buf, 8);
  }

  /// Finalizes and returns the digest. The context must be Reset() before
  /// reuse.
  Hash256 Finish();

  /// One-shot helpers.
  static Hash256 Digest(const void* data, size_t len);
  static Hash256 Digest(std::string_view s) { return Digest(s.data(), s.size()); }
  static Hash256 Digest(const Bytes& b) { return Digest(b.data(), b.size()); }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t h_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CRYPTO_SHA256_H_

// Authenticator *size* model: how many wire bytes a signature share or a
// quorum certificate occupies under a given certificate scheme. This is the
// byte-cost companion to CostModel's sign/verify *time* knobs.
//
// The paper's implementation (§7) transmits certificates as a list of n−f
// digital signatures — O(n) bytes per certificate. Production BFT systems
// instead aggregate: a BLS aggregate signature is one 48-byte G1 point plus
// a signer bitmap (who signed must still be named so the verifier can sum
// the right public keys), and a threshold signature drops even the bitmap
// (any t-of-n subset produces the same group signature). The consensus
// logic is identical in all three cases — shares are counted, digests bind
// votes to their protocol step — so the scheme is purely a *wire-size* axis:
// it changes what Network's bandwidth serialization charges, never what a
// quorum means. See docs/cost-model.md for the full table.

#ifndef HOTSTUFF1_CRYPTO_AUTHENTICATOR_H_
#define HOTSTUFF1_CRYPTO_AUTHENTICATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace hotstuff1 {

/// Wire encoding chosen for signature shares and quorum certificates.
enum class CertScheme : uint8_t {
  /// §7 implementation note: a certificate is the literal vector of n−f
  /// (signer id, signature) pairs. O(n) certificate bytes.
  kMultisigVector = 0,
  /// BLS-style aggregation (the shape of leap's finalizer_policy QCs): one
  /// 48-byte G1 aggregate plus a ceil(n/8)-byte signer bitmap. O(1) + n/8.
  kAggregate = 1,
  /// Threshold signature: one group signature, no signer identification
  /// needed. O(1) regardless of committee size.
  kThreshold = 2,
};

/// "vector" | "aggregate" | "threshold".
const char* CertSchemeName(CertScheme scheme);

/// Parses the --cert-scheme spelling. Returns false on unknown text.
bool ParseCertScheme(const std::string& text, CertScheme* out);

/// Pure byte-size formulas for one (scheme, committee) pair. Default state
/// (vector scheme) reproduces the pre-model wire sizes exactly, so messages
/// that were never stamped keep their legacy byte accounting.
struct AuthSizeModel {
  CertScheme scheme = CertScheme::kMultisigVector;
  /// Committee size, used only for the aggregate scheme's signer bitmap.
  uint32_t committee_n = 0;

  /// Bytes of one signature share travelling alone (a vote, a Wish share).
  /// Vector: 64-byte signature + 32-byte signer/meta framing, the historical
  /// 96. Aggregate/threshold: a 48-byte BLS G1 point (the signer is already
  /// named in the message envelope).
  size_t ShareBytes() const {
    return scheme == CertScheme::kMultisigVector ? 96 : 48;
  }

  /// Bytes of a certificate's authenticator section when `shares` shares
  /// were collected. Empty certificates (genesis) cost nothing under every
  /// scheme, keeping genesis traffic scheme-independent.
  size_t CertBytes(size_t shares) const {
    if (shares == 0) return 0;
    switch (scheme) {
      case CertScheme::kMultisigVector:
        return shares * 96;
      case CertScheme::kAggregate:
        return 48 + (static_cast<size_t>(committee_n) + 7) / 8;
      case CertScheme::kThreshold:
        return 48;
    }
    return shares * 96;
  }
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CRYPTO_AUTHENTICATOR_H_

#include "crypto/authenticator.h"

namespace hotstuff1 {

const char* CertSchemeName(CertScheme scheme) {
  switch (scheme) {
    case CertScheme::kMultisigVector: return "vector";
    case CertScheme::kAggregate: return "aggregate";
    case CertScheme::kThreshold: return "threshold";
  }
  return "vector";
}

bool ParseCertScheme(const std::string& text, CertScheme* out) {
  if (text == "vector" || text == "multisig") {
    *out = CertScheme::kMultisigVector;
    return true;
  }
  if (text == "aggregate" || text == "bls") {
    *out = CertScheme::kAggregate;
    return true;
  }
  if (text == "threshold") {
    *out = CertScheme::kThreshold;
    return true;
  }
  return false;
}

}  // namespace hotstuff1

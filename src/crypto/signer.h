// Authenticated-communication substrate.
//
// The paper assumes ECDSA-style digital signatures plus (n, t) BLS threshold
// signatures, but its own implementation replaces threshold aggregation with
// "a list of n−f digital signatures" (§7, Implementation). We reproduce that
// contract with a keyed-MAC scheme over a trusted KeyRegistry, which stands
// in for the PKI: sig = SHA256(secret_key_R || domain || payload-digest).
//
// Adversary-model fidelity: simulated Byzantine replicas only ever hold their
// own Signer, so they can equivocate, conceal and replay, but cannot forge a
// correct replica's vote — exactly the paper's adversary (§2).

#ifndef HOTSTUFF1_CRYPTO_SIGNER_H_
#define HOTSTUFF1_CRYPTO_SIGNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"

namespace hotstuff1 {

using ReplicaId = uint32_t;

/// Domain separation tags so a vote for one protocol step can never be
/// replayed as a vote for another (e.g. a NewSlot share used as a NewView
/// share — the slotting design depends on distinguishing these, §6.1).
enum class SignDomain : uint8_t {
  kProposal = 1,      // leader's proposal
  kProposeVote = 2,   // first-phase vote (prepare share)
  kCommitVote = 3,    // second-phase vote (commit share)
  kNewSlot = 4,       // slotting: New-Slot share
  kNewView = 5,       // slotting / streamlined: New-View share
  kWish = 6,          // pacemaker epoch synchronization
  kClientRequest = 7,
  kClientResponse = 8,
};

/// A single replica's signature over a (domain, payload digest) pair.
struct Signature {
  ReplicaId signer = 0;
  Hash256 mac;

  bool operator==(const Signature& other) const {
    return signer == other.signer && mac == other.mac;
  }
};

/// \brief Trusted key registry: stands in for the PKI + BLS public keys.
/// Owns every replica's signing secret; hands out per-replica Signers;
/// verifies any signature.
class KeyRegistry {
 public:
  /// Creates keys for replicas [0, n) deterministically from `seed`.
  KeyRegistry(uint32_t n, uint64_t seed);

  uint32_t num_replicas() const { return static_cast<uint32_t>(keys_.size()); }

  /// MAC for (signer, domain, digest). Internal: use Signer::Sign.
  Hash256 ComputeMac(ReplicaId signer, SignDomain domain, const Hash256& digest) const;

  /// Verifies that `sig` is a valid signature by `sig.signer` over
  /// (domain, digest).
  bool Verify(const Signature& sig, SignDomain domain, const Hash256& digest) const;

  /// Verifies a quorum: at least `quorum` signatures, all distinct signers,
  /// all valid over (domain, digest).
  Status VerifyQuorum(const std::vector<Signature>& sigs, SignDomain domain,
                      const Hash256& digest, uint32_t quorum) const;

 private:
  friend class Signer;
  std::vector<Hash256> keys_;
};

/// \brief Signing handle bound to one replica identity. Handing a replica
/// only its own Signer enforces unforgeability in-simulation.
class Signer {
 public:
  Signer(const KeyRegistry* registry, ReplicaId id) : registry_(registry), id_(id) {}

  ReplicaId id() const { return id_; }

  Signature Sign(SignDomain domain, const Hash256& digest) const {
    return Signature{id_, registry_->ComputeMac(id_, domain, digest)};
  }

 private:
  const KeyRegistry* registry_;
  ReplicaId id_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CRYPTO_SIGNER_H_

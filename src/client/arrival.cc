#include "client/arrival.h"

#include <cmath>

#include "common/logging.h"

namespace hotstuff1 {

bool ParseArrivalKind(const std::string& s, ArrivalKind* out) {
  if (s == "closed") *out = ArrivalKind::kClosedLoop;
  else if (s == "poisson") *out = ArrivalKind::kPoisson;
  else if (s == "bursty") *out = ArrivalKind::kBursty;
  else if (s == "diurnal") *out = ArrivalKind::kDiurnal;
  else if (s == "flash") *out = ArrivalKind::kFlashCrowd;
  else return false;
  return true;
}

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kClosedLoop: return "closed";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kFlashCrowd: return "flash";
  }
  return "?";
}

ArrivalSequence::ArrivalSequence(const ArrivalConfig& cfg, double rate_tps,
                                 uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  HS1_CHECK(cfg.kind != ArrivalKind::kClosedLoop)
      << "closed-loop pools have no arrival sequence";
  HS1_CHECK(rate_tps > 0) << "arrival rate must be positive";
  base_rate_us_ = rate_tps / 1e6;
  switch (cfg_.kind) {
    case ArrivalKind::kBursty:
      HS1_CHECK(cfg_.burst_duty > 0 && cfg_.burst_duty <= 1.0);
      HS1_CHECK(cfg_.burst_on_mean > 0);
      break;
    case ArrivalKind::kDiurnal:
      HS1_CHECK(cfg_.diurnal_amplitude >= 0 && cfg_.diurnal_amplitude < 1.0);
      HS1_CHECK(cfg_.diurnal_period > 0);
      peak_rate_us_ = base_rate_us_ * (1.0 + cfg_.diurnal_amplitude);
      break;
    case ArrivalKind::kFlashCrowd:
      HS1_CHECK(cfg_.flash_peak >= 1.0);
      HS1_CHECK(cfg_.flash_rise > 0 && cfg_.flash_decay > 0);
      peak_rate_us_ = base_rate_us_ * cfg_.flash_peak;
      break;
    default:
      break;
  }
}

double ArrivalSequence::ExpGap(double rate_per_us) {
  // NextDouble() is uniform in [0, 1); 1-u is in (0, 1], so the log argument
  // never hits zero and the gap is finite.
  return -std::log(1.0 - rng_.NextDouble()) / rate_per_us;
}

double ArrivalSequence::RateAt(double t_us) const {
  switch (cfg_.kind) {
    case ArrivalKind::kDiurnal: {
      constexpr double kTwoPi = 6.283185307179586;
      const double phase = kTwoPi * t_us / static_cast<double>(cfg_.diurnal_period);
      return base_rate_us_ * (1.0 + cfg_.diurnal_amplitude * std::sin(phase));
    }
    case ArrivalKind::kFlashCrowd: {
      const double start = static_cast<double>(cfg_.flash_start);
      if (t_us < start) return base_rate_us_;
      const double rise_end = start + static_cast<double>(cfg_.flash_rise);
      const double extra = cfg_.flash_peak - 1.0;
      if (t_us < rise_end) {
        const double frac = (t_us - start) / static_cast<double>(cfg_.flash_rise);
        return base_rate_us_ * (1.0 + extra * frac);
      }
      const double decay =
          std::exp(-(t_us - rise_end) / static_cast<double>(cfg_.flash_decay));
      return base_rate_us_ * (1.0 + extra * decay);
    }
    default:
      return base_rate_us_;
  }
}

SimTime ArrivalSequence::Next() {
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson:
      t_ += ExpGap(base_rate_us_);
      break;
    case ArrivalKind::kBursty: {
      // Alternating exponential ON/OFF sojourns; arrivals only while ON, at
      // rate lambda/duty. Crossing a state boundary redraws the pending gap,
      // which is statistically free by memorylessness.
      const double on_rate = base_rate_us_ / cfg_.burst_duty;
      const double on_mean = static_cast<double>(cfg_.burst_on_mean);
      const double off_mean = on_mean * (1.0 - cfg_.burst_duty) / cfg_.burst_duty;
      for (;;) {
        if (t_ >= state_end_us_) {
          on_ = !on_;
          const double mean = on_ ? on_mean : off_mean;
          state_end_us_ = t_ + ExpGap(1.0 / mean);
          continue;
        }
        if (!on_) {
          t_ = state_end_us_;
          continue;
        }
        const double gap = ExpGap(on_rate);
        if (t_ + gap >= state_end_us_) {
          t_ = state_end_us_;
          continue;
        }
        t_ += gap;
        break;
      }
      break;
    }
    case ArrivalKind::kDiurnal:
    case ArrivalKind::kFlashCrowd:
      // Lewis-Shedler thinning against the constant envelope peak_rate_us_.
      for (;;) {
        t_ += ExpGap(peak_rate_us_);
        if (rng_.NextDouble() * peak_rate_us_ <= RateAt(t_)) break;
      }
      break;
    case ArrivalKind::kClosedLoop:
      break;  // unreachable (checked in the constructor)
  }
  return static_cast<SimTime>(std::ceil(t_));
}

}  // namespace hotstuff1

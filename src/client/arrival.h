// Open-loop arrival processes for the client pool. A closed-loop pool (the
// paper-fidelity default) regulates itself: each client submits the next
// transaction only after the previous one is accepted, so offered load can
// never exceed service capacity. Production BFT deployments are not so
// polite — they are driven by an *open-loop* superposition of millions of
// thin client streams whose aggregate arrival rate is set by the outside
// world. This header models that aggregate as a per-client-group point
// process:
//
//   * kPoisson     — constant-rate Poisson arrivals (exponential gaps), the
//                    limit of many independent clients;
//   * kBursty      — MMPP-style on/off modulation: exponential ON/OFF
//                    sojourns, Poisson at rate lambda/duty while ON, silent
//                    while OFF (same long-run rate, burstier short-run);
//   * kDiurnal     — sinusoidal rate modulation lambda(t) = lambda *
//                    (1 + a*sin(2*pi*t/period)), sampled by thinning;
//   * kFlashCrowd  — baseline Poisson until flash_start, then a linear ramp
//                    to peak*lambda over flash_rise followed by exponential
//                    decay back to baseline (thinning against peak*lambda).
//
// Determinism: every draw comes from the sequence's own Rng, so the arrival
// times are a pure function of (config, rate, seed) — independent of
// executor shape, like everything else in the simulator.

#ifndef HOTSTUFF1_CLIENT_ARRIVAL_H_
#define HOTSTUFF1_CLIENT_ARRIVAL_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/units.h"

namespace hotstuff1 {

enum class ArrivalKind : uint32_t {
  kClosedLoop = 0,  // no generator: the classic one-outstanding-txn pool
  kPoisson = 1,
  kBursty = 2,
  kDiurnal = 3,
  kFlashCrowd = 4,
};

/// Parses "closed" / "poisson" / "bursty" / "diurnal" / "flash".
bool ParseArrivalKind(const std::string& s, ArrivalKind* out);
const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kClosedLoop;
  /// Aggregate target arrival rate (txn/s) across the whole pool; each of G
  /// client groups runs an independent sequence at offered_load_tps / G
  /// (superposing independent Poisson streams is again Poisson).
  double offered_load_tps = 50'000;

  // kBursty: fraction of time spent ON and the mean ON-sojourn length; the
  // OFF mean is derived so the long-run duty cycle equals burst_duty, and
  // the ON rate is offered_load / duty so the long-run rate is preserved.
  double burst_duty = 0.3;
  SimTime burst_on_mean = Millis(20);

  // kDiurnal: modulation period and relative amplitude in [0, 1).
  SimTime diurnal_period = Millis(400);
  double diurnal_amplitude = 0.75;

  // kFlashCrowd: quiet until flash_start, ramp to flash_peak x baseline over
  // flash_rise, exponential decay (time constant flash_decay) afterwards.
  SimTime flash_start = Millis(400);
  SimTime flash_rise = Millis(30);
  SimTime flash_decay = Millis(150);
  double flash_peak = 6.0;
};

inline bool operator==(const ArrivalConfig& a, const ArrivalConfig& b) {
  return a.kind == b.kind && a.offered_load_tps == b.offered_load_tps &&
         a.burst_duty == b.burst_duty && a.burst_on_mean == b.burst_on_mean &&
         a.diurnal_period == b.diurnal_period &&
         a.diurnal_amplitude == b.diurnal_amplitude &&
         a.flash_start == b.flash_start && a.flash_rise == b.flash_rise &&
         a.flash_decay == b.flash_decay && a.flash_peak == b.flash_peak;
}
inline bool operator!=(const ArrivalConfig& a, const ArrivalConfig& b) {
  return !(a == b);
}

/// \brief One group's deterministic arrival-time stream.
///
/// Next() returns successive absolute arrival times (microseconds from t=0),
/// non-decreasing; sub-microsecond gaps collapse onto the same tick. The
/// internal clock is a double so rates above 1 arrival/us stay accurate.
class ArrivalSequence {
 public:
  /// `rate_tps` is this sequence's own rate (the pool passes the per-group
  /// share of the aggregate offered load). Must be > 0; `cfg.kind` must not
  /// be kClosedLoop.
  ArrivalSequence(const ArrivalConfig& cfg, double rate_tps, uint64_t seed);

  /// Absolute time of the next arrival.
  SimTime Next();

 private:
  /// Exponential inter-arrival draw, rate in arrivals per microsecond.
  double ExpGap(double rate_per_us);
  /// Instantaneous rate for the thinned processes (kDiurnal, kFlashCrowd).
  double RateAt(double t_us) const;

  ArrivalConfig cfg_;
  double base_rate_us_ = 0;  // arrivals per microsecond
  double peak_rate_us_ = 0;  // thinning envelope (>= RateAt everywhere)
  Rng rng_;
  double t_ = 0;

  // kBursty state machine.
  bool on_ = false;
  double state_end_us_ = 0;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CLIENT_ARRIVAL_H_

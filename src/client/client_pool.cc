#include "client/client_pool.h"

#include <algorithm>
#include <array>

#include "common/logging.h"
#include "runtime/oracle.h"

namespace hotstuff1 {

ClientPool::ClientPool(sim::Simulator* sim, const Workload* workload,
                       ClientPoolConfig config, std::vector<SimTime> latency_to_replica)
    : sim_(sim),
      workload_(workload),
      config_(config),
      latency_(std::move(latency_to_replica)) {
  HS1_CHECK_LE(latency_.size(), ReplicaSet::kCapacity)
      << "committee exceeds ReplicaSet capacity";
  HS1_CHECK_GE(config_.groups, 1u) << "need at least one client group";
  HS1_CHECK_LE(config_.groups, kMaxClientGroups);
  min_response_latency_ = INT64_MAX / 4;
  for (SimTime lat : latency_) {
    min_response_latency_ = std::min(min_response_latency_, lat);
  }
  groups_.reserve(config_.groups);
  for (uint32_t g = 0; g < config_.groups; ++g) {
    auto group = std::make_unique<Group>();
    group->index = g;
    // Group 0 reuses the pool seed verbatim, so a single-group pool draws
    // the exact transaction stream of the historical unsharded pool.
    group->workload_rng.Seed(config_.seed + g * 0x9e3779b97f4a7c15ULL);
    // Client labels come from a separate stream: the label draw must never
    // perturb transaction content, so changing num_clients (a population
    // *label* in open loop) changes nothing but the labels themselves.
    group->client_rng.Seed((config_.seed ^ 0xc11e57a8f00dULL) +
                           g * 0x9e3779b97f4a7c15ULL);
    groups_.push_back(std::move(group));
  }
}

void ClientPool::Start() {
  if (config_.arrival.kind == ArrivalKind::kClosedLoop) {
    for (uint32_t c = 0; c < config_.num_clients; ++c) {
      // Tiny stagger avoids an artificial thundering herd at t=0.
      sim_->AfterShard(static_cast<SimTime>(c % 97),
                       ClientGroupShard(GroupOfClient(c)),
                       [this, c]() { SubmitFresh(c); });
    }
  } else {
    HS1_CHECK(config_.num_clients > 0);
    const double group_rate =
        config_.arrival.offered_load_tps / static_cast<double>(config_.groups);
    for (uint32_t g = 0; g < config_.groups; ++g) {
      Group& group = *groups_[g];
      group.arrival.emplace(config_.arrival, group_rate,
                            (config_.seed * 1000003 + 0x0a2215a7ULL) +
                                g * 0x9e3779b97f4a7c15ULL);
      sim_->AtShard(group.arrival->Next(), ClientGroupShard(g),
                    [this, g]() { ArrivalTick(g); });
    }
  }
  for (uint32_t g = 0; g < config_.groups; ++g) {
    sim_->AfterShard(config_.resubmit_timeout / 2, ClientGroupShard(g),
                     [this, g]() { Sweep(g); });
  }
}

ClientPool::Slot& ClientPool::AllocSlot(Group& group, uint64_t* id) {
  uint32_t idx;
  if (!group.free_slots.empty()) {
    idx = group.free_slots.back();
    group.free_slots.pop_back();
  } else {
    HS1_CHECK_LT(group.slots.size(), kMaxSlotsPerGroup)
        << "client group overflow: > " << kMaxSlotsPerGroup
        << " transactions in flight in one group";
    idx = static_cast<uint32_t>(group.slots.size());
    group.slots.emplace_back();
  }
  Slot& slot = group.slots[idx];
  slot.live = true;
  slot.drawn = false;
  slot.tallies.clear();  // keeps capacity: no per-lifecycle reallocation
  *id = MakeClientTxnId(group.index, idx, slot.generation);
  return slot;
}

void ClientPool::FreeSlot(Group& group, uint64_t id) {
  const uint32_t idx = ClientTxnSlot(id);
  Slot& slot = group.slots[idx];
  slot.live = false;
  ++slot.generation;  // stale ids (responses, queue copies) now miss
  group.free_slots.push_back(idx);
}

ClientPool::Slot* ClientPool::FindSlot(Group& group, uint64_t id) {
  const uint32_t idx = ClientTxnSlot(id);
  if (idx >= group.slots.size()) return nullptr;
  Slot& slot = group.slots[idx];
  if (!slot.live || slot.generation != ClientTxnGeneration(id)) return nullptr;
  return &slot;
}

void ClientPool::SubmitFresh(uint64_t client) {
  // Enqueueing touches the shared submission queue: gate, so that a replica
  // event earlier in the tick (whose DrawBatch passed its own gate and may
  // still be mutating the queue) has completed before this event touches it.
  // The gate is pairwise: earlier accessors finish before later ones start.
  sim_->SyncShared();
  Group& group = *groups_[GroupOfClient(client)];
  const SimTime now = sim_->Now();
  uint64_t id = 0;
  Slot& slot = AllocSlot(group, &id);
  slot.txn = workload_->Generate(&group.workload_rng);
  slot.txn.id = id;
  slot.txn.submit_time = now;
  slot.client = client;
  slot.first_submit = now;
  slot.last_enqueue = now;
  queue_.push_back(QueueEntry{slot.txn, now});
}

void ClientPool::ArrivalTick(uint32_t g) {
  sim_->SyncShared();  // enqueues below touch the shared queue
  Group& group = *groups_[g];
  const SimTime now = sim_->Now();
  // Drain every arrival that lands on this tick into one event, then
  // schedule the next strictly-future tick on this group's own shard (same
  // shard, so the lookahead window does not constrain the chain).
  SimTime next;
  do {
    const uint64_t client = group.client_rng.NextBounded(config_.num_clients);
    uint64_t id = 0;
    Slot& slot = AllocSlot(group, &id);
    slot.txn = workload_->Generate(&group.workload_rng);
    slot.txn.id = id;
    slot.txn.submit_time = now;
    slot.client = client;
    slot.first_submit = now;
    slot.last_enqueue = now;
    queue_.push_back(QueueEntry{slot.txn, now});
    next = group.arrival->Next();
  } while (next <= now);
  sim_->AtShard(next, ClientGroupShard(g), [this, g]() { ArrivalTick(g); });
}

std::vector<Transaction> ClientPool::DrawBatch(ReplicaId leader, size_t max,
                                               SimTime now) {
  // Called synchronously from the proposing replica's event: under a
  // parallel executor, wait for every earlier same-tick event so the queue
  // is read and mutated in exact sequence order. Reads nothing group-local:
  // queue entries carry their own transaction copy, and draws are announced
  // to the owning group through its (gated) drawn log, picked up by the
  // group's sweeper.
  sim_->SyncShared();
  std::vector<Transaction> out;
  const SimTime lat = leader < latency_.size() ? latency_[leader] : 0;
  while (out.size() < max && !queue_.empty()) {
    QueueEntry& front = queue_.front();
    // Request hop: the transaction is visible to this leader only after the
    // client->replica delay.
    if (front.enqueue_time + lat > now) break;
    const uint32_t g = ClientTxnGroup(front.txn.id);
    if (g < config_.groups) groups_[g]->drawn_log.push_back(front.txn.id);
    out.push_back(std::move(front.txn));
    queue_.pop_front();
  }
  return out;
}

void ClientPool::OnBlockResponse(ReplicaId from, const BlockPtr& block,
                                 const std::vector<uint64_t>& results,
                                 bool speculative, SimTime send_time) {
  // Response hop back to the clients. Only immutable state is read here (the
  // replica's event may run concurrently with other shards); all pool
  // mutation happens in scheduled events on the owning groups' shards — one
  // event per group with a transaction in the block, in ascending group
  // order so scheduling sequence numbers are deterministic.
  const SimTime lat = from < latency_.size() ? latency_[from] : 0;
  std::array<uint64_t, kMaxClientGroups / 64> present{};
  for (const Transaction& txn : block->txns()) {
    const uint32_t g = ClientTxnGroup(txn.id);
    if (g < config_.groups) present[g >> 6] |= 1ull << (g & 63);
  }
  for (uint32_t g = 0; g < config_.groups; ++g) {
    if (!(present[g >> 6] & (1ull << (g & 63)))) continue;
    sim_->AtShard(send_time + lat, ClientGroupShard(g),
                  [this, g, from, block, results, speculative]() {
                    Process(g, from, block, results, speculative);
                  });
  }
}

void ClientPool::Process(uint32_t g, ReplicaId from, const BlockPtr& block,
                         const std::vector<uint64_t>& results, bool speculative) {
  // Group-local: tallies and acceptance state belong to this group's shard,
  // so no SyncShared — response processing for distinct groups overlaps
  // under a parallel executor. (The closed-loop resubmission inside Accept
  // gates on its own.)
  // A response from a replica id outside the committee is a wiring bug; it
  // must never alias onto another replica's vote bit (the old `% 64` wrap).
  HS1_CHECK_LT(from, latency_.size()) << "response from unknown replica";
  Group& group = *groups_[g];
  const auto& txns = block->txns();
  for (size_t i = 0; i < txns.size(); ++i) {
    if (ClientTxnGroup(txns[i].id) != g) continue;  // another group's txn
    Slot* slot = FindSlot(group, txns[i].id);
    if (slot == nullptr) continue;  // already accepted (stale id)

    ResponseTally* tally = nullptr;
    for (ResponseTally& t : slot->tallies) {
      if (t.block_hash == block->hash() && t.result == results[i]) {
        tally = &t;
        break;
      }
    }
    if (tally == nullptr) {
      slot->tallies.push_back(ResponseTally{block->hash(), results[i], {}, {}});
      tally = &slot->tallies.back();
    }
    tally->spec_mask.Set(from);  // every response is at least a commit-vote
    if (!speculative) tally->commit_mask.Set(from);

    const uint32_t votes = (tally->spec_mask | tally->commit_mask).Count();
    const uint32_t commits = tally->commit_mask.Count();
    if (commits >= config_.quorum_commit) {
      Accept(group, txns[i].id, *slot, tally->block_hash, /*speculative=*/false);
    } else if (config_.quorum_speculative > 0 &&
               votes >= config_.quorum_speculative) {
      Accept(group, txns[i].id, *slot, tally->block_hash, /*speculative=*/true);
    }
  }
}

void ClientPool::Accept(Group& group, uint64_t id, Slot& slot,
                        const Hash256& block_hash, bool speculative) {
  if (oracle_) oracle_->OnClientAccept(id, block_hash, speculative);
  group.latencies.Add(sim_->Now() - slot.first_submit);
  ++group.accepted;
  if (speculative) ++group.accepted_speculative;
  if (config_.track_accepted) {
    group.records.push_back(AcceptedRecord{id, block_hash, speculative, sim_->Now()});
  }
  const uint64_t client = slot.client;
  FreeSlot(group, id);
  if (config_.arrival.kind == ArrivalKind::kClosedLoop) {
    SubmitFresh(client);  // closed loop: next request immediately
  }
}

void ClientPool::Sweep(uint32_t g) {
  sim_->SyncShared();  // drains the drawn log, re-enqueues: shared domain
  Group& group = *groups_[g];
  const SimTime now = sim_->Now();
  for (uint64_t id : group.drawn_log) {
    if (Slot* slot = FindSlot(group, id)) slot->drawn = true;
  }
  group.drawn_log.clear();
  for (Slot& slot : group.slots) {
    if (!slot.live || !slot.drawn) continue;
    if (now - slot.last_enqueue < config_.resubmit_timeout) continue;
    // The block carrying this transaction was likely orphaned (tail-forked
    // or rolled back); retry like a real client would.
    slot.drawn = false;
    slot.last_enqueue = now;
    ++group.resubmissions;
    queue_.push_back(QueueEntry{slot.txn, now});
  }
  sim_->AfterShard(config_.resubmit_timeout / 2, ClientGroupShard(g),
                   [this, g]() { Sweep(g); });
}

uint64_t ClientPool::accepted() const {
  uint64_t total = 0;
  for (const auto& group : groups_) total += group->accepted;
  return total;
}

uint64_t ClientPool::accepted_speculative() const {
  uint64_t total = 0;
  for (const auto& group : groups_) total += group->accepted_speculative;
  return total;
}

uint64_t ClientPool::resubmissions() const {
  uint64_t total = 0;
  for (const auto& group : groups_) total += group->resubmissions;
  return total;
}

LatencyRecorder ClientPool::latencies() const {
  LatencyRecorder merged;
  for (const auto& group : groups_) merged.Append(group->latencies);
  return merged;
}

std::vector<ClientPool::AcceptedRecord> ClientPool::accepted_records() const {
  std::vector<AcceptedRecord> merged;
  size_t total = 0;
  for (const auto& group : groups_) total += group->records.size();
  merged.reserve(total);
  for (const auto& group : groups_) {
    merged.insert(merged.end(), group->records.begin(), group->records.end());
  }
  return merged;
}

void ClientPool::ResetStats() {
  for (const auto& group : groups_) {
    group->latencies.Clear();
    group->accepted = 0;
    group->accepted_speculative = 0;
    group->resubmissions = 0;
  }
}

}  // namespace hotstuff1

#include "client/client_pool.h"

#include "common/logging.h"
#include "runtime/oracle.h"

namespace hotstuff1 {

ClientPool::ClientPool(sim::Simulator* sim, const Workload* workload,
                       ClientPoolConfig config, std::vector<SimTime> latency_to_replica)
    : sim_(sim),
      workload_(workload),
      config_(config),
      latency_(std::move(latency_to_replica)),
      rng_(config.seed) {
  HS1_CHECK_LE(latency_.size(), ReplicaSet::kCapacity)
      << "committee exceeds ReplicaSet capacity";
}

void ClientPool::Start() {
  for (uint32_t c = 0; c < config_.num_clients; ++c) {
    // Tiny stagger avoids an artificial thundering herd at t=0.
    sim_->AfterShard(static_cast<SimTime>(c % 97), kShardClients,
                     [this, c]() { SubmitFresh(c); });
  }
  sim_->AfterShard(config_.resubmit_timeout / 2, kShardClients,
                   [this]() { Sweep(); });
}

void ClientPool::SubmitFresh(uint32_t client) {
  // Every pool mutation gates on SyncShared so that a replica event earlier
  // in the tick (whose DrawBatch passed its own gate and may still be
  // mutating the queue) has completed before this event touches it. The
  // gate is pairwise: earlier accessors finish before later ones start.
  sim_->SyncShared();
  const uint64_t id = (static_cast<uint64_t>(client) << 32) | next_seq_++;
  ClientTxn state;
  state.txn = workload_->Generate(&rng_);
  state.txn.id = id;
  state.txn.submit_time = sim_->Now();
  state.client = client;
  state.first_submit = sim_->Now();
  state.last_enqueue = sim_->Now();
  outstanding_.emplace(id, std::move(state));
  queue_.push_back(id);
}

std::vector<Transaction> ClientPool::DrawBatch(ReplicaId leader, size_t max,
                                               SimTime now) {
  // Called synchronously from the proposing replica's event: under a
  // parallel executor, wait for every earlier same-tick event so the queue
  // is read and mutated in exact sequence order.
  sim_->SyncShared();
  std::vector<Transaction> out;
  const SimTime lat = leader < latency_.size() ? latency_[leader] : 0;
  while (out.size() < max && !queue_.empty()) {
    const uint64_t id = queue_.front();
    auto it = outstanding_.find(id);
    if (it == outstanding_.end()) {
      queue_.pop_front();  // accepted while queued (late resubmission)
      continue;
    }
    // Request hop: the transaction is visible to this leader only after the
    // client->replica delay.
    if (it->second.last_enqueue + lat > now) break;
    queue_.pop_front();
    it->second.in_flight = true;
    out.push_back(it->second.txn);
  }
  return out;
}

void ClientPool::OnBlockResponse(ReplicaId from, const BlockPtr& block,
                                 const std::vector<uint64_t>& results,
                                 bool speculative, SimTime send_time) {
  // Response hop back to the clients. Only immutable state is read here (the
  // replica's event may run concurrently with other shards); all pool
  // mutation happens in the scheduled event on the clients' own shard.
  const SimTime lat = from < latency_.size() ? latency_[from] : 0;
  sim_->AtShard(send_time + lat, kShardClients,
                [this, from, block, results, speculative]() {
                  Process(from, block, results, speculative);
                });
}

void ClientPool::Process(ReplicaId from, const BlockPtr& block,
                         const std::vector<uint64_t>& results, bool speculative) {
  sim_->SyncShared();  // see SubmitFresh
  // A response from a replica id outside the committee is a wiring bug; it
  // must never alias onto another replica's vote bit (the old `% 64` wrap).
  HS1_CHECK_LT(from, latency_.size()) << "response from unknown replica";
  const auto& txns = block->txns();
  for (size_t i = 0; i < txns.size(); ++i) {
    auto it = outstanding_.find(txns[i].id);
    if (it == outstanding_.end()) continue;  // already accepted
    ClientTxn& state = it->second;

    ResponseTally* tally = nullptr;
    for (ResponseTally& t : state.tallies) {
      if (t.block_hash == block->hash() && t.result == results[i]) {
        tally = &t;
        break;
      }
    }
    if (tally == nullptr) {
      state.tallies.push_back(ResponseTally{block->hash(), results[i], {}, {}});
      tally = &state.tallies.back();
    }
    tally->spec_mask.Set(from);  // every response is at least a commit-vote
    if (!speculative) tally->commit_mask.Set(from);

    const uint32_t votes = (tally->spec_mask | tally->commit_mask).Count();
    const uint32_t commits = tally->commit_mask.Count();
    if (commits >= config_.quorum_commit) {
      Accept(txns[i].id, state, tally->block_hash, /*speculative=*/false);
    } else if (config_.quorum_speculative > 0 && votes >= config_.quorum_speculative) {
      Accept(txns[i].id, state, tally->block_hash, /*speculative=*/true);
    }
  }
}

void ClientPool::Accept(uint64_t id, ClientTxn& state, const Hash256& block_hash,
                        bool speculative) {
  if (oracle_) oracle_->OnClientAccept(id, block_hash, speculative);
  latencies_.Add(sim_->Now() - state.first_submit);
  ++accepted_;
  if (speculative) ++accepted_speculative_;
  if (config_.track_accepted) {
    accepted_records_.push_back(AcceptedRecord{id, block_hash, speculative, sim_->Now()});
  }
  const uint32_t client = state.client;
  outstanding_.erase(id);
  SubmitFresh(client);  // closed loop: next request immediately
}

void ClientPool::Sweep() {
  sim_->SyncShared();  // see SubmitFresh
  const SimTime now = sim_->Now();
  for (auto& [id, state] : outstanding_) {
    if (state.in_flight && now - state.last_enqueue >= config_.resubmit_timeout) {
      // The block carrying this transaction was likely orphaned
      // (tail-forked or rolled back); retry like a real client would.
      state.in_flight = false;
      state.last_enqueue = now;
      ++resubmissions_;
      queue_.push_back(id);
    }
  }
  sim_->AfterShard(config_.resubmit_timeout / 2, kShardClients,
                   [this]() { Sweep(); });
}

void ClientPool::ResetStats() {
  latencies_.Clear();
  accepted_ = 0;
  accepted_speculative_ = 0;
  resubmissions_ = 0;
}

}  // namespace hotstuff1

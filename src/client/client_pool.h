// Closed-loop client population. Each virtual client keeps one transaction
// outstanding; on acceptance it immediately submits the next. Acceptance
// follows the paper's matching-quorum rules (§7 Metrics):
//   * f+1 matching committed responses (HotStuff / HotStuff-2), or
//   * n-f matching responses for speculative protocols (HotStuff-1), where
//     committed responses also count towards the n-f quorum.
// Responses match when (transaction, execution result, executed block) agree
// - the Zyzzyva-style rule that prevents combining votes across views that
// the prefix-speculation dilemma requires (§3, Appendix A.1).
//
// Transactions stuck in orphaned blocks are re-submitted after a timeout,
// keeping their original submit time for latency accounting.

#ifndef HOTSTUFF1_CLIENT_CLIENT_POOL_H_
#define HOTSTUFF1_CLIENT_CLIENT_POOL_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/replica_set.h"
#include "consensus/mempool.h"
#include "consensus/metrics.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace hotstuff1 {

class InvariantOracle;  // runtime/oracle.h

/// Shard for the client pool's own events (submission stagger, response
/// processing, the retry sweeper). Distinct from every replica shard, so
/// client work overlaps replica work under a parallel executor; mutual
/// exclusion against replicas' synchronous DrawBatch/PendingCount calls is
/// enforced by Simulator::SyncShared at the pool's entry points.
inline constexpr sim::ShardId kShardClients = 0xfffffffeu;

struct ClientPoolConfig {
  uint32_t num_clients = 800;
  /// Committed-response threshold (f+1).
  uint32_t quorum_commit = 2;
  /// Speculative threshold (n-f); 0 disables speculative acceptance.
  uint32_t quorum_speculative = 0;
  /// Retry period for transactions lost in orphaned blocks.
  SimTime resubmit_timeout = Millis(250);
  uint64_t seed = 7;
  /// Record (txn id, block hash) for every acceptance; used by client-safety
  /// property tests (Cor. B.10).
  bool track_accepted = false;
};

/// Threading: all mutable pool state is a single shared domain. Methods
/// invoked from replica events (DrawBatch, PendingCount) gate on
/// Simulator::SyncShared, so under a parallel executor every access happens
/// in exact event-sequence order — identical to a single-threaded run.
class ClientPool : public TransactionSource, public ResponseSink {
 public:
  /// `latency_to_replica[r]` is the one-way client<->replica delay (clients
  /// sit in one region; the paper places them in North Virginia).
  ClientPool(sim::Simulator* sim, const Workload* workload, ClientPoolConfig config,
             std::vector<SimTime> latency_to_replica);

  /// Submits every client's first transaction and starts the retry sweeper.
  void Start();

  /// Attaches the online invariant oracle (null = disabled): every client
  /// acceptance is reported and checked against the global commit lattice —
  /// an accepted block that conflicts with what any correct replica commits
  /// at its height is a Cor. B.10 violation, flagged the moment either side
  /// lands. (The bounded in-flight tail — accepted, not yet committed, not
  /// contradicted — is inherently unjudgeable online; the end-of-run
  /// property tests cover it with time cutoffs.)
  void SetOracle(InvariantOracle* oracle) { oracle_ = oracle; }

  // --- TransactionSource ------------------------------------------------------
  std::vector<Transaction> DrawBatch(ReplicaId leader, size_t max,
                                     SimTime now) override;
  size_t PendingCount() const override {
    sim_->SyncShared();  // called from replica events; order the read
    return queue_.size();
  }

  // --- ResponseSink ------------------------------------------------------------
  void OnBlockResponse(ReplicaId from, const BlockPtr& block,
                       const std::vector<uint64_t>& results, bool speculative,
                       SimTime send_time) override;

  /// Conservative lower bound on the replica->client response hop, the one
  /// cross-shard path that bypasses the network's bandwidth model. Feeds the
  /// lookahead horizon next to Network::MinDeliveryLatency.
  SimTime MinResponseLatency() const {
    SimTime min_latency = INT64_MAX / 4;
    for (SimTime lat : latency_) min_latency = std::min(min_latency, lat);
    return min_latency;
  }

  // --- measurement -------------------------------------------------------------
  /// Clears latency samples and acceptance counters (warmup boundary).
  void ResetStats();
  uint64_t accepted() const { return accepted_; }
  uint64_t accepted_speculative() const { return accepted_speculative_; }
  uint64_t resubmissions() const { return resubmissions_; }
  const LatencyRecorder& latencies() const { return latencies_; }

  struct AcceptedRecord {
    uint64_t txn_id;
    Hash256 block_hash;  // block whose responses formed the quorum
    bool speculative;
    SimTime time;
  };
  const std::vector<AcceptedRecord>& accepted_records() const {
    return accepted_records_;
  }

 private:
  struct ResponseTally {
    Hash256 block_hash;
    uint64_t result = 0;
    ReplicaSet spec_mask;    // replicas whose response counts as a commit-vote
    ReplicaSet commit_mask;  // replicas reporting a committed execution
  };
  struct ClientTxn {
    Transaction txn;
    uint32_t client = 0;
    SimTime first_submit = 0;
    SimTime last_enqueue = 0;
    bool in_flight = false;  // drawn by some leader, awaiting responses
    std::vector<ResponseTally> tallies;  // usually exactly one entry
  };

  void SubmitFresh(uint32_t client);
  void Process(ReplicaId from, const BlockPtr& block,
               const std::vector<uint64_t>& results, bool speculative);
  void Accept(uint64_t id, ClientTxn& state, const Hash256& block_hash,
              bool speculative);
  void Sweep();

  sim::Simulator* sim_;
  const Workload* workload_;
  ClientPoolConfig config_;
  std::vector<SimTime> latency_;
  InvariantOracle* oracle_ = nullptr;
  Rng rng_;

  std::deque<uint64_t> queue_;  // FIFO of waiting transaction ids
  std::unordered_map<uint64_t, ClientTxn> outstanding_;
  uint64_t next_seq_ = 1;

  uint64_t accepted_ = 0;
  uint64_t accepted_speculative_ = 0;
  uint64_t resubmissions_ = 0;
  LatencyRecorder latencies_;
  std::vector<AcceptedRecord> accepted_records_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CLIENT_CLIENT_POOL_H_

// Client population, sharded into per-client-group domains. Two traffic
// models share the same acceptance machinery:
//
//   * closed loop (default, paper fidelity): each virtual client keeps one
//     transaction outstanding; on acceptance it immediately submits the
//     next. Offered load self-regulates to service capacity, which is what
//     the paper's saturation measurements assume (§7 Metrics).
//   * open loop (ArrivalConfig, kind != kClosedLoop): transactions arrive
//     from a per-group arrival process (Poisson / bursty / diurnal / flash
//     crowd) at a configured offered load, attributed to clients drawn
//     lazily from a population that can be millions strong — there is no
//     per-client record, so the heap footprint is a function of traffic,
//     never of population (tests/client_alloc_test.cc pins this).
//
// Acceptance follows the paper's matching-quorum rules (§7 Metrics):
//   * f+1 matching committed responses (HotStuff / HotStuff-2), or
//   * n-f matching responses for speculative protocols (HotStuff-1), where
//     committed responses also count towards the n-f quorum.
// Responses match when (transaction, execution result, executed block) agree
// - the Zyzzyva-style rule that prevents combining votes across views that
// the prefix-speculation dilemma requires (§3, Appendix A.1).
//
// Transactions stuck in orphaned blocks are re-submitted after a timeout,
// keeping their original submit time for latency accounting. A retried
// transaction whose original copy is accepted while the retry still sits in
// the submission queue may be executed twice (exactly like a real client's
// duplicate retry); the client records the acceptance once — the stale
// copy's responses miss the (group, slot, generation) lookup and are
// ignored.
//
// --- Sharding model (see docs/ARCHITECTURE.md) -------------------------------
// The pool is split into G groups (ClientPoolConfig::groups). Each group owns
// an event shard (ClientGroupShard(g)), its own RNG streams, retry sweeper,
// slot storage, tallies, and statistics, so response processing for distinct
// groups runs concurrently under a parallel executor. Only the *submission
// queue* (plus the per-group drawn-id logs feeding the sweepers) remains a
// shared serial domain: DrawBatch/PendingCount (called synchronously from
// replica events) and every enqueue path gate on Simulator::SyncShared, while
// the tally/accept hot path never does. Results stay byte-identical at any
// --jobs x --sim-jobs x --lookahead because every shared-domain access is
// gated and every group-local access is ordered by its shard's event chain.

#ifndef HOTSTUFF1_CLIENT_CLIENT_POOL_H_
#define HOTSTUFF1_CLIENT_CLIENT_POOL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "client/arrival.h"
#include "common/random.h"
#include "common/replica_set.h"
#include "consensus/mempool.h"
#include "consensus/metrics.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace hotstuff1 {

class InvariantOracle;  // runtime/oracle.h

/// Client-group shards live in a reserved band well above any replica shard
/// and below kShardSerial (0xffffffff, the barrier). Group g's events run on
/// ClientGroupShard(g); kShardClients names group 0 (the whole pool when
/// groups == 1, the historical single-shard layout).
inline constexpr sim::ShardId kShardClientGroupBase = 0xfffe0000u;
inline constexpr uint32_t kMaxClientGroups = 1024;
inline constexpr sim::ShardId ClientGroupShard(uint32_t group) {
  return kShardClientGroupBase + group;
}
inline constexpr sim::ShardId kShardClients = kShardClientGroupBase;

/// Transaction ids encode their owning group and storage slot, so any id can
/// be routed and resolved without a hash lookup or any shared state:
/// bits 63..54 group (10), 53..32 slot index (22), 31..0 generation. The
/// generation is bumped when a slot is freed, so responses for an already-
/// accepted transaction miss cleanly.
inline constexpr uint32_t kClientSlotBits = 22;
inline constexpr uint32_t kMaxSlotsPerGroup = 1u << kClientSlotBits;
inline constexpr uint64_t MakeClientTxnId(uint32_t group, uint32_t slot,
                                          uint32_t generation) {
  return (static_cast<uint64_t>(group) << (32 + kClientSlotBits)) |
         (static_cast<uint64_t>(slot) << 32) | generation;
}
inline constexpr uint32_t ClientTxnGroup(uint64_t id) {
  return static_cast<uint32_t>(id >> (32 + kClientSlotBits));
}
inline constexpr uint32_t ClientTxnSlot(uint64_t id) {
  return static_cast<uint32_t>(id >> 32) & (kMaxSlotsPerGroup - 1);
}
inline constexpr uint32_t ClientTxnGeneration(uint64_t id) {
  return static_cast<uint32_t>(id);
}

struct ClientPoolConfig {
  uint32_t num_clients = 800;
  /// Client-group shard count (1..kMaxClientGroups). groups == 1 reproduces
  /// the historical single-shard pool exactly.
  uint32_t groups = 1;
  /// Traffic model; kClosedLoop keeps the paper-fidelity closed loop.
  ArrivalConfig arrival;
  /// Committed-response threshold (f+1).
  uint32_t quorum_commit = 2;
  /// Speculative threshold (n-f); 0 disables speculative acceptance.
  uint32_t quorum_speculative = 0;
  /// Retry period for transactions lost in orphaned blocks.
  SimTime resubmit_timeout = Millis(250);
  uint64_t seed = 7;
  /// Record (txn id, block hash) for every acceptance; used by client-safety
  /// property tests (Cor. B.10).
  bool track_accepted = false;
};

/// Threading: the submission queue (and the drawn-id logs) form the single
/// shared domain — every path that touches them (DrawBatch, PendingCount,
/// all enqueues, the sweepers) gates on Simulator::SyncShared. Everything
/// else (slots, tallies, latency samples, counters) is group-local and runs
/// on the group's own shard without gating.
class ClientPool : public TransactionSource, public ResponseSink {
 public:
  /// `latency_to_replica[r]` is the one-way client<->replica delay (clients
  /// sit in one region; the paper places them in North Virginia).
  ClientPool(sim::Simulator* sim, const Workload* workload, ClientPoolConfig config,
             std::vector<SimTime> latency_to_replica);

  /// Closed loop: submits every client's first transaction. Open loop:
  /// starts each group's arrival chain. Either way, starts the per-group
  /// retry sweepers.
  void Start();

  /// Attaches the online invariant oracle (null = disabled): every client
  /// acceptance is reported and checked against the global commit lattice —
  /// an accepted block that conflicts with what any correct replica commits
  /// at its height is a Cor. B.10 violation, flagged the moment either side
  /// lands. (The bounded in-flight tail — accepted, not yet committed, not
  /// contradicted — is inherently unjudgeable online; the end-of-run
  /// property tests cover it with time cutoffs.)
  void SetOracle(InvariantOracle* oracle) { oracle_ = oracle; }

  // --- TransactionSource ------------------------------------------------------
  std::vector<Transaction> DrawBatch(ReplicaId leader, size_t max,
                                     SimTime now) override;
  size_t PendingCount() const override {
    sim_->SyncShared();  // called from replica events; order the read
    return queue_.size();
  }

  // --- ResponseSink ------------------------------------------------------------
  void OnBlockResponse(ReplicaId from, const BlockPtr& block,
                       const std::vector<uint64_t>& results, bool speculative,
                       SimTime send_time) override;

  /// Conservative lower bound on the replica->client response hop, the one
  /// cross-shard path that bypasses the network's bandwidth model. Feeds the
  /// lookahead horizon next to Network::MinDeliveryLatency. Cached at
  /// construction — the latency table never changes afterwards.
  SimTime MinResponseLatency() const { return min_response_latency_; }

  // --- measurement -------------------------------------------------------------
  /// Clears latency samples and acceptance counters (warmup boundary).
  void ResetStats();
  uint64_t accepted() const;
  uint64_t accepted_speculative() const;
  uint64_t resubmissions() const;
  /// Transactions submitted but not yet drawn by any leader. Open-loop runs
  /// past the knee grow this without bound; closed-loop runs keep it within
  /// the client population. Read outside the event loop (end of run).
  uint64_t backlog() const { return queue_.size(); }
  /// Merged latency samples, groups concatenated in index order (a
  /// deterministic order, so aggregate statistics are executor-independent).
  LatencyRecorder latencies() const;

  struct AcceptedRecord {
    uint64_t txn_id;
    Hash256 block_hash;  // block whose responses formed the quorum
    bool speculative;
    SimTime time;
  };
  /// Merged acceptance records, groups concatenated in index order (within a
  /// group, acceptance order).
  std::vector<AcceptedRecord> accepted_records() const;

 private:
  struct ResponseTally {
    Hash256 block_hash;
    uint64_t result = 0;
    ReplicaSet spec_mask;    // replicas whose response counts as a commit-vote
    ReplicaSet commit_mask;  // replicas reporting a committed execution
  };

  /// One in-flight transaction, addressed by (group, slot index). Freed
  /// slots keep their tally capacity and go on the group's free list, so a
  /// steady-state pool allocates nothing per transaction lifecycle beyond
  /// the transaction payload itself.
  struct Slot {
    Transaction txn;
    uint64_t client = 0;
    SimTime first_submit = 0;
    SimTime last_enqueue = 0;
    uint32_t generation = 1;
    bool live = false;
    bool drawn = false;  // sweeper has observed a leader draw this txn
    std::vector<ResponseTally> tallies;  // usually exactly one entry
  };

  struct Group {
    uint32_t index = 0;
    Rng workload_rng;        // transaction content draws
    Rng client_rng;          // open loop: lazy client-label draws
    std::optional<ArrivalSequence> arrival;
    std::vector<Slot> slots;
    std::vector<uint32_t> free_slots;
    // Shared domain (gated): ids drawn by leaders since the last sweep.
    std::vector<uint64_t> drawn_log;
    uint64_t accepted = 0;
    uint64_t accepted_speculative = 0;
    uint64_t resubmissions = 0;
    LatencyRecorder latencies;
    std::vector<AcceptedRecord> records;

    Group() : workload_rng(0), client_rng(0) {}
  };

  /// A queued submission owns a copy of the transaction, so DrawBatch reads
  /// only shared-domain state and never touches group-local slots.
  struct QueueEntry {
    Transaction txn;
    SimTime enqueue_time = 0;
  };

  uint32_t GroupOfClient(uint64_t client) const {
    return static_cast<uint32_t>(client % config_.groups);
  }
  Slot& AllocSlot(Group& group, uint64_t* id);
  void FreeSlot(Group& group, uint64_t id);
  /// Live slot for `id`, or nullptr when the id is stale (already accepted).
  Slot* FindSlot(Group& group, uint64_t id);

  void SubmitFresh(uint64_t client);           // closed loop (gates)
  void ArrivalTick(uint32_t group);            // open loop (gates)
  void Process(uint32_t group, ReplicaId from, const BlockPtr& block,
               const std::vector<uint64_t>& results, bool speculative);
  void Accept(Group& group, uint64_t id, Slot& slot, const Hash256& block_hash,
              bool speculative);
  void Sweep(uint32_t group);  // gates (drawn log + re-enqueues)

  sim::Simulator* sim_;
  const Workload* workload_;
  ClientPoolConfig config_;
  std::vector<SimTime> latency_;
  SimTime min_response_latency_ = 0;
  InvariantOracle* oracle_ = nullptr;

  std::vector<std::unique_ptr<Group>> groups_;
  std::deque<QueueEntry> queue_;  // shared domain: FIFO of waiting submissions
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CLIENT_CLIENT_POOL_H_

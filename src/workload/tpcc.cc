#include "workload/tpcc.h"

namespace hotstuff1 {

uint64_t TpccKey(TpccTable table, uint32_t w, uint32_t d, uint64_t index) {
  return (static_cast<uint64_t>(table) << 56) | (static_cast<uint64_t>(w) << 40) |
         (static_cast<uint64_t>(d) << 32) | (index & 0xffffffffULL);
}

TpccWorkload::TpccWorkload(TpccConfig config) : config_(config) {}

uint64_t TpccWorkload::RecordCount() const {
  return static_cast<uint64_t>(config_.num_warehouses) *
         (1 + config_.districts_per_warehouse +
          config_.districts_per_warehouse * config_.customers_per_district +
          config_.stock_per_warehouse);
}

void TpccWorkload::Load(KvState* state) const {
  state->Reserve(RecordCount());
  for (uint32_t w = 0; w < config_.num_warehouses; ++w) {
    state->Put(TpccKey(TpccTable::kWarehouse, w, 0, 0), 0);  // w_ytd
    for (uint32_t d = 0; d < config_.districts_per_warehouse; ++d) {
      state->Put(TpccKey(TpccTable::kDistrict, w, d, 0), 1);  // d_next_o_id
      for (uint32_t c = 0; c < config_.customers_per_district; ++c) {
        state->Put(TpccKey(TpccTable::kCustomer, w, d, c), 0);  // c_balance
      }
    }
    for (uint32_t i = 0; i < config_.stock_per_warehouse; ++i) {
      state->Put(TpccKey(TpccTable::kStock, w, 0, i), 100);  // s_quantity
    }
  }
}

Transaction TpccWorkload::Generate(Rng* rng) const {
  if (rng->NextDouble() < config_.new_order_fraction) return NewOrder(rng);
  return Payment(rng);
}

Transaction TpccWorkload::NewOrder(Rng* rng) const {
  const uint32_t w = static_cast<uint32_t>(rng->NextBounded(config_.num_warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng->NextBounded(config_.districts_per_warehouse));
  const uint32_t c =
      static_cast<uint32_t>(rng->NextBounded(config_.customers_per_district));
  const uint32_t lines = static_cast<uint32_t>(
      rng->NextInRange(config_.min_order_lines, config_.max_order_lines));

  Transaction txn;
  txn.ops.reserve(4 + 2 * lines);
  // Read warehouse tax, customer discount; bump the district's next order id.
  txn.ops.push_back({TxnOp::Kind::kRead, TpccKey(TpccTable::kWarehouse, w, 0, 0), 0});
  txn.ops.push_back({TxnOp::Kind::kRead, TpccKey(TpccTable::kCustomer, w, d, c), 0});
  txn.ops.push_back(
      {TxnOp::Kind::kReadModifyWrite, TpccKey(TpccTable::kDistrict, w, d, 0), 1});
  // Order row keyed by a random order id (the consensus layer orders
  // transactions; uniqueness of the id is not load-bearing here).
  const uint64_t order_id = rng->NextU64() & 0xffffffffULL;
  txn.ops.push_back({TxnOp::Kind::kWrite, TpccKey(TpccTable::kOrder, w, d, order_id),
                     (static_cast<uint64_t>(c) << 8) | lines});
  for (uint32_t l = 0; l < lines; ++l) {
    const uint64_t item = rng->NextBounded(config_.stock_per_warehouse);
    const uint64_t qty = 1 + rng->NextBounded(10);
    // Decrement stock (RMW with wrap-around semantics of unsigned add).
    txn.ops.push_back({TxnOp::Kind::kReadModifyWrite,
                       TpccKey(TpccTable::kStock, w, 0, item),
                       static_cast<uint64_t>(-static_cast<int64_t>(qty))});
    txn.ops.push_back({TxnOp::Kind::kWrite,
                       TpccKey(TpccTable::kOrderLine, w, d, (order_id << 4) | l),
                       (item << 8) | qty});
  }
  txn.payload_bytes = 64;  // order entry form
  return txn;
}

Transaction TpccWorkload::Payment(Rng* rng) const {
  const uint32_t w = static_cast<uint32_t>(rng->NextBounded(config_.num_warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng->NextBounded(config_.districts_per_warehouse));
  const uint32_t c =
      static_cast<uint32_t>(rng->NextBounded(config_.customers_per_district));
  const uint64_t amount = 1 + rng->NextBounded(5000);

  Transaction txn;
  txn.ops.reserve(3);
  txn.ops.push_back(
      {TxnOp::Kind::kReadModifyWrite, TpccKey(TpccTable::kWarehouse, w, 0, 0), amount});
  txn.ops.push_back(
      {TxnOp::Kind::kReadModifyWrite, TpccKey(TpccTable::kDistrict, w, d, 1), amount});
  txn.ops.push_back(
      {TxnOp::Kind::kReadModifyWrite, TpccKey(TpccTable::kCustomer, w, d, c), amount});
  txn.payload_bytes = 32;
  return txn;
}

}  // namespace hotstuff1

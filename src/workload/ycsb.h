// YCSB-style key-value workload (§7): write operations over a database of
// 600k records, with uniform or zipfian key selection.

#ifndef HOTSTUFF1_WORKLOAD_YCSB_H_
#define HOTSTUFF1_WORKLOAD_YCSB_H_

#include <memory>

#include "workload/workload.h"

namespace hotstuff1 {

struct YcsbConfig {
  uint64_t num_records = 600'000;  // the paper's YCSB database size
  uint32_t ops_per_txn = 1;
  /// Fraction of write ops (rest are reads). The paper uses pure writes.
  double write_fraction = 1.0;
  /// 0 disables zipfian (uniform); typical skew is 0.99.
  double zipf_theta = 0.0;
  /// Extra payload bytes per transaction beyond op encoding (total wire
  /// size ~64 B/txn with the default, matching small KV writes).
  uint32_t payload_bytes = 23;
};

class YcsbWorkload : public Workload {
 public:
  explicit YcsbWorkload(YcsbConfig config = {});

  const char* Name() const override { return "YCSB"; }
  uint64_t RecordCount() const override { return config_.num_records; }
  void Load(KvState* state) const override;
  Transaction Generate(Rng* rng) const override;

 private:
  uint64_t NextKey(Rng* rng) const;

  YcsbConfig config_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_WORKLOAD_YCSB_H_

#include "workload/ycsb.h"

namespace hotstuff1 {

YcsbWorkload::YcsbWorkload(YcsbConfig config) : config_(config) {
  if (config_.zipf_theta > 0) {
    zipf_ = std::make_unique<ZipfianGenerator>(config_.num_records, config_.zipf_theta);
  }
}

void YcsbWorkload::Load(KvState* state) const {
  state->Reserve(config_.num_records);
  for (uint64_t k = 0; k < config_.num_records; ++k) state->Put(k, k + 1);
}

uint64_t YcsbWorkload::NextKey(Rng* rng) const {
  if (zipf_) return zipf_->Next(rng);
  return rng->NextBounded(config_.num_records);
}

Transaction YcsbWorkload::Generate(Rng* rng) const {
  Transaction txn;
  txn.payload_bytes = config_.payload_bytes;
  txn.ops.reserve(config_.ops_per_txn);
  for (uint32_t i = 0; i < config_.ops_per_txn; ++i) {
    TxnOp op;
    op.key = NextKey(rng);
    if (rng->NextDouble() < config_.write_fraction) {
      op.kind = TxnOp::Kind::kWrite;
      op.value = rng->NextU64();
    } else {
      op.kind = TxnOp::Kind::kRead;
    }
    txn.ops.push_back(op);
  }
  return txn;
}

}  // namespace hotstuff1

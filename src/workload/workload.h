// Workload interface: generates client transactions against the replicated
// KV state machine.

#ifndef HOTSTUFF1_WORKLOAD_WORKLOAD_H_
#define HOTSTUFF1_WORKLOAD_WORKLOAD_H_

#include "common/random.h"
#include "ledger/block.h"
#include "ledger/kv_state.h"

namespace hotstuff1 {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* Name() const = 0;

  /// Total records in the logical database (key-space size).
  virtual uint64_t RecordCount() const = 0;

  /// Optionally pre-materializes records. Absent keys read as zero, so
  /// loading is semantically optional; tests use it to check read paths.
  virtual void Load(KvState* state) const = 0;

  /// Generates one transaction (ops + payload size); id and submit_time are
  /// assigned by the caller.
  virtual Transaction Generate(Rng* rng) const = 0;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_WORKLOAD_WORKLOAD_H_

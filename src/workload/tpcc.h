// Simplified TPC-C OLTP workload (§7): NewOrder and Payment transactions
// over warehouse / district / customer / stock tables encoded into the
// shared 64-bit keyspace. Sized to the paper's 260k-record database:
// 20 warehouses x (1 + 10 districts + 3000 customers + 10000 stock items)
// = 260,220 records.

#ifndef HOTSTUFF1_WORKLOAD_TPCC_H_
#define HOTSTUFF1_WORKLOAD_TPCC_H_

#include "workload/workload.h"

namespace hotstuff1 {

struct TpccConfig {
  uint32_t num_warehouses = 20;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 300;  // 3000 per warehouse
  uint32_t stock_per_warehouse = 10'000;
  /// Transaction mix: probability of NewOrder (rest: Payment).
  double new_order_fraction = 0.5;
  uint32_t min_order_lines = 5;
  uint32_t max_order_lines = 15;
};

/// Table tags for the key encoding (top byte of the key).
enum class TpccTable : uint8_t {
  kWarehouse = 1,
  kDistrict = 2,
  kCustomer = 3,
  kStock = 4,
  kOrder = 5,      // insert-only rows created by NewOrder
  kOrderLine = 6,  // insert-only rows created by NewOrder
};

/// Packs (table, warehouse, district, index) into a 64-bit key.
uint64_t TpccKey(TpccTable table, uint32_t w, uint32_t d, uint64_t index);

class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(TpccConfig config = {});

  const char* Name() const override { return "TPC-C"; }
  uint64_t RecordCount() const override;
  void Load(KvState* state) const override;
  Transaction Generate(Rng* rng) const override;

  const TpccConfig& config() const { return config_; }

 private:
  Transaction NewOrder(Rng* rng) const;
  Transaction Payment(Rng* rng) const;

  TpccConfig config_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_WORKLOAD_TPCC_H_

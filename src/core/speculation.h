// The speculation decision engine: enforces the Prefix Speculation rule
// (Def. 3.1) and the No-Gap rule (Def. 3.2), performs conflict rollback
// (Def. 4.7), and executes carry-block units (§6.1) atomically with their
// first-slot block.
//
// The rules are test hooks: disabling them (policy flags) reproduces the
// Appendix A client-safety violations, which the property tests assert.

#ifndef HOTSTUFF1_CORE_SPECULATION_H_
#define HOTSTUFF1_CORE_SPECULATION_H_

#include <vector>

#include "ledger/block_store.h"
#include "ledger/ledger.h"

namespace hotstuff1 {

struct SpeculationPolicy {
  bool enabled = true;
  bool prefix_rule = true;  // Def. 3.1
  bool no_gap_rule = true;  // Def. 3.2
};

struct SpeculatedBlock {
  BlockPtr block;
  std::vector<uint64_t> results;
};

struct SpeculationOutcome {
  bool speculated = false;
  size_t blocks_rolled_back = 0;
  /// Blocks executed, in chain order (a carried block precedes its
  /// first-slot block).
  std::vector<SpeculatedBlock> executed;
};

/// Attempts to speculatively execute `certified` (the block whose
/// certificate was just learned). `no_gap_satisfied` is the caller-computed,
/// protocol-specific adjacency condition (basic: w == v; streamlined:
/// w == v-1; slotted: Fig. 7 line 17).
SpeculationOutcome TrySpeculate(Ledger* ledger, const BlockStore& store,
                                const BlockPtr& certified, bool no_gap_satisfied,
                                const SpeculationPolicy& policy);

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CORE_SPECULATION_H_

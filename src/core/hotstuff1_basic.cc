#include "core/hotstuff1_basic.h"

#include "common/logging.h"
#include "sim/message_pool.h"
#include "runtime/oracle.h"

namespace hotstuff1 {

HotStuff1BasicReplica::HotStuff1BasicReplica(ReplicaId id,
                                             const ConsensusConfig& config,
                                             sim::Network* net,
                                             const KeyRegistry* registry,
                                             TransactionSource* source,
                                             ResponseSink* sink,
                                             KvState initial_state)
    : ReplicaBase(id, config, net, registry, source, sink, std::move(initial_state)),
      high_prepare_(Certificate::Genesis()) {
  policy_.enabled = config.speculation_enabled;
  policy_.prefix_rule = config.enforce_prefix_rule;
  policy_.no_gap_rule = config.enforce_no_gap_rule;
}

void HotStuff1BasicReplica::UpdateHighPrepare(const Certificate& cert) {
  if (high_prepare_.block_id() < cert.block_id()) high_prepare_ = cert;
}

void HotStuff1BasicReplica::OnEnterView(uint64_t v) {
  while (!state_.empty() && state_.begin()->first < v) state_.erase(state_.begin());
  while (!pending_proposals_.empty() && pending_proposals_.begin()->first < v) {
    pending_proposals_.erase(pending_proposals_.begin());
  }
  while (!pending_prepares_.empty() && pending_prepares_.begin()->first < v) {
    pending_prepares_.erase(pending_prepares_.begin());
  }

  if (v == 1 && ActiveInView(1)) {
    // Bootstrap: no view 0 exists; hand L_1 a NewView over genesis.
    auto nv = sim::MakeMessage<NewViewMsg>(id_);
    nv->target_view = 1;
    nv->high_cert = high_prepare_;
    nv->has_share = false;
    SendTo(LeaderOf(1), std::move(nv));
  }

  auto pending = pending_proposals_.find(v);
  if (pending != pending_proposals_.end()) {
    auto msg = pending->second;
    pending_proposals_.erase(pending);
    HandlePropose(*msg);
  }

  if (IsLeaderOf(v)) {
    simulator()->After(3 * config_.delta, [this, v]() {
      if (crashed_ || view() != v) return;
      state_[v].share_timer_passed = true;
      MaybePropose(v);
    });
    MaybePropose(v);
  }
}

void HotStuff1BasicReplica::OnViewTimeout(uint64_t v) {
  // Standby replicas advance their view clock but hold no NewView power.
  if (ActiveInView(v + 1)) {
    auto nv = sim::MakeMessage<NewViewMsg>(id_);
    nv->target_view = v + 1;
    nv->high_cert = high_prepare_;
    nv->has_share = false;
    SendTo(LeaderOf(v + 1), std::move(nv));
  }
  pacemaker_.CompletedView(v + 1);
}

void HotStuff1BasicReplica::OnProtocolMessage(const ConsensusMessage& msg) {
  switch (msg.type) {
    case ConsensusMessage::Type::kPropose:
      HandlePropose(static_cast<const ProposeMsg&>(msg));
      break;
    case ConsensusMessage::Type::kVote:
      HandleVote(static_cast<const VoteMsg&>(msg));
      break;
    case ConsensusMessage::Type::kPrepare:
      HandlePrepare(static_cast<const PrepareMsg&>(msg));
      break;
    case ConsensusMessage::Type::kNewView:
      HandleNewView(static_cast<const NewViewMsg&>(msg));
      break;
    default:
      break;
  }
}

void HotStuff1BasicReplica::HandleNewView(const NewViewMsg& msg) {
  const uint64_t tv = msg.target_view;
  if (LeaderOf(tv) != id_ || tv < view()) return;
  LeaderViewState& st = state_[tv];
  if (st.proposed) return;
  if (!CheckCert(msg.high_cert)) return;
  UpdateHighPrepare(msg.high_cert);
  // Readiness counts the previous view's committee (see ChainedReplica).
  if (IsMember(tv == 0 ? 0 : tv - 1, msg.sender)) st.senders.Set(msg.sender);

  // Commit shares over P(v-1) aggregate into C(v-1) (Fig. 2 lines 11-12).
  if (msg.has_share && msg.share_kind == CertKind::kCommit &&
      msg.voted_id.view + 1 == tv && IsMember(msg.voted_id.view, msg.sender)) {
    if (CheckVote(CertKind::kCommit, msg.voted_id.view, msg.voted_id,
                  msg.voted_hash, msg.share)) {
      auto [it, inserted] = st.commit_accs.try_emplace(
          msg.voted_hash, CertKind::kCommit, msg.voted_id.view, msg.voted_id,
          msg.voted_hash, QuorumOf(msg.voted_id.view));
      (void)inserted;
      if (it->second.Add(msg.share)) {
        Certificate commit_cert = it->second.Build();
        if (oracle_) oracle_->OnCertificateFormed(id_, commit_cert);
        if (!high_commit_ || high_commit_->block_id() < commit_cert.block_id()) {
          high_commit_ = std::move(commit_cert);
        }
      }
    }
  }
  MaybePropose(tv);
}

void HotStuff1BasicReplica::MaybePropose(uint64_t v) {
  if (crashed_ || view() != v || !IsLeaderOf(v)) return;
  LeaderViewState& st = state_[v];
  if (st.proposed) return;
  const uint64_t prev = v == 0 ? 0 : v - 1;  // senders finish view v-1
  if (st.senders.Count() < QuorumOf(prev)) return;
  // Fig. 2 line 8: wait for P(v-1) or n NewView messages or ShareTimer(v).
  const bool have_prev = high_prepare_.block_id().view + 1 == v;
  if (!(have_prev || st.senders.Count() >= CommitteeNOf(prev) ||
        st.share_timer_passed)) {
    return;
  }
  Propose(v);
}

void HotStuff1BasicReplica::Propose(uint64_t v) {
  LeaderViewState& st = state_[v];
  st.proposed = true;

  if (adversary_.fault == Fault::kSlowLeader) {
    const SimTime when = pacemaker_.entered_at() + (pacemaker_.tau() * 3) / 4;
    simulator()->At(when, [this, v]() {
      if (crashed_ || view() != v) return;
      LeaderViewState& s = state_[v];
      s.proposed = true;
      const BlockPtr parent = store_.GetOrNull(high_prepare_.block_hash());
      if (!parent) return;
      ChargeCpu(config_.costs.propose_base_us);
      auto block = std::make_shared<Block>(BlockId{v, 1}, parent->hash(),
                                           parent->height() + 1, id_, DrawBatch());
      store_.Put(block);
      RecordJustify(block->hash(), high_prepare_);
      ++metrics_.blocks_proposed;
      auto msg = sim::MakeMessage<ProposeMsg>(id_);
      msg->block = std::move(block);
      msg->justify = high_prepare_;
      msg->commit_cert = high_commit_;
      Broadcast(std::move(msg));
    });
    return;
  }

  const BlockPtr parent = store_.GetOrNull(high_prepare_.block_hash());
  if (!parent) {
    st.proposed = false;
    EnsureBlock(high_prepare_.block_hash(), LeaderOf(high_prepare_.block_id().view));
    return;
  }
  ChargeCpu(config_.costs.propose_base_us);
  auto block = std::make_shared<Block>(BlockId{v, 1}, parent->hash(),
                                       parent->height() + 1, id_, DrawBatch());
  store_.Put(block);
  RecordJustify(block->hash(), high_prepare_);
  ++metrics_.blocks_proposed;
  ++metrics_.slots_proposed;

  auto msg = sim::MakeMessage<ProposeMsg>(id_);
  msg->block = std::move(block);
  msg->justify = high_prepare_;
  msg->commit_cert = high_commit_;
  Broadcast(std::move(msg));
}

void HotStuff1BasicReplica::HandlePropose(const ProposeMsg& msg) {
  ++metrics_.proposals_received;
  if (!msg.block) return;
  const uint64_t v = msg.block->view();
  if (msg.sender != LeaderOf(v)) return;
  if (!CheckCert(msg.justify)) return;
  if (msg.block->parent_hash() != msg.justify.block_hash()) return;
  if (!EnsureBlock(msg.justify.block_hash(), msg.sender)) {
    pending_proposals_[std::max<uint64_t>(v, view())] =
        sim::MakeMessage<ProposeMsg>(msg);
    return;
  }
  const BlockPtr parent = store_.GetOrNull(msg.justify.block_hash());
  if (msg.block->height() != parent->height() + 1) return;

  store_.Put(msg.block);
  RecordJustify(msg.block->hash(), msg.justify);
  UpdateHighPrepare(msg.justify);

  // Traditional commit rule (Def. 4.5 / Fig. 2 line 17): the proposal
  // carries C(x); execute everything up to and including B_x.
  if (msg.commit_cert && CheckCert(*msg.commit_cert)) {
    const BlockPtr target = store_.GetOrNull(msg.commit_cert->block_hash());
    if (target) TryCommit(target);
  }

  if (v != view()) {
    if (v > view()) pending_proposals_[v] = sim::MakeMessage<ProposeMsg>(msg);
    return;
  }
  if (voted_view_ >= v) return;
  if (v <= exited_view_) return;  // exitView(): no voting after timeout

  if (ActiveInView(v)) {
    const bool safe = msg.justify.block_id() == high_prepare_.block_id() &&
                      msg.justify.block_hash() == high_prepare_.block_hash();
    const bool collude = adversary_.collude && adversary_.faulty &&
                         (*adversary_.faulty)[msg.sender];
    if (!safe && !collude) return;

    voted_view_ = v;
    ++metrics_.votes_sent;
    auto vote = sim::MakeMessage<VoteMsg>(id_);
    vote->vote_kind = CertKind::kPrepare;
    vote->context_view = v;
    vote->block_id = msg.block->id();
    vote->block_hash = msg.block->hash();
    vote->share = SignVote(CertKind::kPrepare, v, msg.block->id(), msg.block->hash());
    SendTo(LeaderOf(v), std::move(vote));
  }

  // A Prepare may have raced ahead of the proposal; replay it.
  auto it = pending_prepares_.find(v);
  if (it != pending_prepares_.end()) {
    auto prep = it->second;
    pending_prepares_.erase(it);
    HandlePrepare(*prep);
  }
}

void HotStuff1BasicReplica::HandleVote(const VoteMsg& msg) {
  if (msg.vote_kind != CertKind::kPrepare) return;
  const uint64_t v = msg.block_id.view;
  if (LeaderOf(v) != id_ || v != view()) return;
  if (v <= exited_view_) return;  // no late certificate formation
  if (!IsMember(v, msg.sender)) return;  // standby votes carry no weight
  LeaderViewState& st = state_[v];
  if (st.prepared) return;
  if (!CheckVote(CertKind::kPrepare, v, msg.block_id, msg.block_hash, msg.share)) {
    return;
  }
  if (!st.vote_acc) {
    st.vote_acc.emplace(CertKind::kPrepare, v, msg.block_id, msg.block_hash,
                        QuorumOf(v));
  }
  if (st.vote_acc->block_hash() != msg.block_hash) return;
  if (st.vote_acc->Add(msg.share)) {
    st.prepared = true;
    Certificate prepare = st.vote_acc->Build();
    if (oracle_) oracle_->OnCertificateFormed(id_, prepare);
    UpdateHighPrepare(prepare);
    auto prep = sim::MakeMessage<PrepareMsg>(id_);
    prep->cert = std::move(prepare);
    Broadcast(std::move(prep));
  }
}

void HotStuff1BasicReplica::HandlePrepare(const PrepareMsg& msg) {
  const Certificate& cert = msg.cert;
  const uint64_t v = cert.block_id().view;
  if (msg.sender != LeaderOf(v)) return;
  if (!CheckCert(cert)) return;

  const BlockPtr certified = store_.GetOrNull(cert.block_hash());
  if (!certified) {
    // Prepare raced ahead of its proposal; buffer until the block arrives.
    if (v >= view()) pending_prepares_[v] = sim::MakeMessage<PrepareMsg>(msg);
    return;
  }
  UpdateHighPrepare(cert);

  // No-Gap rule for the basic variant (§4.1 footnote): speculation is safe
  // only when the certificate is formed in the replica's current view for
  // the current view's proposal.
  const bool no_gap = v == view();
  if (config_.enforce_no_gap_rule && v != view() && v + 1 != view()) {
    // A stale Prepare from an older view carries no other duty for us.
    return;
  }

  // Prefix commit rule (Def. 4.6): P(v) extends P(v-1).
  const Certificate* justify = JustifyOf(certified->hash());
  if (justify && justify->block_id().view + 1 == v) {
    const BlockPtr target = store_.GetOrNull(justify->block_hash());
    if (target) TryCommit(target);
  }

  const size_t rollbacks_before = ledger_.rollback_events();
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, certified, no_gap, policy_);
  if (ledger_.rollback_events() != rollbacks_before) {
    ++metrics_.rollback_events;
    metrics_.blocks_rolled_back += out.blocks_rolled_back;
    if (oracle_) {
      oracle_->OnRollback(id_, out.blocks_rolled_back, certified->id().view);
    }
  }
  for (const SpeculatedBlock& sb : out.executed) {
    ++metrics_.blocks_speculated;
    ChargeCpu(config_.costs.ExecCost(sb.block->txns().size()));
    RespondToClients(sb.block, sb.results, /*speculative=*/true);
  }

  // Vote to commit (Fig. 2 lines 28-29) and move to the next view. Standby
  // replicas advance their view clock without commit power.
  if (v == view() && v > exited_view_ && commit_voted_view_ < v) {
    commit_voted_view_ = v;
    if (ActiveInView(v)) {
      auto nv = sim::MakeMessage<NewViewMsg>(id_);
      nv->target_view = v + 1;
      nv->high_cert = high_prepare_;
      nv->has_share = true;
      nv->share_kind = CertKind::kCommit;
      nv->voted_id = certified->id();
      nv->voted_hash = certified->hash();
      nv->share = SignVote(CertKind::kCommit, v, certified->id(), certified->hash());
      SendTo(LeaderOf(v + 1), std::move(nv));
    }
    ExitToNextView(v);
  }
}

void HotStuff1BasicReplica::ExitToNextView(uint64_t v) {
  pacemaker_.CompletedView(v + 1);
}

}  // namespace hotstuff1

#include "core/hotstuff1_slotted.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/message_pool.h"
#include "runtime/oracle.h"

namespace hotstuff1 {

HotStuff1SlottedReplica::HotStuff1SlottedReplica(
    ReplicaId id, const ConsensusConfig& config, sim::Network* net,
    const KeyRegistry* registry, TransactionSource* source, ResponseSink* sink,
    KvState initial_state)
    : ReplicaBase(id, config, net, registry, source, sink, std::move(initial_state)),
      high_cert_(Certificate::Genesis()),
      high_voted_hash_(Block::Genesis()->hash()),
      distrusted_(config.n, false) {
  policy_.enabled = config.speculation_enabled;
  policy_.prefix_rule = config.enforce_prefix_rule;
  policy_.no_gap_rule = config.enforce_no_gap_rule;
}

bool HotStuff1SlottedReplica::FormedInView(const Certificate& cert, uint64_t v) {
  if (cert.kind() == CertKind::kNewSlot) return cert.view() == v;
  if (cert.kind() == CertKind::kNewView) return cert.formed_view() == v;
  return false;
}

void HotStuff1SlottedReplica::UpdateHighCert(const Certificate& cert) {
  MarkCertified(cert);
  if (high_cert_.block_id() < cert.block_id()) high_cert_ = cert;
}

void HotStuff1SlottedReplica::MarkCertified(const Certificate& cert) {
  if (!cert.IsGenesis()) certified_.insert(cert.block_hash());
}

void HotStuff1SlottedReplica::RememberChild(const BlockPtr& block) {
  if (block->IsGenesis()) return;
  const auto range = children_.equal_range(block->parent_hash());
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second->hash() == block->hash()) return;
  }
  children_.emplace(block->parent_hash(), block);
}

BlockPtr HotStuff1SlottedReplica::LowestUncertifiedChild(
    const Hash256& parent_hash) const {
  // Def. 6.3 pins down the carry block exactly: for a New-Slot certificate
  // P(s, v) it is B_{s+1, v}; for a New-View certificate with annotation fv
  // it is B_{1, fv}. Both are children of the certified block.
  BlockId expected;
  if (high_cert_.kind() == CertKind::kNewSlot) {
    expected = BlockId{high_cert_.view(), high_cert_.slot() + 1};
  } else if (high_cert_.kind() == CertKind::kNewView) {
    expected = BlockId{high_cert_.formed_view(), 1};
  } else {
    return nullptr;
  }
  const auto range = children_.equal_range(parent_hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (certified_.count(it->second->hash())) continue;
    if (it->second->id() == expected) return it->second;
  }
  return nullptr;
}

void HotStuff1SlottedReplica::OnEnterView(uint64_t v) {
  next_slot_ = 1;
  slot_view_ = v;
  while (!lstate_.empty() && lstate_.begin()->first < v) lstate_.erase(lstate_.begin());
  while (!pending_proposals_.empty() && pending_proposals_.begin()->first < v) {
    pending_proposals_.erase(pending_proposals_.begin());
  }

  if (v == 1 && ActiveInView(1)) {
    // Bootstrap: there is no view 0 to time out of, so every replica sends
    // L_1 an initial NewView voting for the hard-coded genesis (§4.1 note).
    auto nv = sim::MakeMessage<NewViewMsg>(id_);
    nv->target_view = 1;
    nv->high_cert = high_cert_;
    nv->has_share = true;
    nv->share_kind = CertKind::kNewView;
    nv->voted_id = high_voted_id_;
    nv->voted_hash = high_voted_hash_;
    nv->share = SignVote(CertKind::kNewView, 1, high_voted_id_, high_voted_hash_);
    SendTo(LeaderOf(1), std::move(nv));
  }

  auto pending = pending_proposals_.find(v);
  if (pending != pending_proposals_.end()) {
    auto msgs = std::move(pending->second);
    pending_proposals_.erase(pending);
    for (const auto& m : msgs) HandlePropose(*m);
  }

  if (IsLeaderOf(v)) {
    simulator()->After(3 * config_.delta, [this, v]() {
      if (crashed_ || view() != v) return;
      lstate_[v].share_timer_passed = true;
      MaybeProposeFirst(v);
    });
    MaybeProposeFirst(v);
  }
}

void HotStuff1SlottedReplica::OnViewTimeout(uint64_t v) {
  // The normal end of a slotted view (§6.1 View-change): hand the next
  // leader our highest certificate and a New-View share over our highest
  // voted block H_h (Fig. 7 lines 27-31). Standby replicas advance their
  // view clock but hold no NewView power.
  if (ActiveInView(v + 1)) {
    auto nv = sim::MakeMessage<NewViewMsg>(id_);
    nv->target_view = v + 1;
    nv->high_cert = high_cert_;
    nv->has_share = true;
    nv->share_kind = CertKind::kNewView;
    nv->voted_id = high_voted_id_;
    nv->voted_hash = high_voted_hash_;
    nv->share = SignVote(CertKind::kNewView, v + 1, high_voted_id_, high_voted_hash_);
    SendTo(LeaderOf(v + 1), std::move(nv));
  }
  pacemaker_.CompletedView(v + 1);
}

void HotStuff1SlottedReplica::OnProtocolMessage(const ConsensusMessage& msg) {
  switch (msg.type) {
    case ConsensusMessage::Type::kPropose:
      HandlePropose(static_cast<const ProposeMsg&>(msg));
      break;
    case ConsensusMessage::Type::kNewView:
      HandleNewView(static_cast<const NewViewMsg&>(msg));
      break;
    case ConsensusMessage::Type::kVote:
      HandleNewSlotVote(static_cast<const VoteMsg&>(msg));
      break;
    case ConsensusMessage::Type::kReject:
      HandleReject(static_cast<const RejectMsg&>(msg));
      break;
    default:
      break;
  }
}

// --- leader side --------------------------------------------------------------

void HotStuff1SlottedReplica::HandleNewView(const NewViewMsg& msg) {
  const uint64_t tv = msg.target_view;
  if (LeaderOf(tv) != id_ || tv < view()) return;
  LeaderState& st = lstate_[tv];
  if (!CheckCert(msg.high_cert)) return;
  UpdateHighCert(msg.high_cert);
  // NewView senders/shares are replicas finishing view tv-1, so membership
  // and quorum arithmetic follow tv-1's committee (outgoing members at an
  // epoch boundary hand over to the incoming leader).
  const uint64_t prev = tv == 0 ? 0 : tv - 1;
  if (IsMember(prev, msg.sender)) st.nv_senders.Set(msg.sender);

  if (msg.has_share && msg.share_kind == CertKind::kNewView &&
      IsMember(prev, msg.sender)) {
    if (CheckVote(CertKind::kNewView, tv, msg.voted_id, msg.voted_hash, msg.share)) {
      auto [it, inserted] = st.nv_accs.try_emplace(
          msg.voted_hash, CertKind::kNewView, tv, msg.voted_id, msg.voted_hash,
          QuorumOf(prev));
      (void)inserted;
      VoteInfo& vi = st.nv_votes[msg.voted_hash];
      vi.id = msg.voted_id;
      if (it->second.Add(msg.share)) {
        ++vi.count;
        if (!st.first_proposed && !msg.voted_hash.IsZero()) {
          st.formed_nv = it->second.Build(/*formed_view=*/tv);
          if (oracle_) oracle_->OnCertificateFormed(id_, *st.formed_nv);
          UpdateHighCert(*st.formed_nv);
        }
      } else {
        ++vi.count;
      }
    }
  }

  // Trusted previous-leader fast path (§6.3): a NewView from L_{tv-1}
  // containing a certificate formed in view tv-1.
  if (msg.sender == LeaderOf(tv - 1) && FormedInView(msg.high_cert, tv - 1)) {
    st.prev_leader_cert = msg.high_cert;
  }
  MaybeProposeFirst(tv);
}

void HotStuff1SlottedReplica::MaybeProposeFirst(uint64_t v) {
  if (crashed_ || view() != v || v <= exited_view_ || !IsLeaderOf(v)) return;
  LeaderState& st = lstate_[v];
  if (st.first_proposed) return;

  const bool byzantine_suppress = adversary_.fault == Fault::kTailFork ||
                                  adversary_.Equivocates(Now());

  // Trusted fast path: propose at network speed behind a correct previous
  // leader (§6.3).
  if (config_.trusted_leader_enabled && !byzantine_suppress &&
      st.prev_leader_cert && !distrusted_[LeaderOf(v - 1)]) {
    if (ProposeFirstSlot(v)) return;
  }

  // Condition (1): formed a New-View certificate.
  if (st.formed_nv && !byzantine_suppress) {
    if (ProposeFirstSlot(v)) return;
  }

  // All the readiness arithmetic counts view v-1's committee (the NewView
  // senders), not the allocated pool.
  const uint64_t prev = v == 0 ? 0 : v - 1;
  const uint32_t prev_n = CommitteeNOf(prev);
  const uint32_t prev_f = CommitteeFOf(prev);
  if (st.nv_senders.Count() < QuorumOf(prev)) return;

  // Condition (2): heard from everyone. Condition (3): ShareTimer passed.
  bool ready = st.nv_senders.Count() >= prev_n || st.share_timer_passed;

  // Condition (4): with k replicas unheard (1 <= k <= f), fewer than f+1-k
  // votes exist for any slot above our highest certificate, so no higher
  // certificate can exist.
  if (!ready) {
    const uint32_t k = prev_n - st.nv_senders.Count();
    if (k >= 1 && k <= prev_f) {
      uint32_t max_higher = 0;
      for (const auto& [hash, vi] : st.nv_votes) {
        (void)hash;
        if (high_cert_.block_id() < vi.id) max_higher = std::max(max_higher, vi.count);
      }
      if (max_higher < prev_f + 1 - k) ready = true;
    }
  }
  if (ready) ProposeFirstSlot(v);
}

bool HotStuff1SlottedReplica::ProposeFirstSlot(uint64_t v) {
  LeaderState& st = lstate_[v];

  // Way (i): extend our own New-View certificate; no carry needed (Case 1).
  const bool byzantine_suppress = adversary_.fault == Fault::kTailFork ||
                                  adversary_.Equivocates(Now());
  if (st.formed_nv && !byzantine_suppress &&
      !(st.formed_nv->block_id() < high_cert_.block_id())) {
    const BlockPtr parent = store_.GetOrNull(st.formed_nv->block_hash());
    if (!parent) {
      EnsureBlock(st.formed_nv->block_hash(), LeaderOf(st.formed_nv->view()));
      return false;
    }
    st.first_proposed = true;
    SendProposal(v, 1, *st.formed_nv, parent, nullptr);
    return true;
  }

  // Way (ii): extend the highest certificate and carry the lowest
  // uncertified block extending it (Cases 2 and 3). Genesis needs no carry.
  const BlockPtr certified = store_.GetOrNull(high_cert_.block_hash());
  if (!certified) {
    EnsureBlock(high_cert_.block_hash(), LeaderOf(high_cert_.view()));
    return false;
  }
  BlockPtr carry = LowestUncertifiedChild(high_cert_.block_hash());
  if (!carry && !high_cert_.IsGenesis()) {
    // No uncertified extension known. If nobody voted above our certificate
    // there is genuinely nothing to carry, which only Case 1 could prove;
    // wait for more NewView messages (or the timer) instead of proposing an
    // unprovable first slot.
    return false;
  }
  st.first_proposed = true;
  if (carry) {
    SendProposal(v, 1, high_cert_, carry, carry);
  } else {
    SendProposal(v, 1, high_cert_, certified, nullptr);
  }
  return true;
}

void HotStuff1SlottedReplica::SendProposal(uint64_t v, uint32_t slot,
                                           const Certificate& justify,
                                           BlockPtr parent, BlockPtr carry) {
  LeaderState& st = lstate_[v];
  ChargeCpu(config_.costs.propose_base_us);
  auto block = std::make_shared<Block>(
      BlockId{v, slot}, parent->hash(), parent->height() + 1, id_, DrawBatch(),
      carry ? carry->hash() : Hash256{});
  store_.Put(block);
  RememberChild(block);
  RecordJustify(block->hash(), justify);
  if (carry) RecordJustify(carry->hash(), justify);
  ++metrics_.slots_proposed;
  if (slot == 1) ++metrics_.blocks_proposed;
  st.slots_proposed = slot;
  st.slot_acc.emplace(CertKind::kNewSlot, v, block->id(), block->hash(),
                      QuorumOf(v));

  auto msg = sim::MakeMessage<ProposeMsg>(id_);
  msg->block = std::move(block);
  msg->justify = justify;
  msg->carry = std::move(carry);
  Broadcast(std::move(msg));
}

void HotStuff1SlottedReplica::HandleNewSlotVote(const VoteMsg& msg) {
  if (msg.vote_kind != CertKind::kNewSlot) return;
  const uint64_t v = msg.block_id.view;
  if (LeaderOf(v) != id_ || v != view()) return;
  if (!IsMember(v, msg.sender)) return;  // standby votes carry no weight
  // After timing out of v, the leader must not form further view-v
  // certificates: its NewView message already fixed its highest
  // certificate, and a later one would contradict it (and could be
  // tail-forked without any replica noticing).
  if (v <= exited_view_) return;
  LeaderState& st = lstate_[v];
  if (!st.slot_acc || st.slot_acc->block_hash() != msg.block_hash) return;
  if (!CheckCert(msg.high_cert)) return;
  UpdateHighCert(msg.high_cert);
  if (!CheckVote(CertKind::kNewSlot, v, msg.block_id, msg.block_hash, msg.share)) {
    return;
  }
  if (st.slot_acc->Add(msg.share)) {
    Certificate formed = st.slot_acc->Build();
    if (oracle_) oracle_->OnCertificateFormed(id_, formed);
    UpdateHighCert(formed);
    ProposeNextSlot(v, formed);
  }
}

void HotStuff1SlottedReplica::ProposeNextSlot(uint64_t v, const Certificate& formed) {
  if (crashed_ || view() != v) return;
  LeaderState& st = lstate_[v];
  if (config_.max_slots_per_view > 0 &&
      st.slots_proposed >= config_.max_slots_per_view) {
    return;
  }
  const BlockPtr parent = store_.GetOrNull(formed.block_hash());
  if (!parent) return;
  SendProposal(v, formed.slot() + 1, formed, parent, nullptr);
}

void HotStuff1SlottedReplica::HandleReject(const RejectMsg& msg) {
  if (LeaderOf(msg.view) != id_) return;
  ++metrics_.rejects_sent;  // counted on the leader as "rejections observed"
  if (!CheckCert(msg.high_cert)) return;
  // §6.3: if the rejecting replica holds a certificate formed in view v-1
  // that is higher than the one the (initially trusted) previous leader sent
  // us, the previous leader concealed it: distrust it from now on.
  auto it = lstate_.find(msg.view);
  if (it == lstate_.end() || !it->second.prev_leader_cert) return;
  if (FormedInView(msg.high_cert, msg.view - 1) &&
      it->second.prev_leader_cert->block_id() < msg.high_cert.block_id()) {
    distrusted_[LeaderOf(msg.view - 1)] = true;
  }
  UpdateHighCert(msg.high_cert);
}

// --- backup side ---------------------------------------------------------------

bool HotStuff1SlottedReplica::SafeSlot(const ProposeMsg& msg,
                                       const BlockPtr& carry) const {
  const uint32_t s = msg.block->slot();
  const uint64_t v = msg.block->view();
  const Certificate& p = msg.justify;
  if (s == 1 && p.IsGenesis()) return true;  // hard-coded bootstrap
  if (s == 1 && p.kind() == CertKind::kNewView && p.formed_view() == v) {
    return true;  // Case 1
  }
  if (s == 1 && p.kind() == CertKind::kNewView && p.formed_view() < v && carry &&
      carry->slot() == 1 && carry->view() == p.formed_view()) {
    return true;  // Case 2
  }
  if (s == 1 && p.kind() == CertKind::kNewSlot && carry &&
      carry->slot() == p.slot() + 1 && carry->view() == p.view()) {
    return true;  // Case 3
  }
  if (s > 1 && p.kind() == CertKind::kNewSlot && p.slot() == s - 1 && p.view() == v) {
    return true;  // Case 4
  }
  return false;
}

void HotStuff1SlottedReplica::ApplyCommitRule(const Certificate& justify) {
  // Prefix commit over the two-dimensional chain (§6.1 Commit Rule): when a
  // certificate P(sw, w) is learned and the certified block's own justify J
  // is the immediately preceding certificate -- same view, previous slot
  // (case 1) or, for first slots, any certificate over a view w-1 block
  // (case 2) -- commit J's block and its ancestors.
  if (justify.IsGenesis()) return;
  const BlockPtr certified = store_.GetOrNull(justify.block_hash());
  if (!certified) return;
  const Certificate* j = JustifyOf(certified->hash());
  if (j == nullptr || j->IsGenesis()) return;
  const uint32_t sw = justify.block_id().slot;
  const uint64_t w = justify.block_id().view;
  bool adjacent = false;
  if (sw > 1) {
    adjacent = j->block_id().view == w && j->block_id().slot == sw - 1;
  } else {
    adjacent = j->block_id().view + 1 == w;
  }
  if (!adjacent) return;
  const BlockPtr target = store_.GetOrNull(j->block_hash());
  if (target) TryCommit(target);
}

void HotStuff1SlottedReplica::ApplySpeculation(const Certificate& justify,
                                               const BlockId& proposal_id) {
  if (justify.IsGenesis()) return;
  const BlockPtr certified = store_.GetOrNull(justify.block_hash());
  if (!certified) return;
  // No-Gap rule, slotted form (Fig. 7 line 17): the certified block is from
  // the immediately preceding slot, or the last certificate of the
  // immediately preceding view.
  const uint32_t s = proposal_id.slot;
  const uint64_t v = proposal_id.view;
  const bool no_gap =
      (s == justify.block_id().slot + 1 && v == justify.block_id().view) ||
      (s == 1 && v == justify.block_id().view + 1);
  const size_t rollbacks_before = ledger_.rollback_events();
  SpeculationOutcome out = TrySpeculate(&ledger_, store_, certified, no_gap, policy_);
  if (ledger_.rollback_events() != rollbacks_before) {
    ++metrics_.rollback_events;
    metrics_.blocks_rolled_back += out.blocks_rolled_back;
    if (oracle_) {
      oracle_->OnRollback(id_, out.blocks_rolled_back, certified->id().view);
    }
  }
  for (const SpeculatedBlock& sb : out.executed) {
    ++metrics_.blocks_speculated;
    ChargeCpu(config_.costs.ExecCost(sb.block->txns().size()));
    RespondToClients(sb.block, sb.results, /*speculative=*/true);
  }
}

void HotStuff1SlottedReplica::HandlePropose(const ProposeMsg& msg) {
  ++metrics_.proposals_received;
  if (!msg.block) return;
  const uint64_t v = msg.block->view();
  const uint32_t s = msg.block->slot();
  if (msg.sender != LeaderOf(v)) return;
  if (!CheckCert(msg.justify)) return;

  // Resolve the carry block (attached, or already known).
  BlockPtr carry;
  if (msg.block->has_carry()) {
    carry = msg.carry ? msg.carry : store_.GetOrNull(msg.block->carry_hash());
    if (!carry || carry->hash() != msg.block->carry_hash()) return;
    // Chain shape for way (ii): block -> carry -> justified block.
    if (msg.block->parent_hash() != carry->hash()) return;
    if (carry->parent_hash() != msg.justify.block_hash()) return;
    store_.Put(carry);
    RememberChild(carry);
    RecordJustify(carry->hash(), msg.justify);
  } else {
    if (msg.block->parent_hash() != msg.justify.block_hash()) return;
  }
  const BlockPtr parent = store_.GetOrNull(msg.block->parent_hash());
  if (!parent) {
    EnsureBlock(msg.block->parent_hash(), msg.sender);
    pending_proposals_[std::max<uint64_t>(v, view())].push_back(
        sim::MakeMessage<ProposeMsg>(msg));
    return;
  }
  if (msg.block->height() != parent->height() + 1) return;

  store_.Put(msg.block);
  RememberChild(msg.block);
  RecordJustify(msg.block->hash(), msg.justify);
  UpdateHighCert(msg.justify);

  ApplyCommitRule(msg.justify);
  ApplySpeculation(msg.justify, msg.block->id());

  // Voting.
  if (v != view()) {
    if (v > view()) {
      pending_proposals_[v].push_back(sim::MakeMessage<ProposeMsg>(msg));
    }
    return;
  }
  if (v <= exited_view_) return;  // exitView(): voting disabled after timeout
  if (s < next_slot_ || slot_view_ != v) return;  // already voted this slot

  if (!ActiveInView(v)) {
    next_slot_ = s + 1;  // standby: track slot consumption, no vote/reject power
    return;
  }

  const bool lex_ok = high_cert_.block_id() <= msg.justify.block_id();
  const bool collude = adversary_.collude && adversary_.faulty &&
                       (*adversary_.faulty)[msg.sender];
  if ((SafeSlot(msg, carry) && lex_ok) || collude) {
    next_slot_ = s + 1;
    high_voted_id_ = msg.block->id();
    high_voted_hash_ = msg.block->hash();
    ++metrics_.votes_sent;
    auto vote = sim::MakeMessage<VoteMsg>(id_);
    vote->vote_kind = CertKind::kNewSlot;
    vote->context_view = v;
    vote->block_id = msg.block->id();
    vote->block_hash = msg.block->hash();
    vote->share =
        SignVote(CertKind::kNewSlot, v, msg.block->id(), msg.block->hash());
    vote->high_cert = high_cert_;
    SendTo(LeaderOf(v), std::move(vote));
  } else {
    next_slot_ = s + 1;  // Fig. 7 line 26: the slot is consumed either way
    ++metrics_.rejects_sent;
    auto rej = sim::MakeMessage<RejectMsg>(id_);
    rej->view = v;
    rej->slot = s;
    rej->high_cert = high_cert_;
    SendTo(LeaderOf(v), std::move(rej));
  }
}

void HotStuff1SlottedReplica::OnBlockFetched(const BlockPtr& block) {
  RememberChild(block);
  // Re-run any proposals waiting on this block.
  auto it = pending_proposals_.find(view());
  if (it != pending_proposals_.end()) {
    auto msgs = std::move(it->second);
    pending_proposals_.erase(it);
    for (const auto& m : msgs) HandlePropose(*m);
  }
  if (IsLeaderOf(view())) MaybeProposeFirst(view());
}

}  // namespace hotstuff1

// Basic (non-streamlined) HotStuff-1 (§4, Fig. 2). Each view runs two full
// phases under one leader:
//
//   Propose  -> ProposeVote (to L_v)  -> Prepare broadcast of P(v)
//            -> NewView (to L_{v+1}) carrying a commit share for P(v)
//
// Replicas speculatively execute B_v upon receiving the Prepare message
// (3 half-phases), guarded by the Prefix Speculation and No-Gap rules. Two
// commit rules coexist: the traditional rule (commit-certificate C(x)
// delivered in the next Propose, Def. 4.5) and the prefix rule (P(v)
// extends P(v-1), Def. 4.6).

#ifndef HOTSTUFF1_CORE_HOTSTUFF1_BASIC_H_
#define HOTSTUFF1_CORE_HOTSTUFF1_BASIC_H_

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/replica_set.h"
#include "consensus/replica.h"
#include "core/speculation.h"

namespace hotstuff1 {

class HotStuff1BasicReplica : public ReplicaBase {
 public:
  HotStuff1BasicReplica(ReplicaId id, const ConsensusConfig& config,
                        sim::Network* net, const KeyRegistry* registry,
                        TransactionSource* source, ResponseSink* sink,
                        KvState initial_state);

  const char* Name() const override { return "HotStuff-1 (basic)"; }

  const Certificate& high_prepare() const { return high_prepare_; }
  const std::optional<Certificate>& high_commit() const { return high_commit_; }

 protected:
  void OnEnterView(uint64_t view) override;
  void OnViewTimeout(uint64_t view) override;
  void OnProtocolMessage(const ConsensusMessage& msg) override;

 private:
  struct LeaderViewState {
    ReplicaSet senders;
    std::unordered_map<Hash256, VoteAccumulator, Hash256Hasher> commit_accs;
    std::optional<VoteAccumulator> vote_acc;  // ProposeVote shares for B_v
    bool share_timer_passed = false;
    bool proposed = false;
    bool prepared = false;  // P(v) broadcast done
  };

  void HandlePropose(const ProposeMsg& msg);
  void HandleVote(const VoteMsg& msg);
  void HandlePrepare(const PrepareMsg& msg);
  void HandleNewView(const NewViewMsg& msg);
  void MaybePropose(uint64_t view);
  void Propose(uint64_t view);
  void ExitToNextView(uint64_t view);
  void UpdateHighPrepare(const Certificate& cert);

  Certificate high_prepare_;
  std::optional<Certificate> high_commit_;
  uint64_t voted_view_ = 0;
  uint64_t commit_voted_view_ = 0;
  SpeculationPolicy policy_;
  std::map<uint64_t, LeaderViewState> state_;
  // Proposals buffered until we enter their view.
  std::map<uint64_t, std::shared_ptr<const ProposeMsg>> pending_proposals_;
  // Prepare messages that arrived before their proposal (rare).
  std::map<uint64_t, std::shared_ptr<const PrepareMsg>> pending_prepares_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CORE_HOTSTUFF1_BASIC_H_

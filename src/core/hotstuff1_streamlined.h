// Streamlined HotStuff-1 (§5, Fig. 4): the chained skeleton with the prefix
// commit rule plus one-phase speculation. When a proposal for view v carries
// P(v-1), replicas speculatively execute B_{v-1} (guarded by the Prefix
// Speculation and No-Gap rules) and send clients early finality
// confirmations: 3 half-phases from proposal to speculative response.
// Clients accept on n-f matching responses (§3).

#ifndef HOTSTUFF1_CORE_HOTSTUFF1_STREAMLINED_H_
#define HOTSTUFF1_CORE_HOTSTUFF1_STREAMLINED_H_

#include "baselines/hotstuff.h"
#include "core/speculation.h"

namespace hotstuff1 {

class HotStuff1StreamlinedReplica : public ChainedReplica {
 public:
  HotStuff1StreamlinedReplica(ReplicaId id, const ConsensusConfig& config,
                              sim::Network* net, const KeyRegistry* registry,
                              TransactionSource* source, ResponseSink* sink,
                              KvState initial_state)
      : ChainedReplica(id, config, net, registry, source, sink,
                       std::move(initial_state)) {
    policy_.enabled = config.speculation_enabled;
    policy_.prefix_rule = config.enforce_prefix_rule;
    policy_.no_gap_rule = config.enforce_no_gap_rule;
  }

  const char* Name() const override { return "HotStuff-1"; }

 protected:
  void ProcessCertificate(const Certificate& justify, const BlockPtr& certified,
                          uint64_t proposal_view) override;

 private:
  /// Test-only mutation (ConsensusConfig::test_break_safety): when the newly
  /// certified chain conflicts with local speculation, commit the speculated
  /// branch instead of rolling it back — an equivocation-commit bug the
  /// invariant oracle must detect. Returns true when the bug fired (the
  /// replica then halts, see the .cc for why).
  bool TestBreakSafetyCommit(const BlockPtr& certified);

  SpeculationPolicy policy_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CORE_HOTSTUFF1_STREAMLINED_H_

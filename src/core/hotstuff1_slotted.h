// Streamlined HotStuff-1 with adaptive slotting (§6, Figs. 5-7).
//
// Each view lasts a full pacemaker period τ; within it the leader proposes
// as many slots as network round-trips allow (adaptive slotting). Votes for
// slot (s, v) travel back to L_v as NewSlot shares; view transitions happen
// only on the view timer, carrying New-View shares over (P(s_lp, v_lp), H_h).
//
// First-slot proposals must provide a self-contained proof of no
// tail-forking in one of two ways (§6.1):
//   (i)  extend a New-View certificate formed by this leader (fv = v), or
//   (ii) extend the leader's highest certificate and *carry* the lowest
//        uncertified block extending it (the carry block becomes the
//        first-slot block's chain parent; committing the first slot commits
//        the carry).
// Replicas enforce this via SafeSlot cases 1-4 (Fig. 7) and Reject unsafe
// proposals; leaders use Rejects to distrust concealing previous leaders
// (§6.3), falling back from the trusted-leader network-speed fast path to
// the four waiting conditions of Fig. 6 line 6.

#ifndef HOTSTUFF1_CORE_HOTSTUFF1_SLOTTED_H_
#define HOTSTUFF1_CORE_HOTSTUFF1_SLOTTED_H_

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/replica_set.h"
#include "consensus/replica.h"
#include "core/speculation.h"

namespace hotstuff1 {

class HotStuff1SlottedReplica : public ReplicaBase {
 public:
  HotStuff1SlottedReplica(ReplicaId id, const ConsensusConfig& config,
                          sim::Network* net, const KeyRegistry* registry,
                          TransactionSource* source, ResponseSink* sink,
                          KvState initial_state);

  const char* Name() const override { return "HotStuff-1 (slotting)"; }

  const Certificate& high_cert() const { return high_cert_; }
  bool Distrusts(ReplicaId r) const { return distrusted_[r]; }

 protected:
  void OnEnterView(uint64_t view) override;
  void OnViewTimeout(uint64_t view) override;
  void OnProtocolMessage(const ConsensusMessage& msg) override;
  void OnBlockFetched(const BlockPtr& block) override;

 private:
  struct VoteInfo {
    BlockId id;
    uint32_t count = 0;
  };

  struct LeaderState {
    ReplicaSet nv_senders;
    std::unordered_map<Hash256, VoteAccumulator, Hash256Hasher> nv_accs;
    std::unordered_map<Hash256, VoteInfo, Hash256Hasher> nv_votes;
    std::optional<Certificate> formed_nv;        // way (i) certificate
    std::optional<Certificate> prev_leader_cert; // trusted fast path (§6.3)
    bool share_timer_passed = false;
    bool first_proposed = false;
    uint32_t slots_proposed = 0;
    std::optional<VoteAccumulator> slot_acc;  // NewSlot votes for latest slot
  };

  void HandlePropose(const ProposeMsg& msg);
  void HandleNewView(const NewViewMsg& msg);
  void HandleNewSlotVote(const VoteMsg& msg);
  void HandleReject(const RejectMsg& msg);

  void MaybeProposeFirst(uint64_t view);
  /// Proposes the first slot: way (i) when `nv_cert` is set, else way (ii)
  /// with a carry block. Returns false when a required block is missing
  /// (fetch started; retried via OnBlockFetched).
  bool ProposeFirstSlot(uint64_t view);
  void ProposeNextSlot(uint64_t view, const Certificate& just_formed);
  void SendProposal(uint64_t view, uint32_t slot, const Certificate& justify,
                    BlockPtr parent, BlockPtr carry);

  bool SafeSlot(const ProposeMsg& msg, const BlockPtr& carry) const;
  void RememberChild(const BlockPtr& block);
  void MarkCertified(const Certificate& cert);
  BlockPtr LowestUncertifiedChild(const Hash256& parent_hash) const;
  void UpdateHighCert(const Certificate& cert);
  /// True if `cert` was formed in view `v` (NewSlot of view v, or NewView
  /// with fv = v).
  static bool FormedInView(const Certificate& cert, uint64_t v);

  void ApplyCommitRule(const Certificate& justify);
  void ApplySpeculation(const Certificate& justify, const BlockId& proposal_id);

  Certificate high_cert_;
  BlockId high_voted_id_{0, 0};
  Hash256 high_voted_hash_;
  uint32_t next_slot_ = 1;   // next slot we may vote on in slot_view_
  uint64_t slot_view_ = 0;
  std::vector<bool> distrusted_;
  SpeculationPolicy policy_;

  std::map<uint64_t, LeaderState> lstate_;
  std::map<uint64_t, std::vector<std::shared_ptr<const ProposeMsg>>> pending_proposals_;
  std::unordered_multimap<Hash256, BlockPtr, Hash256Hasher> children_;
  std::unordered_set<Hash256, Hash256Hasher> certified_;
};

}  // namespace hotstuff1

#endif  // HOTSTUFF1_CORE_HOTSTUFF1_SLOTTED_H_

#include "core/speculation.h"

#include <algorithm>

#include "common/logging.h"

namespace hotstuff1 {

SpeculationOutcome TrySpeculate(Ledger* ledger, const BlockStore& store,
                                const BlockPtr& certified, bool no_gap_satisfied,
                                const SpeculationPolicy& policy) {
  SpeculationOutcome out;
  if (!policy.enabled) return out;
  if (policy.no_gap_rule && !no_gap_satisfied) return out;
  if (ledger->IsCommitted(certified->hash()) || ledger->IsSpeculated(certified->hash())) {
    return out;
  }

  // Build the execution unit: the certified block plus, walking down, any
  // carried uncommitted ancestors ("uncertified carry blocks ... are viewed
  // as a part of the first-slot blocks", §6.1). Under the relaxed test-only
  // policy, arbitrary uncommitted ancestors are admitted (this is exactly
  // the unsafe behaviour of Appendix A).
  std::vector<BlockPtr> unit{certified};
  BlockPtr parent = store.GetOrNull(certified->parent_hash());
  while (parent != nullptr && !ledger->IsCommitted(parent->hash()) &&
         !ledger->IsSpeculated(parent->hash())) {
    const bool is_carry_of_child = unit.back()->carry_hash() == parent->hash();
    if (policy.prefix_rule && !is_carry_of_child) {
      // Predecessor is neither committed nor part of the carry unit: the
      // Prefix Speculation rule forbids executing this block.
      return out;
    }
    unit.push_back(parent);
    parent = store.GetOrNull(parent->parent_hash());
  }
  if (parent == nullptr) return out;  // gap in the chain: cannot execute
  std::reverse(unit.begin(), unit.end());

  // The anchor (parent of the unit) must be on the local ledger: committed
  // on the winning chain, or an earlier speculation.
  const Hash256 anchor = parent->hash();
  if (ledger->IsCommitted(anchor)) {
    if (parent->hash() != ledger->committed_tip()->hash()) {
      // A different block is already committed at the certified block's
      // height; executing it would fork the committed prefix. Refuse.
      return out;
    }
    // Conflict rollback (Def. 4.7): clear any speculation that diverges.
    if (ledger->spec_tip()->hash() != anchor) {
      out.blocks_rolled_back = ledger->RollbackTo(anchor);
    }
  } else if (ledger->IsSpeculated(anchor)) {
    if (ledger->spec_tip()->hash() != anchor) {
      out.blocks_rolled_back = ledger->RollbackTo(anchor);
    }
  } else {
    return out;  // anchor unknown to the local ledger
  }

  out.executed.reserve(unit.size());
  for (const BlockPtr& b : unit) {
    out.executed.push_back(SpeculatedBlock{b, ledger->Speculate(b)});
  }
  out.speculated = true;
  return out;
}

}  // namespace hotstuff1

#include "core/hotstuff1_streamlined.h"

namespace hotstuff1 {

void HotStuff1StreamlinedReplica::ProcessCertificate(const Certificate& justify,
                                                     const BlockPtr& certified,
                                                     uint64_t proposal_view) {
  // Commit rule first (Fig. 4 lines 9-10), so the Prefix Speculation rule
  // sees the freshest global-ledger state.
  CommitTwoChain(certified);

  // No-Gap rule (Def. 3.2): the certificate must be from the immediately
  // preceding view.
  const bool no_gap = justify.block_id().view + 1 == proposal_view;
  const size_t rollbacks_before = ledger_.rollback_events();
  SpeculationOutcome out =
      TrySpeculate(&ledger_, store_, certified, no_gap, policy_);
  if (out.blocks_rolled_back > 0 ||
      ledger_.rollback_events() != rollbacks_before) {
    ++metrics_.rollback_events;
    metrics_.blocks_rolled_back += out.blocks_rolled_back;
  }
  for (const SpeculatedBlock& sb : out.executed) {
    ++metrics_.blocks_speculated;
    ChargeCpu(config_.costs.ExecCost(sb.block->txns().size()));
    RespondToClients(sb.block, sb.results, /*speculative=*/true);
  }
}

}  // namespace hotstuff1

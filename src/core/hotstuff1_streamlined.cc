#include "core/hotstuff1_streamlined.h"

#include "runtime/oracle.h"

namespace hotstuff1 {

bool HotStuff1StreamlinedReplica::TestBreakSafetyCommit(const BlockPtr& certified) {
  // The injected bug: a replica whose speculation conflicts with the
  // incoming certified chain "trusts" its own speculative execution and
  // promotes it to the committed ledger instead of rolling it back
  // (Def. 4.7 inverted). Under the rollback attack this makes a designated
  // victim commit the abandoned branch — a genuine equivocation commit that
  // the oracle's commit-conflict lattice must report.
  if (ledger_.spec_depth() == 0) return false;
  if (ledger_.IsCommitted(certified->hash()) ||
      ledger_.IsSpeculated(certified->hash()) ||
      certified->height() > ledger_.spec_tip()->height()) {
    return false;  // certified chain agrees with (or extends) our speculation
  }
  DeliverCommits(ledger_.CommitChain(ledger_.spec_tip()));
  // Halt after the equivocation commit: continuing to process the winning
  // chain would trip the Ledger's own fork HS1_CHECK and abort the whole
  // process before the oracle's verdict can be observed by a test. A replica
  // that equivocated and went silent is exactly the failure shape the oracle
  // exists to catch from the outside.
  SetCrashed();
  return true;
}

void HotStuff1StreamlinedReplica::ProcessCertificate(const Certificate& justify,
                                                     const BlockPtr& certified,
                                                     uint64_t proposal_view) {
  if (config_.test_break_safety && TestBreakSafetyCommit(certified)) return;

  // Commit rule first (Fig. 4 lines 9-10), so the Prefix Speculation rule
  // sees the freshest global-ledger state.
  CommitTwoChain(certified);

  // No-Gap rule (Def. 3.2): the certificate must be from the immediately
  // preceding view.
  const bool no_gap = justify.block_id().view + 1 == proposal_view;
  const size_t rollbacks_before = ledger_.rollback_events();
  SpeculationOutcome out =
      TrySpeculate(&ledger_, store_, certified, no_gap, policy_);
  if (out.blocks_rolled_back > 0 ||
      ledger_.rollback_events() != rollbacks_before) {
    ++metrics_.rollback_events;
    metrics_.blocks_rolled_back += out.blocks_rolled_back;
    if (oracle_) {
      oracle_->OnRollback(id_, out.blocks_rolled_back, certified->id().view);
    }
  }
  for (const SpeculatedBlock& sb : out.executed) {
    ++metrics_.blocks_speculated;
    ChargeCpu(config_.costs.ExecCost(sb.block->txns().size()));
    RespondToClients(sb.block, sb.results, /*speculative=*/true);
  }
}

}  // namespace hotstuff1

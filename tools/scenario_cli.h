// Shared scenario-mode CLI plumbing for hs1bench and hs1sim, so the two
// binaries cannot drift on --jobs/--smoke/--format semantics or the --list
// output.

#ifndef HOTSTUFF1_TOOLS_SCENARIO_CLI_H_
#define HOTSTUFF1_TOOLS_SCENARIO_CLI_H_

#include <cstdio>
#include <string>
#include <thread>

#include "runtime/adversary.h"
#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "tools/flags.h"

namespace hotstuff1::tools {

/// One axis rendered as `name{label1,label2,...}` (long axes elided), so
/// --list shows exactly what a scenario sweeps — including sim_jobs /
/// lookahead axes — and CI logs record what a gate actually covered.
inline std::string FormatAxis(const std::string& name, const Axis& axis) {
  std::string out = name;
  out += "{";
  constexpr size_t kMaxLabels = 6;
  for (size_t i = 0; i < axis.size() && i < kMaxLabels; ++i) {
    if (i > 0) out += ",";
    out += axis[i].label.empty() ? "-" : axis[i].label;
  }
  if (axis.size() > kMaxLabels) {
    out += ",...+" + std::to_string(axis.size() - kMaxLabels);
  }
  out += "}";
  return out;
}

/// `axes: ...` summary line for one spec (sweep shape + seed count).
inline std::string DescribeAxes(const ScenarioSpec& spec) {
  if (spec.custom_run) return "custom (not a config sweep)";
  std::string out;
  if (!spec.tables.empty()) {
    out += FormatAxis(spec.table_name.empty() ? "table" : spec.table_name,
                      spec.tables);
  }
  if (!spec.rows.empty()) {
    if (!out.empty()) out += " x ";
    out += FormatAxis(spec.row_name, spec.rows);
  }
  if (!spec.cols.empty()) {
    if (!out.empty()) out += " x ";
    out += FormatAxis("", spec.cols);
  }
  if (out.empty()) out = "single point";
  out += ", seeds=" + std::to_string(spec.seeds.empty() ? 1 : spec.seeds.size());
  return out;
}

/// Prints the registered scenario catalog (for --list).
inline int ListScenarios() {
  for (const ScenarioSpec* spec : ScenarioRegistry::Instance().All()) {
    std::printf("%-18s %s\n", spec->name.c_str(), spec->description.c_str());
    std::printf("%-18s   axes: %s\n", "", DescribeAxes(*spec).c_str());
  }
  return 0;
}

/// Parses --jobs / --sim-jobs / --smoke / --format / --repeat / --bench-json.
/// Returns false after printing the problem to stderr; callers turn that
/// into flag-error exit code 2.
inline bool ParseScenarioRunOptions(const Flags& flags, ScenarioRunOptions* options) {
  const unsigned hw = std::thread::hardware_concurrency();
  options->jobs = static_cast<int>(flags.GetInt("jobs", hw > 0 ? hw : 1));
  // Accept both spellings; omitting the flag leaves each point's configured
  // value in place. An explicit value must be a positive integer (atoll maps
  // junk to 0, which the check below rejects).
  const bool has_sim_jobs = flags.Has("sim-jobs") || flags.Has("sim_jobs");
  options->sim_jobs = has_sim_jobs ? static_cast<int>(flags.GetInt(
                                         "sim-jobs", flags.GetInt("sim_jobs", 0)))
                                   : 0;
  if (flags.Has("lookahead")) {
    if (!ParseLookahead(flags.GetString("lookahead", ""), &options->lookahead)) {
      std::fprintf(stderr,
                   "bad --lookahead '%s' (want auto|off|<microseconds>)\n",
                   flags.GetString("lookahead", "").c_str());
      return false;
    }
    options->has_lookahead = true;
  }
  if (flags.Has("arrival")) {
    if (!ParseArrivalKind(flags.GetString("arrival", ""), &options->arrival)) {
      std::fprintf(stderr,
                   "bad --arrival '%s' (want closed|poisson|bursty|diurnal|flash)\n",
                   flags.GetString("arrival", "").c_str());
      return false;
    }
    options->has_arrival = true;
  }
  if (flags.Has("offered-load")) {
    options->offered_load = flags.GetDouble("offered-load", 0);
    if (options->offered_load <= 0) {
      std::fprintf(stderr, "--offered-load must be a positive txn/s rate\n");
      return false;
    }
    options->has_offered_load = true;
  }
  if (flags.Has("cert-scheme")) {
    if (!ParseCertScheme(flags.GetString("cert-scheme", ""),
                         &options->cert_scheme)) {
      std::fprintf(stderr,
                   "bad --cert-scheme '%s' (want vector|aggregate|threshold)\n",
                   flags.GetString("cert-scheme", "").c_str());
      return false;
    }
    options->has_cert_scheme = true;
  }
  options->client_groups =
      static_cast<uint32_t>(flags.GetInt("client-groups", 0));
  if (flags.Has("client-groups") && options->client_groups < 1) {
    std::fprintf(stderr, "--client-groups must be >= 1\n");
    return false;
  }
  if (flags.Has("strategy")) {
    std::string error;
    if (!ParseStrategySchedule(flags.GetString("strategy", ""),
                               &options->strategy, &error)) {
      std::fprintf(stderr, "bad --strategy: %s\n", error.c_str());
      return false;
    }
    options->has_strategy = true;
  }
  if (flags.Has("reconfig")) {
    std::string error;
    if (!ParseCommitteeSchedule(flags.GetString("reconfig", ""),
                                &options->reconfig, &error)) {
      std::fprintf(stderr, "bad --reconfig: %s\n", error.c_str());
      return false;
    }
    options->has_reconfig = true;
  }
  options->oracle = flags.GetBool("oracle", false);
  options->smoke = flags.GetBool("smoke", false);
  options->repeat = static_cast<int>(flags.GetInt("repeat", 1));
  options->bench_json = flags.GetString("bench-json", "");
  const std::string format = flags.GetString("format", "table");
  if (!ParseReportFormat(format, &options->format)) {
    std::fprintf(stderr, "unknown --format '%s' (want table|csv|json)\n",
                 format.c_str());
    return false;
  }
  if (options->jobs < 1) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    return false;
  }
  if (has_sim_jobs && options->sim_jobs < 1) {
    std::fprintf(stderr, "--sim-jobs must be >= 1\n");
    return false;
  }
  if (options->repeat < 1) {
    std::fprintf(stderr, "--repeat must be >= 1\n");
    return false;
  }
  return true;
}

}  // namespace hotstuff1::tools

#endif  // HOTSTUFF1_TOOLS_SCENARIO_CLI_H_

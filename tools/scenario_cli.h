// Shared scenario-mode CLI plumbing for hs1bench and hs1sim, so the two
// binaries cannot drift on --jobs/--smoke/--format semantics or the --list
// output.

#ifndef HOTSTUFF1_TOOLS_SCENARIO_CLI_H_
#define HOTSTUFF1_TOOLS_SCENARIO_CLI_H_

#include <cstdio>
#include <string>
#include <thread>

#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "tools/flags.h"

namespace hotstuff1::tools {

/// Prints the registered scenario catalog (for --list).
inline int ListScenarios() {
  for (const ScenarioSpec* spec : ScenarioRegistry::Instance().All()) {
    std::printf("%-18s %s\n", spec->name.c_str(), spec->description.c_str());
  }
  return 0;
}

/// Parses --jobs / --sim-jobs / --smoke / --format. Returns false after
/// printing the problem to stderr; callers turn that into flag-error exit
/// code 2.
inline bool ParseScenarioRunOptions(const Flags& flags, ScenarioRunOptions* options) {
  const unsigned hw = std::thread::hardware_concurrency();
  options->jobs = static_cast<int>(flags.GetInt("jobs", hw > 0 ? hw : 1));
  // Accept both spellings; omitting the flag leaves each point's configured
  // value in place. An explicit value must be a positive integer (atoll maps
  // junk to 0, which the check below rejects).
  const bool has_sim_jobs = flags.Has("sim-jobs") || flags.Has("sim_jobs");
  options->sim_jobs = has_sim_jobs ? static_cast<int>(flags.GetInt(
                                         "sim-jobs", flags.GetInt("sim_jobs", 0)))
                                   : 0;
  options->smoke = flags.GetBool("smoke", false);
  const std::string format = flags.GetString("format", "table");
  if (!ParseReportFormat(format, &options->format)) {
    std::fprintf(stderr, "unknown --format '%s' (want table|csv|json)\n",
                 format.c_str());
    return false;
  }
  if (options->jobs < 1) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    return false;
  }
  if (has_sim_jobs && options->sim_jobs < 1) {
    std::fprintf(stderr, "--sim-jobs must be >= 1\n");
    return false;
  }
  return true;
}

}  // namespace hotstuff1::tools

#endif  // HOTSTUFF1_TOOLS_SCENARIO_CLI_H_

// Minimal command-line flag parsing for the tools (no external deps).

#ifndef HOTSTUFF1_TOOLS_FLAGS_H_
#define HOTSTUFF1_TOOLS_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace hotstuff1::tools {

/// Parses `--key=value` and `--flag` arguments; everything else is a
/// positional argument.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          values_[arg.substr(2)] = "true";
        } else {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    return it->second != "false" && it->second != "0";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hotstuff1::tools

#endif  // HOTSTUFF1_TOOLS_FLAGS_H_

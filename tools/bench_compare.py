#!/usr/bin/env python3
"""Compare two hs1-bench-v1 ledgers (see bench/scenarios/throughput.cc).

Two kinds of checks, with different teeth:

  * Data-shape checks are HARD errors (exit 2): schema tag, scenario,
    mode, workload set, and per-workload event counts must match exactly.
    Event counts are deterministic — a drift means the simulation changed
    behavior, not that the machine was slow.
  * Throughput checks flag events/s regressions beyond a threshold
    (default 10%). By default these are warnings (exit 0) because shared
    CI runners are noisy; --strict turns them into failures (exit 1).

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold=0.10]
        [--strict]
"""

import argparse
import json
import sys

SCHEMA = "hs1-bench-v1"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    for key in ("scenario", "mode", "rows"):
        if key not in doc:
            sys.exit(f"error: {path}: missing key {key!r}")
    for row in doc["rows"]:
        for key in ("name", "events", "wall_ms", "events_per_sec"):
            if key not in row:
                sys.exit(f"error: {path}: row missing key {key!r}")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="events/s drop flagged as a regression (fraction, default 0.10)",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on throughput regressions (default: warn only)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    shape_errors = []
    for key in ("scenario", "mode"):
        if base[key] != cand[key]:
            shape_errors.append(
                f"{key}: baseline={base[key]!r} candidate={cand[key]!r}"
            )

    base_rows = {r["name"]: r for r in base["rows"]}
    cand_rows = {r["name"]: r for r in cand["rows"]}
    if list(base_rows) != list(cand_rows):
        shape_errors.append(
            f"workload set: baseline={list(base_rows)} candidate={list(cand_rows)}"
        )
    else:
        for name, b in base_rows.items():
            c = cand_rows[name]
            if b["events"] != c["events"]:
                shape_errors.append(
                    f"{name}: event count {b['events']} -> {c['events']} "
                    "(deterministic count drifted: behavior change, not noise)"
                )

    if shape_errors:
        print("bench_compare: DATA-SHAPE MISMATCH (hard error)")
        for e in shape_errors:
            print(f"  {e}")
        return 2

    regressions = []
    print(f"{'workload':<22} {'baseline ev/s':>14} {'candidate ev/s':>14} {'delta':>8}")
    for name, b in base_rows.items():
        c = cand_rows[name]
        delta = (c["events_per_sec"] - b["events_per_sec"]) / b["events_per_sec"]
        marker = ""
        if delta < -args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append(name)
        print(
            f"{name:<22} {b['events_per_sec']:>14.0f} "
            f"{c['events_per_sec']:>14.0f} {delta:>+7.1%}{marker}"
        )

    if regressions:
        pct = args.threshold * 100
        print(
            f"bench_compare: {len(regressions)} workload(s) regressed "
            f"more than {pct:.0f}%: {', '.join(regressions)}"
        )
        return 1 if args.strict else 0
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// hs1sim: command-line driver for the HotStuff-1 simulation harness.
//
// Examples:
//   hs1sim --protocol=hotstuff1 --n=32 --batch=100 --duration_ms=2000
//   hs1sim --protocol=slotted --n=31 --fault=slow --faulty=10 --timer_ms=100
//   hs1sim --protocol=hotstuff2 --workload=tpcc --regions=3 --paper_point
//   hs1sim --scenario=fig8_scalability --jobs=4 --format=csv
//
// Prints a one-line machine-friendly summary plus a human-readable block.

#include <cstdio>
#include <string>

#include "runtime/adversary.h"
#include "runtime/experiment.h"
#include "runtime/scenario.h"
#include "runtime/sweep_runner.h"
#include "tools/flags.h"
#include "tools/scenario_cli.h"

namespace hotstuff1 {
namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out, R"(hs1sim - HotStuff-1 reproduction driver

  --protocol=hotstuff|hotstuff2|basic|hotstuff1|slotted   (default hotstuff1)
  --n=<replicas>                (default 32)
  --batch=<txns per block>      (default 100)
  --duration_ms=<virtual ms>    (default 2000)
  --warmup_ms=<virtual ms>      (default 300)
  --timer_ms=<view timer>       (default 10)
  --delta_ms=<assumed bound>    (default 1)
  --workload=ycsb|tpcc          (default ycsb)
  --regions=<1..5>              geo deployment (default 1 = LAN)
  --fault=none|crash|slow|tailfork|rollback
  --faulty=<count>              (default 0)
  --victims=<rollback victims>  (default f)
  --strategy=<schedule>         composable per-epoch adversary strategy for
                                the --faulty coalition; entries
                                "<from>[-<to>]:action[,action]" joined by ';'
                                with actions equivocate|withhold|delay=<us>|
                                target-leader, plus optional "epoch=<us>" and
                                "gst=<us>" segments (see runtime/adversary.h).
                                Example: "0-3:withhold;gst=120000". Also
                                partition=<ids>|<ids>, outage=<regions>,
                                jitter=<pct> environmental actions.
  --reconfig=<schedule>         epoch-based committee reconfiguration:
                                "<epoch>:<ids>" steps joined by ';', ids as
                                "<id>" or "<lo>-<hi>" joined by '+' (see
                                consensus/committee.h). Example:
                                "0:0-15;4:0-11" shrinks to 12 members at
                                epoch 4. Member ids must be < n.
  --liveness_k=<views>          liveness oracle: flag >k correct views past
                                GST without a correct commit (0 = auto)
  --liveness_grace_ms=<ms>      liveness oracle: flag a run ending this long
                                after GST with no correct commit (0 = auto)
  --inject_delay_ms=<ms> --impaired=<k>   Fig. 9 style delay injection
  --clients=<count>             (default 8*batch closed loop; 1M open loop)
  --client-groups=<G>           client-pool shards (default 1; byte-identical
                                results at any value)
  --arrival=closed|poisson|bursty|diurnal|flash   traffic model (default
                                closed = one outstanding txn per client)
  --offered-load=<txn/s>        open-loop aggregate arrival rate (default 50000)
  --cert-scheme=vector|aggregate|threshold   authenticator wire encoding
                                (default vector = §7's n−f signature list;
                                pure byte-size axis, results stay safe/live)
  --max_slots=<k>               slotted: cap slots/view (0 = adaptive)
  --no_speculation              disable speculative responses
  --no_trusted_leader           disable the §6.3 fast path
  --seed=<u64>                  (default 1)
  --sim-jobs=<N>                parallel event-loop threads (default 1;
                                results byte-identical at any value)
  --lookahead=auto|off|<us>     lookahead window for the parallel event loop
                                (default auto; byte-identical at any value)
  --event_cap=<N>               stop a runaway run after N events (default 0 =
                                unlimited; truncation is reported, never silent)
  --oracle                      arm the online safety + liveness oracles
                                (violations fail the run with a config+seed
                                diagnostic)
  --bandwidth_bytes_per_us=<B>  per-node egress bandwidth (default 2000)
  --paper_point                 throughput at saturation + light-load latency

Registered scenarios (the hs1bench sweep engine):
  --list                        enumerate registered scenarios with their axes
  --scenario=<name>             run a registered scenario instead of one point
  --jobs=<N> --format=table|csv|json --smoke    scenario runner options
  (--sim-jobs / --lookahead / --oracle / --arrival / --offered-load /
   --client-groups / --cert-scheme / --strategy / --reconfig apply to
   scenario points too)
)");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

int RunScenarioMode(const tools::Flags& flags) {
  const std::string name = flags.GetString("scenario", "");
  const ScenarioSpec* spec = ScenarioRegistry::Instance().Find(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
    return 2;
  }
  ScenarioRunOptions options;
  if (!tools::ParseScenarioRunOptions(flags, &options)) return 2;
  return RunScenario(*spec, options);
}

int RunMain(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.Has("help")) {
    // Explicit --help is a success; exit code 2 stays reserved for flag errors.
    PrintUsage(stdout);
    return 0;
  }
  if (flags.Has("list")) return tools::ListScenarios();
  if (flags.Has("scenario")) return RunScenarioMode(flags);

  ExperimentConfig cfg;
  const std::string proto = flags.GetString("protocol", "hotstuff1");
  if (proto == "hotstuff") {
    cfg.protocol = ProtocolKind::kHotStuff;
  } else if (proto == "hotstuff2") {
    cfg.protocol = ProtocolKind::kHotStuff2;
  } else if (proto == "basic") {
    cfg.protocol = ProtocolKind::kHotStuff1Basic;
  } else if (proto == "hotstuff1") {
    cfg.protocol = ProtocolKind::kHotStuff1;
  } else if (proto == "slotted") {
    cfg.protocol = ProtocolKind::kHotStuff1Slotted;
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", proto.c_str());
    return Usage();
  }

  cfg.n = static_cast<uint32_t>(flags.GetInt("n", 32));
  cfg.batch_size = static_cast<uint32_t>(flags.GetInt("batch", 100));
  cfg.duration = Millis(flags.GetDouble("duration_ms", 2000));
  cfg.warmup = Millis(flags.GetDouble("warmup_ms", 300));
  cfg.view_timer = Millis(flags.GetDouble("timer_ms", 10));
  cfg.delta = Millis(flags.GetDouble("delta_ms", 1));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.num_clients = static_cast<uint32_t>(flags.GetInt("clients", 0));
  const int64_t client_groups = flags.GetInt("client-groups", 1);
  if (client_groups < 1 || client_groups > kMaxClientGroups) {
    std::fprintf(stderr, "--client-groups must be in [1, %u]\n", kMaxClientGroups);
    return Usage();
  }
  cfg.client_groups = static_cast<uint32_t>(client_groups);
  if (flags.Has("arrival") &&
      !ParseArrivalKind(flags.GetString("arrival", ""), &cfg.arrival.kind)) {
    std::fprintf(stderr,
                 "bad --arrival '%s' (want closed|poisson|bursty|diurnal|flash)\n",
                 flags.GetString("arrival", "").c_str());
    return Usage();
  }
  cfg.arrival.offered_load_tps =
      flags.GetDouble("offered-load", cfg.arrival.offered_load_tps);
  if (cfg.arrival.offered_load_tps <= 0) {
    std::fprintf(stderr, "--offered-load must be a positive txn/s rate\n");
    return Usage();
  }
  if (flags.Has("cert-scheme") &&
      !ParseCertScheme(flags.GetString("cert-scheme", ""), &cfg.cert_scheme)) {
    std::fprintf(stderr,
                 "bad --cert-scheme '%s' (want vector|aggregate|threshold)\n",
                 flags.GetString("cert-scheme", "").c_str());
    return Usage();
  }
  cfg.max_slots = static_cast<uint32_t>(flags.GetInt("max_slots", 0));
  cfg.speculation_enabled = !flags.GetBool("no_speculation", false);
  cfg.trusted_leader_enabled = !flags.GetBool("no_trusted_leader", false);
  cfg.inject_delay = Millis(flags.GetDouble("inject_delay_ms", 0));
  cfg.num_impaired = static_cast<uint32_t>(flags.GetInt("impaired", 0));
  const int64_t sim_jobs = flags.GetInt("sim-jobs", flags.GetInt("sim_jobs", 1));
  if (sim_jobs < 1) {
    std::fprintf(stderr, "--sim-jobs must be >= 1\n");
    return Usage();
  }
  cfg.sim_jobs = static_cast<uint32_t>(sim_jobs);
  if (flags.Has("lookahead") &&
      !ParseLookahead(flags.GetString("lookahead", ""), &cfg.lookahead)) {
    std::fprintf(stderr, "bad --lookahead '%s' (want auto|off|<microseconds>)\n",
                 flags.GetString("lookahead", "").c_str());
    return Usage();
  }
  const int64_t event_cap = flags.GetInt("event_cap", 0);
  if (event_cap < 0) {
    std::fprintf(stderr, "--event_cap must be >= 0\n");
    return Usage();
  }
  cfg.event_cap = static_cast<uint64_t>(event_cap);
  cfg.oracle_enabled = flags.GetBool("oracle", false);
  cfg.bandwidth_bytes_per_us =
      flags.GetDouble("bandwidth_bytes_per_us", cfg.bandwidth_bytes_per_us);

  const std::string workload = flags.GetString("workload", "ycsb");
  cfg.workload = workload == "tpcc" ? WorkloadKind::kTpcc : WorkloadKind::kYcsb;

  const uint32_t regions = static_cast<uint32_t>(flags.GetInt("regions", 1));
  if (regions > 1) {
    cfg.topology = sim::Topology::Geo(cfg.n, regions);
    if (!flags.Has("timer_ms")) cfg.view_timer = Millis(1200);
    if (!flags.Has("delta_ms")) cfg.delta = Millis(160);
  }

  const std::string fault = flags.GetString("fault", "none");
  if (fault == "crash") cfg.fault = Fault::kCrash;
  if (fault == "slow") cfg.fault = Fault::kSlowLeader;
  if (fault == "tailfork") cfg.fault = Fault::kTailFork;
  if (fault == "rollback") cfg.fault = Fault::kRollbackAttack;
  cfg.num_faulty = static_cast<uint32_t>(flags.GetInt("faulty", 0));
  cfg.rollback_victims =
      static_cast<uint32_t>(flags.GetInt("victims", (cfg.n - 1) / 3));
  if (flags.Has("strategy")) {
    std::string error;
    if (!ParseStrategySchedule(flags.GetString("strategy", ""), &cfg.strategy,
                               &error)) {
      std::fprintf(stderr, "bad --strategy: %s\n", error.c_str());
      return Usage();
    }
  }
  if (flags.Has("reconfig")) {
    std::string error;
    if (!ParseCommitteeSchedule(flags.GetString("reconfig", ""), &cfg.reconfig,
                                &error)) {
      std::fprintf(stderr, "bad --reconfig: %s\n", error.c_str());
      return Usage();
    }
  }
  cfg.liveness_k = static_cast<uint64_t>(flags.GetInt("liveness_k", 0));
  cfg.liveness_grace = Millis(flags.GetDouble("liveness_grace_ms", 0));

  const ExperimentResult res = flags.GetBool("paper_point", false)
                                   ? RunPaperPoint(cfg)
                                   : RunExperiment(cfg);

  // Machine-friendly line first.
  std::printf(
      "RESULT protocol=\"%s\" n=%u batch=%u tput_tps=%.0f lat_avg_ms=%.3f "
      "lat_p50_ms=%.3f lat_p99_ms=%.3f lat_p999_ms=%.3f accepted=%llu spec=%llu "
      "views=%llu slots=%llu timeouts=%llu rollbacks=%llu resub=%llu "
      "backlog=%llu safety=%d cap_hit=%d liveness_violations=%llu "
      "oracle_violations=%llu\n",
      res.protocol.c_str(), cfg.n, cfg.batch_size, res.throughput_tps,
      res.avg_latency_ms, res.p50_latency_ms, res.p99_latency_ms,
      res.p999_latency_ms, static_cast<unsigned long long>(res.accepted),
      static_cast<unsigned long long>(res.accepted_speculative),
      static_cast<unsigned long long>(res.views),
      static_cast<unsigned long long>(res.slots),
      static_cast<unsigned long long>(res.timeouts),
      static_cast<unsigned long long>(res.rollback_events),
      static_cast<unsigned long long>(res.resubmissions),
      static_cast<unsigned long long>(res.backlog), res.safety_ok ? 1 : 0,
      res.event_cap_hit ? 1 : 0,
      static_cast<unsigned long long>(res.liveness_violations),
      static_cast<unsigned long long>(res.oracle_violations));

  std::printf("\n%s, n=%u (f=%u), batch=%u, %s%s\n", res.protocol.c_str(), cfg.n,
              (cfg.n - 1) / 3, cfg.batch_size, workload.c_str(),
              regions > 1 ? (", " + std::to_string(regions) + " regions").c_str()
                          : "");
  std::printf("  throughput   %10.0f txn/s\n", res.throughput_tps);
  std::printf("  latency      %10.2f ms avg, %.2f ms p99\n", res.avg_latency_ms,
              res.p99_latency_ms);
  std::printf("  speculative  %10llu of %llu accepts\n",
              static_cast<unsigned long long>(res.accepted_speculative),
              static_cast<unsigned long long>(res.accepted));
  std::printf("  safety       %10s\n", res.safety_ok ? "OK" : "VIOLATED");
  if (cfg.oracle_enabled) {
    std::printf("  oracle       %10s\n",
                res.oracle_violations == 0 ? "OK" : "VIOLATED");
    if (res.oracle_violations > 0) {
      std::printf("  %s\n", res.oracle_first_violation.c_str());
    }
    std::printf("  liveness     %10s\n",
                res.liveness_violations == 0 ? "OK" : "VIOLATED");
    if (res.liveness_violations > 0) {
      std::printf("  %s\n", res.liveness_first_violation.c_str());
    }
  }
  if (res.event_cap_hit) {
    std::printf("  WARNING: the simulator stopped at its event cap - this run "
                "was truncated, not drained\n");
  }
  if (res.cap_parallelism_degraded) {
    std::fprintf(stderr,
                 "warning: --event_cap with --sim-jobs > 1 disables windowed "
                 "lookahead; this run fell back to tick-parallel scheduling "
                 "(cap_parallelism_degraded)\n");
  }
  return res.safety_ok && res.oracle_violations == 0 &&
                 res.liveness_violations == 0
             ? 0
             : 1;
}

}  // namespace
}  // namespace hotstuff1

int main(int argc, char** argv) { return hotstuff1::RunMain(argc, argv); }

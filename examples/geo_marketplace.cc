// Global marketplace: an order-management ledger (TPC-C NewOrder/Payment)
// replicated across up to five continents, with customers in North
// Virginia. Shows how geo-distribution stretches finality latency and how
// HotStuff-1's early finality keeps checkout snappy.

#include <cstdio>

#include "runtime/experiment.h"
#include "sim/topology.h"

int main() {
  using namespace hotstuff1;

  std::printf("Marketplace ledger: 10 replicas, TPC-C, clients in North Virginia\n");

  for (uint32_t regions = 1; regions <= 5; ++regions) {
    std::printf("\n-- %u region%s: ", regions, regions > 1 ? "s" : "");
    for (uint32_t r = 0; r < regions; ++r) {
      std::printf("%s%s", sim::Topology::RegionName(r).c_str(),
                  r + 1 < regions ? ", " : "\n");
    }
    std::printf("%-14s %12s %14s %14s\n", "protocol", "orders/s", "avg checkout",
                "p99 checkout");
    for (ProtocolKind kind : {ProtocolKind::kHotStuff2, ProtocolKind::kHotStuff1}) {
      ExperimentConfig cfg;
      cfg.protocol = kind;
      cfg.n = 10;
      cfg.batch_size = 50;
      cfg.topology = regions == 1 ? sim::Topology::Lan(10)
                                  : sim::Topology::Geo(10, regions);
      cfg.client_region = sim::kNorthVirginia;
      cfg.workload = WorkloadKind::kTpcc;
      cfg.view_timer = regions == 1 ? Millis(10) : Millis(1200);
      cfg.delta = regions == 1 ? Millis(1) : Millis(160);
      cfg.duration = regions == 1 ? Seconds(1) : Seconds(8);
      cfg.warmup = regions == 1 ? Millis(200) : Seconds(2);
      const ExperimentResult res = RunPaperPoint(cfg);
      std::printf("%-14s %12.0f %12.2fms %12.2fms\n", res.protocol.c_str(),
                  res.throughput_tps, res.avg_latency_ms, res.p99_latency_ms);
    }
  }

  std::printf(
      "\nEvery extra region adds trans-continental hops to the commit path;\n"
      "HotStuff-1 saves two of them by confirming finality from prepared,\n"
      "speculatively executed orders (§3).\n");
  return 0;
}

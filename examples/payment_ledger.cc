// Digital-asset payment platform (the paper's motivating scenario, §1):
// clients submit payments and care about *finality latency* - the moment
// they can hand over goods. This example compares the finality confirmation
// latency a payment client sees under HotStuff, HotStuff-2, and HotStuff-1's
// early (speculative) finality, on the same 7-replica deployment.

#include <cstdio>

#include "runtime/experiment.h"
#include "workload/tpcc.h"

int main() {
  using namespace hotstuff1;

  std::printf("Payment platform: 7 replicas, f = 2, TPC-C Payment mix\n");
  std::printf("%-22s %12s %14s %14s %14s\n", "protocol", "payments/s",
              "avg finality", "p50 finality", "p99 finality");

  for (ProtocolKind kind : {ProtocolKind::kHotStuff, ProtocolKind::kHotStuff2,
                            ProtocolKind::kHotStuff1,
                            ProtocolKind::kHotStuff1Slotted}) {
    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.n = 7;
    cfg.batch_size = 50;
    cfg.duration = Seconds(1);
    cfg.warmup = Millis(200);
    cfg.workload = WorkloadKind::kTpcc;
    cfg.tpcc.new_order_fraction = 0.0;  // pure Payment transactions
    const ExperimentResult res = RunPaperPoint(cfg);
    std::printf("%-22s %12.0f %12.2fms %12.2fms %12.2fms\n", res.protocol.c_str(),
                res.throughput_tps, res.avg_latency_ms, res.p50_latency_ms,
                res.p99_latency_ms);
  }

  std::printf(
      "\nHotStuff-1 payments finalize after one protocol phase: replicas\n"
      "speculatively execute prepared payments and the client accepts on\n"
      "n-f matching responses - two network hops earlier than HotStuff-2's\n"
      "commit-certificate path (§3).\n");
  return 0;
}

// Quickstart: spin up a 4-replica HotStuff-1 cluster on a simulated LAN,
// drive it with YCSB clients for one virtual second, and inspect what the
// protocol did.
//
//   $ ./quickstart

#include <cstdio>

#include "runtime/experiment.h"

int main() {
  using namespace hotstuff1;

  // 1. Describe the deployment: protocol, cluster size, workload, duration.
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kHotStuff1;  // streamlined, speculative
  cfg.n = 4;                                // tolerates f = 1 Byzantine fault
  cfg.batch_size = 100;
  cfg.duration = Seconds(1);
  cfg.warmup = Millis(200);
  cfg.workload = WorkloadKind::kYcsb;

  // 2. Run it. The Experiment wires the simulator, network, key registry,
  //    client pool and replicas, then executes warmup + measurement.
  Experiment experiment(cfg);
  const ExperimentResult result = experiment.Run();

  // 3. Read the results.
  std::printf("protocol            : %s\n", result.protocol.c_str());
  std::printf("throughput          : %.0f txn/s\n", result.throughput_tps);
  std::printf("avg client latency  : %.2f ms\n", result.avg_latency_ms);
  std::printf("p99 client latency  : %.2f ms\n", result.p99_latency_ms);
  std::printf("speculative accepts : %llu of %llu\n",
              static_cast<unsigned long long>(result.accepted_speculative),
              static_cast<unsigned long long>(result.accepted));
  std::printf("views entered       : %llu\n",
              static_cast<unsigned long long>(result.views));
  std::printf("safety check        : %s\n", result.safety_ok ? "OK" : "VIOLATED");

  // 4. Inspect a replica directly: the committed chain and its ledger.
  const auto& replica = *experiment.replicas()[0];
  const auto& chain = replica.ledger().committed_chain();
  std::printf("\nreplica 0 committed %zu blocks; tip: %s\n", chain.size() - 1,
              chain.back()->ToString().c_str());
  std::printf("replica 0 executed  %llu txns (%llu speculated first)\n",
              static_cast<unsigned long long>(replica.ledger().txns_committed()),
              static_cast<unsigned long long>(replica.ledger().txns_speculated()));
  return result.safety_ok ? 0 : 1;
}

// Attack resilience demo: what rational/malicious leaders do to a
// streamlined chain, and how slotting neutralizes them (§6).
//
// Runs three scenarios on a 13-replica cluster (f = 4): honest, leader
// slowness (D6), and tail-forking (D7), for HotStuff-1 with and without
// slotting.

#include <cstdio>

#include "runtime/experiment.h"

namespace {

hotstuff1::ExperimentResult Run(hotstuff1::ProtocolKind kind, hotstuff1::Fault fault) {
  using namespace hotstuff1;
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.n = 13;
  cfg.batch_size = 50;
  cfg.duration = Seconds(1);
  cfg.warmup = Millis(250);
  cfg.view_timer = Millis(10);
  cfg.delta = Millis(1);
  cfg.fault = fault;
  cfg.num_faulty = fault == Fault::kNone ? 0 : 4;  // f faulty leaders
  cfg.rollback_victims = 4;
  return RunPaperPoint(cfg);
}

}  // namespace

int main() {
  using namespace hotstuff1;

  struct Scenario {
    const char* name;
    Fault fault;
  };
  const Scenario scenarios[] = {
      {"honest", Fault::kNone},
      {"slow leaders (D6)", Fault::kSlowLeader},
      {"tail-forking (D7)", Fault::kTailFork},
      {"rollback attack", Fault::kRollbackAttack},
  };

  for (ProtocolKind kind :
       {ProtocolKind::kHotStuff1, ProtocolKind::kHotStuff1Slotted}) {
    std::printf("\n=== %s ===\n", ProtocolName(kind));
    std::printf("%-20s %12s %12s %14s %10s\n", "scenario", "txn/s", "latency",
                "resubmissions", "rollbacks");
    double honest_tps = 0;
    for (const Scenario& s : scenarios) {
      const ExperimentResult res = Run(kind, s.fault);
      if (s.fault == Fault::kNone) honest_tps = res.throughput_tps;
      std::printf("%-20s %12.0f %10.2fms %14llu %10llu", s.name,
                  res.throughput_tps, res.avg_latency_ms,
                  static_cast<unsigned long long>(res.resubmissions),
                  static_cast<unsigned long long>(res.rollback_events));
      if (s.fault != Fault::kNone && honest_tps > 0) {
        std::printf("   (%+.1f%% tput)",
                    100.0 * (res.throughput_tps - honest_tps) / honest_tps);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nSlotting gives each leader multiple proposals per view, so a slow\n"
      "leader only delays its own extra slots and a tail-forking successor\n"
      "must carry the previous leader's last slot instead of orphaning it\n"
      "(carry blocks + dual certificates, §6).\n");
  return 0;
}
